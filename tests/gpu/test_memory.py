"""Unit tests for the simulated device memory manager."""

import numpy as np
import pytest

from repro.gpu.device import A100_40GB, DeviceSpec
from repro.gpu.memory import DeviceMemoryManager


def small_device(mem_bytes=1024) -> DeviceSpec:
    from dataclasses import replace

    return replace(A100_40GB, device_memory_bytes=mem_bytes)


class TestAllocation:
    def test_alloc_and_get(self):
        mgr = DeviceMemoryManager()
        arr = mgr.alloc("a", (2, 3), np.float32)
        assert arr.shape == (2, 3)
        assert mgr.get("a") is arr
        assert mgr.allocated_bytes == 24

    def test_oom(self):
        mgr = DeviceMemoryManager(small_device(100))
        with pytest.raises(MemoryError, match="device OOM"):
            mgr.alloc("big", 100, np.float32)

    def test_duplicate_name(self):
        mgr = DeviceMemoryManager()
        mgr.alloc("a", 2)
        with pytest.raises(ValueError):
            mgr.alloc("a", 2)

    def test_free_returns_capacity(self):
        mgr = DeviceMemoryManager(small_device(100))
        mgr.alloc("a", 20, np.float32)
        mgr.free("a")
        assert mgr.allocated_bytes == 0
        mgr.alloc("b", 25, np.float32)  # fits again

    def test_free_missing(self):
        mgr = DeviceMemoryManager()
        with pytest.raises(KeyError):
            mgr.free("ghost")

    def test_get_missing(self):
        mgr = DeviceMemoryManager()
        with pytest.raises(KeyError):
            mgr.get("ghost")

    def test_paper_mesh_fits_a100(self):
        """The full 750x994x246 working set fits 40 GB (Sec. 6 claim)."""
        cells = 750 * 994 * 246
        fields = 4 + 10  # p, rho, residual, z + 10 trans
        assert cells * fields * 4 < A100_40GB.device_memory_bytes


class TestTransfers:
    def test_h2d_copies_and_accounts(self):
        mgr = DeviceMemoryManager()
        mgr.alloc("a", 4, np.float32)
        host = np.arange(4, dtype=np.float32)
        mgr.h2d("a", host)
        np.testing.assert_array_equal(mgr.get("a"), host)
        assert mgr.transfers.h2d_bytes == 16
        assert mgr.transfers.h2d_transfers == 1

    def test_d2h_copies_and_accounts(self):
        mgr = DeviceMemoryManager()
        dev = mgr.alloc("a", 4, np.float32)
        dev[:] = 7.0
        host = np.zeros(4, dtype=np.float32)
        mgr.d2h("a", host)
        np.testing.assert_array_equal(host, 7.0)
        assert mgr.transfers.d2h_bytes == 16

    def test_shape_mismatch(self):
        mgr = DeviceMemoryManager()
        mgr.alloc("a", 4, np.float32)
        with pytest.raises(ValueError, match="shape"):
            mgr.h2d("a", np.zeros(5, dtype=np.float32))
        with pytest.raises(ValueError, match="shape"):
            mgr.d2h("a", np.zeros((2, 3), dtype=np.float32))

    def test_transfer_seconds_model(self):
        mgr = DeviceMemoryManager()
        mgr.alloc("a", 1024, np.float32)
        mgr.h2d("a", np.zeros(1024, dtype=np.float32))
        t = mgr.transfers.transfer_seconds(mgr.device)
        assert t == pytest.approx(4096 / mgr.device.pcie_bandwidth)
