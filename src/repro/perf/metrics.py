"""Derived performance metrics and table assembly helpers.

Gcell/s throughput (Table 2's metric), TFLOPS, and speedups, plus the
row builders shared by the benchmark harness so every bench prints
paper-comparable rows from the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constants import PAPER_ITERATIONS
from repro.core.kernels import FLOPS_PER_CELL
from repro.perf.timing import (
    A100_RAJA_TIME_MODEL,
    CS2_TIME_MODEL,
    Cs2TimeModel,
    GpuTimeModel,
)

__all__ = [
    "throughput_gcells_per_second",
    "achieved_tflops",
    "speedup",
    "WeakScalingRow",
    "weak_scaling_row",
]


def throughput_gcells_per_second(
    num_cells: int, applications: int, seconds: float
) -> float:
    """Cells processed per second, in Gcell/s (Table 2 metric)."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return num_cells * applications / seconds / 1e9


def achieved_tflops(num_cells: int, applications: int, seconds: float) -> float:
    """Kernel TFLOPS at 140 FLOPs per cell per application (Sec. 7.3)."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return num_cells * applications * FLOPS_PER_CELL / seconds / 1e12


def speedup(baseline_seconds: float, accelerated_seconds: float) -> float:
    """Baseline time over accelerated time (204x in Table 1's terms)."""
    if accelerated_seconds <= 0:
        raise ValueError("accelerated_seconds must be positive")
    return baseline_seconds / accelerated_seconds


@dataclass(frozen=True)
class WeakScalingRow:
    """One row of the Table 2 reproduction."""

    nx: int
    ny: int
    nz: int
    total_cells: int
    throughput_gcells: float
    cs2_seconds: float
    a100_seconds: float

    @property
    def speedup(self) -> float:
        """A100 time over CS-2 time for this mesh."""
        return self.a100_seconds / self.cs2_seconds


def weak_scaling_row(
    nx: int,
    ny: int,
    nz: int,
    *,
    applications: int = PAPER_ITERATIONS,
    cs2_model: Cs2TimeModel = CS2_TIME_MODEL,
    gpu_model: GpuTimeModel = A100_RAJA_TIME_MODEL,
) -> WeakScalingRow:
    """Model-projected Table 2 row for one mesh size."""
    cells = nx * ny * nz
    cs2_s = cs2_model.seconds(nx, ny, nz, applications)
    a100_s = gpu_model.seconds(nx, ny, nz, applications)
    return WeakScalingRow(
        nx=nx,
        ny=ny,
        nz=nz,
        total_cells=cells,
        throughput_gcells=throughput_gcells_per_second(cells, applications, cs2_s),
        cs2_seconds=cs2_s,
        a100_seconds=a100_s,
    )
