"""Tests for the implicit residual and Jacobian operators."""

import numpy as np
import pytest

from repro.core import (
    CartesianMesh3D,
    FluidProperties,
    Transmissibility,
    compute_flux_residual,
    random_pressure,
)
from repro.solver.operators import (
    FlowResidual,
    MatrixFreeJacobian,
    assemble_jacobian,
)


@pytest.fixture
def problem(hetero_mesh, fluid):
    res = FlowResidual(hetero_mesh, fluid, dt=3600.0)
    p = random_pressure(hetero_mesh, seed=13, amplitude=2e5)
    return res, p


class TestFlowResidual:
    def test_steady_uniform_no_gravity_residual_is_zero(self, fluid):
        mesh = CartesianMesh3D(4, 4, 3)
        res = FlowResidual(mesh, fluid, dt=100.0, gravity=0.0)
        p = mesh.full(2e7)
        mass = res.mass_density(p)
        np.testing.assert_allclose(res(p, mass), 0.0, atol=1e-12)

    def test_reduces_to_flux_when_dt_large(self, problem, hetero_mesh, fluid):
        """With the accumulation term ~0 (huge dt, same state), the
        residual is minus the (inflow-positive) flux residual of
        Algorithm 1 — see the FlowResidual sign note."""
        res = FlowResidual(hetero_mesh, fluid, dt=1e30)
        p = random_pressure(hetero_mesh, seed=1)
        mass = res.mass_density(p)
        flux = compute_flux_residual(hetero_mesh, fluid, p, res.trans)
        scale = np.abs(flux).max()
        np.testing.assert_allclose(res(p, mass), -flux, atol=1e-10 * scale)

    def test_accumulation_sign(self, fluid):
        """Raising pressure stores mass: positive accumulation residual."""
        mesh = CartesianMesh3D(3, 3, 2)
        res = FlowResidual(mesh, fluid, dt=10.0, gravity=0.0)
        p_old = mesh.full(1e7)
        mass_old = res.mass_density(p_old)
        p_new = mesh.full(1.1e7)
        r = res(p_new, mass_old)
        assert np.all(r > 0)

    def test_source_subtracts(self, fluid):
        mesh = CartesianMesh3D(3, 3, 2)
        src = mesh.zeros()
        src[0, 0, 0] = 5.0
        res = FlowResidual(mesh, fluid, dt=10.0, gravity=0.0, source=src)
        p = mesh.full(1e7)
        r = res(p, res.mass_density(p))
        assert r[0, 0, 0] == pytest.approx(-5.0)
        assert r[1, 1, 1] == 0.0

    def test_mass_density_positive(self, problem):
        res, p = problem
        assert np.all(res.mass_density(p) > 0)

    def test_mass_density_derivative_fd(self, problem):
        res, p = problem
        eps = 10.0
        fd = (res.mass_density(p + eps) - res.mass_density(p - eps)) / (2 * eps)
        np.testing.assert_allclose(
            res.mass_density_derivative(p), fd, rtol=1e-6
        )

    def test_rejects_nonpositive_dt(self, hetero_mesh, fluid):
        with pytest.raises(ValueError, match="dt"):
            FlowResidual(hetero_mesh, fluid, dt=0.0)

    def test_rejects_bad_source_shape(self, hetero_mesh, fluid):
        with pytest.raises(ValueError, match="source"):
            FlowResidual(hetero_mesh, fluid, dt=1.0, source=np.zeros((1, 1, 1)))


class TestMatrixFreeJacobian:
    def test_matches_assembled(self, problem):
        res, p = problem
        jac = MatrixFreeJacobian(res, p)
        J = assemble_jacobian(res, p)
        rng = np.random.default_rng(3)
        for _ in range(3):
            v = rng.standard_normal(jac.n)
            mv = jac.matvec(v)
            av = J @ v
            np.testing.assert_allclose(mv, av, rtol=1e-12, atol=1e-20)

    def test_diagonal_matches_assembled(self, problem):
        res, p = problem
        jac = MatrixFreeJacobian(res, p)
        J = assemble_jacobian(res, p)
        np.testing.assert_allclose(
            jac.diagonal().ravel(), J.diagonal(), rtol=1e-12
        )

    def test_matches_finite_difference(self, problem):
        res, p = problem
        jac = MatrixFreeJacobian(res, p)
        mass = res.mass_density(p)
        rng = np.random.default_rng(4)
        v = rng.standard_normal(res.mesh.shape_zyx)
        eps = 1.0
        fd = (res(p + eps * v, mass) - res(p - eps * v, mass)) / (2 * eps)
        mv = jac.matvec(v)
        scale = np.abs(fd).max()
        np.testing.assert_allclose(mv, fd, atol=1e-6 * scale)

    def test_field_and_flat_shapes(self, problem):
        res, p = problem
        jac = MatrixFreeJacobian(res, p)
        v = np.ones(jac.n)
        flat = jac.matvec(v)
        field = jac.matvec(v.reshape(res.mesh.shape_zyx))
        assert flat.shape == (jac.n,)
        assert field.shape == res.mesh.shape_zyx
        np.testing.assert_array_equal(flat, field.ravel())

    def test_matmul_operator(self, problem):
        res, p = problem
        jac = MatrixFreeJacobian(res, p)
        v = np.ones(jac.n)
        np.testing.assert_array_equal(jac @ v, jac.matvec(v))

    def test_diagonal_positive(self, problem):
        """Accumulation + outflow derivatives make the diagonal positive
        (an M-matrix-like structure required by Jacobi scaling)."""
        res, p = problem
        jac = MatrixFreeJacobian(res, p)
        assert np.all(jac.diagonal() > 0)


class TestAssembledJacobian:
    def test_shape_and_sparsity(self, problem):
        res, p = problem
        J = assemble_jacobian(res, p)
        n = res.mesh.num_cells
        assert J.shape == (n, n)
        # at most 11 entries per row (diagonal + 10 neighbours)
        assert J.nnz <= 11 * n

    def test_row_sums_without_compressibility(self, hetero_mesh):
        """With incompressible fluid and no gravity the flux Jacobian has
        zero row sums (pure difference operator) plus accumulation."""
        fluid = FluidProperties(compressibility=0.0)
        res = FlowResidual(
            hetero_mesh, fluid, dt=1.0, gravity=0.0, rock_compressibility=0.0
        )
        p = random_pressure(hetero_mesh, seed=5)
        J = assemble_jacobian(res, p)
        row_sums = np.asarray(J.sum(axis=1)).ravel()
        np.testing.assert_allclose(row_sums, 0.0, atol=1e-6)
