"""Tolerance classes for cross-backend conformance.

The equivalence tests (tests/integration/test_equivalence.py) encode
which backend pairs agree to the bit and which only to rounding; this
module turns that knowledge into two standardized tolerance classes:

* **bit-exact** — same bytes, no exceptions.  Applies when the
  recording and replaying backends share a residual *fold class*
  (identical summation order): cluster vs par (disjoint owned regions,
  host-order fold), or event vs lockstep on forced-order meshes.
* **ulp-bounded** — each cell within ``max_ulps`` units in the last
  place of the recording, OR within ``rtol * scale`` absolutely (the
  absolute escape keeps near-zero cells, where a fixed ulp budget is
  meaninglessly tight, from flagging rounding noise).  Applies across
  fold classes: event vs cluster, gpu vs anything, etc.

``ulp_distance`` maps IEEE-754 bit patterns onto an order-preserving
integer line (negative floats get reflected below zero), so the
distance between two finite floats counts the representable values
between them.  Signed zeros are 0 apart; two NaNs (any payloads) are
0 apart; NaN vs non-NaN is infinite.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ulp_distance",
    "ToleranceClass",
    "BIT_EXACT",
    "ULP_BOUNDED",
    "FOLD_CLASS",
    "default_tolerance",
]

# Residual fold class per backend: backends in the same class sum cell
# contributions in the same order and must therefore agree bitwise.
# event/lockstep are distinct in general (fabric arrival order vs
# phased order) but coincide on the forced-order fabric shapes — the
# golden registry encodes that per-artifact via tolerance_overrides.
# fused replays the IR's probed per-PE arrival schedule, so it shares
# the event fold class and must match event recordings to the bit.
FOLD_CLASS = {
    "event": "event",
    "fused": "event",
    "lockstep": "lockstep",
    "gpu": "gpu",
    "cluster": "host",
    "par": "host",
}

_ORDERED_DTYPES = {
    np.dtype(np.float64): np.int64,
    np.dtype(np.float32): np.int32,
}


def _to_ordered_ints(a: np.ndarray) -> np.ndarray:
    """Map float bit patterns onto an order-preserving integer line."""
    int_type = _ORDERED_DTYPES[a.dtype]
    bits = a.view(int_type)
    info = np.iinfo(int_type)
    # Negative floats have sign bit set, so their raw two's-complement
    # view is negative and *decreasing* in magnitude order; reflecting
    # them through int_min restores monotonicity across the whole line
    # and keeps -0.0 adjacent to +0.0 (distance 0 after the map).
    return np.where(bits < 0, info.min - bits, bits)


def ulp_distance(expected: np.ndarray, actual: np.ndarray) -> np.ndarray:
    """Elementwise ulp distance between two same-dtype float arrays.

    Returns float64 (so NaN-vs-number can be ``inf``).  ``+0.0`` and
    ``-0.0`` are 0 apart; two NaNs are 0 apart regardless of payload.
    """
    expected = np.asarray(expected)
    actual = np.asarray(actual)
    if expected.dtype != actual.dtype:
        raise ValueError(
            f"dtype mismatch: {expected.dtype} vs {actual.dtype}"
        )
    if expected.dtype not in _ORDERED_DTYPES:
        raise TypeError(f"unsupported dtype {expected.dtype}")
    ea = _to_ordered_ints(expected)
    aa = _to_ordered_ints(actual)
    # Small distances must stay exact, so subtract in integer space
    # where it cannot overflow (same-sign ordered values differ by
    # < 2**63); only cross-sign distances — huge by construction — drop
    # to float64, where the rounding is irrelevant.
    same_sign = (ea >= 0) == (aa >= 0)
    with np.errstate(over="ignore"):
        diff_same = np.abs(np.where(same_sign, ea - aa, 0))
    diff_cross = np.abs(ea.astype(np.float64)) + np.abs(aa.astype(np.float64))
    dist = np.where(same_sign, diff_same.astype(np.float64), diff_cross)
    e_nan = np.isnan(expected)
    a_nan = np.isnan(actual)
    dist = np.where(e_nan & a_nan, 0.0, dist)
    dist = np.where(e_nan ^ a_nan, np.inf, dist)
    return dist


class ToleranceClass:
    """A named pass/fail rule comparing a replayed field to a recording."""

    def __init__(
        self,
        name: str,
        *,
        bit_exact: bool = False,
        max_ulps: float = 0.0,
        rtol: float = 0.0,
    ) -> None:
        self.name = name
        self.bit_exact = bit_exact
        self.max_ulps = float(max_ulps)
        self.rtol = float(rtol)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.bit_exact:
            return f"ToleranceClass({self.name!r}, bit_exact)"
        return (
            f"ToleranceClass({self.name!r}, max_ulps={self.max_ulps}, "
            f"rtol={self.rtol})"
        )

    def failures(
        self, expected: np.ndarray, actual: np.ndarray
    ) -> np.ndarray:
        """Boolean mask of cells violating this tolerance."""
        expected = np.asarray(expected)
        actual = np.asarray(actual)
        if self.bit_exact:
            if expected.dtype != actual.dtype or expected.shape != actual.shape:
                raise ValueError("bit-exact comparison needs matching layout")
            # byte-level comparison: ±0.0 and NaN payloads all count
            width = expected.dtype.itemsize
            e = np.ascontiguousarray(expected).view(np.uint8)
            a = np.ascontiguousarray(actual).view(np.uint8)
            e = e.reshape(expected.shape + (width,))
            a = a.reshape(actual.shape + (width,))
            return (e != a).any(axis=-1)
        ulps = ulp_distance(expected, actual)
        scale = float(np.max(np.abs(expected), initial=0.0))
        absdiff = np.abs(expected - actual)
        # NaN-vs-number must fail even though absdiff is NaN there
        within_abs = np.where(
            np.isnan(absdiff), False, absdiff <= self.rtol * scale
        )
        return ~((ulps <= self.max_ulps) | within_abs)

    def describe(self) -> str:
        if self.bit_exact:
            return f"{self.name} (identical bits required)"
        return (
            f"{self.name} (<= {self.max_ulps:g} ulps or "
            f"|diff| <= {self.rtol:g}*scale)"
        )


#: Same fold class: the replay must reproduce the recording's bytes.
BIT_EXACT = ToleranceClass("bit-exact", bit_exact=True)

#: Different fold classes: rounding-order differences only.  16 ulps is
#: generous for a single fold over O(10) face contributions; the
#: 1e-12 relative escape covers near-zero cells (observed gpu-vs-host
#: spread in tests/integration/test_equivalence.py is ~1e-12 * scale).
ULP_BOUNDED = ToleranceClass("ulp-bounded", max_ulps=16, rtol=1e-12)


def default_tolerance(
    recorded_backend: str, replay_backend: str
) -> ToleranceClass:
    """The standard tolerance class for a backend pair."""
    rec = FOLD_CLASS.get(recorded_backend)
    rep = FOLD_CLASS.get(replay_backend)
    if rec is None or rep is None:
        unknown = recorded_backend if rec is None else replay_backend
        raise ValueError(f"unknown backend {unknown!r}")
    if rec == rep:
        return BIT_EXACT
    return ULP_BOUNDED
