"""Color-conflict, dead-route, and switch-schedule analyzers."""

from repro.check import (
    Severity,
    check_color_conflicts,
    check_cross_program_conflicts,
    check_routes,
    check_switch_schedules,
)
from repro.wse.fabric import Fabric
from repro.wse.geometry import Port

COLOR = 5


class TestColorConflicts:
    def test_injected_conflict_is_exactly_one_error_with_coordinates(self):
        """ISSUE bad fabric (a): two input streams merged onto one link."""
        fabric = Fabric(3, 1)
        fabric.router(0, 0).configure(COLOR, [{Port.RAMP: (Port.EAST,)}])
        fabric.router(1, 0).configure(
            COLOR, [{Port.RAMP: (Port.EAST,), Port.WEST: (Port.EAST,)}]
        )
        fabric.router(2, 0).configure(COLOR, [{Port.WEST: (Port.RAMP,)}])
        findings = check_color_conflicts(fabric, COLOR, color_name="merge")
        errors = [f for f in findings if f.severity is Severity.ERROR]
        assert len(errors) == 1
        err = errors[0]
        assert err.code == "color-conflict"
        assert err.coord == (1, 0)
        assert err.port == "EAST"
        assert err.color == COLOR and err.color_name == "merge"
        assert "RAMP->EAST" in err.detail and "WEST->EAST" in err.detail

    def test_ramp_gather_is_not_a_conflict(self):
        fabric = Fabric(3, 1)
        fabric.router(1, 0).configure(
            COLOR, [{Port.WEST: (Port.RAMP,), Port.EAST: (Port.RAMP,)}]
        )
        assert check_color_conflicts(fabric, COLOR) == []

    def test_conflicts_in_later_positions_are_found(self):
        fabric = Fabric(2, 1)
        fabric.router(0, 0).configure(
            COLOR,
            [
                {Port.RAMP: (Port.EAST,)},
                {Port.RAMP: (Port.EAST,), Port.SOUTH: (Port.EAST,)},
            ],
        )
        findings = check_color_conflicts(fabric, COLOR)
        assert len(findings) == 1
        assert "position 1" in findings[0].message


class TestCheckRoutes:
    def test_dead_route_names_the_dropping_pe(self):
        fabric = Fabric(3, 1)
        fabric.router(0, 0).configure(COLOR, [{Port.RAMP: (Port.EAST,)}])
        # (1, 0) forwards but (2, 0) has no route: traffic dropped there
        fabric.router(1, 0).configure(COLOR, [{Port.WEST: (Port.EAST,)}])
        fabric.router(2, 0).configure(COLOR, [{Port.NORTH: (Port.RAMP,)}])
        findings = check_routes(fabric, COLOR)
        errors = [f for f in findings if f.severity is Severity.ERROR]
        assert len(errors) == 1
        err = errors[0]
        assert err.code == "dead-route"
        assert err.coord == (1, 0) and err.port == "EAST"
        assert "(2, 0)" in err.message

    def test_boundary_exit_is_info_not_error(self):
        fabric = Fabric(2, 1)
        fabric.router(0, 0).configure(COLOR, [{Port.RAMP: (Port.EAST,)}])
        fabric.router(1, 0).configure(
            COLOR, [{Port.WEST: (Port.RAMP, Port.EAST)}]
        )
        findings = check_routes(fabric, COLOR)
        assert [f.severity for f in findings] == [Severity.INFO]
        assert findings[0].code == "offchip-exit"

    def test_unreachable_expected_receiver(self):
        fabric = Fabric(2, 2)
        fabric.router(0, 0).configure(COLOR, [{Port.RAMP: (Port.EAST,)}])
        fabric.router(1, 0).configure(COLOR, [{Port.WEST: (Port.RAMP,)}])
        findings = check_routes(
            fabric, COLOR, expected_receivers=frozenset({(1, 0), (1, 1)})
        )
        unreachable = [f for f in findings if f.code == "unreachable-pe"]
        assert len(unreachable) == 1
        assert unreachable[0].coord == (1, 1)
        assert unreachable[0].severity is Severity.ERROR


class TestSwitchSchedules:
    def test_stale_schedule_is_exactly_one_error_with_coordinates(self):
        """ISSUE bad fabric (d): two positions, no wavelet ever arrives."""
        fabric = Fabric(2, 1)
        fabric.router(1, 0).configure(
            COLOR,
            [{Port.WEST: (Port.RAMP,)}, {Port.NORTH: (Port.RAMP,)}],
        )
        findings = check_switch_schedules(fabric, COLOR, color_name="stuck")
        errors = [f for f in findings if f.severity is Severity.ERROR]
        assert len(errors) == 1
        err = errors[0]
        assert err.code == "switch-stale"
        assert err.coord == (1, 0)
        assert err.color == COLOR and err.color_name == "stuck"

    def test_injector_advances_its_own_schedule(self):
        fabric = Fabric(2, 1)
        fabric.router(0, 0).configure(
            COLOR,
            [{Port.RAMP: (Port.EAST,)}, {Port.EAST: (Port.RAMP,)}],
        )
        assert check_switch_schedules(fabric, COLOR) == []

    def test_identical_positions_are_not_stale(self):
        """Seed-edge PEs hold two identical Sending positions (cardinal
        protocol); flips are deliberate no-ops, not a hazard."""
        fabric = Fabric(2, 1)
        fabric.router(1, 0).configure(
            COLOR,
            [{Port.WEST: (Port.RAMP,)}, {Port.WEST: (Port.RAMP,)}],
        )
        assert check_switch_schedules(fabric, COLOR) == []

    def test_fed_arrival_advances_remote_schedule(self):
        fabric = Fabric(2, 1)
        fabric.router(0, 0).configure(COLOR, [{Port.RAMP: (Port.EAST,)}])
        fabric.router(1, 0).configure(
            COLOR,
            [{Port.WEST: (Port.RAMP,)}, {Port.NORTH: (Port.RAMP,)}],
        )
        assert check_switch_schedules(fabric, COLOR) == []


class TestCrossProgramConflicts:
    def _claiming_fabric(self) -> Fabric:
        fabric = Fabric(2, 1)
        fabric.router(0, 0).configure(COLOR, [{Port.RAMP: (Port.EAST,)}])
        fabric.router(1, 0).configure(COLOR, [{Port.WEST: (Port.RAMP,)}])
        return fabric

    def test_two_programs_claiming_one_link(self):
        findings = check_cross_program_conflicts(
            [
                ("prog-a", self._claiming_fabric(), COLOR),
                ("prog-b", self._claiming_fabric(), COLOR),
            ]
        )
        assert len(findings) == 1
        err = findings[0]
        assert err.severity is Severity.ERROR
        assert err.coord == (0, 0) and err.port == "EAST"
        assert "prog-a" in err.message and "prog-b" in err.message

    def test_single_program_claims_freely(self):
        findings = check_cross_program_conflicts(
            [("solo", self._claiming_fabric(), COLOR)]
        )
        assert findings == []
