"""End-to-end dataflow flux computation: the paper's headline kernel.

:class:`WseFluxComputation` runs applications of Algorithm 1 on the
simulated wafer-scale engine: per application it loads a pressure field,
schedules every PE's program (local compute + the cardinal/diagonal
exchange protocols), drains the event queue, verifies exactly-once
delivery, and gathers the distributed residual.

The per-application device time is measured in model cycles by the
discrete-event runtime; instruction/traffic totals come from the PEs' DSD
engines.  The runtime's slotted-event fast path makes protocol-accurate
runs tractable well beyond toy fabrics (see ``BENCH_event_runtime.json``
for the tracked throughput trajectory); for full paper-scale meshes use
:mod:`repro.dataflow.lockstep` for function and :mod:`repro.perf.timing`
for calibrated time projections.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import constants
from repro.core.fluid import FluidProperties
from repro.core.mesh import CartesianMesh3D
from repro.core.transmissibility import Transmissibility
from repro.dataflow.program import FluxProgram
from repro.obs.spans import span
from repro.obs.trace import TraceSink
from repro.wse.perf import WSE2, WsePerfModel
from repro.wse.runtime import EventRuntime, RuntimeStats

__all__ = ["WseFluxComputation", "WseRunResult"]


@dataclass
class WseRunResult:
    """Outcome of one or more applications of Algorithm 1.

    Attributes
    ----------
    residual:
        The residual field of the *last* application, shape (nz, ny, nx).
    applications:
        Number of applications executed.
    device_cycles:
        Summed end-to-end cycles of all applications (event-queue drain
        time per application).
    device_seconds:
        ``device_cycles`` converted through the perf model clock.
    compute_cycles:
        Total PE datapath cycles (sum over PEs of DSD cycles).
    instruction_counts:
        Fabric-wide instruction element totals by opcode.
    flops:
        Total floating-point operations executed.
    fabric_word_hops:
        Total fabric traffic (words x hops).
    stats:
        Runtime statistics merged over all applications
        (:meth:`~repro.wse.runtime.RuntimeStats.merge`).
    residuals:
        Per-application residual fields (only when ``keep_all=True``).
    """

    residual: np.ndarray
    applications: int
    device_cycles: float
    device_seconds: float
    compute_cycles: float
    instruction_counts: dict[str, int]
    flops: int
    fabric_word_hops: int
    stats: RuntimeStats
    residuals: list[np.ndarray] = field(default_factory=list)

    @property
    def seconds_per_application(self) -> float:
        """Average device seconds per application of Algorithm 1."""
        return self.device_seconds / self.applications

    @property
    def throughput_cells_per_second(self) -> float:
        """Cells processed per second of device time (Table 2 metric)."""
        cells = self.residual.size * self.applications
        return cells / self.device_seconds if self.device_seconds > 0 else 0.0

    def summary(self) -> str:
        """Multi-line human-readable run report."""
        nz, ny, nx = self.residual.shape
        ops = ", ".join(
            f"{op}={count}"
            for op, count in sorted(self.instruction_counts.items())
            if not op.startswith("AUX") and op != "FMOV_LOCAL"
        )
        return "\n".join(
            [
                f"WSE flux run: mesh {nx}x{ny}x{nz}, "
                f"{self.applications} application(s)",
                f"  device time : {self.device_cycles:.0f} cycles "
                f"({self.device_seconds * 1e6:.2f} us)",
                f"  throughput  : {self.throughput_cells_per_second / 1e6:.2f} Mcell/s",
                f"  flops       : {self.flops} ({ops})",
                f"  fabric      : {self.fabric_word_hops} word-hops, "
                f"{self.stats.messages_delivered} deliveries, "
                f"max {self.stats.max_hops_seen} hops",
            ]
        )


class WseFluxComputation:
    """Distributed TPFA flux computation on the simulated WSE.

    Parameters mirror :class:`~repro.dataflow.program.FluxProgram`; see
    that class for the meaning of ``reuse_buffers``, ``vectorized``,
    ``compute_fluxes`` (comm-only mode), and the memory knobs.

    Examples
    --------
    >>> from repro.core import CartesianMesh3D, FluidProperties
    >>> mesh = CartesianMesh3D(4, 3, 5)
    >>> wse = WseFluxComputation(mesh, FluidProperties(), dtype=np.float64)
    >>> result = wse.run_single(mesh.full(1.5e7))
    >>> result.residual.shape
    (5, 3, 4)
    """

    def __init__(
        self,
        mesh: CartesianMesh3D,
        fluid: FluidProperties,
        trans: Transmissibility | None = None,
        *,
        gravity: float = constants.GRAVITY,
        dtype=np.float32,
        reuse_buffers: bool = True,
        vectorized: bool = True,
        compute_fluxes: bool = True,
        overlap_compute: bool = True,
        perf: WsePerfModel = WSE2,
        pe_memory_bytes: int | None = None,
        pe_memory_reserved: int = 2048,
        trace: bool = False,
        trace_capacity: int | None = 1024,
        remap=None,
        faults=None,
        watchdog_cycles: float | None = None,
        record=None,
        ir=None,
    ) -> None:
        kwargs = dict(
            mesh=mesh,
            fluid=fluid,
            trans=trans,
            gravity=gravity,
            dtype=dtype,
            reuse_buffers=reuse_buffers,
            vectorized=vectorized,
            compute_fluxes=compute_fluxes,
            overlap_compute=overlap_compute,
            pe_memory_reserved=pe_memory_reserved,
            remap=remap,
            ir=ir,
        )
        if pe_memory_bytes is not None:
            kwargs["pe_memory_bytes"] = pe_memory_bytes
        self.program = FluxProgram(**kwargs)
        self.mesh = mesh
        self.perf = perf
        self.trace = trace
        #: Streaming trace aggregation spanning every application of this
        #: computation (the runtime's reset() does not clear it because
        #: the driver owns it); None when tracing is off.
        self.trace_sink: TraceSink | None = (
            TraceSink(capacity=trace_capacity) if trace else None
        )
        #: Optional FaultInjector / progress-watchdog threshold threaded
        #: through to every EventRuntime this driver creates.
        self.faults = faults
        self.watchdog_cycles = watchdog_cycles
        #: Optional :class:`~repro.obs.replay.ReplayRecorder`; when set,
        #: every application's (pressure, residual) pair is digested into
        #: the replay artifact right after the gather.
        self.record = record
        self.last_runtime: EventRuntime | None = None

    # ------------------------------------------------------------------ #
    def run(self, pressures, *, keep_all: bool = False) -> WseRunResult:
        """Execute one application per pressure field in *pressures*.

        Parameters
        ----------
        pressures:
            Iterable of (nz, ny, nx) pressure fields (e.g. a
            :class:`~repro.core.PressureSequence`).
        keep_all:
            Keep every application's residual (memory permitting).
        """
        program = self.program
        program.fabric.reset_counters()
        total_cycles = 0.0
        applications = 0
        residuals: list[np.ndarray] = []
        residual = None
        totals = RuntimeStats()
        # one runtime serves every application: reset() clears the event
        # heap, clock, link-occupancy map and per-run stats without
        # rebuilding them per pressure field
        rt = EventRuntime(
            program.fabric,
            self.perf,
            trace_sink=self.trace_sink,
            faults=self.faults,
            watchdog_cycles=self.watchdog_cycles,
        )
        self.last_runtime = rt
        for pressure in pressures:
            with span("wse.application", backend="event") as sp:
                if applications:
                    rt.reset()
                with span("wse.load_pressure"):
                    program.load_pressure(np.ascontiguousarray(pressure))
                program.begin_application(rt)
                with span("wse.drain_events"):
                    rt.run()
                program.verify_deliveries()
                total_cycles += rt.now
                applications += 1
                totals.merge(rt.stats)
                with span("wse.gather_residual"):
                    residual = program.gather_residual()
                if self.record is not None:
                    self.record.record_step(pressure, residual)
                sp.set(
                    events=rt.stats.events_processed,
                    device_cycles=rt.now,
                )
                if keep_all:
                    residuals.append(residual.copy())
                for pe in program.fabric.pes():
                    pe.busy_until = 0.0
        if applications == 0:
            raise ValueError("no pressure fields supplied")
        fabric = program.fabric
        return WseRunResult(
            residual=residual,
            applications=applications,
            device_cycles=total_cycles,
            device_seconds=self.perf.seconds(total_cycles),
            compute_cycles=sum(pe.dsd.cycles for pe in fabric.pes()),
            instruction_counts=fabric.total_counts(),
            flops=fabric.total_flops(),
            fabric_word_hops=totals.fabric_word_hops,
            stats=totals,
            residuals=residuals,
        )

    def run_single(self, pressure: np.ndarray) -> WseRunResult:
        """Run one application of Algorithm 1."""
        return self.run([pressure])

    # ------------------------------------------------------------------ #
    def memory_high_water(self) -> int:
        """Largest PE scratchpad footprint (bytes) of the loaded program."""
        return self.program.fabric.max_memory_high_water()
