"""Matrix-free Jacobian action on the wafer-scale fabric (paper Sec. 8).

"The FV flux computation is naturally extendable to a matrix-free
operator FV operator for use in an iterative Krylov method which would
solve equation (2). ... the availability of a performant matrix-free FV
operator on the Cerebras architecture will be an important step."

This module builds that operator: the Jacobian action ``J @ v`` runs as
a distributed fabric program with the *same communication pattern* as
the flux kernel — each PE holds its Z column of ``v`` plus the
precomputed per-face derivative columns, exchanges ``v`` with its eight
X-Y neighbours over the cardinal/diagonal channels, and accumulates

    (J v)_K = A_K v_K - sum_L (dF/dp_K v_K + dF/dp_L v_L)

on arrival (A is the accumulation diagonal; the sign follows the
residual convention of :mod:`repro.solver.operators`).  Vertical
connections stay in PE memory.

Krylov-level reductions (dot products, norms) are performed by the host,
which is how a first CS-2 port would look: the fabric supplies matvecs,
the host runs the short recurrences.
"""

from __future__ import annotations

import numpy as np

from repro.core.stencil import (
    ALL_CONNECTIONS,
    Connection,
    XY_CONNECTIONS,
    interior_slices,
    opposite,
)
from repro.dataflow.cardinal import (
    CARDINAL_CHANNELS,
    is_step1_sender,
    switch_positions_for,
)
from repro.dataflow.diagonal import DIAGONAL_CHANNELS, static_position
from repro.solver.operators import FlowResidual, MatrixFreeJacobian
from repro.wse.color import ColorAllocator
from repro.wse.fabric import Fabric
from repro.wse.packet import KIND_CONTROL
from repro.wse.runtime import EventRuntime

__all__ = ["WseMatrixFreeJacobian"]


class WseMatrixFreeJacobian:
    """The implicit Jacobian action as a fabric program.

    Built from a host-side :class:`MatrixFreeJacobian` (which carries the
    analytic per-face derivatives at the current Newton iterate); every
    :meth:`matvec` call executes one full communication round on the
    event-driven simulator.

    Parameters
    ----------
    residual:
        The implicit residual operator (mesh, fluid, dt, trans).
    pressure:
        Linearization point ``p`` of the Newton iteration.
    """

    def __init__(self, residual: FlowResidual, pressure: np.ndarray) -> None:
        self.mesh = residual.mesh
        host = MatrixFreeJacobian(residual, pressure)
        self._host = host
        shape = self.mesh.shape_zyx
        nz = self.mesh.nz

        # Expand the face derivatives into full per-cell fields:
        # row K of face (K, L) carries -dk at K and -dl at L's column;
        # row L carries +dk at K's column and +dl at L.  Reorganize into
        # per-connection "coefficient of my v" (diag) and "coefficient of
        # the neighbour's v" (offd), both indexed at the owning cell.
        self._diag = np.array(
            np.broadcast_to(host._acc_diag, shape), dtype=np.float64
        )
        self._offd: dict[Connection, np.ndarray] = {
            conn: np.zeros(shape) for conn in ALL_CONNECTIONS
        }
        from repro.core.transmissibility import CANONICAL_CONNECTIONS

        for conn, (local, neigh, dk, dl) in zip(
            CANONICAL_CONNECTIONS, host._faces
        ):
            # row K (local): -dk * v_K  - dl * v_L
            self._diag[local] -= dk
            self._offd[conn][local] -= dl
            # row L (neigh): +dk * v_K  + dl * v_L
            self._diag[neigh] += dl
            self._offd[opposite(conn)][neigh] += dk

        # --- fabric setup: the flux kernel's channels, verbatim -------
        self.fabric = Fabric(self.mesh.nx, self.mesh.ny)
        self.colors = ColorAllocator()
        self._card_color = {}
        self._diag_color = {}
        w, h = self.fabric.width, self.fabric.height
        for channel in CARDINAL_CHANNELS:
            color = self.colors.allocate(channel.name)
            self._card_color[channel] = color
            self.fabric.configure_color(
                color,
                lambda c, _ch=channel: switch_positions_for(c, _ch, w, h)[0],
                initial_for=lambda c, _ch=channel: switch_positions_for(
                    c, _ch, w, h
                )[1],
            )
        for channel in DIAGONAL_CHANNELS:
            color = self.colors.allocate(channel.name)
            self._diag_color[channel] = color
            pos = static_position(channel)
            self.fabric.configure_color(color, lambda c, _p=pos: [_p])

        for pe in self.fabric.pes():
            x, y = pe.coord
            mem = pe.memory
            pe.state["v"] = mem.alloc_array("v", nz, np.float64)
            pe.state["out"] = mem.alloc_array("out", nz, np.float64)
            pe.state["recv"] = mem.alloc_array("recv", nz, np.float64)
            pe.state["tmp"] = mem.alloc_array("tmp", nz, np.float64)
            pe.state["diag"] = mem.alloc_array("diag", nz, np.float64)
            pe.state["diag"][:] = self._diag[:, y, x]
            offd = {}
            for conn in ALL_CONNECTIONS:
                col = mem.alloc_array(f"offd_{conn.name}", nz, np.float64)
                col[:] = self._offd[conn][:, y, x]
                offd[conn] = col
            pe.state["offd"] = offd
            pe.state["expected"] = sum(
                1
                for conn in XY_CONNECTIONS
                if self.fabric.contains(
                    (x + conn.offset[0], y + conn.offset[1])
                )
            )
        self._bind_tasks()
        self.matvec_count = 0
        self.total_device_cycles = 0.0

    # ------------------------------------------------------------------ #
    def _bind_tasks(self) -> None:
        for channel in CARDINAL_CHANNELS:
            color = self._card_color[channel]
            self.fabric.bind_all(
                color,
                lambda rt, pe, msg, _c=channel.delivers: self._on_data(pe, msg, _c),
            )
            self.fabric.bind_all(
                color,
                lambda rt, pe, msg, _ch=channel: self._maybe_send(rt, pe, _ch),
                control=True,
            )
        for channel in DIAGONAL_CHANNELS:
            color = self._diag_color[channel]
            self.fabric.bind_all(
                color,
                lambda rt, pe, msg, _c=channel.delivers: self._on_data(pe, msg, _c),
            )

    def _on_data(self, pe, msg, conn: Connection) -> None:
        recv, tmp, out = pe.state["recv"], pe.state["tmp"], pe.state["out"]
        pe.dsd.fmovs(recv, msg.payload, from_fabric=True)
        pe.dsd.fmuls(tmp, recv, pe.state["offd"][conn])
        pe.dsd.fadds(out, out, tmp)
        pe.state["received"] = pe.state.get("received", 0) + 1

    def _maybe_send(self, rt, pe, channel) -> None:
        color = self._card_color[channel]
        sent = pe.state.setdefault("sent", set())
        if color in sent:
            return
        sent.add(color)
        at = rt.pe_send_time(pe)
        rt.inject(pe.coord, color, pe.state["v"], at=at)
        rt.inject(pe.coord, color, kind=KIND_CONTROL, at=at)

    def _start_pe(self, rt, pe) -> None:
        start = max(rt.now, pe.busy_until)
        before = pe.dsd.cycles
        pe.exec_start = start
        pe.cycles_at_start = before

        v, out, tmp = pe.state["v"], pe.state["out"], pe.state["tmp"]
        offd = pe.state["offd"]
        nz = self.mesh.nz
        pe.dsd.fmuls(out, v, pe.state["diag"])
        if nz >= 2:
            # vertical neighbours live in PE memory
            pe.dsd.fmuls(tmp[: nz - 1], v[1:], offd[Connection.UP][: nz - 1])
            pe.dsd.fadds(out[: nz - 1], out[: nz - 1], tmp[: nz - 1])
            pe.dsd.fmuls(tmp[1:], v[: nz - 1], offd[Connection.DOWN][1:])
            pe.dsd.fadds(out[1:], out[1:], tmp[1:])

        at = rt.pe_send_time(pe)
        for channel in DIAGONAL_CHANNELS:
            rt.inject(pe.coord, self._diag_color[channel], v, at=at)
        w, h = self.fabric.width, self.fabric.height
        for channel in CARDINAL_CHANNELS:
            if is_step1_sender(pe.coord, channel, w, h):
                self._maybe_send(rt, pe, channel)
        pe.busy_until = start + (pe.dsd.cycles - before)

    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Unknown count."""
        return self.mesh.num_cells

    def matvec(self, v: np.ndarray) -> np.ndarray:
        """``J @ v`` computed by one fabric communication round."""
        v3 = np.asarray(v, dtype=np.float64).reshape(self.mesh.shape_zyx)
        for pe in self.fabric.pes():
            x, y = pe.coord
            pe.state["v"][:] = v3[:, y, x]
            pe.state["sent"] = set()
            pe.state["received"] = 0
        rt = EventRuntime(self.fabric)
        for pe in self.fabric.pes():
            rt.schedule(0.0, lambda _pe=pe, _rt=rt: self._start_pe(_rt, _pe))
        rt.run()
        out = np.zeros(self.mesh.shape_zyx)
        for pe in self.fabric.pes():
            if pe.state["received"] != pe.state["expected"]:
                raise RuntimeError(
                    f"PE {pe.coord}: {pe.state['received']} of "
                    f"{pe.state['expected']} v-columns arrived"
                )
            x, y = pe.coord
            out[:, y, x] = pe.state["out"]
            pe.busy_until = 0.0
        self.matvec_count += 1
        self.total_device_cycles += rt.now
        return out.reshape(np.asarray(v).shape)

    def diagonal(self) -> np.ndarray:
        """The Jacobian diagonal (host-side copy, for Jacobi scaling)."""
        return self._diag.copy()

    def __matmul__(self, v: np.ndarray) -> np.ndarray:
        return self.matvec(v)
