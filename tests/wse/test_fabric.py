"""Unit tests for the fabric (PE + router grid)."""

import numpy as np
import pytest

from repro.wse.fabric import WSE2_MAX_FABRIC, Fabric
from repro.wse.geometry import Port
from repro.wse.packet import Message


class TestConstruction:
    def test_dimensions(self):
        f = Fabric(4, 3)
        assert f.width == 4
        assert f.height == 3
        assert f.num_pes == 12

    def test_pe_and_router_lookup(self):
        f = Fabric(2, 2)
        pe = f.pe(1, 0)
        assert pe.coord == (1, 0)
        assert f.router(1, 0).coord == (1, 0)

    def test_out_of_range(self):
        f = Fabric(2, 2)
        with pytest.raises(IndexError):
            f.pe(2, 0)
        with pytest.raises(IndexError):
            f.router(0, -1)

    def test_contains(self):
        f = Fabric(3, 2)
        assert f.contains((2, 1))
        assert not f.contains((3, 0))

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            Fabric(0, 3)

    def test_rejects_oversized(self):
        w, h = WSE2_MAX_FABRIC
        with pytest.raises(ValueError, match="usable WSE-2 fabric"):
            Fabric(w + 1, h)

    def test_max_fabric_constant(self):
        assert WSE2_MAX_FABRIC == (750, 994)

    def test_pes_iteration_row_major(self):
        f = Fabric(2, 2)
        coords = [pe.coord for pe in f.pes()]
        assert coords == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_per_pe_memory_configurable(self):
        f = Fabric(1, 1, pe_memory_bytes=1000, pe_memory_reserved=100)
        pe = f.pe(0, 0)
        assert pe.memory.capacity == 1000
        assert pe.memory.used == 100

    def test_vectorized_flag_propagates(self):
        f = Fabric(1, 1, vectorized=False)
        assert not f.pe(0, 0).dsd.vectorized


class TestColorConfiguration:
    def test_configure_all(self):
        f = Fabric(2, 2)
        f.configure_color(0, lambda coord: [{Port.RAMP: (Port.EAST,)}])
        for y in range(2):
            for x in range(2):
                assert f.router(x, y).routes(0, Port.RAMP) == (Port.EAST,)

    def test_selective_configuration(self):
        f = Fabric(2, 1)
        f.configure_color(
            0,
            lambda coord: [{Port.RAMP: (Port.EAST,)}] if coord == (0, 0) else None,
        )
        assert f.router(0, 0).routes(0, Port.RAMP) == (Port.EAST,)
        assert f.router(1, 0).routes(0, Port.RAMP) == ()

    def test_initial_position_callback(self):
        f = Fabric(2, 1)
        positions = [{Port.RAMP: (Port.EAST,)}, {Port.WEST: (Port.RAMP,)}]
        f.configure_color(
            0,
            lambda coord: positions,
            initial_for=lambda coord: coord[0] % 2,
        )
        assert f.router(0, 0).position(0) == 0
        assert f.router(1, 0).position(0) == 1


class TestBindAll:
    def test_data_binding(self):
        f = Fabric(2, 1)
        hits = []
        f.bind_all(0, lambda rt, pe, msg: hits.append(pe.coord))
        msg = Message(color=0, payload=np.zeros(1, dtype=np.float32))
        f.pe(0, 0).handler_for(msg)(None, f.pe(0, 0), msg)
        assert hits == [(0, 0)]

    def test_control_binding_separate(self):
        from repro.wse.packet import KIND_CONTROL

        f = Fabric(1, 1)
        f.bind_all(0, lambda rt, pe, msg: None)
        f.bind_all(0, lambda rt, pe, msg: None, control=True)
        pe = f.pe(0, 0)
        ctrl = Message(color=0, kind=KIND_CONTROL)
        assert pe.handler_for(ctrl) is not None


class TestAggregates:
    def test_total_counts_and_flops(self):
        f = Fabric(2, 1)
        f.pe(0, 0).dsd.fmuls(np.empty(3), 1.0, 2.0)
        f.pe(1, 0).dsd.fmacs(np.empty(2), 1.0, 2.0, 3.0)
        totals = f.total_counts()
        assert totals == {"FMUL": 3, "FMA": 2}
        assert f.total_flops() == 3 + 4

    def test_memory_high_water(self):
        f = Fabric(2, 1, pe_memory_bytes=1024)
        f.pe(1, 0).memory.alloc_array("x", 32, np.float32)
        assert f.max_memory_high_water() == 128

    def test_reset_counters(self):
        f = Fabric(1, 1)
        pe = f.pe(0, 0)
        pe.dsd.fmuls(np.empty(2), 1.0, 2.0)
        pe.busy_until = 99.0
        pe.messages_received = 5
        f.reset_counters()
        assert pe.dsd.flops == 0
        assert pe.busy_until == 0.0
        assert pe.messages_received == 0
