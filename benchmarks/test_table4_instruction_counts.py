"""Table 4 — instruction and memory access counts for one mesh cell.

Paper:

    Operation  FLOP  Mem. traffic      Fabric traffic
    60 FMUL    1     2 loads, 1 store  --
    40 FSUB    1     2 loads, 1 store  --
    10 FNEG    1     1 load, 1 store   --
    10 FADD    1     2 loads, 1 store  --
    10 FMA     2     3 loads, 1 store  --
    16 FMOV    0     1 store           1 load

plus the Sec. 7.3 derived totals: 14 FLOPs/flux, 140 FLOPs/cell, 406
memory accesses, 16 fabric loads, AI 0.0862 (memory) / 2.1875 (fabric).

Everything below is *measured* by executing the DSD kernel, then
cross-checked against an end-to-end event-driven run (the interior PE of
a 3x3 fabric receives exactly 8 neighbour columns -> 16 FMOV per cell).
"""

import numpy as np
import pytest

from repro.core import CartesianMesh3D, FluidProperties, random_pressure
from repro.dataflow import WseFluxComputation, interior_cell_table
from repro.dataflow.instrcount import measure_flux_instruction_mix
from repro.util.reporting import Table

PAPER_COUNTS = {"FMUL": 60, "FSUB": 40, "FNEG": 10, "FADD": 10, "FMA": 10, "FMOV": 16}


def test_reproduce_table4(report, benchmark):
    table4 = benchmark(interior_cell_table)
    table = Table(
        "Table 4 — instruction and memory access counts per mesh cell",
        ["Operation", "Count", "FLOP", "Mem. traffic", "Fabric traffic", "Paper count"],
    )
    for row in table4.rows:
        table.add_row(
            [
                row.op,
                row.count,
                row.flops_per_op,
                row.mem_traffic_label,
                f"{row.fabric_loads} load" if row.fabric_loads else "--",
                PAPER_COUNTS[row.op],
            ]
        )
    table.add_note(
        f"FLOPs/cell = {table4.flops_per_cell} (paper 140); "
        f"memory accesses = {table4.memory_accesses_per_cell} (paper 406); "
        f"fabric loads = {table4.fabric_loads_per_cell} (paper 16)"
    )
    table.add_note(
        f"AI memory = {table4.arithmetic_intensity_memory:.4f} (paper 0.0862); "
        f"AI fabric = {table4.arithmetic_intensity_fabric:.4f} (paper 2.1875)"
    )
    report(table.render())

    for row in table4.rows:
        assert row.count == PAPER_COUNTS[row.op], row.op
    assert table4.flops_per_cell == 140
    assert table4.memory_accesses_per_cell == 406
    assert table4.fabric_loads_per_cell == 16


def test_event_sim_interior_cell_counts(benchmark):
    """Cross-check: the centre PE of a 3x3 fabric measures Table 4's
    per-cell counts directly from the full protocol execution."""
    nz = 16
    mesh = CartesianMesh3D(3, 3, nz)
    fluid = FluidProperties()
    wse = WseFluxComputation(mesh, fluid, dtype=np.float32)
    pressure = random_pressure(mesh, seed=0, dtype=np.float32)
    benchmark(lambda: wse.run_single(pressure))
    centre = wse.program.fabric.pe(1, 1)
    counts = centre.dsd.counts
    # 8 X-Y directions at nz faces + 2 vertical at (nz - 1) faces
    fluxes = 8 * nz + 2 * (nz - 1)
    assert counts["FMUL"] == 6 * fluxes
    assert counts["FSUB"] == 4 * fluxes
    assert counts["FMA"] == fluxes
    # fabric receives: 8 neighbours x 2 words per cell
    assert counts["FMOV"] == 16 * nz


def test_instrumented_kernel_overhead(benchmark):
    """Benchmark the instrumented measurement itself (it is cheap)."""
    benchmark(lambda: measure_flux_instruction_mix(n=256))
