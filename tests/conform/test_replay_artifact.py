"""Replay artifact container: byte-stability, schema, snapshot policy."""

import json
import zipfile

import numpy as np
import pytest

from repro.conform import record_run
from repro.core import CartesianMesh3D, FluidProperties, random_pressure
from repro.dataflow import WseFluxComputation
from repro.obs.replay import (
    ARTIFACT_KIND,
    SCHEMA_VERSION,
    ReplayArtifact,
    ReplayRecorder,
    digest_array,
)


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    art = record_run("cluster", nx=4, ny=4, nz=3, applications=2)
    path = art.save(tmp_path_factory.mktemp("rpz") / "run.rpz")
    return art, path


class TestDigest:
    def test_covers_bits_not_values(self):
        a = np.asarray([0.0])
        b = np.asarray([-0.0])
        assert a[0] == b[0]
        assert digest_array(a) != digest_array(b)

    def test_covers_dtype_and_shape(self):
        a = np.zeros(4, dtype=np.float64)
        assert digest_array(a) != digest_array(a.astype(np.float32))
        assert digest_array(a) != digest_array(a.reshape(2, 2))

    def test_layout_independent(self):
        a = np.arange(12.0).reshape(3, 4)
        assert digest_array(a.T) == digest_array(np.ascontiguousarray(a.T))


class TestContainer:
    def test_save_load_save_byte_identical(self, recorded, tmp_path):
        art, path = recorded
        again = ReplayArtifact.load(path).save(tmp_path / "again.rpz")
        assert again.read_bytes() == path.read_bytes()

    def test_re_record_byte_identical(self, recorded, tmp_path):
        art, path = recorded
        fresh = record_run("cluster", nx=4, ny=4, nz=3, applications=2)
        fresh_path = fresh.save(tmp_path / "fresh.rpz")
        assert fresh_path.read_bytes() == path.read_bytes()

    def test_loaded_snapshots_bit_identical(self, recorded):
        art, path = recorded
        loaded = ReplayArtifact.load(path)
        for index, snap in art.snapshots.items():
            assert np.array_equal(loaded.snapshot(index), snap)
            assert loaded.snapshot(index).dtype == snap.dtype

    def test_meta_round_trips(self, recorded):
        art, path = recorded
        loaded = ReplayArtifact.load(path)
        assert loaded.meta == art.meta
        assert loaded.schema == SCHEMA_VERSION
        assert loaded.backend == "cluster"
        assert loaded.applications == 2

    def test_rejects_foreign_zip(self, tmp_path):
        path = tmp_path / "not-an-artifact.rpz"
        with zipfile.ZipFile(path, "w") as zf:
            zf.writestr("meta.json", json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError, match="not a replay artifact"):
            ReplayArtifact.load(path)

    def test_rejects_newer_schema(self, recorded, tmp_path):
        art, _ = recorded
        future = ReplayArtifact(
            meta={**art.meta, "schema": SCHEMA_VERSION + 1},
            snapshots=art.snapshots,
        )
        path = future.save(tmp_path / "future.rpz")
        with pytest.raises(ValueError, match="schema"):
            ReplayArtifact.load(path)

    def test_config_fingerprint_tracks_inputs(self, recorded):
        art, _ = recorded
        other = record_run("cluster", nx=4, ny=4, nz=3, applications=2,
                           seed=1)
        assert (
            other.meta["config_fingerprint"]
            != art.meta["config_fingerprint"]
        )

    def test_kind_marker_present(self, recorded):
        art, _ = recorded
        assert art.meta["kind"] == ARTIFACT_KIND


class TestRecorder:
    def _run(self, recorder, applications=4):
        mesh = CartesianMesh3D(3, 2, 3)
        wse = WseFluxComputation(
            mesh, FluidProperties(), record=recorder
        )
        wse.run(
            [random_pressure(mesh, seed=i) for i in range(applications)]
        )

    def test_sparse_snapshots_keep_final_step(self):
        # 4 steps with snapshot_every=3 keep steps 0 and 3: the cadence
        # gives 0, and finalize promotes the final step so cell-level
        # diffs always have an anchor
        recorder = ReplayRecorder(
            {"backend": "event", "mesh": {"nx": 3, "ny": 2, "nz": 3}},
            snapshot_every=3,
        )
        self._run(recorder, applications=4)
        art = recorder.finalize()
        assert sorted(art.snapshots) == [0, 3]
        assert [s["snapshot"] for s in art.steps] == [
            True, False, False, True,
        ]
        assert digest_array(art.snapshot(3)) == (
            art.steps[3]["residual_sha256"]
        )

    def test_dense_snapshots_every_step(self):
        recorder = ReplayRecorder({"backend": "event", "mesh": {}})
        self._run(recorder, applications=3)
        art = recorder.finalize()
        assert sorted(art.snapshots) == [0, 1, 2]

    def test_rejects_empty_recording(self):
        with pytest.raises(ValueError, match="no steps"):
            ReplayRecorder({}).finalize()

    def test_rejects_bad_cadence(self):
        with pytest.raises(ValueError):
            ReplayRecorder({}, snapshot_every=0)

    def test_ring_wraparound_while_recording(self, tmp_path):
        # a tiny trace ring forced to wrap during a recorded run: the
        # aggregates stay consistent and the artifact stays byte-stable
        def run_once():
            mesh = CartesianMesh3D(4, 4, 3)
            recorder = ReplayRecorder(
                {"backend": "event", "mesh": {"nx": 4, "ny": 4, "nz": 3}}
            )
            wse = WseFluxComputation(
                mesh, FluidProperties(),
                trace=True, trace_capacity=8, record=recorder,
            )
            wse.run([random_pressure(mesh, seed=i) for i in range(2)])
            sink = wse.trace_sink
            assert sink.deliveries > 8  # the ring definitely wrapped
            assert len(sink.ring) == 8
            return recorder.finalize(trace=sink.as_dict())

        first = run_once().save(tmp_path / "a.rpz")
        second = run_once().save(tmp_path / "b.rpz")
        assert first.read_bytes() == second.read_bytes()
        trace = ReplayArtifact.load(first).meta["trace"]
        assert trace is not None
