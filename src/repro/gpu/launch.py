"""Threadblock/tile decomposition of a kernel launch.

The reference kernels launch 3D threadblocks of 1024 threads tiled
``16 x 8 x 8`` with 16 along the innermost (X) dimension (paper Sec. 6).
:class:`TiledLaunch` computes the grid, iterates tile index ranges, and
intersects a tile with a stencil direction's interior region — the
building blocks both the RAJA-like and the CUDA-like kernels share.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.core.stencil import Connection, interior_slices

__all__ = ["TiledLaunch", "Tile", "PAPER_TILE"]

#: The paper's threadblock tiling (X, Y, Z) = (16, 8, 8).
PAPER_TILE = (16, 8, 8)


@dataclass(frozen=True)
class Tile:
    """One threadblock's cell range, as (z, y, x) slices."""

    zs: slice
    ys: slice
    xs: slice
    block_index: tuple[int, int, int]

    @property
    def slices(self) -> tuple[slice, slice, slice]:
        """Index tuple into (nz, ny, nx) fields."""
        return (self.zs, self.ys, self.xs)

    @property
    def num_cells(self) -> int:
        """Cells covered by this tile (after mesh clamping)."""
        return (
            (self.zs.stop - self.zs.start)
            * (self.ys.stop - self.ys.start)
            * (self.xs.stop - self.xs.start)
        )


@dataclass(frozen=True)
class TiledLaunch:
    """A 3D tiled kernel launch over an ``(nz, ny, nx)`` mesh.

    Parameters
    ----------
    shape_zyx:
        Mesh storage shape.
    tile_xyz:
        Threads per block along (X, Y, Z); the product must not exceed
        1024 (the GPU block-size limit the paper respects).
    clamp:
        When True (RAJA-style) tiles are clamped to the mesh before
        execution; when False the launch enumerates full tiles and the
        kernel must bounds-check each lane (CUDA-style).
    """

    shape_zyx: tuple[int, int, int]
    tile_xyz: tuple[int, int, int] = PAPER_TILE
    clamp: bool = True

    def __post_init__(self) -> None:
        tx, ty, tz = self.tile_xyz
        if tx < 1 or ty < 1 or tz < 1:
            raise ValueError("tile dimensions must be positive")
        if tx * ty * tz > 1024:
            raise ValueError(
                f"tile {self.tile_xyz} has {tx * ty * tz} threads; the GPU "
                "limit is 1024 threads per block"
            )

    @property
    def threads_per_block(self) -> int:
        """Threads per block (<= 1024)."""
        tx, ty, tz = self.tile_xyz
        return tx * ty * tz

    @property
    def grid_dims(self) -> tuple[int, int, int]:
        """Blocks along (X, Y, Z)."""
        nz, ny, nx = self.shape_zyx
        tx, ty, tz = self.tile_xyz
        return (
            math.ceil(nx / tx),
            math.ceil(ny / ty),
            math.ceil(nz / tz),
        )

    @property
    def num_blocks(self) -> int:
        """Total threadblocks in the launch."""
        gx, gy, gz = self.grid_dims
        return gx * gy * gz

    def describe(self) -> dict:
        """Launch geometry as span/report arguments (plain scalars)."""
        gx, gy, gz = self.grid_dims
        return {
            "grid": f"{gx}x{gy}x{gz}",
            "blocks": self.num_blocks,
            "threads_per_block": self.threads_per_block,
            "clamp": self.clamp,
        }

    def tiles(self) -> Iterator[Tile]:
        """Enumerate every threadblock's cell range.

        With ``clamp=True`` ranges are pre-clipped to the mesh; otherwise
        full tile extents are yielded and callers must mask out-of-range
        lanes (the CUDA kernel's explicit boundary check).
        """
        nz, ny, nx = self.shape_zyx
        tx, ty, tz = self.tile_xyz
        gx, gy, gz = self.grid_dims
        for bz in range(gz):
            for by in range(gy):
                for bx in range(gx):
                    x0, y0, z0 = bx * tx, by * ty, bz * tz
                    if self.clamp:
                        yield Tile(
                            zs=slice(z0, min(z0 + tz, nz)),
                            ys=slice(y0, min(y0 + ty, ny)),
                            xs=slice(x0, min(x0 + tx, nx)),
                            block_index=(bx, by, bz),
                        )
                    else:
                        yield Tile(
                            zs=slice(z0, z0 + tz),
                            ys=slice(y0, y0 + ty),
                            xs=slice(x0, x0 + tx),
                            block_index=(bx, by, bz),
                        )

    # ------------------------------------------------------------------ #
    def tile_direction_views(
        self, tile: Tile, conn: Connection
    ) -> tuple[tuple[slice, slice, slice], tuple[slice, slice, slice]] | None:
        """Restrict a stencil direction to one tile.

        Returns ``(local, neighbour)`` absolute index tuples covering the
        tile's cells that have a *conn* neighbour, or None when the tile
        contains no such cell.  ``field[local]`` are the tile's cells,
        ``field[neighbour]`` their neighbours (which may live in another
        tile — device memory is shared among all threads, Sec. 6).
        """
        region, _ = interior_slices(self.shape_zyx, conn)
        dx, dy, dz = conn.offset
        out_local = []
        out_neigh = []
        for t, r, d, n in (
            (tile.zs, region[0], dz, self.shape_zyx[0]),
            (tile.ys, region[1], dy, self.shape_zyx[1]),
            (tile.xs, region[2], dx, self.shape_zyx[2]),
        ):
            lo = max(t.start, r.start if r.start is not None else 0)
            hi = min(t.stop, r.stop if r.stop is not None else n)
            hi = min(hi, n)
            if lo >= hi:
                return None
            out_local.append(slice(lo, hi))
            out_neigh.append(slice(lo + d, hi + d))
        return tuple(out_local), tuple(out_neigh)
