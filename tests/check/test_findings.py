"""Finding/report model: severities, rendering, exit codes."""

from repro.check import CheckReport, Finding, Severity


def _finding(severity=Severity.ERROR, **kwargs):
    defaults = dict(
        code="deadlock-cycle",
        severity=severity,
        message="cycle",
        coord=(3, 4),
        color=2,
        color_name="diag_se",
        port="EAST",
        detail="cycle: (3,4)->EAST -> (4,4)->WEST",
    )
    defaults.update(kwargs)
    return Finding(**defaults)


class TestFinding:
    def test_severity_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO

    def test_render_names_coordinates_color_and_port(self):
        text = _finding().render()
        for needle in ("ERROR", "deadlock-cycle", "(3, 4)", "EAST", "diag_se"):
            assert needle in text

    def test_render_lint_findings_use_file_line(self):
        text = _finding(
            coord=None, color=None, color_name=None, port=None,
            code="det-unseeded-rng", file="src/x.py", line=12,
        ).render()
        assert "src/x.py:12" in text

    def test_as_dict_round_trips_the_coordinate(self):
        d = _finding().as_dict()
        assert d["coord"] == [3, 4]
        assert d["severity"] == "ERROR"
        assert d["color_name"] == "diag_se"


class TestCheckReport:
    def test_ok_and_exit_code_gate_on_errors_only(self):
        report = CheckReport()
        report.add(_finding(Severity.INFO))
        report.add(_finding(Severity.WARNING))
        assert report.ok and report.exit_code == 0
        report.add(_finding(Severity.ERROR))
        assert not report.ok and report.exit_code == 1

    def test_counts(self):
        report = CheckReport()
        for sev in (Severity.ERROR, Severity.ERROR, Severity.INFO):
            report.add(_finding(sev))
        assert report.counts() == {"ERROR": 2, "WARNING": 0, "INFO": 1}

    def test_extend_accepts_reports_and_lists(self):
        a = CheckReport()
        a.extend([_finding()])
        b = CheckReport()
        b.extend(a)
        assert len(b.findings) == 1

    def test_render_sorts_errors_first_and_states_verdict(self):
        report = CheckReport(subject="unit")
        report.add(_finding(Severity.INFO, code="offchip-exit"))
        report.add(_finding(Severity.ERROR))
        lines = report.render().splitlines()
        assert lines[0] == "check: unit"
        assert "ERROR" in lines[1]
        assert "FAIL" in lines[-1]
