"""In-process unit tests for ProcComm's publication protocol.

Both endpoints run in this process over one arena — the protocol logic
(sequence publication, skew detection, stats) is independent of which
process executes which rank.
"""

import numpy as np
import pytest

from repro.core import CartesianMesh3D
from repro.cluster.comm import CartGrid
from repro.cluster.decomposition import BlockDecomposition
from repro.faults.errors import CommTimeoutError
from repro.par.comm import ProcComm
from repro.par.layout import HaloLayout
from repro.par.shm import SharedArena


@pytest.fixture()
def world():
    mesh = CartesianMesh3D(8, 4, 2)
    decomp = BlockDecomposition(mesh, 2, 1)
    grid = CartGrid(2, 1)
    layout = HaloLayout.from_decomposition(decomp, grid)
    arena = SharedArena(layout, create=True)
    yield layout, arena
    arena.close()


def make_comm(layout, arena, ranks=(0, 1), **kwargs):
    kwargs.setdefault("busy_spins", 10)
    kwargs.setdefault("sleep_seconds", 1e-6)
    kwargs.setdefault("max_sleeps", 50)
    return ProcComm(layout, arena, ranks=ranks, **kwargs)


class TestProcComm:
    def test_send_recv_roundtrip(self, world):
        layout, arena = world
        comm = make_comm(layout, arena)
        link = layout.links[0]
        data = np.arange(float(link.cells(2))).reshape(
            2, *link.shape_yx
        )
        comm.isend(link.source, link.dest, link.tag, data)
        out = comm.recv(link.dest, link.source, link.tag)
        np.testing.assert_array_equal(out, data)
        assert not out.flags.writeable
        assert comm.pending == 0

    def test_traffic_accounting(self, world):
        layout, arena = world
        comm = make_comm(layout, arena)
        link = layout.links[0]
        data = np.zeros((2, *link.shape_yx))
        comm.isend(link.source, link.dest, link.tag, data)
        comm.recv(link.dest, link.source, link.tag)
        assert comm.stats[link.source].messages_sent == 1
        assert comm.stats[link.source].bytes_sent == data.nbytes
        assert comm.stats[link.dest].messages_received == 1
        assert comm.total_messages() == 1
        assert comm.total_bytes(side="received") == data.nbytes

    def test_double_send_same_link_rejected(self, world):
        layout, arena = world
        comm = make_comm(layout, arena)
        link = layout.links[0]
        data = np.zeros((2, *link.shape_yx))
        comm.isend(link.source, link.dest, link.tag, data)
        with pytest.raises(RuntimeError, match="unmatched"):
            comm.isend(link.source, link.dest, link.tag, data)

    def test_recv_without_send_times_out_as_deadlock(self, world):
        layout, arena = world
        comm = make_comm(layout, arena)
        link = layout.links[0]
        with pytest.raises(CommTimeoutError, match="deadlock"):
            comm.recv(link.dest, link.source, link.tag)
        assert comm.stats[link.dest].retry_waits > 0
        assert comm.waited_seconds > 0

    def test_sequence_advances_per_exchange(self, world):
        layout, arena = world
        comm = make_comm(layout, arena)
        link = layout.links[0]
        key = (link.source, link.dest, link.tag)
        data = np.zeros((2, *link.shape_yx))
        for exchange in range(3):
            comm.isend(link.source, link.dest, link.tag, data)
            comm.recv(link.dest, link.source, link.tag)
            comm.complete_exchange()
            assert arena.seq(key, exchange % 2) == exchange + 1
        assert comm.exchange_index == 3

    def test_stale_header_is_sequence_skew(self, world):
        layout, arena = world
        comm = make_comm(layout, arena)
        link = layout.links[0]
        arena.set_seq((link.source, link.dest, link.tag), 0, 7)
        with pytest.raises(RuntimeError, match="sequence skew"):
            comm.isend(
                link.source, link.dest, link.tag,
                np.zeros((2, *link.shape_yx)),
            )

    def test_start_exchange_resumes_midstream(self, world):
        layout, arena = world
        arena.reset_seqs(4)
        comm = make_comm(layout, arena, start_exchange=4)
        link = layout.links[0]
        data = np.ones((2, *link.shape_yx))
        comm.isend(link.source, link.dest, link.tag, data)
        assert arena.seq((link.source, link.dest, link.tag), 0) == 5
        np.testing.assert_array_equal(
            comm.recv(link.dest, link.source, link.tag), data
        )

    def test_parity_slots_tolerate_one_exchange_drift(self, world):
        """A sender may publish exchange k+1 before the receiver absorbed
        exchange k — the even/odd slots keep both strips intact."""
        layout, arena = world
        sender = make_comm(layout, arena)
        receiver = make_comm(layout, arena)
        link = layout.links[0]
        first = np.full((2, *link.shape_yx), 1.0)
        second = np.full((2, *link.shape_yx), 2.0)
        sender.isend(link.source, link.dest, link.tag, first)
        sender.complete_exchange()  # sender races one exchange ahead
        sender.isend(link.source, link.dest, link.tag, second)
        # the lagging receiver still reads exchange 0's bytes untouched
        np.testing.assert_array_equal(
            receiver.recv(link.dest, link.source, link.tag), first
        )
        receiver.complete_exchange()
        np.testing.assert_array_equal(
            receiver.recv(link.dest, link.source, link.tag), second
        )

    def test_delayed_header_lands_via_sleeping_spin_path(self, world):
        """A header published long after recv starts spinning is picked
        up on the sleeping-spin path (not the busy-spin fast path) —
        driven through the heartbeat callback, which fires every 64
        sleeps, i.e. only once the receiver is deep into its wait."""
        layout, arena = world
        link = layout.links[0]
        key = (link.source, link.dest, link.tag)
        data = np.full((2, *link.shape_yx), 3.5)

        def publish_late():
            np.copyto(arena.payload(key, 0), data)
            arena.set_seq(key, 0, 1)

        receiver = make_comm(
            layout, arena, busy_spins=2, max_sleeps=200,
            heartbeat=publish_late,
        )
        out = receiver.recv(link.dest, link.source, link.tag)
        np.testing.assert_array_equal(out, data)
        # the wait really went through the sleep loop up to the first
        # heartbeat, not the busy-spin prefix
        assert receiver.stats[link.dest].retry_waits >= 64

    def test_delayed_header_from_the_future_is_sequence_skew(self, world):
        """A header that appears mid-spin with a *future* sequence (the
        sender raced two exchanges ahead into this parity slot) must
        fail the exact-match check as sequence skew, not be consumed."""
        layout, arena = world
        link = layout.links[0]
        key = (link.source, link.dest, link.tag)

        def publish_skewed():
            arena.set_seq(key, 0, 2)  # receiver expects exactly 1

        receiver = make_comm(
            layout, arena, busy_spins=2, max_sleeps=200,
            heartbeat=publish_skewed,
        )
        with pytest.raises(RuntimeError, match="sequence skew"):
            receiver.recv(link.dest, link.source, link.tag)

    def test_rank_bounds(self, world):
        layout, arena = world
        comm = make_comm(layout, arena)
        with pytest.raises(ValueError, match="outside communicator"):
            comm.isend(0, 99, 0, np.zeros(1))

    def test_barrier_is_noop(self, world):
        layout, arena = world
        comm = make_comm(layout, arena)
        comm.barrier("any phase")  # must not raise
