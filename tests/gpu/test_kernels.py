"""Tests for the RAJA-like / CUDA-like kernel front-ends and the
end-to-end GPU flux computation."""

import numpy as np
import pytest

from repro.core import (
    CartesianMesh3D,
    FluidProperties,
    PressureSequence,
    Transmissibility,
    compute_flux_residual,
    random_pressure,
)
from repro.gpu import GpuFluxComputation, KernelPolicy, cuda_kernel, raja_kernel
from repro.gpu.raja import PAPER_POLICY
from repro.workloads import make_geomodel


class TestRajaFrontend:
    def test_paper_policy(self):
        assert PAPER_POLICY.tile_xyz == (16, 8, 8)
        assert PAPER_POLICY.block_size == 1024
        assert PAPER_POLICY.thread_policies == (
            "cuda_thread_z_loop",
            "cuda_thread_y_loop",
            "cuda_thread_x_loop",
        )

    def test_kernel_executes_every_tile(self):
        seen = []
        record = raja_kernel((5, 5, 5), seen.append, policy=KernelPolicy((4, 4, 4)))
        assert record.tiles_executed == len(seen) == 8
        assert record.threads_per_block == 64

    def test_rejects_oversized_policy(self):
        with pytest.raises(ValueError, match="1024"):
            raja_kernel((4, 4, 4), lambda t: None, policy=KernelPolicy((32, 8, 8)))


class TestCudaFrontend:
    def test_manual_grid_dims(self):
        record = cuda_kernel((10, 9, 17), lambda t: None, tile_xyz=(16, 8, 8))
        assert (record.grid.x, record.grid.y, record.grid.z) == (2, 2, 2)
        assert record.block.total == 1024

    def test_boundary_lanes_masked(self):
        """17x9x10 mesh in 16x8x8 tiles: lanes beyond the grid are masked."""
        record = cuda_kernel((10, 9, 17), lambda t: None, tile_xyz=(16, 8, 8))
        total_lanes = record.grid.x * record.grid.y * record.grid.z * 1024
        assert record.lanes_masked_out == total_lanes - 10 * 9 * 17

    def test_exact_mesh_no_masking(self):
        record = cuda_kernel((8, 8, 16), lambda t: None, tile_xyz=(16, 8, 8))
        assert record.lanes_masked_out == 0

    def test_body_receives_clipped_tiles(self):
        cells = []
        cuda_kernel((5, 5, 5), lambda t: cells.append(t.num_cells), tile_xyz=(4, 4, 4))
        assert sum(cells) == 125


class TestGpuFluxComputation:
    @pytest.fixture(scope="class")
    def problem(self):
        mesh = make_geomodel(18, 11, 7, kind="lognormal", seed=8)
        fluid = FluidProperties()
        trans = Transmissibility(mesh)
        p = random_pressure(mesh, seed=8)
        ref = compute_flux_residual(mesh, fluid, p, trans)
        return mesh, fluid, trans, p, ref

    @pytest.mark.parametrize("variant", ["raja", "cuda"])
    def test_matches_reference_float64(self, problem, variant):
        mesh, fluid, trans, p, ref = problem
        gpu = GpuFluxComputation(
            mesh, fluid, trans, variant=variant, dtype=np.float64
        )
        result = gpu.run_single(p)
        scale = np.abs(ref).max()
        np.testing.assert_allclose(result.residual, ref, atol=1e-12 * scale)

    def test_variants_agree_exactly(self, problem):
        """RAJA and CUDA launches execute identical tile math."""
        mesh, fluid, trans, p, _ = problem
        a = GpuFluxComputation(mesh, fluid, trans, variant="raja", dtype=np.float64)
        b = GpuFluxComputation(mesh, fluid, trans, variant="cuda", dtype=np.float64)
        np.testing.assert_array_equal(
            a.run_single(p).residual, b.run_single(p).residual
        )

    def test_float32(self, problem):
        mesh, fluid, trans, p, ref = problem
        gpu = GpuFluxComputation(mesh, fluid, trans, dtype=np.float32)
        result = gpu.run_single(p)
        scale = np.abs(ref).max()
        np.testing.assert_allclose(result.residual, ref, atol=5e-4 * scale)

    def test_non_paper_tile(self, problem):
        mesh, fluid, trans, p, ref = problem
        gpu = GpuFluxComputation(
            mesh, fluid, trans, tile_xyz=(8, 4, 4), dtype=np.float64
        )
        result = gpu.run_single(p)
        scale = np.abs(ref).max()
        np.testing.assert_allclose(result.residual, ref, atol=1e-12 * scale)

    def test_multiple_applications(self, problem):
        mesh, fluid, trans, _, _ = problem
        seq = PressureSequence(mesh, num_applications=3, seed=2)
        gpu = GpuFluxComputation(mesh, fluid, trans, dtype=np.float64)
        result = gpu.run(seq)
        assert result.applications == 3
        assert result.kernel_launches == 6  # density + flux per application
        ref = compute_flux_residual(mesh, fluid, seq.field(2), trans)
        scale = np.abs(ref).max()
        np.testing.assert_allclose(result.residual, ref, atol=1e-12 * scale)

    def test_transfer_accounting(self, problem):
        mesh, fluid, trans, p, _ = problem
        gpu = GpuFluxComputation(mesh, fluid, trans, dtype=np.float32)
        result = gpu.run_single(p)
        field_bytes = mesh.num_cells * 4
        # static upload: elevation + 10 trans; per app: pressure; final: residual
        assert result.transfers.h2d_bytes == field_bytes * (11 + 1)
        assert result.transfers.d2h_bytes == field_bytes

    def test_flops_near_140_per_cell(self, problem):
        mesh, fluid, trans, p, _ = problem
        gpu = GpuFluxComputation(mesh, fluid, trans, dtype=np.float64)
        result = gpu.run_single(p)
        assert 100 < result.flops_per_cell <= 140

    def test_occupancy_attached(self, problem):
        mesh, fluid, trans, p, _ = problem
        gpu = GpuFluxComputation(mesh, fluid, trans, dtype=np.float32)
        assert gpu.run_single(p).occupancy.theoretical_occupancy == 0.5

    def test_rejects_unknown_variant(self, problem):
        mesh, fluid, trans, _, _ = problem
        with pytest.raises(ValueError, match="variant"):
            GpuFluxComputation(mesh, fluid, trans, variant="opencl")

    def test_empty_run_rejected(self, problem):
        mesh, fluid, trans, _, _ = problem
        gpu = GpuFluxComputation(mesh, fluid, trans)
        with pytest.raises(ValueError):
            gpu.run([])

    def test_single_cell_mesh(self, fluid):
        mesh = CartesianMesh3D(1, 1, 1)
        gpu = GpuFluxComputation(mesh, fluid, dtype=np.float64)
        result = gpu.run_single(mesh.full(1e7))
        np.testing.assert_array_equal(result.residual, 0.0)
