"""Extension benches beyond the paper's tables.

* **Communication per cell across architectures** — the Sec. 4 argument
  quantified: the GPU reads neighbours from shared device memory (zero
  explicit traffic), the MPI-style cluster moves only halo surfaces, and
  the dataflow fabric moves every neighbour column every application —
  trading raw volume for single-hop locality and overlap.
* **Arbitrary-topology embedding** — the Sec. 9 future-work analysis:
  hop statistics of unstructured meshes embedded on the fabric under
  three placement strategies.
* **Implicit solver end-to-end** — the Sec. 8 extension timed: one
  backward-Euler step (Newton + matrix-free BiCGSTAB) per bench round.
"""

import numpy as np
import pytest

from repro.cluster import BlockDecomposition, ClusterFluxComputation, ClusterPerfModel
from repro.core import CartesianMesh3D, FluidProperties, Transmissibility, random_pressure
from repro.core.unstructured import delaunay_mesh_2d
from repro.dataflow import WseFluxComputation
from repro.dataflow.unstructured_map import GridEmbedding, analyze_embedding
from repro.solver import SinglePhaseFlowSimulator, Well
from repro.util.reporting import Table
from repro.workloads import make_geomodel

FLUID = FluidProperties()


def test_extension_comm_per_cell(report, benchmark):
    """Explicit communication per cell per application, by architecture."""
    mesh = CartesianMesh3D(12, 12, 8)
    trans = Transmissibility(mesh, dtype=np.float32)
    p = random_pressure(mesh, seed=0)

    wse = WseFluxComputation(mesh, FLUID, trans, dtype=np.float32)
    r_wse = benchmark(lambda: wse.run_single(p))
    cluster = ClusterFluxComputation(mesh, FLUID, px=3, py=3, dtype=np.float32)
    r_cl = cluster.run_single(p)

    cells = mesh.num_cells
    wse_bytes = r_wse.stats.fabric_bytes_moved / cells
    cl_bytes = r_cl.halo_bytes_per_application / cells
    table = Table(
        "Extension — explicit data movement per cell per application",
        ["Architecture", "Bytes/cell", "Messages", "Mechanism"],
    )
    table.add_row(
        ["GPU (shared device memory)", "0.00", 0, "index arithmetic (Sec. 6)"]
    )
    table.add_row(
        [
            "Cluster, 3x3 ranks (halo)",
            f"{cl_bytes:.2f}",
            r_cl.messages_per_application,
            "surface exchange + corners",
        ]
    )
    table.add_row(
        [
            "WSE fabric (every column)",
            f"{wse_bytes:.2f}",
            r_wse.stats.messages_delivered,
            "single-hop neighbours, overlapped",
        ]
    )
    table.add_note(
        "the fabric moves far more bytes but each travels at most two "
        "single-cycle hops with zero interference from a memory hierarchy "
        "- the paper's core architectural trade (Sec. 4)"
    )
    report(table.render())

    assert wse_bytes > cl_bytes  # volume trade is real
    assert r_wse.stats.max_hops_seen <= 2  # locality trade is real


def test_extension_unstructured_embedding(report, benchmark):
    """Sec. 9 future work: hop statistics for arbitrary topologies."""
    mesh = delaunay_mesh_2d(400, seed=11)
    rows = {}
    for strategy in ("spatial", "bfs", "random"):
        emb = GridEmbedding.build(mesh, strategy=strategy)
        rows[strategy] = analyze_embedding(mesh, emb)
    benchmark(
        lambda: analyze_embedding(mesh, GridEmbedding.build(mesh, strategy="spatial"))
    )

    table = Table(
        "Extension — unstructured mesh on the fabric (400-cell Delaunay)",
        ["Placement", "Mean hops", "Max", "<=2 hops", "Traffic vs structured"],
    )
    for strategy, a in rows.items():
        table.add_row(
            [
                strategy,
                f"{a.mean_hops:.2f}",
                a.max_hops,
                f"{100 * a.within_two_hops_fraction:.0f} %",
                f"{a.structured_overhead:.1f}x",
            ]
        )
    table.add_note(
        "the structured pattern needs at most 2 hops per exchange; "
        "arbitrary topologies need multi-hop routing and placement-aware "
        "mapping - exactly the future work the paper names (Sec. 9)"
    )
    report(table.render())

    assert rows["spatial"].mean_hops < rows["random"].mean_hops
    assert rows["spatial"].max_hops > 2  # the structured bound breaks


def test_extension_implicit_step(report, benchmark):
    """Sec. 8 extension: a full implicit pressure step, timed."""
    mesh = make_geomodel(10, 10, 4, kind="layered", seed=2)
    sim = SinglePhaseFlowSimulator(
        mesh, FLUID, wells=[Well(5, 5, 1, rate=2.0)], gravity=0.0
    )

    def one_step():
        sim.pressure = mesh.full(1.5e7)
        return sim.step(dt=3600.0, rtol=1e-8)

    rep = benchmark(one_step)
    table = Table(
        "Extension — implicit backward-Euler step (Newton + BiCGSTAB)",
        ["Quantity", "Value"],
    )
    table.add_row(["mesh", "10 x 10 x 4 layered"])
    table.add_row(["Newton iterations", rep.newton.iterations])
    table.add_row(["linear iterations", rep.newton.linear_iterations])
    table.add_row(["final |R|", f"{rep.newton.residual_norm:.3e}"])
    report(table.render())

    assert rep.newton.converged


def test_extension_cluster_scaling(report, benchmark):
    """Alpha-beta projection of the cluster baseline's strong scaling."""
    mesh = CartesianMesh3D(256, 256, 32)
    model = ClusterPerfModel()
    benchmark(lambda: model.application_seconds(BlockDecomposition(mesh, 4, 4)))
    table = Table(
        "Extension — cluster strong scaling (alpha-beta model, 256x256x32)",
        ["Ranks", "t/application [ms]", "Parallel efficiency"],
    )
    prev = None
    for px, py in [(1, 1), (2, 2), (4, 4), (8, 8), (16, 16)]:
        decomp = BlockDecomposition(mesh, px, py)
        t = model.application_seconds(decomp)
        eff = model.parallel_efficiency(decomp)
        table.add_row([px * py, f"{t * 1e3:.3f}", f"{eff:.3f}"])
        if prev is not None:
            assert t < prev  # still in the scaling regime at these sizes
        prev = t
    table.add_note(
        "efficiency decays with surface-to-volume - the contrast with the "
        "fabric's flat weak scaling (Table 2), where the halo is one hop"
    )
    report(table.render())
