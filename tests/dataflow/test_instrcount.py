"""Unit tests for the Table 4 instruction accounting."""

import pytest

from repro.dataflow.instrcount import (
    CellInstructionTable,
    interior_cell_table,
    measure_flux_instruction_mix,
)


class TestMeasuredMix:
    def test_per_flux_counts(self):
        mix = measure_flux_instruction_mix()
        assert mix["FMUL"] == 6
        assert mix["FSUB"] == 4
        assert mix["FADD"] == 1
        assert mix["FMA"] == 1
        assert mix["FNEG"] == 1

    def test_mix_independent_of_probe_length(self):
        assert measure_flux_instruction_mix(n=8) == measure_flux_instruction_mix(
            n=256
        )


class TestTable4:
    @pytest.fixture(scope="class")
    def table(self) -> CellInstructionTable:
        return interior_cell_table()

    def test_paper_instruction_counts(self, table):
        """The exact counts of paper Table 4."""
        assert table.count("FMUL") == 60
        assert table.count("FSUB") == 40
        assert table.count("FNEG") == 10
        assert table.count("FADD") == 10
        assert table.count("FMA") == 10
        assert table.count("FMOV") == 16

    def test_flops_per_cell(self, table):
        assert table.flops_per_cell == 140

    def test_memory_accesses(self, table):
        """406 loads and stores per cell (Sec. 7.3)."""
        assert table.memory_accesses_per_cell == 406

    def test_fabric_loads(self, table):
        assert table.fabric_loads_per_cell == 16

    def test_arithmetic_intensities(self, table):
        assert table.arithmetic_intensity_memory == pytest.approx(0.0862, abs=5e-5)
        assert table.arithmetic_intensity_fabric == pytest.approx(2.1875)

    def test_row_order_matches_paper(self, table):
        assert [r.op for r in table.rows] == [
            "FMUL",
            "FSUB",
            "FNEG",
            "FADD",
            "FMA",
            "FMOV",
        ]

    def test_mem_traffic_labels(self, table):
        labels = {r.op: r.mem_traffic_label for r in table.rows}
        assert labels["FMUL"] == "2 loads, 1 store"
        assert labels["FNEG"] == "1 load, 1 store"
        assert labels["FMA"] == "3 loads, 1 store"
        assert labels["FMOV"] == "1 store"

    def test_unknown_op_rejected(self, table):
        with pytest.raises(KeyError):
            table.count("FSQRT")

    def test_bytes_per_cell(self, table):
        assert table.memory_bytes_per_cell == 406 * 4
        assert table.fabric_bytes_per_cell == 64
