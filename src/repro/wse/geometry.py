"""Fabric geometry: PE coordinates and router link directions.

The wafer-scale engine is a 2D mesh of processing elements (paper Fig. 2).
Each PE's router manages five full-duplex links: NORTH, EAST, SOUTH, WEST
toward neighbouring routers, plus RAMP between the router and its own PE.

Coordinates are ``(x, y)`` with x growing east and y growing south, the
same convention as the mesh mapping (cell ``(x, y, z) -> PE (x, y)``,
Sec. 5.1) and the stencil module (NORTH is ``y - 1``).
"""

from __future__ import annotations

import enum

from repro.core.stencil import Connection

__all__ = [
    "Port",
    "CARDINAL_PORTS",
    "OFFSET",
    "OPPOSITE",
    "shift",
    "in_bounds",
    "port_for_connection",
]


class Port(enum.IntEnum):
    """One of the five router links of a PE (Sec. 4).

    An ``IntEnum`` so hot-path containers (route tables, link-busy maps,
    offset/opposite lookups) hash and index members at C speed; the
    values are contiguous so plain tuples can serve as port-indexed
    tables.
    """

    NORTH = 0
    EAST = 1
    SOUTH = 2
    WEST = 3
    RAMP = 4

    #: ``enum.Enum.__hash__`` is a Python-level function even for
    #: IntEnum; pin the C-level int hash for dict-heavy hot paths.
    __hash__ = int.__hash__

    @property
    def offset(self) -> tuple[int, int]:
        """Fabric coordinate offset of the neighbouring router (0,0 for RAMP)."""
        return _OFFSETS[self]

    @property
    def opposite(self) -> "Port":
        """The port on the receiving router that this link arrives on."""
        return _OPPOSITES[self]


_OFFSETS = {
    Port.NORTH: (0, -1),
    Port.EAST: (1, 0),
    Port.SOUTH: (0, 1),
    Port.WEST: (-1, 0),
    Port.RAMP: (0, 0),
}

_OPPOSITES = {
    Port.NORTH: Port.SOUTH,
    Port.SOUTH: Port.NORTH,
    Port.EAST: Port.WEST,
    Port.WEST: Port.EAST,
    Port.RAMP: Port.RAMP,
}

#: The four fabric directions (everything but RAMP).
CARDINAL_PORTS = (Port.NORTH, Port.EAST, Port.SOUTH, Port.WEST)

#: Port-value-indexed tuples of the port tables for hot paths (direct
#: sequence indexing skips both the enum property descriptor and dict
#: hashing, which matters at per-link-hop call rates in the runtime).
OFFSET = tuple(_OFFSETS[p] for p in Port)
OPPOSITE = tuple(_OPPOSITES[p] for p in Port)

#: Mapping from the mesh's cardinal X-Y connections to fabric ports.
_PORT_OF_CONNECTION = {
    Connection.EAST: Port.EAST,
    Connection.WEST: Port.WEST,
    Connection.NORTH: Port.NORTH,
    Connection.SOUTH: Port.SOUTH,
}


def port_for_connection(conn: Connection) -> Port:
    """Fabric port pointing at the PE that owns the *conn* neighbour column.

    Only defined for the four cardinal X-Y connections; diagonal data has
    no direct link and travels through an intermediary (Sec. 5.2.2).
    """
    try:
        return _PORT_OF_CONNECTION[conn]
    except KeyError:
        raise ValueError(f"{conn} has no direct fabric port") from None


def shift(coord: tuple[int, int], port: Port) -> tuple[int, int]:
    """Coordinate of the router reached by leaving *coord* through *port*."""
    dx, dy = port.offset
    return (coord[0] + dx, coord[1] + dy)


def in_bounds(coord: tuple[int, int], width: int, height: int) -> bool:
    """True when *coord* lies on a ``width x height`` fabric."""
    x, y = coord
    return 0 <= x < width and 0 <= y < height
