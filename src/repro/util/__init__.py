"""Shared utilities: array helpers, table reporting, byte-stable JSON."""

from repro.util.arrays import (
    as_float_array,
    check_positive,
    check_shape,
    ensure_3d,
)
from repro.util.jsonio import canonical_value, stable_dumps, write_stable_json
from repro.util.reporting import Table, format_seconds, format_si

__all__ = [
    "as_float_array",
    "check_positive",
    "check_shape",
    "ensure_3d",
    "Table",
    "format_seconds",
    "format_si",
    "canonical_value",
    "stable_dumps",
    "write_stable_json",
]
