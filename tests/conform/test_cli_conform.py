"""End-to-end CLI: ``repro conform`` and the par-backend ``repro trace``."""

import io
import json

import pytest

from repro.cli import main


def run_cli(args):
    out = io.StringIO()
    code = main(args, out=out)
    return code, out.getvalue()


class TestConformCommand:
    @pytest.fixture(scope="class")
    def artifact(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "cluster.rpz"
        code, text = run_cli(
            ["conform", "--record", "--backend", "cluster",
             "--nx", "4", "--ny", "4", "--nz", "3",
             "--applications", "2", "--out", str(path)]
        )
        assert code == 0 and path.exists(), text
        return path

    def test_record_prints_description(self, artifact, tmp_path):
        code, text = run_cli(
            ["conform", "--record", "--backend", "cluster",
             "--nx", "4", "--ny", "4", "--nz", "3",
             "--applications", "2", "--out", str(tmp_path / "a.rpz")]
        )
        assert code == 0
        assert "recorded cluster run" in text

    def test_replay_passes_and_reports(self, artifact, tmp_path):
        report = tmp_path / "rep"
        code, text = run_cli(
            ["conform", str(artifact), "--backend", "event",
             "--report", str(report)]
        )
        assert code == 0
        assert "[PASS]" in text and "cluster -> event" in text
        doc = json.loads((report / "conform.json").read_text())
        assert doc["ok"] is True
        assert doc["results"][0]["replay_backend"] == "event"

    def test_forced_bit_exact_mismatch_exits_nonzero(
        self, artifact, tmp_path
    ):
        report = tmp_path / "rep"
        code, text = run_cli(
            ["conform", str(artifact), "--backend", "event",
             "--tolerance", "bit-exact", "--report", str(report)]
        )
        assert code == 1
        assert "[FAIL]" in text and "FIRST DIVERGENCE" in text
        doc = json.loads((report / "conform.json").read_text())
        assert doc["ok"] is False
        div = doc["results"][0]["divergence"]
        assert div["step"] == 0 and div["cell"] is not None

    def test_golden_mode(self, tmp_path):
        report = tmp_path / "rep"
        code, text = run_cli(
            ["conform", "--golden", "--backends", "cluster,lockstep",
             "--report", str(report)]
        )
        assert code == 0, text
        assert "golden replay(s) passed" in text
        doc = json.loads((report / "conform.json").read_text())
        assert doc["ok"] is True and doc["results"]

    def test_replay_without_backend_is_usage_error(self, artifact):
        code, _ = run_cli(["conform", str(artifact)])
        assert code == 2

    def test_no_mode_is_usage_error(self):
        code, _ = run_cli(["conform"])
        assert code == 2


class TestTraceParBackend:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        outdir = tmp_path_factory.mktemp("trace-par")
        code, text = run_cli(
            ["trace", "--backend", "par", "--workers", "2",
             "--nx", "6", "--ny", "6", "--nz", "3",
             "--applications", "2", "--out", str(outdir)]
        )
        return code, text, outdir

    def test_exit_code(self, artifacts):
        code, text, _ = artifacts
        assert code == 0, text

    def test_merged_timeline_has_multiple_worker_pids(self, artifacts):
        _, _, outdir = artifacts
        doc = json.loads((outdir / "trace.json").read_text())
        events = doc["traceEvents"]
        worker_pids = {
            e["pid"] for e in events if e["ph"] == "X" and e["pid"] != 1
        }
        assert len(worker_pids) >= 2  # spans from distinct OS processes
        named = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        for pid in worker_pids:
            assert named[pid] == f"par worker (pid {pid})"

    def test_host_spans_still_present(self, artifacts):
        _, _, outdir = artifacts
        doc = json.loads((outdir / "trace.json").read_text())
        host = {
            e["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["pid"] == 1
        }
        assert any(name.startswith("par.") for name in host)

    def test_report_merges_rank_stats(self, artifacts):
        _, text, outdir = artifacts
        doc = json.loads((outdir / "report.json").read_text())
        metrics = doc["metrics"]
        assert "par" in metrics and "par_ranks_merged" in metrics
        merged = metrics["par_ranks_merged"]
        assert merged["messages_sent"] > 0
        assert "distinct worker pid(s)" in text

    def test_trace_json_byte_stable_keys(self, artifacts):
        _, _, outdir = artifacts
        raw = (outdir / "trace.json").read_text()
        doc = json.loads(raw)
        assert raw == json.dumps(
            doc, sort_keys=True, separators=(",", ":")
        ) + "\n"
