"""Builds the per-PE flux program: colors, routing, tasks, memory.

This module translates the paper's Sec. 5 into an executable fabric
configuration:

* allocates the twelve routable colors (4 cardinal channels with switch
  positions, 4 diagonal channels with static two-hop routes, Sec. 5.2);
* builds every PE's memory layout (Sec. 5.1) and fills the static data
  (elevation column, 10 transmissibility columns);
* binds the data/control tasks implementing receive-compute overlap: a
  partial flux computation runs immediately when a neighbour's column
  arrives ("the corresponding flux computation will occur immediately in
  an asynchronous fashion", Sec. 5.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import constants
from repro.core.fluid import FluidProperties
from repro.core.mesh import CartesianMesh3D
from repro.core.stencil import (
    ALL_CONNECTIONS,
    XY_CONNECTIONS,
    Connection,
    interior_slices,
)
from repro.core.transmissibility import Transmissibility
from repro.dataflow.cardinal import (
    CARDINAL_CHANNELS,
    CardinalChannel,
    is_step1_sender,
    switch_positions_for,
)
from repro.dataflow.diagonal import DIAGONAL_CHANNELS, DiagonalChannel, static_position
from repro.dataflow.flux_pe import compute_face_flux_column, evaluate_density_column
from repro.dataflow.halos import PEColumnLayout
from repro.dataflow.mapping import SpareColumnRemap
from repro.obs.spans import span
from repro.wse.color import ColorAllocator
from repro.wse.fabric import Fabric
from repro.wse.memory import WSE2_PE_MEMORY_BYTES
from repro.wse.packet import KIND_CONTROL
from repro.wse.pe import ProcessingElement
from repro.wse.runtime import EventRuntime

__all__ = ["FluxProgram", "padded_trans_fields"]


def padded_trans_fields(
    mesh: CartesianMesh3D, trans: Transmissibility, dtype=np.float32
) -> dict[Connection, np.ndarray]:
    """Full-mesh transmissibility fields, zero where no neighbour exists.

    ``out[conn][z, y, x]`` is ``Upsilon`` between cell (x, y, z) and its
    *conn* neighbour (0 on the boundary), ready to slice into per-PE
    columns.
    """
    out: dict[Connection, np.ndarray] = {}
    for conn in ALL_CONNECTIONS:
        full = np.zeros(mesh.shape_zyx, dtype=dtype)
        local, _ = interior_slices(mesh.shape_zyx, conn)
        full[local] = trans.face_array(conn)
        out[conn] = full
    return out


@dataclass
class FluxProgram:
    """A configured fabric ready to run applications of Algorithm 1.

    Parameters
    ----------
    mesh, fluid, trans:
        Problem definition; ``trans`` defaults to a fresh TPFA build.
    gravity:
        Gravitational acceleration of Eq. 3b.
    dtype:
        PE-local floating dtype (float32 matches the hardware; float64
        is allowed for tight cross-validation runs).
    reuse_buffers:
        Apply the Sec.-5.3.1 memory optimization (see halos module).
    vectorized:
        Use the SIMD/DSD fast path for cycle accounting (Sec. 5.3.3).
    compute_fluxes:
        When False, run communication only — the paper's Table 3
        experiment ("we modified our dataflow implementation to remove
        all flux computations and focus solely on data communications").
    overlap_compute:
        When True (the paper's Sec.-5.3.2 behaviour) each neighbour's
        partial flux is computed immediately on arrival, hiding compute
        behind the remaining transfers.  When False, arrivals are only
        drained into per-neighbour buffers and all eight partial fluxes
        run after the last arrival — the no-overlap ablation.  Requires
        ``reuse_buffers=False`` (deferred compute needs every halo live).
    pe_memory_bytes / pe_memory_reserved:
        Scratchpad capacity and code reservation per PE.
    remap:
        Optional :class:`~repro.dataflow.mapping.SpareColumnRemap`
        placing the logical ``nx x ny`` program on a wider physical
        fabric with defective columns bypassed (CS-2 yield handling).
        Routing, memory and gather all address PEs through the remap;
        bypassed columns carry pass-through east/west traffic only.
        Residuals are bit-identical to the healthy-fabric program.
    """

    mesh: CartesianMesh3D
    fluid: FluidProperties
    trans: Transmissibility | None = None
    gravity: float = constants.GRAVITY
    dtype: type = np.float32
    reuse_buffers: bool = True
    vectorized: bool = True
    compute_fluxes: bool = True
    overlap_compute: bool = True
    pe_memory_bytes: int = WSE2_PE_MEMORY_BYTES
    pe_memory_reserved: int = 2048
    remap: SpareColumnRemap | None = None
    #: Optional :class:`~repro.ir.schema.FabricProgramIR` to lower from:
    #: routing tables and injector sets are consumed from the IR instead
    #: of re-derived, after validating the IR describes this program.
    ir: object | None = None
    fabric: Fabric = field(init=False)
    colors: ColorAllocator = field(init=False)

    def __post_init__(self) -> None:
        if not self.overlap_compute and self.reuse_buffers:
            raise ValueError(
                "overlap_compute=False requires reuse_buffers=False "
                "(deferred partial fluxes need all eight halos resident)"
            )
        if self.trans is None:
            self.trans = Transmissibility(self.mesh, dtype=self.dtype)
        elif self.trans.mesh is not self.mesh:
            raise ValueError("trans was built for a different mesh")
        if self.remap is not None:
            if (
                self.remap.logical_width != self.mesh.nx
                or self.remap.height != self.mesh.ny
            ):
                raise ValueError(
                    f"remap covers {self.remap.logical_width}x"
                    f"{self.remap.height} but the mesh needs "
                    f"{self.mesh.nx}x{self.mesh.ny}"
                )
            fabric_width = self.remap.physical_width
            bypass = self.remap.bypassed_columns
        else:
            fabric_width = self.mesh.nx
            bypass = frozenset()
        self.fabric = Fabric(
            fabric_width,
            self.mesh.ny,
            pe_memory_bytes=self.pe_memory_bytes,
            pe_memory_reserved=self.pe_memory_reserved,
            vectorized=self.vectorized,
            bypass_columns=bypass,
        )
        self.colors = ColorAllocator()
        self._card_color: dict[CardinalChannel, int] = {}
        self._diag_color: dict[DiagonalChannel, int] = {}
        if self.ir is not None:
            self._validate_ir(self.ir)
        # scalar kernel parameters pre-cast to the PE dtype: the ufuncs
        # cast them per call otherwise (same bits, avoidable overhead)
        _scalar = np.dtype(self.dtype).type
        self._inv_viscosity = _scalar(1.0 / self.fluid.viscosity)
        self._gravity = _scalar(self.gravity)
        with span("program.build", cat="build",
                  fabric=f"{self.mesh.nx}x{self.mesh.ny}"):
            with span("program.memory", cat="build"):
                self._setup_memory()
            with span("program.routing", cat="build"):
                self._setup_routing()
            with span("program.tasks", cat="build"):
                self._setup_tasks()

    # ------------------------------------------------------------------ #
    def program_pes(self):
        """The PEs running the program as ``(lx, ly, pe)`` triples.

        Iterates *logical* coordinates in row-major order — the same
        order as ``fabric.pes()`` on a healthy fabric — so injection and
        scheduling sequence numbers (and therefore event order and
        summation order) are independent of any spare-column remap.
        """
        remap = self.remap
        pes = self.fabric.pe_map
        for ly in range(self.mesh.ny):
            for lx in range(self.mesh.nx):
                coord = (lx, ly) if remap is None else remap.physical((lx, ly))
                yield lx, ly, pes[coord]

    # ------------------------------------------------------------------ #
    # IR lowering (repro.ir)
    # ------------------------------------------------------------------ #
    def _validate_ir(self, ir) -> None:
        """The IR must describe exactly this program, or lowering would
        silently build something else."""
        mesh = self.mesh
        if getattr(ir, "kind", None) != "flux-program":
            raise ValueError(
                f"FluxProgram can only lower a flux-program IR, "
                f"got kind {getattr(ir, 'kind', None)!r}"
            )
        if ir.mesh_shape != (mesh.nx, mesh.ny, mesh.nz):
            raise ValueError(
                f"IR was built for mesh {ir.mesh_shape}, got "
                f"({mesh.nx}, {mesh.ny}, {mesh.nz})"
            )
        if (self.remap is None) != (ir.remap is None):
            raise ValueError("IR and program disagree on spare-column remap")
        params = ir.params
        checks = (
            ("dtype", np.dtype(self.dtype).name, params["dtype"]),
            ("reuse_buffers", self.reuse_buffers, params["reuse_buffers"]),
            (
                "overlap_compute",
                self.overlap_compute,
                params["overlap_compute"],
            ),
            ("compute_fluxes", self.compute_fluxes, params["compute_fluxes"]),
            ("vectorized", self.vectorized, ir.vectorized),
            ("pe_memory_bytes", self.pe_memory_bytes, ir.pe_memory_bytes),
            (
                "pe_memory_reserved",
                self.pe_memory_reserved,
                ir.pe_memory_reserved,
            ),
            ("fabric width", self.fabric.width, ir.width),
            ("fabric height", self.fabric.height, ir.height),
        )
        for name, mine, theirs in checks:
            if mine != theirs:
                raise ValueError(
                    f"IR mismatch on {name}: program has {mine!r}, "
                    f"IR says {theirs!r}"
                )

    def _setup_routing_from_ir(self) -> None:
        """Install switch schedules from the IR's route tables.

        The color allocation order is cross-checked against the IR's
        color table — a program and its IR must agree on ids, or the
        receiver sets would silently describe different channels.
        """
        ir = self.ir
        for channel in (*CARDINAL_CHANNELS, *DIAGONAL_CHANNELS):
            color = self.colors.allocate(channel.name)
            if color != ir.color_id(channel.name):
                raise ValueError(
                    f"IR color table maps {channel.name!r} to "
                    f"{ir.color_id(channel.name)}, allocator assigned "
                    f"{color}"
                )
            if isinstance(channel, CardinalChannel):
                self._card_color[channel] = color
            else:
                self._diag_color[channel] = color

            def positions_for(coord, _c=color):
                entry = ir.route_for(_c, coord)
                return None if entry is None else entry[0]

            def initial_for(coord, _c=color):
                entry = ir.route_for(_c, coord)
                return 0 if entry is None else entry[1]

            self.fabric.configure_color(
                color, positions_for, initial_for=initial_for
            )

    # ------------------------------------------------------------------ #
    # Memory (Sec. 5.1)
    # ------------------------------------------------------------------ #
    def _setup_memory(self) -> None:
        mesh = self.mesh
        trans_fields = padded_trans_fields(mesh, self.trans, self.dtype)
        elev = mesh.elevation
        w, h = mesh.nx, mesh.ny
        ir_injectors = None
        if self.ir is not None:
            ir_injectors = {
                ch: self.ir.injector_coords(ch.name)
                for ch in CARDINAL_CHANNELS
            }
        for x, y, pe in self.program_pes():
            layout = PEColumnLayout.build(
                pe.memory,
                mesh.nz,
                dtype=self.dtype,
                reuse_buffers=self.reuse_buffers,
            )
            layout.elevation[:] = elev[:, y, x]
            for conn in ALL_CONNECTIONS:
                layout.trans[conn][:] = trans_fields[conn][:, y, x]
            pe.state["logical"] = (x, y)
            pe.state["layout"] = layout
            pe.state["expected"] = self._expected_messages(x, y)
            # per-halo kernel arguments resolved once: the receive task
            # runs per message and every dict/method hop shows up there
            pe.state["halo_args"] = {
                conn: (
                    layout.recv_flat(conn),
                    layout.recv_buffer(conn)[0],
                    layout.recv_buffer(conn)[1],
                    layout.trans[conn],
                )
                for conn in XY_CONNECTIONS
            }
            if ir_injectors is None:
                pe.state["step1_channels"] = [
                    ch
                    for ch in CARDINAL_CHANNELS
                    if is_step1_sender((x, y), ch, w, h)
                ]
            else:
                pe.state["step1_channels"] = [
                    ch
                    for ch in CARDINAL_CHANNELS
                    if pe.coord in ir_injectors[ch]
                ]

    def _expected_messages(self, x: int, y: int) -> int:
        """Data messages the PE at *logical* ``(x, y)`` receives per
        application: one per in-bounds X-Y neighbour (Sec. 5.2 a-b)."""
        nx, ny = self.mesh.nx, self.mesh.ny
        count = 0
        for conn in XY_CONNECTIONS:
            dx, dy, _ = conn.offset
            if 0 <= x + dx < nx and 0 <= y + dy < ny:
                count += 1
        return count

    # ------------------------------------------------------------------ #
    # Routing (Sec. 5.2, Figs. 5-6)
    # ------------------------------------------------------------------ #
    def _setup_routing(self) -> None:
        if self.ir is not None:
            self._setup_routing_from_ir()
            return
        # switch positions are a function of the *logical* coordinate —
        # bypassed columns are latency-transparent wires, so a remapped
        # router behaves exactly like the logical router it hosts
        w, h = self.mesh.nx, self.mesh.ny
        remap = self.remap

        def logical_of(coord):
            if remap is None:
                return coord
            return remap.logical(coord)

        for channel in CARDINAL_CHANNELS:
            color = self.colors.allocate(channel.name)
            self._card_color[channel] = color

            def positions_for(coord, _ch=channel):
                lcoord = logical_of(coord)
                if lcoord is None:
                    return None
                positions, _ = switch_positions_for(lcoord, _ch, w, h)
                return positions

            def initial_for(coord, _ch=channel):
                _, initial = switch_positions_for(logical_of(coord), _ch, w, h)
                return initial

            self.fabric.configure_color(
                color, positions_for, initial_for=initial_for
            )
        for channel in DIAGONAL_CHANNELS:
            color = self.colors.allocate(channel.name)
            self._diag_color[channel] = color
            position = static_position(channel)
            self.fabric.configure_color(
                color,
                lambda coord, _p=position: (
                    [_p] if logical_of(coord) is not None else None
                ),
            )

    # ------------------------------------------------------------------ #
    # Tasks
    # ------------------------------------------------------------------ #
    def _setup_tasks(self) -> None:
        for channel in CARDINAL_CHANNELS:
            color = self._card_color[channel]

            def on_data(rt, pe, msg, _conn=channel.delivers):
                self._receive_neighbour(pe, msg, _conn)

            def on_ctrl(rt, pe, msg, _ch=channel):
                self._maybe_send(rt, pe, _ch)

            self.fabric.bind_all(color, on_data)
            self.fabric.bind_all(color, on_ctrl, control=True)
        for channel in DIAGONAL_CHANNELS:
            color = self._diag_color[channel]

            def on_data(rt, pe, msg, _conn=channel.delivers):
                self._receive_neighbour(pe, msg, _conn)

            self.fabric.bind_all(color, on_data)

    def _receive_neighbour(
        self, pe: ProcessingElement, msg, conn: Connection
    ) -> None:
        """Drain a neighbour's (p, rho) train and compute its partial flux.

        The FMOV from the fabric queue into the receive window is the 16
        FMOV / 16 fabric loads per cell of Table 4 (2 words per cell per
        neighbour, 8 neighbours).
        """
        state = pe.state
        layout = state["layout"]
        # (recv_flat, p_L, rho_L, trans) resolved once at setup
        recv_flat, p_l, rho_l, trans_col = state["halo_args"][conn]
        pe.dsd.fmovs(recv_flat, msg.payload, from_fabric=True)
        state["received"] = state.get("received", 0) + 1
        if not self.compute_fluxes:
            return
        if self.overlap_compute:
            compute_face_flux_column(
                pe.dsd,
                layout.scratch,
                layout.pressure,
                p_l,
                layout.elevation,
                layout.elevation,  # X-Y neighbours share the elevation column
                layout.density,
                rho_l,
                trans_col,
                layout.residual,
                gravity=self._gravity,
                inv_viscosity=self._inv_viscosity,
            )
        else:
            state.setdefault("pending_halos", []).append(conn)
            if state["received"] == state["expected"]:
                for pending in state["pending_halos"]:
                    self._neighbour_flux(pe, layout, pending)
                state["pending_halos"] = []

    def _neighbour_flux(self, pe: ProcessingElement, layout, conn: Connection) -> None:
        """The partial flux for one received halo."""
        _, p_l, rho_l, trans_col = pe.state["halo_args"][conn]
        compute_face_flux_column(
            pe.dsd,
            layout.scratch,
            layout.pressure,
            p_l,
            layout.elevation,
            layout.elevation,  # X-Y neighbours share the elevation column
            layout.density,
            rho_l,
            trans_col,
            layout.residual,
            gravity=self._gravity,
            inv_viscosity=self._inv_viscosity,
        )

    def _maybe_send(
        self, rt: EventRuntime, pe: ProcessingElement, channel: CardinalChannel
    ) -> None:
        """Transmit this PE's column on *channel* once per application."""
        color = self._card_color[channel]
        sent = pe.state["sent"]  # created by begin_application
        if color in sent:
            return
        sent.add(color)
        layout = pe.state["layout"]
        payload = layout.send_train_flat(pe.dsd)
        at = rt.pe_send_time(pe)
        rt.inject(pe.coord, color, payload, at=at)
        rt.inject(pe.coord, color, kind=KIND_CONTROL, at=at)

    # ------------------------------------------------------------------ #
    # Per-application driver hooks
    # ------------------------------------------------------------------ #
    def load_pressure(self, pressure: np.ndarray) -> None:
        """Host memcpy of a new pressure field into PE memories.

        Not part of device time (the paper reports device-only timing,
        Sec. 7.2).
        """
        self.mesh.validate_field(pressure, name="pressure")
        for x, y, pe in self.program_pes():
            layout = pe.state["layout"]
            layout.pressure[:] = pressure[:, y, x]

    def begin_application(self, rt: EventRuntime) -> None:
        """Schedule one application of Algorithm 1 on runtime *rt*.

        Every PE zeroes its residual, evaluates its density column
        (Eq. 5), computes the two vertical (in-memory) flux directions,
        then starts communicating: all diagonal flows plus the step-1
        cardinal senders.  Step-2 senders are triggered by the control
        wavelets of the switch protocol.
        """
        for _x, _y, pe in self.program_pes():
            pe.state["sent"] = set()
            pe.state["received"] = 0
            rt.schedule(0.0, self._start_pe, rt, pe)

    def _start_pe(self, rt: EventRuntime, pe: ProcessingElement) -> None:
        layout = pe.state["layout"]
        start = max(rt.now, pe.busy_until)
        before = pe.dsd.cycles
        pe.exec_start = start
        pe.cycles_at_start = before

        layout.residual.fill(0.0)
        evaluate_density_column(
            pe.dsd,
            layout.pressure,
            layout.density,
            compressibility=self.fluid.compressibility,
            reference_density=self.fluid.reference_density,
            reference_pressure=self.fluid.reference_pressure,
        )
        if self.compute_fluxes:
            self._vertical_fluxes(pe, layout)

        # diagonal flows: every PE is a source (Fig. 5b, step 1.b)
        at = rt.pe_send_time(pe)
        payload = layout.send_train_flat(pe.dsd)
        for channel in DIAGONAL_CHANNELS:
            rt.inject(pe.coord, self._diag_color[channel], payload, at=at)
        # cardinal step-1 senders (Fig. 6b, step 1; resolved at setup)
        for channel in pe.state["step1_channels"]:
            self._maybe_send(rt, pe, channel)
        pe.busy_until = start + (pe.dsd.cycles - before)

    def _vertical_fluxes(self, pe: ProcessingElement, layout) -> None:
        """UP and DOWN fluxes: same-PE memory, no fabric traffic (Sec. 5.2c)."""
        nz = layout.nz
        if nz < 2:
            return
        p, rho, z = layout.pressure, layout.density, layout.elevation
        compute_face_flux_column(
            pe.dsd,
            layout.scratch,
            p[: nz - 1],
            p[1:],
            z[: nz - 1],
            z[1:],
            rho[: nz - 1],
            rho[1:],
            layout.trans[Connection.UP][: nz - 1],
            layout.residual[: nz - 1],
            gravity=self._gravity,
            inv_viscosity=self._inv_viscosity,
        )
        compute_face_flux_column(
            pe.dsd,
            layout.scratch,
            p[1:],
            p[: nz - 1],
            z[1:],
            z[: nz - 1],
            rho[1:],
            rho[: nz - 1],
            layout.trans[Connection.DOWN][1:],
            layout.residual[1:],
            gravity=self._gravity,
            inv_viscosity=self._inv_viscosity,
        )

    # ------------------------------------------------------------------ #
    def gather_residual(self, out: np.ndarray | None = None) -> np.ndarray:
        """Collect every PE's residual column into a (nz, ny, nx) field."""
        if out is None:
            out = np.zeros(self.mesh.shape_zyx, dtype=self.dtype)
        else:
            self.mesh.validate_field(out, name="out")
        for x, y, pe in self.program_pes():
            out[:, y, x] = pe.state["layout"].residual
        return out

    def verify_deliveries(self) -> None:
        """Assert every PE received exactly one message per X-Y neighbour.

        Raises
        ------
        RuntimeError
            On any lost or duplicated delivery (protocol bug).
        """
        for _x, _y, pe in self.program_pes():
            got, want = pe.state.get("received", 0), pe.state["expected"]
            if got != want:
                raise RuntimeError(
                    f"PE {pe.coord}: received {got} neighbour columns, "
                    f"expected {want}"
                )
