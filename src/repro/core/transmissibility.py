"""TPFA transmissibilities for the 10-connection stencil (paper Eq. 3a).

The transmissibility ``Upsilon_KL`` is "a coefficient accounting for the
geometry of the cells and their permeability" (Sec. 3).  We use the standard
two-point construction: each cell contributes a half-transmissibility

    T_K = kappa_K * A / d_K

where ``A`` is the face area and ``d_K`` the distance from the cell centre
to the face, and the face value is the harmonic combination

    Upsilon_KL = T_K * T_L / (T_K + T_L).

**Diagonal connections.**  A Cartesian mesh has no geometric face between
diagonal neighbours; the paper computes these four extra fluxes anyway "to
prepare the communication pattern for either higher-accuracy schemes or more
intricate meshes" (Sec. 3).  We give them a documented pseudo-geometry:
centre distance ``d = hypot(dx, dy)`` and projected interface area
``A = dz * dx * dy / d``, scaled by a ``diagonal_weight`` factor (default 1,
set 0 to recover the classical 7-point TPFA).  Any symmetric positive choice
preserves the paper-relevant behaviour (flux antisymmetry, communication
volume, FLOP counts).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.mesh import CartesianMesh3D
from repro.core.stencil import (
    ALL_CONNECTIONS,
    Connection,
    interior_slices,
)

__all__ = ["Transmissibility", "CANONICAL_CONNECTIONS"]

#: One representative per reciprocal pair; the face array of the opposite
#: connection is identical (same set of faces, element-aligned).
CANONICAL_CONNECTIONS = (
    Connection.EAST,
    Connection.SOUTH,
    Connection.SOUTHEAST,
    Connection.NORTHEAST,
    Connection.UP,
)

_CANONICAL_OF = {
    Connection.EAST: Connection.EAST,
    Connection.WEST: Connection.EAST,
    Connection.SOUTH: Connection.SOUTH,
    Connection.NORTH: Connection.SOUTH,
    Connection.SOUTHEAST: Connection.SOUTHEAST,
    Connection.NORTHWEST: Connection.SOUTHEAST,
    Connection.NORTHEAST: Connection.NORTHEAST,
    Connection.SOUTHWEST: Connection.NORTHEAST,
    Connection.UP: Connection.UP,
    Connection.DOWN: Connection.UP,
}


class Transmissibility:
    """Per-face transmissibilities over a mesh for all 10 connections.

    Parameters
    ----------
    mesh:
        The Cartesian mesh providing geometry and permeability.
    diagonal_weight:
        Multiplier applied to the four X-Y diagonal transmissibilities
        (0 disables diagonal fluxes numerically while keeping the code
        path and communication pattern intact).
    dtype:
        Floating dtype of the stored arrays.
    """

    def __init__(
        self,
        mesh: CartesianMesh3D,
        *,
        diagonal_weight: float = 1.0,
        dtype=np.float64,
    ) -> None:
        if diagonal_weight < 0:
            raise ValueError("diagonal_weight must be non-negative")
        self.mesh = mesh
        self.diagonal_weight = float(diagonal_weight)
        self.dtype = np.dtype(dtype)
        self._faces: dict[Connection, np.ndarray] = {}
        kappa = mesh.permeability
        for conn in CANONICAL_CONNECTIONS:
            geom_k, geom_l = self._half_factors(conn)
            local, neigh = interior_slices(mesh.shape_zyx, conn)
            t_k = kappa[local] * geom_k
            t_l = kappa[neigh] * geom_l
            with np.errstate(divide="ignore", invalid="ignore"):
                ups = np.where(t_k + t_l > 0, t_k * t_l / (t_k + t_l), 0.0)
            if conn.is_diagonal:
                ups = ups * self.diagonal_weight
            self._faces[conn] = np.ascontiguousarray(ups, dtype=self.dtype)

    def _half_factors(self, conn: Connection):
        """Half-face geometric factors ``A / d_half`` for both sides.

        Returned values are scalars or ``(nz', 1, 1)`` arrays
        broadcastable over the face slice; with variable layering
        (``mesh.dz_layers``) horizontal faces scale with each layer's
        thickness and vertical faces use each side's own half distance.
        """
        mesh = self.mesh
        dx, dy = mesh.dx, mesh.dy
        dz_col = mesh.dz_column[:, None, None]
        if conn is Connection.EAST:
            f = (dy * dz_col) / (dx / 2.0)
            return f, f
        if conn is Connection.SOUTH:
            f = (dx * dz_col) / (dy / 2.0)
            return f, f
        if conn is Connection.UP:
            area = dx * dy
            return (
                area / (dz_col[:-1] / 2.0),
                area / (dz_col[1:] / 2.0),
            )
        # diagonal pseudo-face (see module docstring)
        d = math.hypot(dx, dy)
        area = dz_col * dx * dy / d
        f = area / (d / 2.0)
        return f, f

    def face_array(self, conn: Connection) -> np.ndarray:
        """Transmissibilities for every face along *conn*.

        The returned array is element-aligned with
        ``field[interior_slices(mesh.shape_zyx, conn)[0]]`` — i.e. entry
        ``i`` is ``Upsilon_KL`` for the ``i``-th cell that has a neighbour
        in that direction.  Reciprocal connections share the same array
        (``Upsilon_KL == Upsilon_LK``).
        """
        return self._faces[_CANONICAL_OF[conn]]

    def for_cell(self, x: int, y: int, z: int) -> dict[Connection, float]:
        """All 10 transmissibilities of one cell (0 where no neighbour exists).

        Scalar companion used to provision per-PE memory in the dataflow
        implementation (Sec. 5.1: "10 transmissibilities for the fluxes
        between the cell and its neighbors").
        """
        nx, ny, nz = self.mesh.shape_xyz
        out: dict[Connection, float] = {}
        for conn in ALL_CONNECTIONS:
            ddx, ddy, ddz = conn.offset
            xx, yy, zz = x + ddx, y + ddy, z + ddz
            if not (0 <= xx < nx and 0 <= yy < ny and 0 <= zz < nz):
                out[conn] = 0.0
                continue
            canon = _CANONICAL_OF[conn]
            local, _ = interior_slices(self.mesh.shape_zyx, canon)
            # Identify the face index: the canonical local cell is the one
            # with the smaller coordinate along each offset axis.
            cx, cy, cz = (x, y, z) if conn is canon else (xx, yy, zz)
            zs, ys, xs = local
            iz = cz - (zs.start or 0)
            iy = cy - (ys.start or 0)
            ix = cx - (xs.start or 0)
            out[conn] = float(self._faces[canon][iz, iy, ix])
        return out

    def total_faces(self) -> int:
        """Total number of distinct faces carrying a transmissibility."""
        return sum(arr.size for arr in self._faces.values())
