"""Simulated message-passing communicator for domain decomposition.

Paper Sec. 4 frames the fabric's top-level concern as "the level that
would be usually implemented with MPI" on a traditional architecture.
:mod:`repro.cluster` builds that traditional baseline: ranks own mesh
blocks and exchange halos through an explicit communicator.

:class:`SimComm` is an in-process stand-in for ``mpi4py.MPI.COMM_WORLD``
restricted to the pattern halo exchange needs: buffered nonblocking
sends (`isend`) matched by tagged receives (`recv`), executed phase by
phase (all ranks send, then all ranks receive — the standard deadlock-
free halo schedule).  Traffic is accounted per rank in messages and
bytes, mirroring the mpi4py buffer-protocol idiom (arrays move whole,
no pickling).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.errors import CommTimeoutError, PendingLeakError

__all__ = ["HaloComm", "SimComm", "RankStats", "CartGrid", "RetryPolicy"]


@dataclass
class RankStats:
    """Per-rank traffic counters."""

    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    sends_dropped: int = 0
    retransmissions: int = 0
    retry_waits: int = 0


@dataclass(frozen=True)
class RetryPolicy:
    """Receive timeout/retry with exponential backoff.

    ``attempts`` retries are made after a missing receive, waiting
    ``base_delay * multiplier**attempt`` (simulated) seconds before each
    — the standard MPI-over-lossy-transport recovery shape.  The waits
    accumulate in :attr:`SimComm.waited_seconds` so experiments can
    charge recovery time against the run.
    """

    attempts: int = 3
    base_delay: float = 1e-6
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("retry policy needs attempts >= 1")
        if self.base_delay < 0 or self.multiplier < 1.0:
            raise ValueError("retry policy needs base_delay >= 0, multiplier >= 1")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number *attempt* (0-based).

        Saturates to ``inf`` instead of raising ``OverflowError`` when
        ``multiplier**attempt`` exceeds float range (attempt counts in
        the thousands), so pathological retry loops degrade into an
        infinite wait charge rather than a crash mid-recovery.  A zero
        ``base_delay`` stays exactly zero at every attempt.
        """
        if self.base_delay == 0.0:
            return 0.0
        try:
            return self.base_delay * self.multiplier**attempt
        except OverflowError:
            return float("inf")


class HaloComm:
    """The communicator surface the halo-exchange layers program against.

    Extracted from :class:`SimComm` so the multiprocess runtime
    (:class:`repro.par.comm.ProcComm`) can implement the same contract
    over shared-memory buffers: tagged point-to-point transfers executed
    in the deadlock-free all-send-then-all-receive phase schedule, with
    per-rank :class:`RankStats` accounting and an optional
    :class:`~repro.faults.injector.FaultInjector` attached.

    Subclasses provide :meth:`isend`, :meth:`recv`, :meth:`barrier` and
    :attr:`pending`; the traffic roll-ups below are shared because every
    implementation keeps one :class:`RankStats` per rank in ``stats``.
    """

    #: Per-rank traffic counters, indexable by rank (set by subclasses).
    stats: list[RankStats]
    size: int

    def isend(self, source: int, dest: int, tag: int, array: np.ndarray) -> None:
        """Post ``array`` from ``source`` to ``dest`` under ``tag`` (non-blocking)."""
        raise NotImplementedError

    def recv(
        self,
        dest: int,
        source: int,
        tag: int,
        *,
        retry: RetryPolicy | None = None,
        on_missing=None,
    ) -> np.ndarray:
        """Receive the message ``source`` sent to ``dest`` under ``tag``.

        ``retry`` bounds the wait; ``on_missing`` (if given) is invoked to
        re-drive a lost transfer before the final attempt gives up.
        """
        raise NotImplementedError

    def barrier(self, phase: str = "") -> None:
        """Synchronize all ranks; ``phase`` names the fence in diagnostics."""
        raise NotImplementedError

    @property
    def pending(self) -> int:
        """Sent-but-unreceived messages (must be 0 between phases)."""
        raise NotImplementedError

    def _check_rank(self, rank: int, what: str) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"{what} rank {rank} outside communicator of size {self.size}")

    def total_bytes(self, *, side: str = "sent") -> int:
        """Bytes moved through the communicator so far.

        ``side`` selects the accounting side: ``"sent"`` (default),
        ``"received"``, or ``"both"``.  Sent and received totals only
        differ when traffic was dropped by a fault (or is still
        pending) — symmetry tests compare the two.
        """
        if side == "sent":
            return sum(st.bytes_sent for st in self.stats)
        if side == "received":
            return sum(st.bytes_received for st in self.stats)
        if side == "both":
            return sum(st.bytes_sent + st.bytes_received for st in self.stats)
        raise ValueError(f"side must be 'sent', 'received' or 'both', got {side!r}")

    def total_messages(self) -> int:
        """Messages moved through the communicator so far."""
        return sum(st.messages_sent for st in self.stats)


class SimComm(HaloComm):
    """A size-``n`` communicator with tagged point-to-point messaging.

    Messages are keyed ``(source, dest, tag)``; sending twice on one key
    before it is received is an error (halo exchange never does), as is
    receiving a message that was never sent — both are real MPI bugs the
    simulator surfaces instead of deadlocking.

    A :class:`~repro.faults.injector.FaultInjector` with rank failures
    makes `isend` silently drop traffic touching a down rank (what a
    crashed peer looks like from the transport); `recv` then recovers
    through its retry hook, and :meth:`barrier` fails fast on any send
    that was never matched.
    """

    def __init__(self, size: int, *, faults=None) -> None:
        if size < 1:
            raise ValueError("communicator size must be >= 1")
        self.size = size
        self._mailbox: dict[tuple[int, int, int], np.ndarray] = {}
        self.stats = [RankStats() for _ in range(size)]
        self.faults = faults
        self._fault_check = faults is not None and faults.rank_active
        #: Simulated seconds spent in retry backoff waits.
        self.waited_seconds = 0.0

    def isend(self, source: int, dest: int, tag: int, array: np.ndarray) -> None:
        """Buffered nonblocking send of a contiguous array.

        With a rank-failure injector attached, a send touching a down
        rank is dropped on the floor (counted in ``sends_dropped``) —
        exactly what a crashed endpoint looks like to the transport.
        """
        self._check_rank(source, "source")
        self._check_rank(dest, "dest")
        if self._fault_check and (
            self.faults.rank_down(source) or self.faults.rank_down(dest)
        ):
            self.stats[source].sends_dropped += 1
            self.faults.stats.sends_dropped += 1
            return
        key = (source, dest, tag)
        if key in self._mailbox:
            raise RuntimeError(f"unmatched earlier send on {key}")
        payload = np.ascontiguousarray(array)
        self._mailbox[key] = payload
        st = self.stats[source]
        st.messages_sent += 1
        st.bytes_sent += payload.nbytes

    def recv(
        self,
        dest: int,
        source: int,
        tag: int,
        *,
        retry: RetryPolicy | None = None,
        on_missing=None,
    ) -> np.ndarray:
        """Receive the message sent by *source* to *dest* under *tag*.

        Parameters
        ----------
        retry:
            Timeout/retry-with-backoff policy.  Each missing match waits
            the policy's backoff (accumulated in
            :attr:`waited_seconds`), invokes ``on_missing`` and polls
            again.
        on_missing:
            ``on_missing(source, dest, tag, attempt)`` callback run
            before each retry poll — the hook the cluster layer uses to
            trigger a sender-side retransmission.

        Raises
        ------
        CommTimeoutError
            When no matching send exists (a would-be deadlock), even
            after exhausting the retry budget.
        """
        key = (source, dest, tag)
        payload = self._mailbox.pop(key, None)
        if payload is None and retry is not None:
            st = self.stats[dest]
            waited = 0.0
            for attempt in range(retry.attempts):
                st.retry_waits += 1
                delay = retry.delay(attempt)
                waited += delay
                self.waited_seconds += delay
                if on_missing is not None:
                    on_missing(source, dest, tag, attempt)
                payload = self._mailbox.pop(key, None)
                if payload is not None:
                    break
            else:
                raise CommTimeoutError(
                    source,
                    dest,
                    tag,
                    retry.attempts,
                    elapsed_seconds=waited,
                    policy={
                        "attempts": retry.attempts,
                        "base_delay": retry.base_delay,
                        "multiplier": retry.multiplier,
                    },
                )
        if payload is None:
            raise CommTimeoutError(source, dest, tag)
        st = self.stats[dest]
        st.messages_received += 1
        st.bytes_received += payload.nbytes
        return payload

    def barrier(self, phase: str = "") -> None:
        """Phase-end assertion: every send must have been received.

        Raises
        ------
        PendingLeakError
            When sent-but-unreceived messages remain (leaked sends) —
            failing fast at the phase boundary instead of deadlocking a
            later receive.
        """
        if self._mailbox:
            raise PendingLeakError(phase, sorted(self._mailbox))

    @property
    def pending(self) -> int:
        """Sent-but-unreceived messages (must be 0 between phases)."""
        return len(self._mailbox)


@dataclass(frozen=True)
class CartGrid:
    """A P x Q Cartesian rank topology with 8-neighbour lookups.

    Unlike the WSE fabric, MPI ranks address *any* peer directly — a
    corner halo is one message, not a two-hop forward.  That contrast is
    exactly the paper's Sec. 5.2.2 point.
    """

    px: int
    py: int

    def __post_init__(self) -> None:
        if self.px < 1 or self.py < 1:
            raise ValueError("process grid dimensions must be >= 1")

    @property
    def size(self) -> int:
        return self.px * self.py

    def rank_of(self, cx: int, cy: int) -> int:
        """Rank at grid coordinate (cx, cy)."""
        if not (0 <= cx < self.px and 0 <= cy < self.py):
            raise ValueError(f"coordinate ({cx}, {cy}) outside {self.px}x{self.py} grid")
        return cy * self.px + cx

    def coords_of(self, rank: int) -> tuple[int, int]:
        """Grid coordinate of *rank*."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside grid of size {self.size}")
        return (rank % self.px, rank // self.px)

    def neighbour(self, rank: int, dx: int, dy: int) -> int | None:
        """Rank offset by (dx, dy), or None past the grid edge."""
        cx, cy = self.coords_of(rank)
        nx, ny = cx + dx, cy + dy
        if 0 <= nx < self.px and 0 <= ny < self.py:
            return self.rank_of(nx, ny)
        return None
