"""Human-readable rendering of trace aggregates: tables and heatmaps.

Turns a :class:`~repro.obs.trace.TraceSink` (plus optional
``RuntimeStats`` and span summaries) into the aggregated text report
the ``repro trace`` CLI prints: per-color traffic splits with hop
histograms (the paper's Table 3/4 accounting signals), per-direction
latency distributions, and an ASCII per-PE fabric heatmap.  The same
content is available as a JSON document for CI artifacts.
"""

from __future__ import annotations

import numpy as np

from repro.obs.trace import TraceSink, latency_bucket_bounds, unpack_link
from repro.util.reporting import Table

__all__ = [
    "render_report",
    "report_document",
    "render_heatmap",
    "consistency",
    "stall_report",
    "render_stall",
]

#: Glyph ramp for the ASCII heatmap, coldest to hottest.
_HEAT_GLYPHS = " .:-=+*#%@"


def consistency(sink: TraceSink, stats) -> dict:
    """Cross-check the streaming aggregates against the runtime counters.

    The per-color message counts must account for **exactly** the
    deliveries the runtime counted, and the per-link word totals for
    exactly its ``fabric_word_hops`` — the invariant behind trusting the
    O(1) aggregation at benchmark scale.
    """
    per_color_total = sum(sink.color_messages.values())
    return {
        "per_color_messages": per_color_total,
        "stats_messages_delivered": stats.messages_delivered,
        "messages_match": per_color_total == stats.messages_delivered,
        "link_word_hops": sink.link_word_hops,
        "stats_fabric_word_hops": stats.fabric_word_hops,
        "word_hops_match": sink.link_word_hops == stats.fabric_word_hops,
    }


def stall_report(runtime, *, max_items: int = 8) -> dict:
    """Diagnostic snapshot of a (possibly stalled) event runtime.

    Built by the progress watchdog when it raises
    :class:`~repro.faults.errors.FabricStallError`: the earliest
    ``max_items`` in-flight messages (what everyone is waiting for), the
    most recently active directed links (where traffic last moved), and
    the runtime counters at the moment of the stall.  Reads the
    runtime's private heap/link-busy state on purpose — this runs on the
    failure path, after the hot loop has stopped.
    """
    from dataclasses import asdict

    from repro.wse.geometry import Port
    from repro.wse.runtime import _EV_ARRIVE

    in_flight = []
    for event in sorted(runtime._heap)[:max_items]:
        if event[2] == _EV_ARRIVE:
            coord, in_port, msg = event[3], event[4], event[5]
            in_flight.append(
                {
                    "due": event[0],
                    "event": "arrival",
                    "dest": list(coord),
                    "in_port": Port(in_port).name,
                    "color": msg.color,
                    "kind": msg.kind,
                    "source": None if msg.source is None else list(msg.source),
                    "hops": msg.hops,
                    "words": msg.num_words,
                }
            )
        else:
            in_flight.append(
                {
                    "due": event[0],
                    "event": "call",
                    "fn": getattr(event[3], "__name__", repr(event[3])),
                }
            )
    last_active = [
        {
            "link": "({}, {})->{}".format(*unpack_link_named(key)),
            "busy_until": busy,
        }
        for key, busy in sorted(
            runtime._link_busy.items(), key=lambda kv: -kv[1]
        )[:max_items]
    ]
    return {
        "now": runtime.now,
        "pending_events": len(runtime._heap),
        "in_flight": in_flight,
        "last_active_links": last_active,
        "stats": asdict(runtime.stats),
    }


def unpack_link_named(key: int) -> tuple[int, int, str]:
    """(x, y, port-name) of a packed directed-link key."""
    from repro.wse.geometry import Port

    x, y, port = unpack_link(key)
    return x, y, Port(port).name


def render_stall(report: dict) -> str:
    """Printable form of a :func:`stall_report` dict."""
    lines = [
        f"stall diagnostic at t={report['now']:.0f}: "
        f"{report['pending_events']} events pending"
    ]
    for item in report["in_flight"]:
        if item["event"] == "arrival":
            lines.append(
                f"  due t={item['due']:.0f}: color {item['color']} "
                f"{item['kind']} {item['source']} -> {item['dest']} "
                f"via {item['in_port']} ({item['hops']} hops, "
                f"{item['words']} words)"
            )
        else:
            lines.append(f"  due t={item['due']:.0f}: call {item['fn']}")
    if report["last_active_links"]:
        lines.append("last-active links:")
        for link in report["last_active_links"]:
            lines.append(
                f"  {link['link']} busy until t={link['busy_until']:.0f}"
            )
    return "\n".join(lines)


def render_heatmap(sink: TraceSink, width: int, height: int) -> str:
    """ASCII per-PE outbound-traffic heatmap (rows are fabric rows)."""
    grid = sink.pe_heatmap(width, height)
    peak = int(grid.max())
    lines = [f"per-PE outbound words (peak {peak}):"]
    if peak == 0:
        scale = np.zeros_like(grid)
    else:
        scale = (grid * (len(_HEAT_GLYPHS) - 1) + peak - 1) // peak
    for y in range(height):
        row = "".join(_HEAT_GLYPHS[int(v)] for v in scale[y])
        lines.append(f"  y={y:<3d} |{row}|")
    return "\n".join(lines)


def _latency_rows(sink: TraceSink) -> list[tuple[str, str]]:
    """(direction, compact histogram) rows, dropping empty buckets."""
    bounds = latency_bucket_bounds()
    rows = []
    for label, hist in sorted(sink.direction_latency.items()):
        parts = []
        for i, n in enumerate(hist):
            if not n:
                continue
            lo, hi = bounds[i]
            hi_txt = "inf" if hi == float("inf") else f"{int(hi)}"
            parts.append(f"[{int(lo)},{hi_txt}): {n}")
        rows.append((label, "  ".join(parts) or "-"))
    return rows


def render_report(
    sink: TraceSink,
    *,
    stats=None,
    fabric_shape: tuple[int, int] | None = None,
    color_names: dict[int, str] | None = None,
    span_summary: dict | None = None,
) -> str:
    """The aggregated observability report as printable text."""
    names = color_names or {}
    out = []
    t = Table(
        f"Per-color traffic ({sink.deliveries} deliveries, "
        f"{len(sink.ring)} retained in ring)",
        ["Color", "Channel", "Messages", "Words", "Hop histogram"],
    )
    for color in sorted(sink.color_messages):
        hops = sink.color_hops.get(color, {})
        hops_txt = ", ".join(
            f"{h}:{n}" for h, n in sorted(hops.items())
        )
        t.add_row(
            [
                str(color),
                names.get(color, "-"),
                str(sink.color_messages[color]),
                str(sink.color_words.get(color, 0)),
                hops_txt,
            ]
        )
    out.append(t.render())

    lat = Table(
        "Delivery latency by direction (cycles, log2 buckets)",
        ["Direction", "Histogram"],
    )
    for label, hist_txt in _latency_rows(sink):
        lat.add_row([label, hist_txt])
    out.append("")
    out.append(lat.render())

    if fabric_shape is not None:
        out.append("")
        out.append(render_heatmap(sink, *fabric_shape))
        waited = sum(sink.link_wait.values())
        out.append(
            f"link contention: {len(sink.link_wait)} links waited, "
            f"{waited:.1f} cycles total"
        )

    if stats is not None:
        check = consistency(sink, stats)
        out.append("")
        out.append(
            "consistency: per-color messages "
            f"{check['per_color_messages']} vs runtime "
            f"{check['stats_messages_delivered']} "
            f"({'OK' if check['messages_match'] else 'MISMATCH'}); "
            f"link word-hops {check['link_word_hops']} vs runtime "
            f"{check['stats_fabric_word_hops']} "
            f"({'OK' if check['word_hops_match'] else 'MISMATCH'})"
        )

    if span_summary:
        sp = Table(
            "Host phase spans", ["Span", "Count", "Total [s]", "Mean [s]"]
        )
        for name in sorted(span_summary):
            row = span_summary[name]
            sp.add_row(
                [
                    name,
                    str(int(row["count"])),
                    f"{row['total_seconds']:.6f}",
                    f"{row['mean_seconds']:.6f}",
                ]
            )
        out.append("")
        out.append(sp.render())
    return "\n".join(out)


def report_document(
    sink: TraceSink,
    *,
    stats=None,
    fabric_shape: tuple[int, int] | None = None,
    color_names: dict[int, str] | None = None,
    span_summary: dict | None = None,
    extra: dict | None = None,
) -> dict:
    """JSON-able version of :func:`render_report` for artifacts."""
    doc = {"trace": sink.as_dict()}
    if color_names:
        doc["color_names"] = {str(c): n for c, n in color_names.items()}
    if stats is not None:
        doc["consistency"] = consistency(sink, stats)
    if fabric_shape is not None:
        doc["pe_heatmap"] = sink.pe_heatmap(*fabric_shape).tolist()
    if span_summary is not None:
        doc["spans"] = span_summary
    if extra:
        doc.update(extra)
    return doc
