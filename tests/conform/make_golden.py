"""Regenerate the golden replay-artifact registry.

Run from the repo root::

    PYTHONPATH=src python tests/conform/make_golden.py

The artifacts are deterministic byte-for-byte (stored ZIP, epoch
timestamps, canonical JSON), so re-running this script on any machine
must produce identical files; ``git diff`` after a regeneration is the
cheapest possible conformance check.  Keep the meshes tiny — these
files are committed.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.conform import record_run
from repro.faults import FaultPlan
from repro.util.jsonio import write_stable_json

GOLDEN = Path(__file__).resolve().parent / "golden"


def record_supervised_recovery():
    """Record a *supervisor-recovered* run as a replay artifact.

    A deterministic transient fault kills the second application of the
    first attempt; the supervisor restores its checkpoint, replay-
    verifies it, and finishes.  Because recovery is bounded-loss and
    bit-exact, the committed steps it feeds the recorder are identical
    to an uninterrupted run's — so the artifact replays clean on any
    conformant backend, and its ``supervisor`` meta key preserves the
    recovery provenance (chain, restarts, policy).
    """
    from repro.conform.runner import _build_mesh, _pressures
    from repro.core import FluidProperties
    from repro.faults.errors import CommTimeoutError
    from repro.obs.replay import ReplayRecorder
    from repro.resilience import ResiliencePolicy, RunSupervisor

    mesh_meta = {"nx": 4, "ny": 4, "nz": 3, "kind": "lognormal", "seed": 3}
    mesh = _build_mesh(mesh_meta)
    policy = ResiliencePolicy(
        backoff_base=0.0, backoff_jitter=0.0, checkpoint_every=1
    )
    meta = {
        "backend": "event",
        "backend_config": {
            "px": 2, "py": 2, "workers": None, "variant": "raja",
        },
        "mesh": dict(mesh_meta),
        "dtype": "float64",
        "pressure_seed": 1000,
        "fault_plan": None,
    }
    recorder = ReplayRecorder(meta, snapshot_every=1)
    sup = RunSupervisor(
        mesh, FluidProperties(), policy=policy, backend="event",
        record=recorder, mesh_meta=mesh_meta,
    )
    calls = {"n": 0}
    real_factory = sup._default_factory

    def factory(backend, attempt):
        run, finish = real_factory(backend, attempt)

        def run_single(p):
            calls["n"] += 1
            if calls["n"] == 2:  # transient fault at application 1
                raise CommTimeoutError(0, 1, 2, 3)
            return run(p)

        return run_single, finish

    sup._factory = factory
    result = sup.run(_pressures(mesh, 1000, 3))
    assert result.restarts == 1, "the golden recovery must actually recover"
    recorder.meta["supervisor"] = {
        "policy": policy.to_dict(),
        "backend_chain": result.backend_chain,
        "restarts": result.restarts,
        "restores": result.restores,
    }
    return recorder.finalize()


def main() -> int:
    GOLDEN.mkdir(parents=True, exist_ok=True)
    entries = []

    # 1. The flagship: a cluster recording that every backend must
    #    reproduce.  cluster/par replay bit-exactly (same host fold
    #    order); event/fused/lockstep/gpu replay within the ulp budget.
    art = record_run(
        "cluster", nx=4, ny=4, nz=3, geomodel="lognormal", seed=0,
        applications=3, px=2, py=2,
    )
    art.save(GOLDEN / "small-lognormal.rpz")
    entries.append(
        {
            "name": "small-lognormal",
            "file": "small-lognormal.rpz",
            "backends": ["event", "fused", "lockstep", "gpu", "cluster", "par"],
        }
    )

    # 2. A forced-order mesh (single interior column along Y): the
    #    event fabric's arrival order is forced, so lockstep must
    #    match it bit-for-bit, not just within tolerance.  fused shares
    #    the event fold class, so it is bit-exact on every shape.
    art = record_run(
        "event", nx=2, ny=1, nz=5, geomodel="layered", seed=1,
        applications=2,
    )
    art.save(GOLDEN / "forced-order.rpz")
    entries.append(
        {
            "name": "forced-order",
            "file": "forced-order.rpz",
            "backends": ["event", "fused", "lockstep"],
            "tolerance_overrides": {"lockstep": "bit-exact"},
        }
    )

    # 3. A faulted scenario: transient rank failures during recording.
    #    Recovery must reproduce the fault-free bits, so the replay
    #    (which re-injects the recorded plan) stays bit-exact.
    plan = FaultPlan.seeded(7, fabric_shape=(4, 4), ranks=4).only_ranks()
    art = record_run(
        "cluster", nx=4, ny=4, nz=3, geomodel="channelized", seed=7,
        applications=2, px=2, py=2, plan=plan,
    )
    art.save(GOLDEN / "faulted-recovery.rpz")
    entries.append(
        {
            "name": "faulted-recovery",
            "file": "faulted-recovery.rpz",
            "backends": ["cluster", "par"],
        }
    )

    # 4. A supervisor-recovered run: a transient fault mid-recording,
    #    healed by checkpoint restart.  The committed steps must be
    #    indistinguishable from an uninterrupted run, so every replay
    #    backend treats it like any clean event recording.
    art = record_supervised_recovery()
    art.save(GOLDEN / "supervised-recovery.rpz")
    entries.append(
        {
            "name": "supervised-recovery",
            "file": "supervised-recovery.rpz",
            "backends": ["event", "fused", "lockstep", "gpu"],
        }
    )

    # 5. A variable-thickness mesh (dz_layers) on a channelized
    #    geomodel, recorded on the event fabric: the mesh recipe
    #    carries the per-layer thicknesses, so replays must rebuild
    #    the exact transmissibilities.  fused must match to the bit.
    art = record_run(
        "event", nx=4, ny=3, nz=4, geomodel="channelized", seed=11,
        applications=2, dz_layers=[1.0, 2.5, 0.5, 3.0],
    )
    art.save(GOLDEN / "dz-layers.rpz")
    entries.append(
        {
            "name": "dz-layers",
            "file": "dz-layers.rpz",
            "backends": ["event", "fused", "lockstep", "gpu"],
        }
    )

    write_stable_json(GOLDEN / "registry.json", {"artifacts": entries})
    for entry in entries:
        print(f"wrote {GOLDEN / entry['file']}")
    print(f"wrote {GOLDEN / 'registry.json'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
