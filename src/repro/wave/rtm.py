"""Reverse Time Migration: the intermediate-results workflow of Sec. 8.

"The memory optimization techniques discussed in this study are crucial
for applications such as Reverse Time Migration workflows, which require
handling a significant amount of intermediate results."

RTM images reflectors by cross-correlating a forward-propagated source
wavefield with a backward-propagated receiver wavefield:

    image(x) = sum_t  S(x, t) * R(x, t)

The source wavefield at every time step is the "significant amount of
intermediate results": storing it all costs ``steps x cells`` floats.
:class:`SnapshotStore` makes the memory/accuracy trade explicit through
decimated storage — the same lever (reusing/recomputing intermediate
buffers) the paper's Sec. 5.3.1 optimizations exercise on the PE
scratchpads.

The demo geometry is a 2D x-z section (``ny = 1``): a surface source, a
row of surface receivers, and a velocity anomaly at depth whose
reflection the migration relocates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mesh import CartesianMesh3D
from repro.wave.medium import TTIMedium
from repro.wave.reference import WavePropagator, ricker_wavelet

__all__ = ["SnapshotStore", "model_shot", "rtm_image", "RtmResult"]


class SnapshotStore:
    """Decimated wavefield history with explicit memory accounting.

    Parameters
    ----------
    decimation:
        Store every k-th step (k = 1 keeps everything); imaging uses the
        nearest stored snapshot, trading memory for correlation accuracy.
    """

    def __init__(self, decimation: int = 1) -> None:
        if decimation < 1:
            raise ValueError("decimation must be >= 1")
        self.decimation = decimation
        self._snapshots: dict[int, np.ndarray] = {}

    def offer(self, step: int, field: np.ndarray) -> None:
        """Store *field* if *step* falls on the decimation grid."""
        if step % self.decimation == 0:
            self._snapshots[step] = field.copy()

    def nearest(self, step: int) -> np.ndarray:
        """The stored snapshot closest to *step*."""
        if not self._snapshots:
            raise KeyError("no snapshots stored")
        key = min(self._snapshots, key=lambda s: abs(s - step))
        return self._snapshots[key]

    @property
    def count(self) -> int:
        """Snapshots held."""
        return len(self._snapshots)

    @property
    def bytes_stored(self) -> int:
        """Total intermediate-result memory [B]."""
        return sum(f.nbytes for f in self._snapshots.values())


def model_shot(
    mesh: CartesianMesh3D,
    medium: TTIMedium,
    velocity_field: np.ndarray,
    *,
    source: tuple[int, int, int],
    receiver_z: int,
    wavelet: np.ndarray,
    dt: float,
) -> np.ndarray:
    """Forward-model one shot; return receiver traces ``(steps, nx)``.

    Receivers sample every x position of layer ``receiver_z`` (y = 0).
    """
    prop = WavePropagator(
        mesh, medium, dt, source=source, velocity_field=velocity_field
    )
    traces = np.zeros((len(wavelet), mesh.nx))
    for i, amp in enumerate(np.asarray(wavelet, dtype=np.float64)):
        prop.step(float(amp))
        traces[i] = prop.u_curr[receiver_z, 0, :]
    return traces


@dataclass
class RtmResult:
    """Image and the intermediate-results accounting."""

    image: np.ndarray
    snapshots: int
    snapshot_bytes: int
    steps: int

    @property
    def full_history_bytes(self) -> int:
        """What storing every step would have cost."""
        return self.steps * self.image.nbytes

    @property
    def memory_saving(self) -> float:
        """Fraction of the full history avoided by decimation."""
        full = self.full_history_bytes
        return 1.0 - self.snapshot_bytes / full if full else 0.0


def rtm_image(
    mesh: CartesianMesh3D,
    medium: TTIMedium,
    background_velocity: np.ndarray,
    observed: np.ndarray,
    *,
    source: tuple[int, int, int],
    receiver_z: int,
    wavelet: np.ndarray,
    dt: float,
    decimation: int = 1,
) -> RtmResult:
    """Migrate one shot's residual data back into the model.

    Parameters
    ----------
    observed:
        Recorded traces ``(steps, nx)`` from :func:`model_shot` through
        the true model; the direct arrival modelled in the *background*
        is subtracted internally, so only reflections migrate.
    decimation:
        Source-snapshot decimation (the memory/accuracy knob).
    """
    steps = len(wavelet)
    if observed.shape != (steps, mesh.nx):
        raise ValueError(f"observed must have shape ({steps}, {mesh.nx})")

    # 1. forward: source wavefield through the background, with the
    #    direct-arrival traces recorded for subtraction
    store = SnapshotStore(decimation)
    fwd = WavePropagator(
        mesh, medium, dt, source=source, velocity_field=background_velocity
    )
    direct = np.zeros_like(observed)
    for i, amp in enumerate(np.asarray(wavelet, dtype=np.float64)):
        fwd.step(float(amp))
        direct[i] = fwd.u_curr[receiver_z, 0, :]
        store.offer(i, fwd.u_curr)
    reflections = observed - direct

    # 2. backward: inject the reflections time-reversed at the receivers
    #    and correlate with the stored source wavefield
    bwd = WavePropagator(
        mesh, medium, dt, velocity_field=background_velocity
    )
    image = mesh.zeros()
    for i in range(steps - 1, -1, -1):
        bwd.u_curr[receiver_z, 0, :] += dt**2 * reflections[i]
        bwd.step()
        image += store.nearest(i) * bwd.u_curr
    return RtmResult(
        image=image,
        snapshots=store.count,
        snapshot_bytes=store.bytes_stored,
        steps=steps,
    )
