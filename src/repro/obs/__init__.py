"""Observability layer: streaming trace aggregation, spans, metrics.

``repro.obs`` is the one place every backend reports through:

* :mod:`repro.obs.trace` — bounded ring-buffer trace sink with O(1)
  per-event aggregation (per-color histograms, latency distributions,
  fabric link heatmaps) for the event runtime;
* :mod:`repro.obs.spans` — span-based phase timers with Chrome
  trace-event export (viewable in Perfetto), instrumenting the event
  runtime driver, lockstep backend, GPU model, cluster communicator and
  the Newton/Krylov solvers;
* :mod:`repro.obs.metrics` — a registry unifying ``RuntimeStats``, DSD
  instruction counts and the calibrated time models behind one
  ``collect()`` / ``merge()`` / ``to_json()`` surface;
* :mod:`repro.obs.report` — aggregated text/JSON reports and ASCII
  fabric heatmaps;
* :mod:`repro.obs.profile` — opt-in cProfile capture with
  fixed-workload diffing (the flamegraph workflow);
* :mod:`repro.obs.replay` — deterministic replay artifacts (byte-stable
  ``.rpz`` bundles of per-step digests + residual snapshots) recordable
  from any backend driver via its ``record=`` hook and replayed by
  :mod:`repro.conform`.

See DESIGN.md §9/§13 and ``repro trace --help``.
"""

from repro.obs.profile import (
    diff_rows,
    load_rows,
    profile_call,
    profile_rows,
    render_rows,
    save_rows,
)
from repro.obs.metrics import (
    MetricsRegistry,
    merge_metrics,
    run_result_metrics,
    runtime_stats_metrics,
    trace_sink_metrics,
)
from repro.obs.replay import (
    ReplayArtifact,
    ReplayRecorder,
    digest_array,
    fingerprint_document,
)
from repro.obs.report import (
    consistency,
    render_heatmap,
    render_report,
    render_stall,
    report_document,
    stall_report,
)
from repro.obs.spans import (
    SpanRecorder,
    chrome_trace_document,
    get_recorder,
    ingest_spans,
    set_recorder,
    span,
    spans_to_payload,
    write_chrome_trace,
)
from repro.obs.trace import (
    DeliveryRecord,
    TraceSink,
    latency_bucket_bounds,
    pack_link,
    unpack_link,
)

__all__ = [
    "DeliveryRecord",
    "TraceSink",
    "pack_link",
    "unpack_link",
    "latency_bucket_bounds",
    "SpanRecorder",
    "span",
    "get_recorder",
    "set_recorder",
    "chrome_trace_document",
    "write_chrome_trace",
    "spans_to_payload",
    "ingest_spans",
    "MetricsRegistry",
    "merge_metrics",
    "runtime_stats_metrics",
    "run_result_metrics",
    "trace_sink_metrics",
    "consistency",
    "render_report",
    "render_heatmap",
    "report_document",
    "stall_report",
    "render_stall",
    "profile_call",
    "profile_rows",
    "diff_rows",
    "save_rows",
    "load_rows",
    "render_rows",
    "ReplayArtifact",
    "ReplayRecorder",
    "digest_array",
    "fingerprint_document",
]
