"""repro — reproduction of "Massively Distributed Finite-Volume Flux
Computation" (SC 2023).

The package implements the paper's TPFA finite-volume flux kernel three
ways and cross-validates them:

* :mod:`repro.core` — vectorized NumPy reference (ground truth);
* :mod:`repro.gpu` — RAJA-like and CUDA-like kernels on a simulated
  A100-class device with an occupancy/bandwidth cost model;
* :mod:`repro.dataflow` — the paper's contribution: a cell-based mapping
  onto a simulated wafer-scale engine (:mod:`repro.wse`) with the two-step
  cardinal router-switch protocol and the two-hop diagonal exchange.

:mod:`repro.perf` provides the analytic timing/roofline/energy models that
regenerate the paper's tables and figures, and :mod:`repro.solver` extends
the kernel into a matrix-free implicit single-phase flow simulator
(paper Sec. 8).
"""

from repro._version import __version__
from repro.core import (
    CartesianMesh3D,
    Connection,
    FluidProperties,
    FluxKernel,
    PressureSequence,
    Transmissibility,
    compute_flux_residual,
)

__all__ = [
    "__version__",
    "CartesianMesh3D",
    "Connection",
    "FluidProperties",
    "FluxKernel",
    "PressureSequence",
    "Transmissibility",
    "compute_flux_residual",
]
