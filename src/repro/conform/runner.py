"""Record and replay runs for cross-backend conformance.

:func:`record_run` executes a configuration on one backend with a
:class:`~repro.obs.replay.ReplayRecorder` attached and returns the
finished :class:`~repro.obs.replay.ReplayArtifact`.  :func:`replay` then
re-executes an artifact on any backend — rebuilding the mesh, geomodel
and pressure sequence from the recorded seeds — and diffs every step
against the recording under a :class:`~repro.conform.tolerance.ToleranceClass`,
stopping at the **first divergence** (step, cell coordinate, owning PE,
expected/actual bit patterns).

The golden registry (``tests/conform/golden/``) is a set of recorded
artifacts plus ``registry.json`` naming, for each, the backends it must
replay on and any per-backend tolerance overrides (event vs lockstep is
bit-exact only on the forced-order fabric shapes, so the override lives
with the artifact that was recorded on one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.conform.tolerance import (
    BIT_EXACT,
    ULP_BOUNDED,
    ToleranceClass,
    default_tolerance,
    ulp_distance,
)
from repro.core.fluid import FluidProperties
from repro.core.mesh import CartesianMesh3D
from repro.core.state import random_pressure
from repro.faults.plan import FaultPlan
from repro.obs.replay import ReplayArtifact, ReplayRecorder, digest_array

__all__ = [
    "BACKENDS",
    "Divergence",
    "ConformResult",
    "record_run",
    "replay",
    "load_registry",
    "run_golden",
    "named_tolerance",
]

#: Every backend the conformance suite can record from / replay on.
BACKENDS = ("event", "fused", "lockstep", "gpu", "cluster", "par")

_DEFAULT_PRESSURE_SEED = 2024


def _build_mesh(mesh_meta: dict) -> CartesianMesh3D:
    """Rebuild the recorded mesh exactly from its recipe."""
    kind = mesh_meta["kind"]
    nx, ny, nz = mesh_meta["nx"], mesh_meta["ny"], mesh_meta["nz"]
    dz_layers = mesh_meta.get("dz_layers")
    if kind == "plain":
        return CartesianMesh3D(nx, ny, nz, dz_layers=dz_layers)
    from repro.workloads.geomodels import make_geomodel

    return make_geomodel(
        nx, ny, nz, kind=kind, seed=mesh_meta["seed"], dz_layers=dz_layers
    )


def _pressures(mesh: CartesianMesh3D, seed: int, applications: int):
    """The recorded pressure sequence (seeded, hence reproducible)."""
    return [
        random_pressure(mesh, seed=seed + i) for i in range(applications)
    ]


def _fault_plan(meta: dict) -> FaultPlan | None:
    plan_doc = meta.get("fault_plan")
    if not plan_doc:
        return None
    return FaultPlan.from_dict(plan_doc)


def _make_backend(
    backend: str,
    mesh: CartesianMesh3D,
    meta: dict,
    record: ReplayRecorder | None,
):
    """Instantiate a backend driver with the recording hook attached.

    Returns ``(driver, run, finish)`` where ``run(pressures)`` executes
    the batch and ``finish()`` releases resources (par pools).
    """
    fluid = FluidProperties()
    dtype = np.dtype(meta["dtype"])
    cfg = meta.get("backend_config") or {}
    plan = _fault_plan(meta)
    if backend == "event":
        from repro.dataflow.driver import WseFluxComputation

        drv = WseFluxComputation(
            mesh, fluid, dtype=dtype, record=record,
            faults=_injector(plan.only_fabric()) if plan else None,
        )
        return drv, drv.run, lambda: None
    if backend == "fused":
        from repro.ir.fused import FusedFluxComputation

        if plan is not None:
            raise ValueError(
                "fused backend does not support fault injection"
            )
        drv = FusedFluxComputation(mesh, fluid, dtype=dtype, record=record)
        return drv, drv.run, lambda: None
    if backend == "lockstep":
        from repro.dataflow.lockstep import LockstepWseSimulation

        drv = LockstepWseSimulation(mesh, fluid, dtype=dtype, record=record)
        return drv, drv.run, lambda: None
    if backend == "gpu":
        from repro.gpu.reference import GpuFluxComputation

        drv = GpuFluxComputation(
            mesh, fluid, dtype=dtype,
            variant=cfg.get("variant", "raja"), record=record,
        )
        return drv, drv.run, lambda: None
    if backend == "cluster":
        from repro.cluster.flux import ClusterFluxComputation

        drv = ClusterFluxComputation(
            mesh, fluid, px=cfg.get("px", 2), py=cfg.get("py", 2),
            dtype=dtype, record=record,
            faults=_injector(plan.only_ranks()) if plan else None,
        )
        return drv, drv.run, lambda: None
    if backend == "par":
        from repro.par.flux import ParClusterFluxComputation

        drv = ParClusterFluxComputation(
            mesh, fluid, px=cfg.get("px", 2), py=cfg.get("py", 2),
            workers=cfg.get("workers"), dtype=dtype, record=record,
            plan=plan.only_ranks() if plan else None,
        )
        return drv, drv.run, drv.close
    raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")


def _injector(plan: FaultPlan):
    """A fresh injector for *plan* (None when the plan is empty)."""
    if plan is None or plan.empty:
        return None
    from repro.faults.injector import FaultInjector

    return FaultInjector(plan)


# --------------------------------------------------------------------- #
# Recording
# --------------------------------------------------------------------- #
def record_run(
    backend: str,
    *,
    nx: int,
    ny: int,
    nz: int,
    geomodel: str = "lognormal",
    seed: int = 0,
    applications: int = 2,
    dtype: str = "float64",
    px: int = 2,
    py: int = 2,
    workers: int | None = None,
    variant: str = "raja",
    plan: FaultPlan | None = None,
    pressure_seed: int = _DEFAULT_PRESSURE_SEED,
    snapshot_every: int = 1,
    dz_layers=None,
    trace: dict | None = None,
    spans: list | None = None,
    metrics: dict | None = None,
    extra_meta: dict | None = None,
) -> ReplayArtifact:
    """Execute one run on *backend* and capture it as a replay artifact.

    ``dz_layers`` (a length-``nz`` thickness list) rides in the mesh
    recipe so replays rebuild the variable-thickness mesh exactly.
    ``extra_meta`` keys pass straight through into the artifact's
    metadata (the chaos harness uses this for post-mortem context).
    """
    mesh_meta = {
        "nx": nx, "ny": ny, "nz": nz, "kind": geomodel, "seed": seed,
    }
    if dz_layers is not None:
        mesh_meta["dz_layers"] = [float(t) for t in dz_layers]
    meta = {
        "backend": backend,
        "backend_config": {
            "px": px, "py": py, "workers": workers, "variant": variant,
        },
        "mesh": mesh_meta,
        "dtype": dtype,
        "pressure_seed": pressure_seed,
        "fault_plan": plan.to_dict() if plan is not None else None,
    }
    if extra_meta:
        meta.update(extra_meta)
    mesh = _build_mesh(meta["mesh"])
    recorder = ReplayRecorder(meta, snapshot_every=snapshot_every)
    drv, run, finish = _make_backend(backend, mesh, meta, recorder)
    try:
        run(_pressures(mesh, pressure_seed, applications))
    finally:
        finish()
    fingerprint = None
    if backend == "event":
        fingerprint = _program_fingerprint(drv.program)
    elif backend == "fused":
        fingerprint = drv.ir.content_hash
    if trace is None and getattr(drv, "trace_sink", None) is not None:
        trace = drv.trace_sink.as_dict()
    return recorder.finalize(
        trace=trace, spans=spans, metrics=metrics,
        program_fingerprint=fingerprint,
    )


def _program_fingerprint(program) -> str:
    """Content hash of the compiled program's fabric-program IR.

    The IR subsumes the old ad-hoc export digest: colors, full route
    tables, memory layouts, injector/receiver sets and the fold-order
    contracts all feed the hash, so any routing or layout drift between
    record and replay time shows up as a fingerprint mismatch.
    """
    from repro.ir.builder import build_ir

    return build_ir(program).content_hash


# --------------------------------------------------------------------- #
# Replay + diff
# --------------------------------------------------------------------- #
@dataclass
class Divergence:
    """The first point where a replay left the recording's tolerance."""

    step: int
    backend_pair: tuple[str, str]
    tolerance: str
    #: ``(z, y, x)`` of the worst offending cell; None when the recording
    #: kept no snapshot for the step (digest-only mismatch).
    cell: tuple[int, int, int] | None = None
    #: Owning PE ``(x, y)`` on the fabric mapping (column x, row y).
    pe: tuple[int, int] | None = None
    expected_bits: str | None = None
    actual_bits: str | None = None
    expected_value: float | None = None
    actual_value: float | None = None
    ulps: float | None = None
    detail: str = ""

    def render(self) -> str:
        rec, rep = self.backend_pair
        lines = [
            f"FIRST DIVERGENCE at step {self.step} "
            f"(recorded on {rec}, replayed on {rep}, {self.tolerance})"
        ]
        if self.cell is not None:
            z, y, x = self.cell
            lines.append(
                f"  cell (z={z}, y={y}, x={x})"
                + (f", PE (x={self.pe[0]}, y={self.pe[1]})"
                   if self.pe is not None else "")
            )
            lines.append(
                f"  expected {self.expected_value!r} [{self.expected_bits}]"
            )
            lines.append(
                f"  actual   {self.actual_value!r} [{self.actual_bits}]"
            )
            if self.ulps is not None:
                lines.append(f"  distance {self.ulps:g} ulp(s)")
        if self.detail:
            lines.append(f"  {self.detail}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "step": self.step,
            "backend_pair": list(self.backend_pair),
            "tolerance": self.tolerance,
            "cell": list(self.cell) if self.cell is not None else None,
            "pe": list(self.pe) if self.pe is not None else None,
            "expected_bits": self.expected_bits,
            "actual_bits": self.actual_bits,
            "expected_value": self.expected_value,
            "actual_value": self.actual_value,
            "ulps": self.ulps,
            "detail": self.detail,
        }


@dataclass
class ConformResult:
    """Outcome of replaying one artifact on one backend."""

    artifact: str
    recorded_backend: str
    replay_backend: str
    tolerance: str
    steps_checked: int = 0
    divergence: Divergence | None = None
    #: Per-step summaries: index, pressure_ok, residual match kind.
    steps: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def render(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        head = (
            f"[{status}] {self.artifact}: {self.recorded_backend} -> "
            f"{self.replay_backend}, {self.steps_checked} step(s), "
            f"{self.tolerance}"
        )
        if self.divergence is None:
            return head
        return head + "\n" + self.divergence.render()

    def as_dict(self) -> dict:
        return {
            "artifact": self.artifact,
            "recorded_backend": self.recorded_backend,
            "replay_backend": self.replay_backend,
            "tolerance": self.tolerance,
            "steps_checked": self.steps_checked,
            "ok": self.ok,
            "divergence": (
                self.divergence.as_dict() if self.divergence else None
            ),
            "steps": self.steps,
        }


class _CheckingRecorder:
    """A record hook that *diffs* each step instead of storing it.

    Duck-types ``record_step`` so the same driver-side hook serves both
    recording and replay; raises :class:`_Stop` at the first divergence
    so long batches don't waste work past the point of failure.
    """

    def __init__(
        self,
        artifact: ReplayArtifact,
        replay_backend: str,
        tol: ToleranceClass,
    ) -> None:
        self.artifact = artifact
        self.backend_pair = (artifact.backend, replay_backend)
        self.tol = tol
        self.steps: list[dict] = []
        self.divergence: Divergence | None = None

    # -- helpers -------------------------------------------------------- #
    def _bits(self, value: np.ndarray) -> str:
        width = value.dtype.itemsize
        uint = {8: np.uint64, 4: np.uint32}[width]
        return f"0x{int(value.view(uint)):0{2 * width}x}"

    def _pe_of(self, cell: tuple[int, int, int]) -> tuple[int, int]:
        # every backend maps mesh column (x, y) to fabric PE (x, y)
        _z, y, x = cell
        return (x, y)

    def _diverge_on_cells(
        self, index: int, expected: np.ndarray, actual: np.ndarray
    ) -> Divergence:
        bad = self.tol.failures(expected, actual)
        flat = int(np.argmax(bad))
        cell = tuple(int(c) for c in np.unravel_index(flat, bad.shape))
        ev = expected[cell]
        av = actual[cell]
        ulps = float(ulp_distance(ev.reshape(1), av.reshape(1))[0])
        return Divergence(
            step=index,
            backend_pair=self.backend_pair,
            tolerance=self.tol.describe(),
            cell=cell,
            pe=self._pe_of(cell),
            expected_bits=self._bits(ev),
            actual_bits=self._bits(av),
            expected_value=float(ev),
            actual_value=float(av),
            ulps=ulps,
            detail=f"{int(bad.sum())} cell(s) out of tolerance",
        )

    # -- the hook -------------------------------------------------------- #
    def record_step(self, pressure: np.ndarray, residual: np.ndarray) -> None:
        index = len(self.steps)
        recorded = self.artifact.steps[index]
        # the inputs must match exactly or the diff means nothing
        p_digest = digest_array(np.asarray(pressure))
        if p_digest != recorded["pressure_sha256"]:
            self.divergence = Divergence(
                step=index,
                backend_pair=self.backend_pair,
                tolerance=self.tol.describe(),
                detail=(
                    "replayed pressure field does not match the recording "
                    "(environment drift — RNG or dtype mismatch)"
                ),
            )
            raise _Stop()
        actual = np.asarray(residual)
        r_digest = digest_array(actual)
        digest_match = r_digest == recorded["residual_sha256"]
        if digest_match:
            self.steps.append({"index": index, "match": "bit-exact"})
            return
        snapshot = self.artifact.snapshot(index)
        if self.tol.bit_exact:
            if snapshot is not None:
                self.divergence = self._diverge_on_cells(
                    index, snapshot, actual
                )
            else:
                self.divergence = Divergence(
                    step=index,
                    backend_pair=self.backend_pair,
                    tolerance=self.tol.describe(),
                    detail=(
                        f"residual digest mismatch (expected "
                        f"{recorded['residual_sha256'][:16]}..., got "
                        f"{r_digest[:16]}...); no snapshot kept for this "
                        f"step, so the cell cannot be localized"
                    ),
                )
            raise _Stop()
        if snapshot is None:
            # ulp-bounded without a snapshot: nothing to compare against,
            # and a digest mismatch is *expected* across fold classes
            self.steps.append({"index": index, "match": "unchecked"})
            return
        bad = self.tol.failures(snapshot, actual)
        if bad.any():
            self.divergence = self._diverge_on_cells(index, snapshot, actual)
            raise _Stop()
        self.steps.append({"index": index, "match": "within-tolerance"})


class _Stop(Exception):
    """Internal: first divergence found, abandon the rest of the batch."""


def replay(
    artifact: ReplayArtifact,
    backend: str,
    *,
    tolerance: ToleranceClass | None = None,
    artifact_name: str = "<artifact>",
) -> ConformResult:
    """Re-execute *artifact* on *backend* and diff against the recording."""
    meta = artifact.meta
    tol = tolerance or default_tolerance(artifact.backend, backend)
    mesh = _build_mesh(meta["mesh"])
    checker = _CheckingRecorder(artifact, backend, tol)
    drv, run, finish = _make_backend(backend, mesh, meta, checker)
    try:
        run(
            _pressures(
                mesh, meta["pressure_seed"], artifact.applications
            )
        )
    except _Stop:
        pass
    finally:
        finish()
    return ConformResult(
        artifact=artifact_name,
        recorded_backend=artifact.backend,
        replay_backend=backend,
        tolerance=tol.name,
        steps_checked=len(checker.steps) + (0 if checker.divergence is None else 1),
        divergence=checker.divergence,
        steps=checker.steps,
    )


# --------------------------------------------------------------------- #
# Golden registry
# --------------------------------------------------------------------- #
def golden_dir() -> Path:
    """The checked-in golden artifact registry directory."""
    return (
        Path(__file__).resolve().parents[3] / "tests" / "conform" / "golden"
    )


def load_registry(directory: Path | None = None) -> list[dict]:
    """Entries of ``registry.json``: artifact file, backends, overrides."""
    import json

    directory = Path(directory) if directory else golden_dir()
    doc = json.loads((directory / "registry.json").read_text())
    entries = []
    for entry in doc["artifacts"]:
        entries.append(
            {
                "name": entry["name"],
                "path": directory / entry["file"],
                "backends": list(entry["backends"]),
                "tolerance_overrides": dict(
                    entry.get("tolerance_overrides", {})
                ),
            }
        )
    return entries


def named_tolerance(name: str) -> ToleranceClass:
    classes = {"bit-exact": BIT_EXACT, "ulp-bounded": ULP_BOUNDED}
    try:
        return classes[name]
    except KeyError:
        raise ValueError(
            f"unknown tolerance class {name!r}; choose from {sorted(classes)}"
        ) from None


def run_golden(
    directory: Path | None = None,
    *,
    backends: list[str] | None = None,
    skip_par: bool = False,
) -> list[ConformResult]:
    """Replay every golden artifact on its registered backends.

    ``backends`` restricts the replay set; ``skip_par`` drops the par
    backend (CI uses it on single-CPU runners where spawning a worker
    pool is pure overhead, though it would still pass).
    """
    results: list[ConformResult] = []
    for entry in load_registry(directory):
        artifact = ReplayArtifact.load(entry["path"])
        for backend in entry["backends"]:
            if backends is not None and backend not in backends:
                continue
            if skip_par and backend == "par":
                continue
            override = entry["tolerance_overrides"].get(backend)
            results.append(
                replay(
                    artifact,
                    backend,
                    tolerance=(
                        named_tolerance(override) if override else None
                    ),
                    artifact_name=entry["name"],
                )
            )
    return results
