"""Compiler vs capture: ``derive_ir(mesh, ...) == build_ir(program)``.

The byte-for-byte invariant pins the closed-form derivation to what the
runtime actually installs — if either side drifts (a route formula, an
allocation order, a color id), the serialized documents stop matching.
"""

import numpy as np
import pytest

from repro.core import CartesianMesh3D, FluidProperties
from repro.dataflow.cardinal import CARDINAL_CHANNELS
from repro.dataflow.diagonal import DIAGONAL_CHANNELS
from repro.dataflow.export import export_program
from repro.dataflow.mapping import SpareColumnRemap
from repro.dataflow.program import FluxProgram
from repro.ir import build_ir, derive_ir

VARIANTS = {
    "default": {},
    "float64": {"dtype": np.float64},
    "no-reuse": {"reuse_buffers": False},
    "no-overlap": {"reuse_buffers": False, "overlap_compute": False},
    "comm-only": {"compute_fluxes": False},
}


def _program(dims, **kwargs) -> FluxProgram:
    return FluxProgram(CartesianMesh3D(*dims), FluidProperties(), **kwargs)


class TestCompilerMatchesCapture:
    @pytest.mark.parametrize("name", sorted(VARIANTS))
    def test_derive_equals_build_byte_for_byte(self, name):
        kwargs = VARIANTS[name]
        program = _program((4, 3, 4), **kwargs)
        derived = derive_ir(program.mesh, **kwargs)
        captured = build_ir(program)
        assert derived.dumps() == captured.dumps()

    def test_remap_variant_matches(self):
        remap = SpareColumnRemap.around_dead_pes((6, 5), [(2, 1)])
        mesh = CartesianMesh3D(6, 5, 4)
        program = FluxProgram(mesh, FluidProperties(), remap=remap)
        derived = derive_ir(mesh, remap=remap)
        assert derived.dumps() == build_ir(program).dumps()

    def test_repeated_derivation_is_deterministic(self):
        mesh = CartesianMesh3D(5, 4, 3)
        assert derive_ir(mesh).dumps() == derive_ir(mesh).dumps()


class TestColorTable:
    def test_colors_are_cardinal_then_diagonal_in_channel_order(self):
        ir = derive_ir(CartesianMesh3D(3, 3, 3))
        expected = [
            ch.name for ch in (*CARDINAL_CHANNELS, *DIAGONAL_CHANNELS)
        ]
        assert [ir.colors[i] for i in range(len(expected))] == expected
        assert ir.route_color_ids() == tuple(range(len(expected)))


class TestExportSubsumption:
    """The IR carries everything ``ProgramExport`` carried."""

    def test_ir_reproduces_the_export_view(self):
        program = _program((4, 3, 4))
        export = export_program(program)
        ir = build_ir(program)
        assert ir.colors == export.colors
        for cid, coords in export.expected_receivers.items():
            assert set(map(tuple, ir.expected_receivers(cid))) == set(coords)
        program_coords = {pe.coord for _lx, _ly, pe in program.program_pes()}
        assert set(ir.memory_coords()) == program_coords
        for coord in sorted(program_coords):
            memory = program.fabric.pe_map[coord].memory
            names = [rec["name"] for rec in ir.memory_records_for(coord)]
            assert names == list(memory.names())

    def test_injector_sets_match_the_live_step1_channels(self):
        program = _program((5, 4, 3))
        ir = build_ir(program)
        live = {ch.name: set() for ch in CARDINAL_CHANNELS}
        for _lx, _ly, pe in program.program_pes():
            for channel in pe.state["step1_channels"]:
                live[channel.name].add(pe.coord)
        for name, coords in live.items():
            assert ir.injector_coords(name) == coords
