"""Bit-identity tests for the vectorized per-rank kernel.

:class:`~repro.par.kernel.RankKernel` must reproduce the reference
:class:`~repro.core.flux.FluxKernel` residual to the last bit, both on
whole blocks (the drop-in guarantee) and when the block is assembled
from disjoint boxes (the overlapped-exchange schedule).
"""

import numpy as np
import pytest

from repro.core import CartesianMesh3D, FluidProperties, PressureSequence
from repro.core.flux import FluxKernel
from repro.cluster.decomposition import BlockDecomposition
from repro.par.kernel import RankKernel, full_box
from repro.workloads import make_geomodel


def reference_bits(mesh, fluid, pressure):
    return FluxKernel(mesh, fluid).residual(pressure).tobytes()


@pytest.fixture(scope="module")
def fluid():
    return FluidProperties()


class TestFullBlock:
    @pytest.mark.parametrize("kind", ["lognormal", "channelized", "layered"])
    def test_matches_reference_kernel(self, fluid, kind):
        mesh = make_geomodel(9, 7, 4, kind=kind, seed=5)
        seq = PressureSequence(mesh, num_applications=2, seed=5)
        kernel = RankKernel(mesh, fluid)
        out = np.empty(mesh.shape_zyx)
        for i in range(2):
            p = seq.field(i)
            kernel.residual(p, out=out)
            assert out.tobytes() == reference_bits(mesh, fluid, p)

    def test_variable_layer_thickness(self, fluid):
        mesh = CartesianMesh3D(6, 5, 4, dz_layers=[1.0, 2.5, 0.75, 3.0])
        p = PressureSequence(mesh, num_applications=1, seed=2).field(0)
        res = RankKernel(mesh, fluid).residual(p)
        assert res.tobytes() == reference_bits(mesh, fluid, p)

    def test_single_layer_mesh(self, fluid):
        mesh = make_geomodel(8, 6, 1, seed=3)
        p = PressureSequence(mesh, num_applications=1, seed=3).field(0)
        res = RankKernel(mesh, fluid).residual(p)
        assert res.tobytes() == reference_bits(mesh, fluid, p)

    def test_padded_rank_blocks(self, fluid):
        """The actual worker inputs: halo-padded local meshes."""
        mesh = make_geomodel(15, 14, 3, kind="lognormal", seed=11)
        decomp = BlockDecomposition(mesh, 3, 2)
        seq = PressureSequence(mesh, num_applications=1, seed=11)
        p = seq.field(0)
        for block in decomp.blocks:
            local_mesh = decomp.local_mesh(block)
            local_p = np.ascontiguousarray(
                p[decomp.padded_field_slices(block)]
            )
            res = RankKernel(local_mesh, fluid).residual(local_p)
            assert res.tobytes() == reference_bits(local_mesh, fluid, local_p)


class TestBoxAssembly:
    def test_box_partition_matches_full_block(self, fluid):
        """Interior + boundary-ring assembly == one full-block call."""
        mesh = make_geomodel(10, 8, 3, kind="lognormal", seed=7)
        p = PressureSequence(mesh, num_applications=1, seed=7).field(0)
        kernel = RankKernel(mesh, fluid)
        whole = kernel.residual(p).copy()

        nz, ny, nx = mesh.shape_zyx
        rho = np.empty(mesh.shape_zyx)
        out = np.zeros(mesh.shape_zyx)
        # densities slab-wise (interior first, then the ring), as the
        # overlapped worker computes them
        interior = ((0, nz), (1, ny - 1), (1, nx - 1))
        ring = [
            ((0, nz), (0, 1), (0, nx)),
            ((0, nz), (ny - 1, ny), (0, nx)),
            ((0, nz), (1, ny - 1), (0, 1)),
            ((0, nz), (1, ny - 1), (nx - 1, nx)),
        ]
        kernel.density_box(p, full_box(mesh.shape_zyx), out=rho)
        kernel.residual_box(p, rho, out, interior)
        for box in ring:
            kernel.residual_box(p, rho, out, box)
        assert out.tobytes() == whole.tobytes()

    def test_density_box_matches_full(self, fluid):
        mesh = make_geomodel(6, 6, 2, seed=1)
        p = PressureSequence(mesh, num_applications=1, seed=1).field(0)
        kernel = RankKernel(mesh, fluid)
        full = fluid.density(p)
        rho = np.empty(mesh.shape_zyx)
        nz, ny, nx = mesh.shape_zyx
        kernel.density_box(p, ((0, nz), (1, ny - 1), (1, nx - 1)), out=rho)
        for box in (
            ((0, nz), (0, 1), (0, nx)),
            ((0, nz), (ny - 1, ny), (0, nx)),
            ((0, nz), (1, ny - 1), (0, 1)),
            ((0, nz), (1, ny - 1), (nx - 1, nx)),
        ):
            kernel.density_box(p, box, out=rho)
        assert rho.tobytes() == full.tobytes()

    def test_empty_clip_is_noop(self, fluid):
        mesh = make_geomodel(4, 4, 2, seed=0)
        p = PressureSequence(mesh, num_applications=1, seed=0).field(0)
        kernel = RankKernel(mesh, fluid)
        rho = fluid.density(p)
        out = np.zeros(mesh.shape_zyx)
        kernel.residual_box(p, rho, out, ((0, 2), (0, 0), (0, 4)))
        assert not out.any()
