"""Cross-backend conformance test suite."""
