"""End-to-end tests of the multiprocess SPMD flux computation.

The acceptance bar: bit-identical residuals vs the serial cluster
backend on square and non-square rank grids, with genuinely concurrent
workers (distinct PIDs), plus real crash detection and respawn
recovery under an injected rank failure.
"""

import numpy as np
import pytest

from repro.core import FluidProperties, PressureSequence, compute_flux_residual
from repro.cluster.flux import ClusterFluxComputation
from repro.faults.errors import WorkerCrashError
from repro.faults.plan import FaultPlan, RankFailure
from repro.par import ParClusterFluxComputation
from repro.par.worker import KILL_EXIT_CODE
from repro.workloads import make_geomodel


@pytest.fixture(scope="module")
def problem():
    mesh = make_geomodel(15, 14, 3, kind="lognormal", seed=11)
    fluid = FluidProperties()
    seq = PressureSequence(mesh, num_applications=3, seed=11)
    return mesh, fluid, seq


def serial_residual(mesh, fluid, seq, px, py):
    return ClusterFluxComputation(mesh, fluid, px=px, py=py).run(iter(seq))


class TestBitIdentity:
    @pytest.mark.parametrize(
        "px,py,workers", [(2, 2, 4), (3, 2, 6), (3, 2, 2), (2, 2, 3)]
    )
    def test_matches_serial_cluster(self, problem, px, py, workers):
        mesh, fluid, seq = problem
        ref = serial_residual(mesh, fluid, seq, px, py)
        with ParClusterFluxComputation(
            mesh, fluid, px=px, py=py, workers=workers
        ) as par:
            res = par.run(iter(seq))
        assert np.array_equal(res.residual, ref.residual)
        assert res.residual.tobytes() == ref.residual.tobytes()
        assert res.messages_per_application == ref.messages_per_application
        assert res.halo_bytes_per_application == ref.halo_bytes_per_application

    def test_matches_global_reference_kernel(self, problem):
        mesh, fluid, seq = problem
        p = seq.field(0)
        reference = compute_flux_residual(mesh, fluid, p)
        with ParClusterFluxComputation(mesh, fluid, px=2, py=2) as par:
            res = par.run_single(p)
        assert np.array_equal(res.residual, reference)

    def test_workers_are_real_processes(self, problem):
        import os

        mesh, fluid, seq = problem
        with ParClusterFluxComputation(
            mesh, fluid, px=2, py=2, workers=4
        ) as par:
            res = par.run_single(seq.field(0))
        assert res.distinct_pids == 4
        pids = {row["pid"] for row in res.per_rank}
        assert os.getpid() not in pids
        assert all(row["compute_seconds"] > 0 for row in res.per_rank)

    def test_multiple_applications_accumulate(self, problem):
        mesh, fluid, seq = problem
        with ParClusterFluxComputation(mesh, fluid, px=2, py=2) as par:
            first = par.run_single(seq.field(0))
            second = par.run(seq.field(i) for i in (1, 2))
        assert first.applications == 1
        assert second.applications == 2
        # messages-per-application is invariant across batches
        assert (
            first.messages_per_application == second.messages_per_application
        )

    def test_rejects_bad_worker_count(self, problem):
        mesh, fluid, _ = problem
        with pytest.raises(ValueError, match="workers"):
            ParClusterFluxComputation(mesh, fluid, px=2, py=2, workers=5)

    def test_rejects_empty_batch(self, problem):
        mesh, fluid, _ = problem
        with ParClusterFluxComputation(mesh, fluid, px=2, py=2) as par:
            with pytest.raises(ValueError, match="no pressure fields"):
                par.run([])


class TestCrashRecovery:
    @pytest.fixture()
    def plan(self):
        return FaultPlan(
            seed=3, rank_failures=(RankFailure(rank=2, exchange=1, attempts=1),)
        )

    def test_detects_killed_worker(self, problem, plan):
        mesh, fluid, seq = problem
        with ParClusterFluxComputation(
            mesh, fluid, px=2, py=2, workers=4, plan=plan, respawn=False
        ) as par:
            with pytest.raises(WorkerCrashError) as info:
                par.run(iter(seq))
        (idx, pid, code, ranks) = info.value.crashed[0]
        assert code == KILL_EXIT_CODE
        assert 2 in ranks
        assert "died" in str(info.value)

    def test_respawn_recovers_bit_identically(self, problem, plan):
        mesh, fluid, seq = problem
        ref = serial_residual(mesh, fluid, seq, 2, 2)
        with ParClusterFluxComputation(
            mesh, fluid, px=2, py=2, workers=4, plan=plan, respawn=True
        ) as par:
            res = par.run(iter(seq))
        assert res.respawns == 1
        assert np.array_equal(res.residual, ref.residual)

    def test_respawn_with_multirank_workers(self, problem, plan):
        mesh, fluid, seq = problem
        ref = serial_residual(mesh, fluid, seq, 2, 2)
        with ParClusterFluxComputation(
            mesh, fluid, px=2, py=2, workers=2, plan=plan, respawn=True
        ) as par:
            res = par.run(iter(seq))
        assert res.respawns == 1
        assert np.array_equal(res.residual, ref.residual)
