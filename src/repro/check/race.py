"""`repro check --race` orchestration: model check + lint + live probe.

Ties the three concurrency verifiers into :class:`CheckReport`\\ s the
CLI and CI can gate on:

* :func:`run_race_checks` — the green path.  Exhaustively model-checks
  the **unmutated** protocol at the default bounds
  (:data:`DEFAULT_MODEL_CONFIGS`), concurrency-lints ``src/repro``,
  and runs a live in-process happens-before probe (two real
  :class:`~repro.par.comm.ProcComm` endpoints over one
  :class:`~repro.par.shm.SharedArena`, race-traced, three exchanges —
  enough to re-use both parity slots).  All three must report zero
  findings on a healthy tree.
* :func:`mutation_drill` / :func:`drill_findings` — the red path.
  Seeds each protocol mutation from
  :data:`~repro.check.race_model.MUTATIONS` into the model, asserts
  the checker flags it as **exactly one ERROR** with the expected
  violation class, and replays the witness schedule to prove the
  interleaving reproduces.  A mutation the checker misses — or a
  witness that fails to replay — is itself an ERROR finding, so CI's
  mutation-drill smoke fails loudly if the checker ever rots.
"""

from __future__ import annotations

from pathlib import Path

from repro.check.findings import CheckReport, Finding, Severity
from repro.check.race_lint import race_lint_paths
from repro.check.race_model import (
    MUTATIONS,
    ModelConfig,
    ModelResult,
    check_model,
    model_findings,
    render_witness,
    replay_witness,
)
from repro.check.race_trace import RaceTraceRecorder, check_hb

__all__ = [
    "DEFAULT_MODEL_CONFIGS",
    "EXPECTED_VIOLATIONS",
    "run_race_checks",
    "hb_live_probe",
    "mutation_drill",
    "drill_findings",
]

#: Bounds the unmutated protocol is exhaustively verified at.  Both
#: exceed two exchanges, so every parity slot is re-used and the
#: ``expected_prior`` guard is exercised at full strength.
DEFAULT_MODEL_CONFIGS: tuple[ModelConfig, ...] = (
    ModelConfig(workers=2, exchanges=6),
    ModelConfig(workers=3, exchanges=4),
)

#: Violation class each seeded mutation must be flagged as.
EXPECTED_VIOLATIONS: dict[str, str] = {
    "header-first": "race-torn-read",
    "skip-seq": "race-lost-wakeup",
    "wrong-parity": "race-seq-skew",
    "drop-lease": "race-lease-expiry",
}


def hb_live_probe(exchanges: int = 3) -> tuple[list[Finding], int]:
    """Run two real ProcComm endpoints in-process with race tracing on.

    Returns the happens-before findings (empty on a correct protocol)
    and the number of recorded events.  Three exchanges re-use both
    parity slots, so the release/acquire chain that makes slot re-use
    safe is actually exercised, not just the first publication.
    """
    import numpy as np

    from repro.cluster.comm import CartGrid
    from repro.cluster.decomposition import BlockDecomposition
    from repro.core import CartesianMesh3D
    from repro.par.comm import ProcComm
    from repro.par.layout import HaloLayout
    from repro.par.shm import SharedArena

    mesh = CartesianMesh3D(8, 4, 2)
    decomp = BlockDecomposition(mesh, 2, 1)
    grid = CartGrid(2, 1)
    layout = HaloLayout.from_decomposition(decomp, grid)
    arena = SharedArena(layout, create=True)
    try:
        recorders = {r: RaceTraceRecorder(f"rank{r}") for r in (0, 1)}
        comms = {
            r: ProcComm(
                layout,
                arena,
                ranks=(0, 1),
                busy_spins=4,
                sleep_seconds=1e-6,
                max_sleeps=50,
                race_trace=recorders[r],
            )
            for r in (0, 1)
        }
        for k in range(exchanges):
            for link in layout.links:
                strip = np.full((mesh.nz, *link.shape_yx), float(k + 1))
                comms[link.source].isend(
                    link.source, link.dest, link.tag, strip
                )
            for link in layout.links:
                comms[link.dest].recv(link.dest, link.source, link.tag)
            for comm in comms.values():
                comm.complete_exchange()
        events = recorders[0].events + recorders[1].events
    finally:
        arena.close()
    return check_hb(events), len(events)


def run_race_checks(
    lint_root: str | Path = "src/repro",
    *,
    model: bool = True,
    lint: bool = True,
    hb: bool = True,
) -> list[CheckReport]:
    """The ``repro check --race`` green path: every enabled verifier as
    one :class:`CheckReport`; a healthy tree yields zero findings in
    each."""
    reports: list[CheckReport] = []
    if model:
        for config in DEFAULT_MODEL_CONFIGS:
            result = check_model(config)
            report = CheckReport(
                subject=(
                    f"race model: {config.describe()} "
                    f"({result.states} states explored)"
                )
            )
            report.extend(model_findings(result))
            reports.append(report)
    if lint:
        report = CheckReport(subject=f"race lint: {lint_root}")
        report.extend(race_lint_paths(lint_root))
        reports.append(report)
    if hb:
        findings, events = hb_live_probe()
        report = CheckReport(
            subject=f"race hb: live 2-rank probe ({events} events)"
        )
        report.extend(findings)
        reports.append(report)
    return reports


def mutation_drill(
    base: ModelConfig | None = None,
) -> dict[str, ModelResult]:
    """Model-check every seeded mutation against *base*'s bounds."""
    base = base or ModelConfig(workers=2, exchanges=3)
    return {
        mutation: check_model(
            ModelConfig(
                workers=base.workers,
                exchanges=base.exchanges,
                mutation=mutation,
                renew_period=base.renew_period,
                lease_bound=base.lease_bound,
                max_states=base.max_states,
            )
        )
        for mutation in MUTATIONS
    }


def drill_findings(base: ModelConfig | None = None) -> CheckReport:
    """The mutation drill as a :class:`CheckReport` (CI smoke).

    INFO per mutation caught with the expected violation class and a
    replay-verified witness; ERROR when a mutation slips through, is
    flagged as the wrong class, or its witness fails to replay — any of
    which means the checker itself has rotted.
    """
    report = CheckReport(subject="race mutation drill")
    for mutation, result in mutation_drill(base).items():
        expected = EXPECTED_VIOLATIONS[mutation]
        violation = result.violation
        if violation is None:
            report.add(
                Finding(
                    code=expected,
                    severity=Severity.ERROR,
                    message=(
                        f"seeded mutation {mutation!r} was NOT flagged "
                        f"({result.states} states explored)"
                    ),
                    detail="the model checker lost its teeth",
                )
            )
            continue
        replayed = replay_witness(result.config, violation.schedule)
        if violation.code != expected:
            report.add(
                Finding(
                    code=violation.code,
                    severity=Severity.ERROR,
                    message=(
                        f"mutation {mutation!r} flagged as "
                        f"{violation.code}, expected {expected}"
                    ),
                    detail=violation.message,
                )
            )
        elif replayed is None or replayed.signature() != violation.signature():
            report.add(
                Finding(
                    code=violation.code,
                    severity=Severity.ERROR,
                    message=(
                        f"mutation {mutation!r}: witness schedule does not "
                        "replay to the same violation"
                    ),
                    detail=render_witness(violation.schedule),
                )
            )
        else:
            report.add(
                Finding(
                    code=violation.code,
                    severity=Severity.INFO,
                    message=(
                        f"mutation {mutation!r} caught as exactly one ERROR "
                        f"({len(violation.schedule)}-step replayable witness)"
                    ),
                    detail=violation.message,
                )
            )
    return report
