"""Energy-efficiency comparison (paper Sec. 7.2).

"When steady state is reached during the experiments, the CS-2 consumes
an average 23 kW of power.  This corresponds to 13.67 GFLOP/W ...  In
comparison, the A100 runs consume a peak of 250 W under the same
workload.  The dataflow implementation achieves a 2.2x energy efficiency
with respect to the reference implementation in aggregate and without
considering the host or the networking equipment."

The 2.2x is an *energy per job* ratio: the CS-2 finishes the same 1000
applications ~205x faster at ~92x the power.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constants import PAPER_ITERATIONS, PAPER_MESH
from repro.core.kernels import FLOPS_PER_CELL
from repro.perf.timing import (
    A100_RAJA_TIME_MODEL,
    CS2_TIME_MODEL,
    Cs2TimeModel,
    GpuTimeModel,
)

__all__ = ["EnergyComparison", "compare_energy"]

#: Steady-state CS-2 system power (Sec. 7.2, from [11]).
CS2_POWER_W = 23_000.0

#: A100 peak board power under the workload (Sec. 7.2).
A100_POWER_W = 250.0


@dataclass(frozen=True)
class EnergyComparison:
    """Energy metrics of both platforms for one experiment."""

    mesh: tuple[int, int, int]
    applications: int
    cs2_seconds: float
    a100_seconds: float
    cs2_power_w: float
    a100_power_w: float

    @property
    def cs2_joules(self) -> float:
        """CS-2 energy for the job."""
        return self.cs2_seconds * self.cs2_power_w

    @property
    def a100_joules(self) -> float:
        """A100 energy for the job."""
        return self.a100_seconds * self.a100_power_w

    @property
    def total_flops(self) -> float:
        """FLOPs of the job (140 per cell per application)."""
        nx, ny, nz = self.mesh
        return float(nx * ny * nz) * FLOPS_PER_CELL * self.applications

    @property
    def cs2_gflops_per_watt(self) -> float:
        """CS-2 energy efficiency (13.67 GFLOP/W in the paper)."""
        return self.total_flops / self.cs2_seconds / self.cs2_power_w / 1e9

    @property
    def a100_gflops_per_watt(self) -> float:
        """A100 energy efficiency at the model-projected kernel time."""
        return self.total_flops / self.a100_seconds / self.a100_power_w / 1e9

    @property
    def energy_efficiency_ratio(self) -> float:
        """A100 energy / CS-2 energy per job (2.2x in the paper)."""
        return self.a100_joules / self.cs2_joules


def compare_energy(
    mesh: tuple[int, int, int] = PAPER_MESH,
    applications: int = PAPER_ITERATIONS,
    *,
    cs2_model: Cs2TimeModel = CS2_TIME_MODEL,
    gpu_model: GpuTimeModel = A100_RAJA_TIME_MODEL,
) -> EnergyComparison:
    """Build the Sec.-7.2 energy comparison from the calibrated models."""
    nx, ny, nz = mesh
    return EnergyComparison(
        mesh=mesh,
        applications=applications,
        cs2_seconds=cs2_model.seconds(nx, ny, nz, applications),
        a100_seconds=gpu_model.seconds(nx, ny, nz, applications),
        cs2_power_w=CS2_POWER_W,
        a100_power_w=A100_POWER_W,
    )
