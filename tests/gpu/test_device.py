"""Unit tests for the device spec and occupancy model."""

import pytest

from repro.gpu.device import A100_40GB, DeviceSpec, OccupancyModel


class TestDeviceSpec:
    def test_a100_parameters(self):
        assert A100_40GB.num_sms == 108
        assert A100_40GB.device_memory_bytes == 40 * 1024**3
        assert A100_40GB.max_threads_per_block == 1024
        assert A100_40GB.tdp_watts == 250.0

    def test_max_warps(self):
        assert A100_40GB.max_warps_per_sm == 64


class TestOccupancyModel:
    def test_paper_launch_numbers(self):
        """Sec. 7.2: 30.79/32 warps, 48.11% of 50% occupancy."""
        occ = OccupancyModel(A100_40GB)
        assert occ.blocks_per_sm == 1
        assert occ.theoretical_warps_per_sm == 32
        assert occ.theoretical_occupancy == pytest.approx(0.50)
        assert occ.achieved_warps_per_sm == pytest.approx(30.79, abs=0.01)
        assert occ.achieved_occupancy == pytest.approx(0.4811, abs=1e-4)

    def test_register_limit_binds(self):
        """At 64 regs/thread, registers (not threads) cap residency."""
        occ = OccupancyModel(A100_40GB, registers_per_thread=64)
        by_threads = A100_40GB.max_threads_per_sm // 1024  # 2 blocks
        assert occ.blocks_per_sm == 1 < by_threads

    def test_lighter_kernel_fills_sm(self):
        occ = OccupancyModel(A100_40GB, registers_per_thread=32)
        assert occ.blocks_per_sm == 2
        assert occ.theoretical_occupancy == pytest.approx(1.0)

    def test_smaller_blocks(self):
        occ = OccupancyModel(A100_40GB, threads_per_block=256, registers_per_thread=32)
        assert occ.blocks_per_sm == 8

    def test_rejects_oversized_block(self):
        with pytest.raises(ValueError, match="exceeds device"):
            OccupancyModel(A100_40GB, threads_per_block=2048)

    def test_rejects_non_warp_multiple(self):
        with pytest.raises(ValueError, match="warp"):
            OccupancyModel(A100_40GB, threads_per_block=1000)

    def test_impossible_kernel_zero_blocks(self):
        occ = OccupancyModel(A100_40GB, registers_per_thread=100)
        assert occ.blocks_per_sm == 0
        assert occ.theoretical_occupancy == 0.0
