"""Reference implementation of Algorithm 1: the flux part of the residual.

This module is the package's numerical ground truth.  It assembles

    (r_flux)_K = sum_{L in adj(K)} F_KL                      (Algorithm 1)

over the 10-connection stencil with no-flow boundaries, fully vectorized
over whole directions (one pair of array views per connection, following
the NumPy optimization guidance: views not copies, in-place accumulation).

Two assembly strategies mirror the two mappings of paper Fig. 3:

* ``method="cell"`` — every cell evaluates all of its own fluxes (each
  interior face is computed twice, once from each side), exactly like the
  paper's GPU kernels and per-PE dataflow programs;
* ``method="face"`` — every face is evaluated once and scattered with
  opposite signs to its two cells, exploiting ``F_LK = -F_KL``.

Both produce the same residual (antisymmetry is exact in IEEE arithmetic up
to the commutativity of the shared subexpressions) and are cross-checked in
the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.core import constants
from repro.core.fluid import FluidProperties
from repro.core.kernels import face_flux_array
from repro.core.mesh import CartesianMesh3D
from repro.core.stencil import (
    ALL_CONNECTIONS,
    Connection,
    interior_slices,
)
from repro.core.transmissibility import CANONICAL_CONNECTIONS, Transmissibility

__all__ = [
    "compute_flux_residual",
    "compute_face_fluxes",
    "FluxKernel",
]


def compute_flux_residual(
    mesh: CartesianMesh3D,
    fluid: FluidProperties,
    pressure: np.ndarray,
    trans: Transmissibility | None = None,
    *,
    gravity: float = constants.GRAVITY,
    method: str = "cell",
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Assemble the flux residual of Algorithm 1 for one pressure field.

    Parameters
    ----------
    mesh, fluid:
        Problem definition (geometry, rock and fluid properties).
    pressure:
        Cell pressures, shape ``(nz, ny, nx)``.
    trans:
        Precomputed transmissibilities; built on the fly when omitted
        (prefer passing one when calling repeatedly).
    gravity:
        Gravitational acceleration ``g`` of Eq. 3b.
    method:
        ``"cell"`` or ``"face"`` (see module docstring).
    out:
        Optional output array, zeroed and filled in place.

    Returns
    -------
    numpy.ndarray
        The residual field ``r_flux``, shape ``(nz, ny, nx)``.
    """
    kernel = FluxKernel(mesh, fluid, trans, gravity=gravity, method=method)
    return kernel.residual(pressure, out=out)


def compute_face_fluxes(
    mesh: CartesianMesh3D,
    fluid: FluidProperties,
    pressure: np.ndarray,
    trans: Transmissibility | None = None,
    *,
    gravity: float = constants.GRAVITY,
) -> dict[Connection, np.ndarray]:
    """Per-connection flux arrays ``F_KL`` for diagnostics and testing.

    The array for connection ``c`` is aligned with
    ``pressure[interior_slices(mesh.shape_zyx, c)[0]]``: entry ``i`` is the
    flux from the ``i``-th cell that has a neighbour along ``c`` toward
    that neighbour.
    """
    kernel = FluxKernel(mesh, fluid, trans, gravity=gravity)
    rho = fluid.density(pressure)
    return {
        conn: kernel.direction_flux(conn, pressure, rho)
        for conn in ALL_CONNECTIONS
    }


class FluxKernel:
    """Reusable Algorithm-1 evaluator with preallocated scratch buffers.

    Build once, call :meth:`residual` per pressure vector — the paper
    applies Algorithm 1 a thousand times with a different pressure each
    call (Sec. 3), so setup cost (transmissibilities, scratch) is hoisted
    out of the loop.
    """

    def __init__(
        self,
        mesh: CartesianMesh3D,
        fluid: FluidProperties,
        trans: Transmissibility | None = None,
        *,
        gravity: float = constants.GRAVITY,
        method: str = "cell",
        dtype=np.float64,
    ) -> None:
        if method not in ("cell", "face"):
            raise ValueError(f"method must be 'cell' or 'face', got {method!r}")
        self.mesh = mesh
        self.fluid = fluid
        self.gravity = float(gravity)
        self.method = method
        self.dtype = np.dtype(dtype)
        self.trans = trans if trans is not None else Transmissibility(mesh, dtype=dtype)
        if self.trans.mesh is not mesh:
            raise ValueError("trans was built for a different mesh")
        self._rho = np.empty(mesh.shape_zyx, dtype=self.dtype)
        # largest per-direction scratch: a full-shape buffer is reused as a
        # view for every connection (buffer-reuse idiom, paper Sec. 5.3.1)
        self._scratch = np.empty(mesh.shape_zyx, dtype=self.dtype)

    # ------------------------------------------------------------------ #
    def direction_flux(
        self,
        conn: Connection,
        pressure: np.ndarray,
        rho: np.ndarray,
        *,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Fluxes ``F_KL`` of every cell having a neighbour along *conn*."""
        local, neigh = interior_slices(self.mesh.shape_zyx, conn)
        z = self.mesh.elevation
        return face_flux_array(
            pressure[local],
            pressure[neigh],
            z[local],
            z[neigh],
            rho[local],
            rho[neigh],
            self.trans.face_array(conn),
            self.gravity,
            self.fluid.viscosity,
            out=out,
        )

    def residual(
        self, pressure: np.ndarray, *, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Evaluate Algorithm 1 for one pressure field."""
        self.mesh.validate_field(pressure, name="pressure")
        if out is None:
            out = np.zeros(self.mesh.shape_zyx, dtype=self.dtype)
        else:
            self.mesh.validate_field(out, name="out")
            out.fill(0.0)
        rho = self.fluid.density(pressure, out=self._rho)
        if self.method == "cell":
            self._assemble_cell_based(pressure, rho, out)
        else:
            self._assemble_face_based(pressure, rho, out)
        return out

    # ------------------------------------------------------------------ #
    def _assemble_cell_based(
        self, pressure: np.ndarray, rho: np.ndarray, res: np.ndarray
    ) -> None:
        """Each cell computes all 10 of its fluxes (paper's GPU/PE pattern)."""
        for conn in ALL_CONNECTIONS:
            local, _ = interior_slices(self.mesh.shape_zyx, conn)
            scratch = self._scratch[local]
            flux = self.direction_flux(conn, pressure, rho, out=scratch)
            res[local] += flux

    def _assemble_face_based(
        self, pressure: np.ndarray, rho: np.ndarray, res: np.ndarray
    ) -> None:
        """Each face is computed once and scattered antisymmetrically."""
        for conn in CANONICAL_CONNECTIONS:
            local, neigh = interior_slices(self.mesh.shape_zyx, conn)
            scratch = self._scratch[local]
            flux = self.direction_flux(conn, pressure, rho, out=scratch)
            res[local] += flux
            res[neigh] -= flux
