"""Tests of the energy comparison and derived metrics."""

import pytest

from repro.core.constants import PAPER_ITERATIONS, PAPER_MESH
from repro.perf.energy import A100_POWER_W, CS2_POWER_W, compare_energy
from repro.perf.metrics import (
    achieved_tflops,
    speedup,
    throughput_gcells_per_second,
    weak_scaling_row,
)


class TestEnergy:
    def test_paper_powers(self):
        assert CS2_POWER_W == 23_000.0
        assert A100_POWER_W == 250.0

    def test_efficiency_ratio_near_2_2(self):
        """Sec. 7.2: 'a 2.2x energy efficiency ... in aggregate'."""
        cmp = compare_energy()
        assert cmp.energy_efficiency_ratio == pytest.approx(2.2, rel=0.10)

    def test_cs2_gflops_per_watt(self):
        """Sec. 7.2: 13.67 GFLOP/W (we land within 2%)."""
        cmp = compare_energy()
        assert cmp.cs2_gflops_per_watt == pytest.approx(13.67, rel=0.02)

    def test_joules(self):
        cmp = compare_energy()
        assert cmp.cs2_joules == pytest.approx(
            cmp.cs2_seconds * CS2_POWER_W
        )
        assert cmp.a100_joules > cmp.cs2_joules

    def test_total_flops(self):
        cmp = compare_energy()
        nx, ny, nz = PAPER_MESH
        assert cmp.total_flops == nx * ny * nz * 140 * PAPER_ITERATIONS

    def test_custom_mesh(self):
        cmp = compare_energy(mesh=(100, 100, 50), applications=10)
        assert cmp.applications == 10
        assert cmp.cs2_joules > 0


class TestMetrics:
    def test_throughput(self):
        # paper row 1: 9.84 Mcells, 1000 apps, 0.0813 s -> 121.01 Gcell/s
        thr = throughput_gcells_per_second(9_840_000, 1000, 0.0813)
        assert thr == pytest.approx(121.01, rel=1e-3)

    def test_achieved_tflops(self):
        nx, ny, nz = PAPER_MESH
        t = achieved_tflops(nx * ny * nz, 1000, 0.0823)
        assert t == pytest.approx(311.85, rel=1e-3)

    def test_speedup(self):
        assert speedup(16.8378, 0.0823) == pytest.approx(204.6, rel=1e-3)

    def test_speedup_rejects_zero(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_throughput_rejects_zero_time(self):
        with pytest.raises(ValueError):
            throughput_gcells_per_second(1, 1, 0.0)


class TestWeakScalingRow:
    def test_row_fields(self):
        row = weak_scaling_row(200, 200, 246)
        assert row.total_cells == 9_840_000
        assert row.throughput_gcells == pytest.approx(121.0, rel=5e-3)
        assert row.cs2_seconds == pytest.approx(0.0813, rel=5e-3)
        assert row.speedup > 10

    def test_throughput_grows_with_mesh(self):
        small = weak_scaling_row(200, 200, 246)
        large = weak_scaling_row(750, 950, 246)
        assert large.throughput_gcells > 15 * small.throughput_gcells
