"""Diagonal-neighbour exchange through intermediary PEs (paper Sec. 5.2.2).

The fabric only links cardinal neighbours, so diagonal data takes two
hops through an intermediary that "must be an immediate neighbor to both
the source cell and its diagonal destination cell".  All four diagonal
flows run concurrently under a rotating schedule: every source sends
clockwise (first hop directions E, S, W, N for the four flows), and each
flow turns 90 degrees at its intermediary — so the four flows use four
*distinct* intermediaries and never contend for the same role (Fig. 5).

Each flow is one color with a single static routing position valid for
every PE simultaneously, because a PE's three roles use three different
input ports:

* source  — injects via RAMP, forwarded out the first-hop port;
* intermediary — receives from the first hop's opposite port, forwards
  out the second-hop port;
* target — receives from the second hop's opposite port, delivered RAMP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stencil import Connection
from repro.wse.geometry import Port
from repro.wse.router import RoutePosition

__all__ = ["DiagonalChannel", "DIAGONAL_CHANNELS", "static_position"]


@dataclass(frozen=True)
class DiagonalChannel:
    """One diagonal flow: two hops, one color.

    Attributes
    ----------
    name:
        Color name, e.g. ``"diag_se"``.
    first_hop, second_hop:
        The clockwise hop pair (e.g. EAST then SOUTH for the
        south-eastward flow).
    delivers:
        Mesh connection whose neighbour data arrives on this channel:
        the south-eastward flow delivers the *north-west* neighbour's
        column to each target.
    """

    name: str
    first_hop: Port
    second_hop: Port
    delivers: Connection


#: The four concurrent diagonal flows, clockwise rotation (Sec. 5.2.2).
DIAGONAL_CHANNELS = (
    DiagonalChannel("diag_se", Port.EAST, Port.SOUTH, Connection.NORTHWEST),
    DiagonalChannel("diag_sw", Port.SOUTH, Port.WEST, Connection.NORTHEAST),
    DiagonalChannel("diag_nw", Port.WEST, Port.NORTH, Connection.SOUTHEAST),
    DiagonalChannel("diag_ne", Port.NORTH, Port.EAST, Connection.SOUTHWEST),
)


def static_position(channel: DiagonalChannel) -> RoutePosition:
    """The single switch position every router uses for *channel*.

    Three rules (by input port): RAMP -> first hop; first hop's arrival
    port -> second hop; second hop's arrival port -> RAMP.
    """
    return {
        Port.RAMP: (channel.first_hop,),
        channel.first_hop.opposite: (channel.second_hop,),
        channel.second_hop.opposite: (Port.RAMP,),
    }
