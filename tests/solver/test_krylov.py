"""Tests for the from-scratch Krylov solvers."""

import numpy as np
import pytest

from repro.solver.krylov import bicgstab, conjugate_gradient, jacobi_preconditioner


def make_spd(n, seed=0):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    A = A @ A.T + n * np.eye(n)
    return A


def make_nonsymmetric(n, seed=0):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n)) * 0.3 + np.diag(2.0 + rng.random(n)) * n**0.5
    return A


class TestConjugateGradient:
    def test_solves_spd(self):
        A = make_spd(30)
        x_true = np.arange(30.0)
        res = conjugate_gradient(lambda v: A @ v, A @ x_true, rtol=1e-12)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, rtol=1e-8, atol=1e-10)

    def test_identity_converges_immediately(self):
        b = np.ones(5)
        res = conjugate_gradient(lambda v: v, b)
        assert res.converged
        assert res.iterations <= 1

    def test_zero_rhs(self):
        A = make_spd(5)
        res = conjugate_gradient(lambda v: A @ v, np.zeros(5))
        assert res.converged
        assert res.iterations == 0
        np.testing.assert_array_equal(res.x, 0.0)

    def test_history_monotone_overall(self):
        A = make_spd(40, seed=2)
        b = np.ones(40)
        res = conjugate_gradient(lambda v: A @ v, b, rtol=1e-10)
        assert res.history[-1] < res.history[0]

    def test_preconditioner_reduces_iterations(self):
        n = 60
        rng = np.random.default_rng(1)
        # badly scaled diagonal-dominant SPD system
        d = 10.0 ** rng.uniform(0, 6, n)
        A = np.diag(d) + 0.01 * make_spd(n, seed=3)
        b = rng.standard_normal(n)
        plain = conjugate_gradient(lambda v: A @ v, b, rtol=1e-10, max_iterations=5000)
        pre = conjugate_gradient(
            lambda v: A @ v,
            b,
            rtol=1e-10,
            max_iterations=5000,
            psolve=jacobi_preconditioner(np.diag(A)),
        )
        assert pre.converged
        assert pre.iterations < plain.iterations

    def test_non_spd_detected(self):
        A = -np.eye(4)
        res = conjugate_gradient(lambda v: A @ v, np.ones(4))
        assert not res.converged

    def test_max_iterations_respected(self):
        A = make_spd(50, seed=5)
        res = conjugate_gradient(lambda v: A @ v, np.ones(50), rtol=1e-16, max_iterations=2)
        assert res.iterations == 2

    def test_x0_initial_guess(self):
        A = make_spd(10)
        x_true = np.ones(10)
        res = conjugate_gradient(lambda v: A @ v, A @ x_true, x0=x_true.copy())
        assert res.converged
        assert res.iterations == 0


class TestBicgstab:
    def test_solves_nonsymmetric(self):
        A = make_nonsymmetric(40)
        x_true = np.linspace(-1, 1, 40)
        res = bicgstab(lambda v: A @ v, A @ x_true, rtol=1e-12)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, rtol=1e-6, atol=1e-10)

    def test_solves_spd_too(self):
        A = make_spd(25, seed=7)
        x_true = np.ones(25)
        res = bicgstab(lambda v: A @ v, A @ x_true, rtol=1e-12)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, rtol=1e-7)

    def test_zero_rhs(self):
        A = make_nonsymmetric(5)
        res = bicgstab(lambda v: A @ v, np.zeros(5))
        assert res.converged
        assert res.iterations == 0

    def test_preconditioned(self):
        n = 50
        rng = np.random.default_rng(2)
        d = 10.0 ** rng.uniform(0, 5, n)
        A = np.diag(d) + rng.standard_normal((n, n)) * 0.05
        b = rng.standard_normal(n)
        pre = bicgstab(
            lambda v: A @ v,
            b,
            rtol=1e-10,
            max_iterations=2000,
            psolve=jacobi_preconditioner(np.diag(A)),
        )
        assert pre.converged
        np.testing.assert_allclose(A @ pre.x, b, rtol=1e-6, atol=1e-8)

    def test_max_iterations(self):
        A = make_nonsymmetric(30, seed=9)
        res = bicgstab(lambda v: A @ v, np.ones(30), rtol=1e-16, max_iterations=1)
        assert not res.converged

    def test_final_residual_consistent(self):
        A = make_nonsymmetric(20, seed=4)
        b = np.ones(20)
        res = bicgstab(lambda v: A @ v, b, rtol=1e-10)
        true_norm = np.linalg.norm(b - A @ res.x)
        assert true_norm <= max(2 * res.residual_norm, 1e-9 * np.linalg.norm(b))


class TestJacobiPreconditioner:
    def test_divides_by_diagonal(self):
        psolve = jacobi_preconditioner(np.array([2.0, 4.0]))
        np.testing.assert_allclose(psolve(np.array([2.0, 4.0])), [1.0, 1.0])

    def test_rejects_zero_diagonal(self):
        with pytest.raises(ValueError, match="zero diagonal"):
            jacobi_preconditioner(np.array([1.0, 0.0]))
