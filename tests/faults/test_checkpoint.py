"""Checkpoint/restart of the implicit solver: bit-exact resume,
checksum-verified integrity, and corruption fallback."""

import numpy as np
import pytest

from repro.core import CartesianMesh3D, FluidProperties
from repro.faults.errors import CheckpointCorruptError
from repro.solver import (
    Checkpoint,
    CheckpointStore,
    SinglePhaseFlowSimulator,
    Well,
)


def make_sim(mesh):
    return SinglePhaseFlowSimulator(
        mesh, FluidProperties(), wells=[Well(2, 2, 1, rate=0.5)]
    )


class TestCheckpointIO:
    def test_npz_round_trip_is_bit_exact(self, tmp_path):
        pressure = np.random.default_rng(0).normal(1.5e7, 1e5, (2, 3, 4))
        ck = Checkpoint(step=7, time=25200.0, pressure=pressure, mass_in_place=5.0)
        path = tmp_path / "ck.npz"
        ck.save(path)
        loaded = Checkpoint.load(path)
        assert loaded.step == 7
        assert loaded.time == 25200.0
        assert loaded.mass_in_place == 5.0
        assert loaded.pressure.tobytes() == pressure.tobytes()

    def test_store_keeps_a_rolling_window(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for step in range(4):
            store.save(Checkpoint(step=step, time=step * 1.0, pressure=np.zeros(2)))
        assert len(store) == 2
        assert store.latest().step == 3
        files = sorted(p.name for p in tmp_path.glob("checkpoint_*.npz"))
        assert files == ["checkpoint_000002.npz", "checkpoint_000003.npz"]

    def test_store_open_resumes_from_disk(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for step in range(3):
            store.save(
                Checkpoint(step=step, time=step * 1.0, pressure=np.full(3, step))
            )
        reopened = CheckpointStore.open(tmp_path, keep=2)
        assert len(reopened) == 2
        assert reopened.latest().step == 2
        np.testing.assert_array_equal(reopened.latest().pressure, np.full(3, 2.0))

    def test_store_needs_positive_keep(self):
        with pytest.raises(ValueError, match="keep"):
            CheckpointStore(keep=0)

    def test_in_memory_store_needs_no_directory(self):
        store = CheckpointStore(keep=1)
        store.save(Checkpoint(step=0, time=0.0, pressure=np.zeros(1)))
        assert store.latest().step == 0


class TestCorruption:
    def _save(self, tmp_path, step, fill):
        path = tmp_path / f"ck{step}.npz"
        Checkpoint(
            step=step, time=float(step), pressure=np.full((2, 3), fill)
        ).save(path)
        return path

    def test_bit_flip_fails_the_checksum(self, tmp_path):
        path = self._save(tmp_path, 1, 2.5)
        blob = bytearray(path.read_bytes())
        # flip inside the pressure entry's payload (always integrity-
        # covered; zip local-header slack is not)
        blob[blob.index(b"pressure.npy") + 150] ^= 0x01
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointCorruptError) as info:
            Checkpoint.load(path)
        assert info.value.path.endswith("ck1.npz")

    def test_truncated_file_is_corrupt(self, tmp_path):
        path = self._save(tmp_path, 1, 1.0)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 3])
        with pytest.raises(CheckpointCorruptError, match="unreadable"):
            Checkpoint.load(path)

    def test_missing_checksum_entry_is_corrupt(self, tmp_path):
        """Legacy/hand-rolled npz files without the integrity checksum
        cannot be trusted as restart points."""
        path = tmp_path / "legacy.npz"
        np.savez(
            path, step=np.int64(1), time=np.float64(1.0),
            pressure=np.zeros(3), mass_in_place=np.float64(0.0),
        )
        with pytest.raises(CheckpointCorruptError, match="missing entry"):
            Checkpoint.load(path)

    def test_tampered_payload_reports_checksum_mismatch(self, tmp_path):
        """Re-zip the archive with a modified pressure payload but valid
        zip structure: only the content checksum can catch this."""
        import zipfile

        path = self._save(tmp_path, 3, 4.0)
        original = np.load(path)
        entries = {name: original[name] for name in original.files}
        entries["pressure"] = entries["pressure"] + 1e-3
        tampered = tmp_path / "tampered.npz"
        np.savez(tampered, **entries)
        with pytest.raises(CheckpointCorruptError, match="checksum mismatch"):
            Checkpoint.load(tampered)
        assert zipfile.is_zipfile(tampered)  # structurally valid zip

    def test_store_open_quarantines_corrupt_files(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=3)
        for step in range(1, 4):
            store.save(
                Checkpoint(
                    step=step, time=float(step),
                    pressure=np.full((2, 2), step),
                )
            )
        newest = sorted(tmp_path.glob("checkpoint_*.npz"))[-1]
        blob = bytearray(newest.read_bytes())
        blob[blob.index(b"pressure.npy") + 150] ^= 0x10
        newest.write_bytes(bytes(blob))
        reopened = CheckpointStore.open(tmp_path, keep=3)
        assert [p.endswith("checkpoint_000003.npz") for p in reopened.corrupt] == [True]
        assert reopened.latest().step == 2
        np.testing.assert_array_equal(
            reopened.latest().pressure, np.full((2, 2), 2.0)
        )

    def test_intact_files_report_no_corruption(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        store.save(Checkpoint(step=1, time=1.0, pressure=np.ones(4)))
        reopened = CheckpointStore.open(tmp_path, keep=2)
        assert reopened.corrupt == []
        assert reopened.latest().step == 1


class TestRestartEquivalence:
    def test_resumed_run_matches_uninterrupted_bit_for_bit(self, tmp_path):
        mesh = CartesianMesh3D(5, 5, 2)
        dt, steps, crash_at = 3600.0, 5, 3

        reference = make_sim(mesh)
        reference.run(steps, dt)

        victim = make_sim(mesh)
        victim.run(crash_at, dt, checkpoint_store=CheckpointStore(tmp_path))
        del victim  # the crash: all in-process state is lost

        resumed = make_sim(mesh)
        resumed.restore(CheckpointStore.open(tmp_path).latest())
        assert resumed.steps_completed == crash_at
        assert resumed.time == crash_at * dt
        resumed.run(steps - crash_at, dt)

        assert resumed.pressure.tobytes() == reference.pressure.tobytes()
        assert resumed.time == reference.time
        assert resumed.steps_completed == reference.steps_completed

    def test_checkpoint_every_thins_the_stream(self):
        mesh = CartesianMesh3D(4, 4, 2)
        store = CheckpointStore(keep=10)
        sim = make_sim(mesh)
        sim.run(4, 3600.0, checkpoint_store=store, checkpoint_every=2)
        assert [ck.step for ck in store._checkpoints] == [2, 4]

    def test_restore_validates_shape(self):
        mesh = CartesianMesh3D(4, 4, 2)
        sim = make_sim(mesh)
        bad = Checkpoint(step=1, time=3600.0, pressure=np.zeros((1, 2, 3)))
        with pytest.raises(ValueError):
            sim.restore(bad)
