"""Tests for the matrix-free Jacobian on the fabric (paper Sec. 8)."""

import numpy as np
import pytest

from repro.core import CartesianMesh3D, FluidProperties, random_pressure
from repro.dataflow import WseMatrixFreeJacobian
from repro.solver import (
    FlowResidual,
    MatrixFreeJacobian,
    bicgstab,
    jacobi_preconditioner,
    newton_solve,
)
from repro.workloads import make_geomodel


@pytest.fixture(scope="module")
def operators():
    mesh = make_geomodel(5, 4, 4, kind="lognormal", seed=12)
    fluid = FluidProperties()
    res = FlowResidual(mesh, fluid, dt=3600.0)
    p = random_pressure(mesh, seed=13, amplitude=2e5)
    return res, p, MatrixFreeJacobian(res, p), WseMatrixFreeJacobian(res, p)


class TestMatvecEquivalence:
    def test_matches_host_operator(self, operators):
        _, _, host, wse = operators
        rng = np.random.default_rng(1)
        for _ in range(3):
            v = rng.standard_normal(host.n)
            mv_h = host.matvec(v)
            mv_w = wse.matvec(v)
            scale = np.abs(mv_h).max()
            np.testing.assert_allclose(mv_w, mv_h, atol=1e-13 * scale)

    def test_diagonal_matches(self, operators):
        _, _, host, wse = operators
        np.testing.assert_allclose(wse.diagonal(), host.diagonal(), rtol=1e-14)

    def test_field_shaped_input(self, operators):
        res, _, host, wse = operators
        v = np.ones(res.mesh.shape_zyx)
        out = wse.matvec(v)
        assert out.shape == res.mesh.shape_zyx
        scale = np.abs(host.matvec(v)).max()
        np.testing.assert_allclose(out, host.matvec(v), atol=1e-13 * scale)

    def test_matmul_operator(self, operators):
        _, _, _, wse = operators
        v = np.ones(wse.n)
        np.testing.assert_array_equal(wse @ v, wse.matvec(v))

    def test_matvec_counter_and_cycles(self, operators):
        _, _, _, wse = operators
        before = wse.matvec_count
        cycles_before = wse.total_device_cycles
        wse.matvec(np.ones(wse.n))
        assert wse.matvec_count == before + 1
        assert wse.total_device_cycles > cycles_before

    def test_linearity(self, operators):
        _, _, _, wse = operators
        rng = np.random.default_rng(2)
        a, b = rng.standard_normal(wse.n), rng.standard_normal(wse.n)
        lhs = wse.matvec(2.0 * a + 3.0 * b)
        rhs = 2.0 * wse.matvec(a) + 3.0 * wse.matvec(b)
        scale = np.abs(lhs).max()
        np.testing.assert_allclose(lhs, rhs, atol=1e-12 * scale)


class TestKrylovOnFabric:
    def test_bicgstab_with_fabric_matvecs(self, operators):
        """A Newton linear system solved entirely with fabric matvecs."""
        res, p, host, wse = operators
        mass = res.mass_density(p)
        rhs = -res(p, mass).ravel()
        result = bicgstab(
            wse.matvec,
            rhs,
            rtol=1e-10,
            max_iterations=1000,
            psolve=jacobi_preconditioner(wse.diagonal()),
        )
        assert result.converged
        # verify against the host operator (independent check)
        err = np.abs(host.matvec(result.x) - rhs).max() / np.abs(rhs).max()
        assert err < 1e-8
        assert wse.matvec_count >= result.iterations

    def test_solution_matches_host_krylov(self, operators):
        res, p, host, wse = operators
        mass = res.mass_density(p)
        rhs = -res(p, mass).ravel()
        psolve = jacobi_preconditioner(host.diagonal())
        sol_host = bicgstab(host.matvec, rhs, rtol=1e-11, max_iterations=1000, psolve=psolve)
        sol_wse = bicgstab(wse.matvec, rhs, rtol=1e-11, max_iterations=1000, psolve=psolve)
        assert sol_host.converged and sol_wse.converged
        scale = np.abs(sol_host.x).max()
        np.testing.assert_allclose(sol_wse.x, sol_host.x, atol=1e-6 * scale)


class TestNewtonStepConsistency:
    def test_fabric_linear_solve_advances_newton(self):
        """One hand-rolled Newton update using the fabric operator lands
        where newton_solve's first iteration lands."""
        mesh = CartesianMesh3D(4, 4, 3)
        fluid = FluidProperties()
        res = FlowResidual(mesh, fluid, dt=3600.0, gravity=0.0)
        rng = np.random.default_rng(3)
        p0 = 1.5e7 + 2e5 * rng.standard_normal(mesh.shape_zyx)
        mass = res.mass_density(p0)
        r0 = res(p0, mass)

        wse = WseMatrixFreeJacobian(res, p0)
        lin = bicgstab(
            wse.matvec,
            -r0.ravel(),
            rtol=1e-12,
            max_iterations=2000,
            psolve=jacobi_preconditioner(wse.diagonal()),
        )
        assert lin.converged
        p1 = p0 + lin.x.reshape(mesh.shape_zyx)
        r1 = res(p1, mass)
        # a full Newton step on a mildly nonlinear problem: big reduction
        assert np.abs(r1).max() < 1e-3 * np.abs(r0).max()
