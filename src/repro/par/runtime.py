"""Warm process pools: spawn once, lease per problem, crash detection.

Worker processes are expensive to start (interpreter fork, numpy page
faults) and the per-problem prologue (mesh slicing, transmissibility
build) is expensive to repeat — so neither happens per application, and
with the warm pool neither happens per *problem* either:

* :class:`WarmPool` is a process-wide reservoir of idle,
  problem-agnostic worker processes (see
  :func:`~repro.par.worker.worker_main`'s command protocol).  Workers
  are spawned on first demand and returned to the reservoir when a
  computation closes, so back-to-back
  :class:`~repro.par.flux.ParClusterFluxComputation` instances reuse
  the same OS processes — ``spawn once, ship work over pipes``.
* :class:`ProcPool` is the per-problem view: it leases workers from the
  reservoir, ships each its :class:`~repro.par.worker.WorkerSpec` via a
  ``("setup", spec)`` command (the one-time state build, executed in
  parallel across workers), then drives applications with ``("run",)``
  commands.  ``shutdown()`` tears the problem state down and releases
  the workers back to the reservoir; ``terminate()`` (the crash path)
  kills them instead — a worker that crashed or may hold wedged state
  never re-enters the reservoir.

The collect loop polls each pipe in short slices interleaved with
liveness checks, so a worker that died (injected kill, OOM, organic
crash) surfaces as a structured
:class:`~repro.faults.errors.WorkerCrashError` within one poll slice
instead of hanging the parent until a timeout.

``fork`` is preferred (no re-import cost); everything is pickle-clean
so ``spawn`` works where fork is unavailable.  Workers are daemons:
they can never outlive the parent process, and idle reservoir workers
cost one sleeping process each until :func:`shutdown_warm_pool`.
"""

from __future__ import annotations

import multiprocessing as mp
import os

from repro.faults.errors import WorkerCrashError, WorkerLeaseExpiredError
from repro.par.worker import WorkerSpec, worker_main

__all__ = [
    "ProcPool",
    "WarmPool",
    "available_cpus",
    "warm_pool",
    "shutdown_warm_pool",
]

#: Seconds per pipe-poll slice in :meth:`ProcPool.collect`.
POLL_SLICE_SECONDS = 0.05


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    ``sched_getaffinity`` respects cgroup/taskset limits that
    ``os.cpu_count()`` ignores — in a 1-core container the difference
    decides whether overlap or a speedup gate makes sense.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _context() -> mp.context.BaseContext:
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return mp.get_context("spawn")


class _Handle:
    """One warm worker: the process and the parent end of its pipe."""

    __slots__ = ("proc", "conn")

    def __init__(self, proc: mp.Process, conn) -> None:
        self.proc = proc
        self.conn = conn

    def kill(self) -> None:
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=2.0)
        if self.proc.is_alive():
            # SIGTERM cannot kill a SIGSTOP'd (hung) worker — the signal
            # stays pending while the process is stopped.  Escalate to
            # SIGKILL, which is delivered regardless.
            self.proc.kill()
            self.proc.join(timeout=2.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


class WarmPool:
    """A reservoir of idle, problem-agnostic worker processes."""

    def __init__(self) -> None:
        self._idle: list[_Handle] = []
        self._spawned = 0

    # ------------------------------------------------------------------ #
    @property
    def idle_count(self) -> int:
        return len(self._idle)

    @property
    def total_spawned(self) -> int:
        """Processes ever spawned — the warm-reuse proof in tests."""
        return self._spawned

    def _spawn(self) -> _Handle:
        ctx = _context()
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=worker_main,
            args=(child_conn,),
            daemon=True,
            name=f"repro-par-warm-{self._spawned}",
        )
        proc.start()
        child_conn.close()
        self._spawned += 1
        return _Handle(proc, parent_conn)

    def lease(self, count: int) -> list[_Handle]:
        """Hand out ``count`` live workers, reusing idle ones LIFO."""
        handles: list[_Handle] = []
        while self._idle and len(handles) < count:
            handle = self._idle.pop()
            if handle.proc.is_alive():
                handles.append(handle)
            else:  # died while idle (should not happen; be safe)
                handle.kill()
        while len(handles) < count:
            handles.append(self._spawn())
        return handles

    def release(self, handles: list[_Handle]) -> None:
        """Return *live* workers to the reservoir (dead ones reaped)."""
        for handle in handles:
            if handle.proc.is_alive():
                self._idle.append(handle)
            else:
                handle.kill()

    def shutdown(self) -> None:
        """Quit every idle worker (leased ones belong to their pools)."""
        for handle in self._idle:
            if handle.proc.is_alive():
                try:
                    handle.conn.send(("quit",))
                except (OSError, BrokenPipeError):
                    pass
        for handle in self._idle:
            handle.proc.join(timeout=2.0)
            if handle.proc.is_alive():  # pragma: no cover - stuck worker
                handle.proc.terminate()
                handle.proc.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass
        self._idle = []


#: The process-wide reservoir; module-level so every
#: ParClusterFluxComputation in the process shares warm workers.
_GLOBAL_POOL: WarmPool | None = None


def warm_pool() -> WarmPool:
    """The process-wide :class:`WarmPool`, created on first use."""
    global _GLOBAL_POOL
    if _GLOBAL_POOL is None:
        _GLOBAL_POOL = WarmPool()
    return _GLOBAL_POOL


def shutdown_warm_pool() -> None:
    """Quit all idle warm workers (tests / explicit teardown)."""
    if _GLOBAL_POOL is not None:
        _GLOBAL_POOL.shutdown()


class ProcPool:
    """A fixed set of SPMD workers leased from a warm reservoir.

    Construction leases (or spawns) one worker per spec, ships the
    specs, and waits for every ``("ready", pid)`` ack — the per-problem
    state build runs in parallel across the workers.  If anything goes
    wrong mid-setup (a spec that fails to pickle, a worker that dies
    building its state), every leased worker is killed before the
    exception propagates, so no half-configured process can ever
    re-enter the reservoir.
    """

    def __init__(
        self,
        specs: list[WorkerSpec],
        *,
        reservoir: WarmPool | None = None,
        setup_timeout_seconds: float = 120.0,
        liveness=None,
        lease_seconds: float | None = None,
        attempt: int = 0,
    ) -> None:
        self.specs = list(specs)
        self._reservoir = reservoir if reservoir is not None else warm_pool()
        self.handles: list[_Handle] = []
        self._released = False
        #: ``liveness(worker_index) -> int`` reads the worker's shared
        #: heartbeat counter; with ``lease_seconds`` set, a live worker
        #: whose counter stalls for a full lease of poll passes is
        #: reported as :class:`WorkerLeaseExpiredError` (hung, not dead).
        self._liveness = liveness
        self._lease_seconds = lease_seconds
        self._attempt = int(attempt)
        try:
            self.handles = self._reservoir.lease(len(self.specs))
            for spec, handle in zip(self.specs, self.handles):
                handle.conn.send(("setup", spec))
            self._gather("ready", phase="setup",
                         timeout_seconds=setup_timeout_seconds)
        except BaseException:
            self.terminate()
            raise

    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return len(self.handles)

    @property
    def procs(self) -> list[mp.Process]:
        return [handle.proc for handle in self.handles]

    @property
    def conns(self) -> list:
        return [handle.conn for handle in self.handles]

    def pids(self) -> list[int]:
        """OS process id of every worker, in worker-index order."""
        return [handle.proc.pid for handle in self.handles]

    def send_run(self) -> None:
        """Start one application on every worker.

        A worker that died mid-pipeline has a broken pipe here; the
        send is skipped — the next :meth:`collect`'s liveness check
        reports the crash as a structured
        :class:`~repro.faults.errors.WorkerCrashError` instead of an
        unstructured ``BrokenPipeError`` escaping from the staging
        path.
        """
        for handle in self.handles:
            try:
                handle.conn.send(("run",))
            except (BrokenPipeError, OSError):
                continue

    def dead_workers(self) -> list[tuple[int, int, int | None, tuple[int, ...]]]:
        """``(index, pid, exitcode, ranks)`` for every non-live worker."""
        dead = []
        for i, handle in enumerate(self.handles):
            if not handle.proc.is_alive():
                dead.append(
                    (i, handle.proc.pid, handle.proc.exitcode,
                     tuple(self.specs[i].ranks))
                )
        return dead

    def _gather(self, expect: str, *, phase: str,
                timeout_seconds: float) -> list:
        """One ``(expect, body)`` reply per worker, in worker order.

        Raises
        ------
        WorkerCrashError
            When a worker dies (or its pipe hits EOF) before replying.
        RuntimeError
            When a worker reports an error, replies out of protocol, or
            no reply arrives within the poll budget.
        """
        bodies: list = [None] * self.size
        got: list[bool] = [False] * self.size
        # a fixed slice count, not a wall-clock deadline: deterministic
        # control flow, and each slice doubles as a liveness check
        budget = max(1, int(timeout_seconds / POLL_SLICE_SECONDS))
        # heartbeat-lease bookkeeping: last observed counter and how
        # many consecutive poll passes it has been stale, per worker
        lease_passes = None
        # the lease only governs application phases: during setup a
        # worker legitimately computes for a long stretch (mesh slicing,
        # transmissibility build) without touching the arena
        if (self._liveness is not None and self._lease_seconds is not None
                and phase != "setup"):
            lease_passes = max(1, int(self._lease_seconds
                                      / POLL_SLICE_SECONDS))
            last_beat = [None] * self.size
            stale = [0] * self.size
        policy = {
            "poll_slice_seconds": POLL_SLICE_SECONDS,
            "timeout_seconds": timeout_seconds,
            "lease_seconds": self._lease_seconds,
        }
        for passes in range(1, budget + 1):
            waiting = False
            for i, handle in enumerate(self.handles):
                if got[i]:
                    continue
                try:
                    ready = handle.conn.poll(POLL_SLICE_SECONDS)
                except (OSError, EOFError):
                    ready = False
                if not ready:
                    waiting = True
                    continue
                try:
                    kind, body = handle.conn.recv()
                except (EOFError, OSError):
                    waiting = True
                    continue
                if kind == "error":
                    raise RuntimeError(
                        f"worker {self.specs[i].index} failed during "
                        f"{phase}: {body}"
                    )
                if kind != expect:
                    raise RuntimeError(
                        f"worker {self.specs[i].index} replied {kind!r} "
                        f"during {phase}, expected {expect!r}"
                    )
                bodies[i] = body
                got[i] = True
            elapsed = passes * POLL_SLICE_SECONDS
            dead = [
                entry for entry in self.dead_workers() if not got[entry[0]]
            ]
            if dead:
                raise WorkerCrashError(
                    dead, phase, elapsed_seconds=elapsed,
                    attempt=self._attempt, policy=policy,
                )
            if lease_passes is not None:
                expired = []
                for i, handle in enumerate(self.handles):
                    if got[i]:
                        continue
                    beat = self._liveness(i)
                    if beat != last_beat[i]:
                        last_beat[i] = beat
                        stale[i] = 0
                    else:
                        stale[i] += 1
                    if stale[i] >= lease_passes:
                        expired.append(
                            (i, handle.proc.pid, None,
                             tuple(self.specs[i].ranks))
                        )
                if expired:
                    raise WorkerLeaseExpiredError(
                        expired, phase,
                        lease_seconds=self._lease_seconds,
                        elapsed_seconds=elapsed,
                        attempt=self._attempt, policy=policy,
                    )
            if not waiting:
                return bodies
        missing = [
            self.specs[i].index for i, done in enumerate(got) if not done
        ]
        raise RuntimeError(
            f"timed out waiting for worker(s) {missing} during {phase} "
            f"({timeout_seconds:.0f}s budget)"
        )

    def collect(self, *, timeout_seconds: float = 120.0,
                phase: str = "application") -> list[dict]:
        """One application's ``("ok", payload)`` reply per worker."""
        return self._gather("ok", phase=phase,
                            timeout_seconds=timeout_seconds)

    # ------------------------------------------------------------------ #
    def terminate(self) -> None:
        """Hard-stop every worker (crash recovery path).

        Killed workers never return to the reservoir — a wedged or
        half-configured process must not serve the next problem.
        """
        self._released = True
        for handle in self.handles:
            handle.kill()

    def shutdown(self) -> None:
        """Graceful stop: tear down app state, release workers warm.

        Workers that acknowledge the teardown go back to the reservoir
        still running; stragglers are killed.
        """
        if self._released:
            return
        self._released = True
        keep: list[_Handle] = []
        for handle in self.handles:
            if not handle.proc.is_alive():
                handle.kill()
                continue
            try:
                handle.conn.send(("teardown",))
            except (OSError, BrokenPipeError):
                handle.kill()
                continue
            keep.append(handle)
        released: list[_Handle] = []
        for handle in keep:
            # bounded poll: a worker mid-application drains its pending
            # replies before acking the teardown
            budget = max(1, int(10.0 / POLL_SLICE_SECONDS))
            acked = False
            for _ in range(budget):
                try:
                    if not handle.conn.poll(POLL_SLICE_SECONDS):
                        if not handle.proc.is_alive():
                            break
                        continue
                    kind, _body = handle.conn.recv()
                except (EOFError, OSError):
                    break
                if kind == "released":
                    acked = True
                    break
                # stale ("ok", payload) replies from an abandoned
                # application drain here; anything else is fatal
                if kind == "error":
                    break
            if acked:
                released.append(handle)
            else:
                handle.kill()
        self._reservoir.release(released)
