"""Unit tests for CartesianMesh3D."""

import numpy as np
import pytest

from repro.core import CartesianMesh3D


class TestConstruction:
    def test_basic_shape(self, small_mesh):
        assert small_mesh.shape_xyz == (6, 5, 4)
        assert small_mesh.shape_zyx == (4, 5, 6)
        assert small_mesh.num_cells == 120

    def test_cell_volume(self):
        m = CartesianMesh3D(2, 2, 2, dx=10.0, dy=5.0, dz=2.0)
        assert m.cell_volume == pytest.approx(100.0)

    def test_scalar_permeability_broadcast(self, small_mesh):
        assert small_mesh.permeability.shape == small_mesh.shape_zyx
        assert np.all(small_mesh.permeability == small_mesh.permeability[0, 0, 0])

    def test_array_permeability_kept(self, hetero_mesh):
        assert hetero_mesh.permeability.shape == hetero_mesh.shape_zyx
        assert hetero_mesh.permeability.std() > 0

    def test_rejects_zero_dimension(self):
        with pytest.raises(ValueError, match="nx"):
            CartesianMesh3D(0, 2, 2)

    def test_rejects_float_dimension(self):
        with pytest.raises(ValueError, match="ny"):
            CartesianMesh3D(2, 2.5, 2)

    def test_rejects_negative_spacing(self):
        with pytest.raises(ValueError, match="dz"):
            CartesianMesh3D(2, 2, 2, dz=-1.0)

    def test_rejects_nonpositive_permeability(self):
        with pytest.raises(ValueError, match="permeability"):
            CartesianMesh3D(2, 2, 2, permeability=0.0)

    def test_rejects_wrong_shape_permeability(self):
        with pytest.raises(ValueError, match="permeability"):
            CartesianMesh3D(2, 2, 2, permeability=np.ones((3, 2, 2)) * 1e-13)

    def test_numpy_integer_dims_accepted(self):
        m = CartesianMesh3D(np.int64(3), np.int32(2), np.int64(2))
        assert m.shape_xyz == (3, 2, 2)


class TestGeometry:
    def test_elevation_varies_only_in_z(self, small_mesh):
        z = small_mesh.elevation
        assert z.shape == small_mesh.shape_zyx
        assert np.all(z[0] == z[0, 0, 0])
        np.testing.assert_allclose(
            z[:, 0, 0], (np.arange(4) + 0.5) * small_mesh.dz
        )

    def test_elevation_honours_origin(self):
        m = CartesianMesh3D(2, 2, 2, dz=4.0, origin=(0.0, 0.0, 100.0))
        assert m.elevation[0, 0, 0] == pytest.approx(102.0)

    def test_cell_centre(self):
        m = CartesianMesh3D(3, 3, 3, dx=2.0, dy=4.0, dz=6.0, origin=(1.0, 2.0, 3.0))
        assert m.cell_centre(0, 0, 0) == pytest.approx((2.0, 4.0, 6.0))
        assert m.cell_centre(2, 1, 0) == pytest.approx((6.0, 8.0, 6.0))


class TestIndexing:
    def test_cell_index_order(self, small_mesh):
        assert small_mesh.cell_index(1, 2, 3) == (3, 2, 1)

    def test_cell_index_bounds(self, small_mesh):
        with pytest.raises(IndexError):
            small_mesh.cell_index(6, 0, 0)
        with pytest.raises(IndexError):
            small_mesh.cell_index(0, -1, 0)

    def test_flat_index_row_major_x_innermost(self, small_mesh):
        # (x=0..) consecutive in memory
        assert small_mesh.flat_index(1, 0, 0) - small_mesh.flat_index(0, 0, 0) == 1
        assert (
            small_mesh.flat_index(0, 1, 0) - small_mesh.flat_index(0, 0, 0)
            == small_mesh.nx
        )
        assert (
            small_mesh.flat_index(0, 0, 1) - small_mesh.flat_index(0, 0, 0)
            == small_mesh.nx * small_mesh.ny
        )

    def test_flat_index_matches_ravel(self, small_mesh):
        field = np.arange(small_mesh.num_cells, dtype=np.float64).reshape(
            small_mesh.shape_zyx
        )
        x, y, z = 4, 3, 2
        assert field.ravel()[small_mesh.flat_index(x, y, z)] == field[z, y, x]


class TestFieldHelpers:
    def test_full_and_zeros(self, small_mesh):
        f = small_mesh.full(3.0)
        assert f.shape == small_mesh.shape_zyx
        assert np.all(f == 3.0)
        assert np.all(small_mesh.zeros() == 0.0)

    def test_validate_field(self, small_mesh):
        small_mesh.validate_field(small_mesh.zeros())
        with pytest.raises(ValueError, match="myname"):
            small_mesh.validate_field(np.zeros((1, 1, 1)), name="myname")

    def test_column_is_view(self, small_mesh):
        f = small_mesh.zeros()
        col = small_mesh.column(f, 2, 3)
        col[:] = 7.0
        assert np.all(f[:, 3, 2] == 7.0)
        assert col.shape == (small_mesh.nz,)

    def test_column_bounds(self, small_mesh):
        with pytest.raises(IndexError):
            small_mesh.column(small_mesh.zeros(), 6, 0)
