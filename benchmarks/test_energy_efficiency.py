"""Sec. 7.2 — energy efficiency comparison.

Paper: the CS-2 draws 23 kW at steady state (13.67 GFLOP/W on this
kernel); the A100 peaks at 250 W; the dataflow implementation is 2.2x
more energy efficient *in aggregate* (energy per completed job).
"""

import pytest

from repro.perf import compare_energy
from repro.util.reporting import Table, format_si


def test_reproduce_energy_comparison(report, benchmark):
    cmp = benchmark(compare_energy)
    table = Table(
        "Sec. 7.2 — energy for 1000 applications, 750x994x246 mesh",
        ["Quantity", "Reproduced", "Paper"],
    )
    table.add_row(["CS-2 power", format_si(cmp.cs2_power_w, "W"), "23 kW"])
    table.add_row(["A100 power", format_si(cmp.a100_power_w, "W"), "250 W"])
    table.add_row(["CS-2 energy", format_si(cmp.cs2_joules, "J"), "--"])
    table.add_row(["A100 energy", format_si(cmp.a100_joules, "J"), "--"])
    table.add_row(
        ["CS-2 GFLOP/W", f"{cmp.cs2_gflops_per_watt:.2f}", "13.67"]
    )
    table.add_row(
        ["efficiency ratio", f"{cmp.energy_efficiency_ratio:.2f}x", "2.2x"]
    )
    report(table.render())

    assert cmp.energy_efficiency_ratio == pytest.approx(2.2, rel=0.10)
    assert cmp.cs2_gflops_per_watt == pytest.approx(13.67, rel=0.02)
    assert cmp.a100_joules > cmp.cs2_joules


def test_energy_model_speed(benchmark):
    benchmark(compare_energy)
