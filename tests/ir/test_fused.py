"""Lowering equivalence: one IR, three runtimes, one set of bits.

Property test over randomized small meshes (channelized and variable
``dz_layers`` geomodels, both float dtypes): the event and fused
lowerings of the same IR must agree **bitwise** (they share a conform
fold class), and lockstep must agree within the documented
summation-order tolerance (identical operations, different final
additions — see tests/integration/test_equivalence.py).  On
forced-order fabric shapes all three coincide exactly.
"""

import numpy as np
import pytest

from repro.core import CartesianMesh3D, FluidProperties, random_pressure
from repro.dataflow import WseFluxComputation
from repro.ir import derive_ir, ir_from_fabric
from repro.ir.lower import (
    lower_to_event,
    lower_to_fused,
    lower_to_lockstep,
)
from repro.workloads.geomodels import make_geomodel
from repro.wse.fabric import Fabric

DTYPES = (np.float32, np.float64)
SEEDS = range(4)
APPLICATIONS = 2


def _random_mesh(seed: int, geomodel: str) -> CartesianMesh3D:
    rng = np.random.default_rng(seed)
    nx = int(rng.integers(2, 6))
    ny = int(rng.integers(1, 5))
    nz = int(rng.integers(2, 6))
    if geomodel == "dz_layers":
        dz_layers = [round(t, 3) for t in rng.uniform(0.5, 3.0, size=nz)]
        return make_geomodel(
            nx, ny, nz, kind="channelized", seed=seed, dz_layers=dz_layers
        )
    return make_geomodel(nx, ny, nz, kind=geomodel, seed=seed)


class TestLoweringsAgree:
    @pytest.mark.parametrize("geomodel", ["channelized", "dz_layers"])
    @pytest.mark.parametrize("dtype", DTYPES, ids=lambda d: d.__name__)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_event_fused_bitwise_lockstep_ulp_bounded(
        self, seed, dtype, geomodel
    ):
        mesh = _random_mesh(seed, geomodel)
        fluid = FluidProperties()
        ir = derive_ir(mesh, dtype=dtype)
        pressures = [
            random_pressure(mesh, seed=100 * seed + k)
            for k in range(APPLICATIONS)
        ]
        event = lower_to_event(ir, mesh, fluid)
        lockstep = lower_to_lockstep(ir, mesh, fluid)
        fused = lower_to_fused(ir, mesh, fluid)
        batch = fused.run(pressures, keep_all=True)
        for k, pressure in enumerate(pressures):
            r_event = event.run_single(pressure).residual
            r_fused = batch.residuals[k]
            assert r_fused.dtype == r_event.dtype == np.dtype(dtype)
            assert (r_event == r_fused).all(), (
                f"fused diverged from event bitwise on seed={seed} "
                f"{geomodel} {mesh.nx}x{mesh.ny}x{mesh.nz} app {k}"
            )
            r_lock = lockstep.run_application(pressure)
            tol = 1e-6 if dtype is np.float32 else 1e-14
            scale = float(np.abs(r_event).max())
            np.testing.assert_allclose(r_lock, r_event, atol=tol * scale)

    @pytest.mark.parametrize("dtype", DTYPES, ids=lambda d: d.__name__)
    def test_forced_order_mesh_makes_all_three_bitwise(self, dtype):
        mesh = CartesianMesh3D(2, 1, 5)
        fluid = FluidProperties()
        ir = derive_ir(mesh, dtype=dtype)
        pressure = random_pressure(mesh, seed=7)
        r_event = lower_to_event(ir, mesh, fluid).run_single(pressure).residual
        r_lock = lower_to_lockstep(ir, mesh, fluid).run_application(pressure)
        r_fused = lower_to_fused(ir, mesh, fluid).run([pressure]).residual
        assert (r_event == r_lock).all()
        assert (r_event == r_fused).all()

    def test_ir_lowered_event_matches_the_plain_event_driver(self):
        """Consuming IR-carried routes must not change the event bits."""
        mesh = make_geomodel(4, 3, 4, kind="channelized", seed=3)
        fluid = FluidProperties()
        pressure = random_pressure(mesh, seed=1)
        plain = WseFluxComputation(mesh, fluid).run_single(pressure).residual
        lowered = (
            lower_to_event(derive_ir(mesh), mesh, fluid)
            .run_single(pressure)
            .residual
        )
        assert (plain == lowered).all()


class TestLoweringGuards:
    def test_bare_fabric_ir_refuses_to_lower(self):
        ir = ir_from_fabric(Fabric(2, 2))
        mesh = CartesianMesh3D(2, 2, 2)
        with pytest.raises(ValueError, match="fabric"):
            lower_to_fused(ir, mesh, FluidProperties())

    def test_mesh_mismatch_is_rejected(self):
        ir = derive_ir(CartesianMesh3D(3, 3, 3))
        with pytest.raises(ValueError, match="mesh"):
            lower_to_fused(ir, CartesianMesh3D(3, 3, 4), FluidProperties())
