#!/usr/bin/env python
"""Benchmark the event-driven WSE simulator hot path.

Measures the throughput of :class:`repro.wse.runtime.EventRuntime` running
the full flux protocol (cardinal switch exchange + two-hop diagonals) via
:class:`repro.dataflow.driver.WseFluxComputation`, and records the results
in ``BENCH_event_runtime.json`` at the repository root so regressions are
tracked across PRs.

Metrics
-------
events_per_sec:
    Simulator events drained per wall-clock second on the reference
    workload (the primary hot-path metric).
mcells_per_sec:
    Mesh cells processed per wall-clock second (millions) — end-to-end
    including host-side load/gather.
peak_fabric:
    Largest square fabric whose single application fits a fixed
    wall-clock budget (tractability frontier of the event simulator).
calib_ops_per_sec:
    Machine-speed yardstick (pure-Python heap churn).  Stored so that
    entries measured on different machines can be compared through the
    normalized ratio ``events_per_calib_op``.
trace_overhead:
    Wall-clock cost of running with the streaming trace sink enabled
    (``trace=True``) relative to the untraced hot path.  Gated at
    <10% by ``--check`` so observability stays affordable at scale.
record_overhead:
    Wall-clock cost of replay recording (``record=``, per-step digests
    plus residual snapshots) on top of the traced path, under the same
    <10% gate.  ``--check`` additionally loads every golden replay
    artifact to prove its schema is still supported by the tree.
resilience_overhead:
    Wall-clock cost of a fault-free run under the resilience
    supervisor (per-application checkpoints + policy bookkeeping)
    relative to driving the event backend directly, under the same
    <10% gate — self-healing must be affordable enough to leave on.
lockstep:
    The vectorized lockstep backend on the same workload, so
    cross-backend throughput trends live in one file.
fused_runtime:
    The fused IR backend (``repro.ir.fused``: whole-array per-color
    rounds lowered from the fabric-program IR, bit-identical to the
    event backend) on the same workload.  ``--check`` gates fused
    throughput at >= lockstep's (the fused scheduler exists to beat the
    phase-by-phase simulation) and IR derivation at <10% of cold
    startup (thin-waist bookkeeping must stay almost free).
gpu_model:
    The GPU execution-model backend (RAJA-style tiled kernels) on the
    same workload — the last backend that was untracked here.
verifier:
    Wall-clock time of the static verifier (``repro check``) over the
    full example-program registry plus the determinism lint of
    ``src/repro``.  Gated at <10 s by ``--check`` so the merge gate
    stays cheap enough to run on every PR.
race_check:
    Wall-clock time of the concurrency verifier (``repro check
    --race``): the bounded model check of the halo publish protocol at
    its default bounds, the concurrency lint of ``src/repro``, the
    live happens-before probe, and the seeded mutation drill.  Gated
    at <10 s (and zero errors, with every mutation caught) by
    ``--check``.
par_runtime:
    The multiprocess SPMD runtime (``repro.par``) against the serial
    cluster backend on the same workload: a worker sweep (1, 2, ...,
    ``workers`` processes) recording per-count speedup and parallel
    efficiency, plus worker PID count and residual bit-identity.
    ``--check`` always gates on *correctness* (bit-identical residual
    at every swept count, >= 2 distinct worker PIDs); when the host has
    at least as many usable CPUs as workers it additionally gates on
    *performance* — speedup > 1 at the full worker count and a
    monotonically non-increasing efficiency curve.  On a host with
    fewer cores than workers (common CI runners) real processes
    legitimately run no faster than the serial loop, so the
    performance gates are skipped and say so.

Usage
-----
Record an entry (writes/updates the JSON in place)::

    python benchmarks/bench_event_runtime.py --label optimized

Fast CI regression gate (<60 s, compares the normalized smoke metric
against the checked-in ``optimized`` entry, fails on >30% regression
or >10% tracing overhead)::

    python benchmarks/bench_event_runtime.py --check
"""

from __future__ import annotations

import argparse
import gc
import heapq
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core import (  # noqa: E402
    CartesianMesh3D,
    FluidProperties,
    PressureSequence,
    Transmissibility,
)
from repro.dataflow import WseFluxComputation  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_event_runtime.json"

#: Reference workload: large enough that per-event costs dominate over
#: per-application host work, small enough to run in seconds.
MAIN_WORKLOAD = dict(nx=24, ny=24, nz=8, applications=3)

#: CI smoke workload: completes in a few seconds even on the seed code.
SMOKE_WORKLOAD = dict(nx=12, ny=12, nz=6, applications=2)

#: Workload for the tracing-overhead ratio: long enough per run that the
#: few-percent signal is resolvable above scheduler noise.
TRACE_WORKLOAD = dict(nx=20, ny=20, nz=8, applications=2)

#: Square fabric sizes probed by the peak-fabric search (nz fixed at 8).
PEAK_SIZES = (8, 12, 16, 24, 32, 48, 64, 96)

#: SPMD-runtime workload: 2x2 ranks over up to 4 worker processes.
#: Large enough (~33k cells) that per-application kernel time dominates
#: the pipe/arena overheads the runtime amortizes.
PAR_WORKLOAD = dict(nx=64, ny=64, nz=8, applications=4, px=2, py=2, workers=4)

#: Allowed normalized-throughput regression before --check fails.
CHECK_TOLERANCE = 0.30

#: Allowed wall-clock overhead of trace=True before --check fails.
TRACE_OVERHEAD_TOLERANCE = 0.10

#: Allowed fraction of fused cold startup spent deriving the IR.
IR_BUILD_TOLERANCE = 0.10

#: Wall-clock budget for the static verifier pass before --check fails.
VERIFIER_BUDGET_SECONDS = 10.0

#: Wall-clock budget for the concurrency verifier (model check + lint +
#: hb probe + mutation drill) before --check fails.
RACE_CHECK_BUDGET_SECONDS = 10.0


def calibrate(n: int = 200_000) -> float:
    """Machine-speed yardstick: pure-Python heap churn, ops per second."""
    heap: list = []
    push, pop = heapq.heappush, heapq.heappop
    t0 = time.perf_counter()
    for i in range(n):
        push(heap, (float(i & 1023), i, None))
        if i & 1:
            pop(heap)
    while heap:
        pop(heap)
    return n / (time.perf_counter() - t0)


def bench_flux(
    nx: int, ny: int, nz: int, applications: int, *, repeats: int = 3
) -> dict:
    """Time the reference flux workload; return throughput metrics.

    The program build (routing tables, memory layouts) is excluded — the
    benchmark targets the event-drain hot path.  Best-of-``repeats``
    timing suppresses scheduler noise.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    mesh = CartesianMesh3D(nx, ny, nz)
    fluid = FluidProperties()
    trans = Transmissibility(mesh)
    wse = WseFluxComputation(mesh, fluid, trans, dtype=np.float32)
    seq = PressureSequence(mesh, num_applications=applications, seed=7)
    pressures = [seq.field(i) for i in range(applications)]

    wse.run(pressures)  # warm-up (numpy caches, allocator)
    best = np.inf
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = wse.run(pressures)
        dt = time.perf_counter() - t0
        best = min(best, dt)
    events = result.stats.events_processed
    cells = mesh.num_cells * applications
    return {
        "mesh": [nx, ny, nz],
        "applications": applications,
        "wall_seconds": round(best, 6),
        "events": events,
        "events_per_sec": round(events / best, 1),
        "mcells_per_sec": round(cells / best / 1e6, 6),
        "messages_delivered": result.stats.messages_delivered,
        "fabric_word_hops": result.fabric_word_hops,
    }


def bench_trace_overhead(
    nx: int, ny: int, nz: int, applications: int, *, repeats: int = 3
) -> dict:
    """Wall-clock cost of ``trace=True`` relative to the untraced path.

    The sink's aggregation is O(1) per event and the ring is bounded, so
    the overhead must stay flat with workload size; a small capacity is
    used deliberately to show cost is independent of retention.
    """
    mesh = CartesianMesh3D(nx, ny, nz)
    fluid = FluidProperties()
    trans = Transmissibility(mesh)
    seq = PressureSequence(mesh, num_applications=applications, seed=7)
    pressures = [seq.field(i) for i in range(applications)]
    pair = {
        traced: WseFluxComputation(
            mesh, fluid, trans, dtype=np.float32,
            trace=traced, trace_capacity=256,
        )
        for traced in (False, True)
    }
    for wse in pair.values():  # warm-up
        wse.run(pressures)
    # Scheduler/neighbour contention only ever *adds* time, so the
    # minimum over many alternating rounds is each side's uncontended
    # truth and their ratio a one-sided upper-bound estimate of the
    # overhead.  GC is paused during timing — collection pauses land on
    # whichever side crosses the allocation threshold and would drown
    # the few-percent signal.
    best = {False: np.inf, True: np.inf}
    gc.disable()
    try:
        for _ in range(max(repeats, 12)):
            for traced, wse in pair.items():
                gc.collect()
                t0 = time.perf_counter()
                wse.run(pressures)
                best[traced] = min(best[traced], time.perf_counter() - t0)
    finally:
        gc.enable()
    overhead = best[True] / best[False] - 1.0
    return {
        "mesh": [nx, ny, nz],
        "applications": applications,
        "untraced_seconds": round(best[False], 6),
        "traced_seconds": round(best[True], 6),
        "overhead_fraction": round(overhead, 4),
    }


def bench_record_overhead(
    nx: int, ny: int, nz: int, applications: int, *, repeats: int = 3
) -> dict:
    """Wall-clock cost of replay recording on top of ``trace=True``.

    Both sides run traced, so the ratio isolates what the
    :class:`~repro.obs.replay.ReplayRecorder` itself adds (per-step
    digests + residual snapshots).  Same minima-of-alternating-rounds
    estimator as :func:`bench_trace_overhead`, same <10% budget.
    """
    from repro.obs.replay import ReplayRecorder

    mesh = CartesianMesh3D(nx, ny, nz)
    fluid = FluidProperties()
    trans = Transmissibility(mesh)
    seq = PressureSequence(mesh, num_applications=applications, seed=7)
    pressures = [seq.field(i) for i in range(applications)]
    recorder = ReplayRecorder({}, snapshot_every=1)
    pair = {
        recorded: WseFluxComputation(
            mesh, fluid, trans, dtype=np.float32,
            trace=True, trace_capacity=256,
            record=recorder if recorded else None,
        )
        for recorded in (False, True)
    }
    for wse in pair.values():  # warm-up
        wse.run(pressures)
    best = {False: np.inf, True: np.inf}
    gc.disable()
    try:
        for _ in range(max(repeats, 12)):
            for recorded, wse in pair.items():
                gc.collect()
                t0 = time.perf_counter()
                wse.run(pressures)
                best[recorded] = min(
                    best[recorded], time.perf_counter() - t0
                )
    finally:
        gc.enable()
    overhead = best[True] / best[False] - 1.0
    return {
        "mesh": [nx, ny, nz],
        "applications": applications,
        "traced_seconds": round(best[False], 6),
        "recorded_seconds": round(best[True], 6),
        "overhead_fraction": round(overhead, 4),
    }


def bench_resilience_overhead(
    nx: int, ny: int, nz: int, applications: int, *, repeats: int = 3
) -> dict:
    """Wall-clock cost of fault-free supervision on the event backend.

    The supervised side pays the full resilience tax — driver (re)build
    through the factory, a residual copy + checksummed checkpoint per
    application, timeline bookkeeping — against a bare driver doing the
    same applications.  Same minima-of-alternating-rounds estimator as
    :func:`bench_trace_overhead`, same <10% budget: self-healing is
    only deployable if leaving it on is nearly free.
    """
    from repro.resilience import ResiliencePolicy, RunSupervisor

    mesh = CartesianMesh3D(nx, ny, nz)
    fluid = FluidProperties()
    seq = PressureSequence(mesh, num_applications=applications, seed=7)
    pressures = [seq.field(i) for i in range(applications)]
    policy = ResiliencePolicy(checkpoint_every=1)

    def bare() -> None:
        drv = WseFluxComputation(mesh, fluid, dtype=np.float64)
        for p in pressures:
            drv.run_single(p)

    def supervised() -> None:
        RunSupervisor(
            mesh, fluid, policy=policy, backend="event"
        ).run(pressures)

    pair = {False: bare, True: supervised}
    for fn in pair.values():  # warm-up
        fn()
    best = {False: np.inf, True: np.inf}
    gc.disable()
    try:
        for _ in range(max(repeats, 8)):
            for key, fn in pair.items():
                gc.collect()
                t0 = time.perf_counter()
                fn()
                best[key] = min(best[key], time.perf_counter() - t0)
    finally:
        gc.enable()
    overhead = best[True] / best[False] - 1.0
    return {
        "mesh": [nx, ny, nz],
        "applications": applications,
        "bare_seconds": round(best[False], 6),
        "supervised_seconds": round(best[True], 6),
        "overhead_fraction": round(overhead, 4),
    }


def check_golden_schema() -> dict:
    """Load every golden replay artifact, reporting its schema version.

    ``ReplayArtifact.load`` refuses artifacts newer than the code's
    ``SCHEMA_VERSION``, so a clean pass proves the checked-in registry
    stays replayable by the current tree.
    """
    from repro.conform import load_registry
    from repro.obs.replay import SCHEMA_VERSION, ReplayArtifact

    artifacts = {}
    errors = []
    for entry in load_registry():
        try:
            artifacts[entry["name"]] = ReplayArtifact.load(entry["path"]).schema
        except (ValueError, OSError, KeyError) as exc:
            errors.append(f"{entry['name']}: {exc}")
    return {
        "supported_schema": SCHEMA_VERSION,
        "artifacts": artifacts,
        "errors": errors,
    }


def bench_lockstep(
    nx: int, ny: int, nz: int, applications: int, *, repeats: int = 3
) -> dict:
    """Lockstep-backend throughput on the event benchmark's workload."""
    from repro.dataflow import LockstepWseSimulation

    mesh = CartesianMesh3D(nx, ny, nz)
    fluid = FluidProperties()
    trans = Transmissibility(mesh)
    sim = LockstepWseSimulation(mesh, fluid, trans, dtype=np.float32)
    seq = PressureSequence(mesh, num_applications=applications, seed=7)
    pressures = [seq.field(i) for i in range(applications)]
    for p in pressures:  # warm-up
        sim.run_application(p)
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        for p in pressures:
            sim.run_application(p)
        best = min(best, time.perf_counter() - t0)
    cells = mesh.num_cells * applications
    return {
        "mesh": [nx, ny, nz],
        "applications": applications,
        "wall_seconds": round(best, 6),
        "mcells_per_sec": round(cells / best / 1e6, 6),
    }


def bench_fused(
    nx: int, ny: int, nz: int, applications: int, *, repeats: int = 3
) -> dict:
    """Fused-IR-backend throughput on the event benchmark's workload.

    Cold startup (IR derivation + fold-schedule probe + first batch) is
    timed separately from the steady-state throughput so ``--check``
    can gate the IR-build tax on run startup.
    """
    from repro.ir import FusedFluxComputation
    from repro.ir.schedule import _CACHE

    mesh = CartesianMesh3D(nx, ny, nz)
    fluid = FluidProperties()
    trans = Transmissibility(mesh)
    seq = PressureSequence(mesh, num_applications=applications, seed=7)
    pressures = [seq.field(i) for i in range(applications)]
    _CACHE.clear()  # a warm process-wide cache would hide the probe cost
    t0 = time.perf_counter()
    drv = FusedFluxComputation(mesh, fluid, trans, dtype=np.float32)
    drv.run(pressures)
    startup = time.perf_counter() - t0
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        drv.run(pressures)
        best = min(best, time.perf_counter() - t0)
    cells = mesh.num_cells * applications
    return {
        "mesh": [nx, ny, nz],
        "applications": applications,
        "wall_seconds": round(best, 6),
        "mcells_per_sec": round(cells / best / 1e6, 6),
        "startup_seconds": round(startup, 6),
        "ir_build_seconds": round(drv.ir_build_seconds, 6),
        "schedule_seconds": round(drv.schedule_seconds, 6),
        "ir_build_fraction": round(drv.ir_build_seconds / startup, 4),
    }


def bench_gpu(
    nx: int, ny: int, nz: int, applications: int, *, repeats: int = 3
) -> dict:
    """GPU-model-backend throughput on the event benchmark's workload."""
    from repro.gpu import GpuFluxComputation

    mesh = CartesianMesh3D(nx, ny, nz)
    fluid = FluidProperties()
    trans = Transmissibility(mesh)
    gpu = GpuFluxComputation(mesh, fluid, trans, variant="raja", dtype=np.float32)
    seq = PressureSequence(mesh, num_applications=applications, seed=7)
    pressures = [seq.field(i) for i in range(applications)]
    gpu.run(pressures)  # warm-up
    best = np.inf
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = gpu.run(pressures)
        best = min(best, time.perf_counter() - t0)
    cells = mesh.num_cells * applications
    return {
        "mesh": [nx, ny, nz],
        "applications": applications,
        "variant": "raja",
        "wall_seconds": round(best, 6),
        "mcells_per_sec": round(cells / best / 1e6, 6),
        "kernel_launches": result.kernel_launches,
        "tiles_executed": result.tiles_executed,
    }


def bench_par_runtime(
    nx: int, ny: int, nz: int, applications: int, px: int, py: int,
    workers: int, *, repeats: int = 3,
) -> dict:
    """Multiprocess SPMD runtime vs the serial cluster backend.

    Runs the strong-scaling worker sweep (1, 2, ..., ``workers``
    processes on one fixed mesh, all against a common serial
    reference); the entry records the full efficiency curve *and* the
    correctness facts (bit-identity, distinct worker PIDs) that
    ``--check`` gates on.  Seconds are per application, best of
    ``repeats`` batch runs.
    """
    from repro.par.runtime import available_cpus, shutdown_warm_pool
    from repro.par.scale import worker_sweep

    counts = sorted({w for w in (1, 2, workers) if w <= px * py})
    points = worker_sweep(
        counts, nx=nx, ny=ny, nz=nz, px=px, py=py,
        applications=applications, seed=7, repeats=repeats,
    )
    shutdown_warm_pool()  # don't leave idle benchmark workers behind
    top = points[-1]
    return {
        "mesh": [nx, ny, nz],
        "rank_grid": [px, py],
        "workers": top.workers,
        "applications": applications,
        "host_cpus": available_cpus(),
        "overlap": top.overlap,
        "serial_seconds": round(top.serial_seconds, 6),
        "par_seconds": round(top.par_seconds, 6),
        "speedup": round(top.speedup, 4),
        "parallel_efficiency": round(top.efficiency, 4),
        "distinct_pids": top.distinct_pids,
        "bit_identical": all(pt.bit_identical for pt in points),
        "worker_sweep": [
            {
                "workers": pt.workers,
                "overlap": pt.overlap,
                "par_seconds": round(pt.par_seconds, 6),
                "speedup": round(pt.speedup, 4),
                "efficiency": round(pt.efficiency, 4),
                "distinct_pids": pt.distinct_pids,
                "bit_identical": pt.bit_identical,
            }
            for pt in points
        ],
    }


def bench_verifier() -> dict:
    """Static-verifier wall time over the example registry + lint.

    Exactly the work the CI ``check`` job runs, so the tracked number is
    the cost of the merge gate itself.  Errors found would make the gate
    fail, so the benchmark also asserts the registry is clean.
    """
    from repro.check import check_examples, lint_paths

    t0 = time.perf_counter()
    reports = check_examples()
    examples_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    lint = lint_paths(REPO_ROOT / "src" / "repro")
    lint_seconds = time.perf_counter() - t0
    errors = sum(len(r.errors) for r in reports.values())
    findings = sum(len(r.findings) for r in reports.values())
    return {
        "programs": len(reports),
        "examples_seconds": round(examples_seconds, 4),
        "lint_findings": len(lint),
        "lint_seconds": round(lint_seconds, 4),
        "wall_seconds": round(examples_seconds + lint_seconds, 4),
        "findings": findings,
        "errors": errors,
    }


def bench_race_check() -> dict:
    """Concurrency-verifier wall time: model check + lint + hb probe +
    mutation drill — exactly what CI's ``repro check --race`` /
    ``--race-drill`` jobs run, so the tracked number is the cost of
    that gate.  A healthy tree yields zero errors and every seeded
    mutation caught."""
    from repro.check import drill_findings, run_race_checks

    t0 = time.perf_counter()
    reports = run_race_checks(REPO_ROOT / "src" / "repro")
    checks_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    drill = drill_findings()
    drill_seconds = time.perf_counter() - t0
    states = sum(
        int(r.subject.rsplit("(", 1)[1].split()[0])
        for r in reports
        if r.subject.startswith("race model:")
    )
    return {
        "subjects": len(reports),
        "model_states": states,
        "checks_seconds": round(checks_seconds, 4),
        "drill_seconds": round(drill_seconds, 4),
        "wall_seconds": round(checks_seconds + drill_seconds, 4),
        "errors": sum(len(r.errors) for r in reports) + len(drill.errors),
        "mutations_caught": sum(
            1 for f in drill.findings if f.severity.name == "INFO"
        ),
    }


def bench_peak_fabric(budget_seconds: float, *, nz: int = 8) -> dict:
    """Largest square fabric whose single application fits the budget."""
    fluid = FluidProperties()
    samples = []
    peak = None
    for n in PEAK_SIZES:
        mesh = CartesianMesh3D(n, n, nz)
        wse = WseFluxComputation(mesh, fluid, dtype=np.float32)
        p = PressureSequence(mesh, num_applications=1, seed=3).field(0)
        t0 = time.perf_counter()
        result = wse.run_single(p)
        dt = time.perf_counter() - t0
        samples.append(
            {
                "n": n,
                "wall_seconds": round(dt, 4),
                "events_per_sec": round(result.stats.events_processed / dt, 1),
            }
        )
        if dt <= budget_seconds:
            peak = n
        else:
            break
    return {"budget_seconds": budget_seconds, "peak_n": peak, "samples": samples}


def measure_entry(*, smoke_only: bool, budget_seconds: float, repeats: int) -> dict:
    calib = calibrate()
    entry: dict = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "calib_ops_per_sec": round(calib, 1),
        "smoke": bench_flux(**SMOKE_WORKLOAD, repeats=repeats),
    }
    entry["smoke"]["events_per_calib_op"] = round(
        entry["smoke"]["events_per_sec"] / calib, 6
    )
    entry["trace_overhead"] = bench_trace_overhead(**TRACE_WORKLOAD, repeats=repeats)
    entry["record_overhead"] = bench_record_overhead(
        **TRACE_WORKLOAD, repeats=repeats
    )
    entry["resilience_overhead"] = bench_resilience_overhead(
        **TRACE_WORKLOAD, repeats=repeats
    )
    entry["verifier"] = bench_verifier()
    entry["race_check"] = bench_race_check()
    entry["par_runtime"] = bench_par_runtime(**PAR_WORKLOAD, repeats=repeats)
    if smoke_only:
        entry["lockstep"] = bench_lockstep(**SMOKE_WORKLOAD, repeats=repeats)
        entry["fused_runtime"] = bench_fused(**SMOKE_WORKLOAD, repeats=repeats)
        entry["gpu_model"] = bench_gpu(**SMOKE_WORKLOAD, repeats=repeats)
    else:
        entry["main"] = bench_flux(**MAIN_WORKLOAD, repeats=repeats)
        entry["main"]["events_per_calib_op"] = round(
            entry["main"]["events_per_sec"] / calib, 6
        )
        entry["lockstep"] = bench_lockstep(**MAIN_WORKLOAD, repeats=repeats)
        entry["fused_runtime"] = bench_fused(**MAIN_WORKLOAD, repeats=repeats)
        entry["gpu_model"] = bench_gpu(**MAIN_WORKLOAD, repeats=repeats)
        entry["peak_fabric"] = bench_peak_fabric(budget_seconds)
    return entry


def load(path: Path) -> dict:
    if path.exists():
        return json.loads(path.read_text())
    return {"schema": 1, "entries": {}}


def update_speedup(doc: dict) -> None:
    entries = doc["entries"]
    base, opt = entries.get("baseline"), entries.get("optimized")
    if not (base and opt and "main" in base and "main" in opt):
        # smoke-only entries carry no main workload to compare
        doc.pop("speedup", None)
        return
    doc["speedup"] = {
        "events_per_sec": round(
            opt["main"]["events_per_sec"] / base["main"]["events_per_sec"], 3
        ),
        "mcells_per_sec": round(
            opt["main"]["mcells_per_sec"] / base["main"]["mcells_per_sec"], 3
        ),
        "peak_fabric_n": [
            base["peak_fabric"]["peak_n"],
            opt["peak_fabric"]["peak_n"],
        ],
    }


def run_check(path: Path, repeats: int) -> int:
    """CI gate: smoke-measure the current code, compare normalized."""
    doc = load(path)
    ref = doc["entries"].get("optimized")
    if ref is None:
        print(f"check: no 'optimized' entry in {path}; run with --label optimized")
        return 2
    calib = calibrate()
    smoke = bench_flux(**SMOKE_WORKLOAD, repeats=repeats)
    current = smoke["events_per_sec"] / calib
    stored = ref["smoke"]["events_per_calib_op"]
    floor = stored * (1.0 - CHECK_TOLERANCE)
    verdict = "ok" if current >= floor else "REGRESSION"
    print(
        f"check: normalized smoke throughput {current:.4f} ev/op "
        f"(stored {stored:.4f}, floor {floor:.4f}) -> {verdict}"
    )
    print(
        f"       raw: {smoke['events_per_sec']:,.0f} events/s on this host, "
        f"calib {calib:,.0f} ops/s"
    )
    # The overhead estimate is an upper bound (contention can only
    # inflate it), so passing on any attempt is valid; retry a couple of
    # times before declaring a regression on a noisy host.
    for attempt in range(3):
        overhead = bench_trace_overhead(**TRACE_WORKLOAD, repeats=repeats)
        frac = overhead["overhead_fraction"]
        trace_verdict = "ok" if frac < TRACE_OVERHEAD_TOLERANCE else "REGRESSION"
        print(
            f"check: tracing overhead {frac:+.1%} "
            f"(limit {TRACE_OVERHEAD_TOLERANCE:.0%}) -> {trace_verdict}"
            + (f" [attempt {attempt + 1}]" if attempt else "")
        )
        if trace_verdict == "ok":
            break
    for attempt in range(3):
        rec = bench_record_overhead(**TRACE_WORKLOAD, repeats=repeats)
        rec_frac = rec["overhead_fraction"]
        rec_verdict = (
            "ok" if rec_frac < TRACE_OVERHEAD_TOLERANCE else "REGRESSION"
        )
        print(
            f"check: replay-recording overhead {rec_frac:+.1%} "
            f"(limit {TRACE_OVERHEAD_TOLERANCE:.0%}) -> {rec_verdict}"
            + (f" [attempt {attempt + 1}]" if attempt else "")
        )
        if rec_verdict == "ok":
            break
    for attempt in range(3):
        res = bench_resilience_overhead(**TRACE_WORKLOAD, repeats=repeats)
        res_frac = res["overhead_fraction"]
        res_verdict = (
            "ok" if res_frac < TRACE_OVERHEAD_TOLERANCE else "REGRESSION"
        )
        print(
            f"check: fault-free supervision overhead {res_frac:+.1%} "
            f"(limit {TRACE_OVERHEAD_TOLERANCE:.0%}) -> {res_verdict}"
            + (f" [attempt {attempt + 1}]" if attempt else "")
        )
        if res_verdict == "ok":
            break
    golden = check_golden_schema()
    golden_ok = not golden["errors"] and all(
        schema <= golden["supported_schema"]
        for schema in golden["artifacts"].values()
    )
    print(
        f"check: golden replay artifacts {sorted(golden['artifacts'])} "
        f"schema(s) {sorted(set(golden['artifacts'].values()))} "
        f"(supported <= {golden['supported_schema']}) "
        f"-> {'ok' if golden_ok else 'REGRESSION'}"
    )
    for err in golden["errors"]:
        print(f"       golden artifact error: {err}")
    verifier = bench_verifier()
    ver_ok = (
        verifier["wall_seconds"] < VERIFIER_BUDGET_SECONDS
        and verifier["errors"] == 0
    )
    print(
        f"check: verifier pass {verifier['wall_seconds']:.2f}s over "
        f"{verifier['programs']} example program(s) + lint "
        f"(limit {VERIFIER_BUDGET_SECONDS:.0f}s, {verifier['errors']} error(s)) "
        f"-> {'ok' if ver_ok else 'REGRESSION'}"
    )
    race = bench_race_check()
    race_ok = (
        race["wall_seconds"] < RACE_CHECK_BUDGET_SECONDS
        and race["errors"] == 0
        and race["mutations_caught"] == 4
    )
    print(
        f"check: race verifier {race['wall_seconds']:.2f}s "
        f"({race['model_states']} model states, "
        f"{race['mutations_caught']}/4 mutations caught, "
        f"{race['errors']} error(s); limit {RACE_CHECK_BUDGET_SECONDS:.0f}s) "
        f"-> {'ok' if race_ok else 'REGRESSION'}"
    )
    # The fused backend's whole reason to exist is beating the phased
    # lockstep simulation while staying bit-identical to event; gate
    # throughput and the IR-derivation tax together.  Wall-clock ratios
    # on a loaded host are noisy in fused's disfavour, so retry a few
    # times before declaring a regression.
    for attempt in range(3):
        lockstep = bench_lockstep(**MAIN_WORKLOAD, repeats=repeats)
        fused = bench_fused(**MAIN_WORKLOAD, repeats=repeats)
        fused_fast = fused["mcells_per_sec"] >= lockstep["mcells_per_sec"]
        ir_cheap = fused["ir_build_fraction"] < IR_BUILD_TOLERANCE
        fused_ok = fused_fast and ir_cheap
        print(
            f"check: fused {fused['mcells_per_sec']:.3f} Mcell/s vs "
            f"lockstep {lockstep['mcells_per_sec']:.3f} "
            f"-> {'ok' if fused_fast else 'REGRESSION'}; IR build "
            f"{fused['ir_build_seconds'] * 1e3:.1f}ms = "
            f"{fused['ir_build_fraction']:.1%} of cold startup "
            f"(limit {IR_BUILD_TOLERANCE:.0%}) "
            f"-> {'ok' if ir_cheap else 'REGRESSION'}"
            + (f" [attempt {attempt + 1}]" if attempt else "")
        )
        if fused_ok:
            break
    par = bench_par_runtime(**PAR_WORKLOAD, repeats=max(1, repeats - 1))
    par_ok = par["bit_identical"] and par["distinct_pids"] >= 2
    print(
        f"check: par runtime speedup {par['speedup']:.2f}x over "
        f"{par['workers']} workers ({par['distinct_pids']} distinct PIDs), "
        f"residual {'bit-identical' if par['bit_identical'] else 'DIFFERS'} "
        f"-> {'ok' if par_ok else 'REGRESSION'}"
    )
    if par["host_cpus"] >= par["workers"]:
        # enough cores to genuinely parallelize: the pool must win, and
        # efficiency must not *rise* with worker count (that would mean
        # the reference or a smaller point is broken, not that scaling
        # is good); 5% slack absorbs timer noise
        effs = [pt["efficiency"] for pt in par["worker_sweep"]]
        monotone = all(
            effs[i + 1] <= effs[i] * 1.05 for i in range(len(effs) - 1)
        )
        speed_ok = par["speedup"] > 1.0
        print(
            f"check: par speedup gate ({par['host_cpus']} CPUs >= "
            f"{par['workers']} workers): speedup "
            f"{'>' if speed_ok else '<='} 1 "
            f"-> {'ok' if speed_ok else 'REGRESSION'}; efficiency curve "
            f"{[round(e, 3) for e in effs]} "
            f"-> {'ok' if monotone else 'NON-MONOTONE'}"
        )
        par_ok = par_ok and speed_ok and monotone
    else:
        print(
            f"check: par speedup gate skipped ({par['host_cpus']} usable "
            f"CPU(s) < {par['workers']} workers: oversubscribed hosts "
            f"measure scheduler contention, not scaling)"
        )
    return 0 if (
        verdict == "ok"
        and trace_verdict == "ok"
        and rec_verdict == "ok"
        and res_verdict == "ok"
        and golden_ok
        and ver_ok
        and race_ok
        and fused_ok
        and par_ok
    ) else 1


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--label",
        default="optimized",
        help="entry name to record (baseline / optimized / ...)",
    )
    ap.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    ap.add_argument(
        "--smoke-only",
        action="store_true",
        help="record only the smoke workload (fast)",
    )
    ap.add_argument(
        "--check",
        action="store_true",
        help="regression gate against the stored 'optimized' entry",
    )
    ap.add_argument("--budget", type=float, default=1.0, help="peak-search budget (s)")
    ap.add_argument("--repeats", type=int, default=3)
    args = ap.parse_args(argv)

    if args.check:
        return run_check(args.output, args.repeats)

    entry = measure_entry(
        smoke_only=args.smoke_only,
        budget_seconds=args.budget,
        repeats=args.repeats,
    )
    doc = load(args.output)
    doc["entries"][args.label] = entry
    update_speedup(doc)
    args.output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"recorded entry {args.label!r} in {args.output}")
    if "main" in entry:
        print(
            f"  main: {entry['main']['events_per_sec']:,.0f} events/s, "
            f"{entry['main']['mcells_per_sec']:.3f} Mcell/s"
        )
        print(f"  peak fabric within {args.budget}s: {entry['peak_fabric']['peak_n']}")
    if "speedup" in doc:
        print(f"  speedup vs baseline: {doc['speedup']['events_per_sec']}x events/s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
