"""Structured fault/robustness exceptions shared across layers.

Every error here subclasses :class:`RuntimeError` so existing callers
(and tests) that catch the old bare ``RuntimeError`` paths keep working;
the subclasses add machine-readable context — iteration counts, in-flight
diagnostics, retry budgets — for the chaos harness and the obs layer.

Message wording is part of the contract: the event-budget error keeps
the word "budget", the receive timeout keeps "deadlock" and the barrier
leak keeps "never received", because downstream tooling (and the
historical tests) match on those substrings.
"""

from __future__ import annotations

__all__ = [
    "FaultError",
    "FaultPlanError",
    "FabricStallError",
    "EventBudgetError",
    "CommTimeoutError",
    "PendingLeakError",
    "RankFailedError",
    "WorkerCrashError",
    "WorkerLeaseExpiredError",
    "CheckpointCorruptError",
]


class FaultError(RuntimeError):
    """Base class for fault-injection and fault-detection errors."""


class FaultPlanError(FaultError):
    """A fault plan is malformed or cannot be applied to this topology."""


class EventBudgetError(FaultError):
    """`EventRuntime.run(max_events=...)` hit its budget with work pending.

    Attributes
    ----------
    processed:
        Events processed before the budget fired.
    pending:
        Events still in the heap at that point.
    now:
        Simulation time when the budget fired.
    """

    def __init__(self, *, processed: int, pending: int, now: float) -> None:
        self.processed = processed
        self.pending = pending
        self.now = now
        super().__init__(
            f"event budget exhausted after {processed} events with "
            f"{pending} still pending at t={now:.0f} "
            "(possible protocol livelock)"
        )


class FabricStallError(FaultError):
    """The progress watchdog saw no delivery for too many cycles.

    Attributes
    ----------
    now:
        Simulation time of the event that tripped the watchdog.
    idle_cycles:
        Cycles since the last delivery made progress.
    watchdog_cycles:
        The configured no-progress threshold.
    report:
        Obs-layer diagnostic dict (in-flight messages, last-active
        links, runtime stats) built by
        :func:`repro.obs.report.stall_report`.
    """

    def __init__(
        self,
        *,
        now: float,
        idle_cycles: float,
        watchdog_cycles: float,
        report: dict | None = None,
    ) -> None:
        self.now = now
        self.idle_cycles = idle_cycles
        self.watchdog_cycles = watchdog_cycles
        self.report = report if report is not None else {}
        pending = self.report.get("pending_events", 0)
        super().__init__(
            f"fabric stalled: no delivery within {watchdog_cycles:.0f} "
            f"cycles (idle {idle_cycles:.0f} cycles at t={now:.0f}, "
            f"{pending} in-flight events)"
        )


class CommTimeoutError(FaultError):
    """A `SimComm.recv` found no matching send, even after retries.

    ``attempts`` is the number of retry attempts made (0 when no retry
    policy was in effect — the legacy immediate-deadlock path).
    ``elapsed_seconds`` and ``policy`` carry the wall time burned and
    the active retry/backoff parameters so supervisor timelines and
    post-mortems explain *why* detection fired; both stay out of the
    message so chaos reports remain byte-identical across runs.
    """

    def __init__(
        self,
        source: int,
        dest: int,
        tag: int,
        attempts: int = 0,
        *,
        elapsed_seconds: float = 0.0,
        policy: dict | None = None,
    ) -> None:
        self.source = source
        self.dest = dest
        self.tag = tag
        self.attempts = attempts
        self.elapsed_seconds = float(elapsed_seconds)
        self.policy = dict(policy) if policy else {}
        suffix = f" after {attempts} retries" if attempts else ""
        super().__init__(
            f"recv would deadlock: no message from rank {source} to "
            f"rank {dest} with tag {tag}{suffix}"
        )

    def as_dict(self) -> dict:
        """Machine-readable detection context for timelines/post-mortems."""
        return {
            "error": "CommTimeoutError",
            "source": self.source,
            "dest": self.dest,
            "tag": self.tag,
            "attempts": self.attempts,
            "elapsed_seconds": self.elapsed_seconds,
            "policy": dict(self.policy),
        }


class PendingLeakError(FaultError):
    """A phase barrier found sent-but-unreceived messages (leaked sends)."""

    def __init__(self, phase: str, leaked: list[tuple[int, int, int]]) -> None:
        self.phase = phase
        self.leaked = list(leaked)
        shown = ", ".join(str(key) for key in self.leaked[:8])
        more = "" if len(self.leaked) <= 8 else f", ... ({len(self.leaked)} total)"
        where = f" at end of {phase}" if phase else ""
        super().__init__(
            f"barrier{where}: {len(self.leaked)} message(s) were never "
            f"received (leaked sends: {shown}{more})"
        )


class RankFailedError(FaultError):
    """An operation required a rank that is currently failed."""

    def __init__(self, rank: int, detail: str = "") -> None:
        self.rank = rank
        suffix = f": {detail}" if detail else ""
        super().__init__(f"rank {rank} is down{suffix}")


class WorkerCrashError(FaultError):
    """A multiprocess SPMD worker died mid-run (real process death).

    Raised by the :mod:`repro.par` pool when a worker process exits
    while an application is in flight — the genuine-crash analogue of
    the modelled :class:`RankFailedError`.

    Attributes
    ----------
    crashed:
        ``(worker_index, pid, exitcode, ranks)`` per dead worker.
    phase:
        What the pool was waiting on when the crash surfaced.
    elapsed_seconds:
        Wall time the pool spent waiting before the crash surfaced
        (kept out of the message so chaos reports stay byte-stable).
    attempt:
        Which respawn generation was running when the crash surfaced.
    policy:
        The active liveness/polling parameters (slice length, budget).
    """

    def __init__(
        self,
        crashed: list[tuple[int, int, int | None, tuple[int, ...]]],
        phase: str = "",
        *,
        elapsed_seconds: float = 0.0,
        attempt: int = 0,
        policy: dict | None = None,
    ) -> None:
        self.crashed = list(crashed)
        self.phase = phase
        self.elapsed_seconds = float(elapsed_seconds)
        self.attempt = int(attempt)
        self.policy = dict(policy) if policy else {}
        where = f" during {phase}" if phase else ""
        desc = ", ".join(
            f"worker {idx} (pid {pid}, exit {code}, ranks {list(ranks)})"
            for idx, pid, code, ranks in self.crashed
        )
        super().__init__(
            f"{len(self.crashed)} SPMD worker(s) died{where}: {desc}"
        )

    def as_dict(self) -> dict:
        """Machine-readable detection context for timelines/post-mortems."""
        return {
            "error": type(self).__name__,
            "crashed": [
                {
                    "worker": idx,
                    "pid": pid,
                    "exitcode": code,
                    "ranks": list(ranks),
                }
                for idx, pid, code, ranks in self.crashed
            ],
            "phase": self.phase,
            "elapsed_seconds": self.elapsed_seconds,
            "attempt": self.attempt,
            "policy": dict(self.policy),
        }


class WorkerLeaseExpiredError(WorkerCrashError):
    """A worker is alive but its heartbeat lease expired (hung worker).

    Subclasses :class:`WorkerCrashError` so every existing respawn path
    treats a hung-but-alive worker (e.g. SIGSTOP'd, wedged in a
    syscall) exactly like a dead one — the supervisor kills and
    respawns it.  ``crashed`` entries carry ``exitcode=None`` because
    the process has not exited.

    Attributes
    ----------
    lease_seconds:
        The configured heartbeat lease that expired.
    """

    def __init__(
        self,
        crashed: list[tuple[int, int, int | None, tuple[int, ...]]],
        phase: str = "",
        *,
        lease_seconds: float = 0.0,
        elapsed_seconds: float = 0.0,
        attempt: int = 0,
        policy: dict | None = None,
    ) -> None:
        super().__init__(
            crashed,
            phase,
            elapsed_seconds=elapsed_seconds,
            attempt=attempt,
            policy=policy,
        )
        self.lease_seconds = float(lease_seconds)
        # rebuild the message: these workers are hung, not dead
        where = f" during {phase}" if phase else ""
        desc = ", ".join(
            f"worker {idx} (pid {pid}, ranks {list(ranks)})"
            for idx, pid, _code, ranks in self.crashed
        )
        self.args = (
            f"{len(self.crashed)} SPMD worker(s) exceeded heartbeat "
            f"lease{where} (hung, not dead): {desc}",
        )

    def as_dict(self) -> dict:
        doc = super().as_dict()
        doc["lease_seconds"] = self.lease_seconds
        return doc


class CheckpointCorruptError(FaultError):
    """A checkpoint file failed its integrity check on load.

    Raised instead of letting a truncated or bit-flipped ``.npz``
    surface as an opaque numpy/zipfile error; the supervisor catches
    this and falls back to the previous checkpoint.
    """

    def __init__(self, path, reason: str) -> None:
        self.path = str(path)
        self.reason = reason
        super().__init__(f"corrupt checkpoint {self.path}: {reason}")
