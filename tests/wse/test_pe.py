"""Unit tests for the processing element."""

import numpy as np
import pytest

from repro.wse.packet import KIND_CONTROL, Message
from repro.wse.pe import ProcessingElement


@pytest.fixture
def pe():
    return ProcessingElement(coord=(2, 3))


class TestBindings:
    def test_data_handler_dispatch(self, pe):
        calls = []
        pe.bind(4, lambda rt, p, m: calls.append(m.color))
        msg = Message(color=4, payload=np.zeros(1, dtype=np.float32))
        handler = pe.handler_for(msg)
        handler(None, pe, msg)
        assert calls == [4]

    def test_control_handler_separate(self, pe):
        pe.bind(4, lambda rt, p, m: pytest.fail("data handler must not run"))
        hits = []
        pe.bind_control(4, lambda rt, p, m: hits.append("ctrl"))
        ctrl = Message(color=4, kind=KIND_CONTROL)
        pe.handler_for(ctrl)(None, pe, ctrl)
        assert hits == ["ctrl"]

    def test_unbound_returns_none(self, pe):
        msg = Message(color=9, payload=np.zeros(1, dtype=np.float32))
        assert pe.handler_for(msg) is None
        assert pe.handler_for(Message(color=9, kind=KIND_CONTROL)) is None

    def test_double_bind_rejected(self, pe):
        pe.bind(1, lambda rt, p, m: None)
        with pytest.raises(ValueError, match="already bound"):
            pe.bind(1, lambda rt, p, m: None)

    def test_double_control_bind_rejected(self, pe):
        pe.bind_control(1, lambda rt, p, m: None)
        with pytest.raises(ValueError, match="already bound"):
            pe.bind_control(1, lambda rt, p, m: None)


class TestState:
    def test_coordinates(self, pe):
        assert pe.coord == (2, 3)
        assert pe.x == 2
        assert pe.y == 3

    def test_default_memory_is_wse2(self, pe):
        assert pe.memory.capacity == 48 * 1024

    def test_dsd_engine_attached(self, pe):
        pe.dsd.fadds(np.empty(2), 1.0, 2.0)
        assert pe.dsd.flops == 2

    def test_counters_start_zero(self, pe):
        assert pe.messages_received == 0
        assert pe.words_sent == 0
        assert pe.busy_until == 0.0
        assert pe.state == {}
