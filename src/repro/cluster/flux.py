"""Distributed-memory flux computation via halo exchange.

The traditional-HPC baseline the paper positions itself against
(Sec. 4): the X-Y plane is block-decomposed over ranks, each
application performs an 8-neighbour halo exchange of the pressure field
(sides and corners — on MPI a corner is a single direct message, unlike
the fabric's two-hop forward), densities are evaluated locally, and each
rank runs the reference flux kernel on its halo-padded block.

Numerically identical to the global reference; the communicator counts
the per-application traffic the decomposition actually moves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import constants
from repro.core.flux import FluxKernel
from repro.core.fluid import FluidProperties
from repro.core.mesh import CartesianMesh3D
from repro.cluster.comm import CartGrid, RetryPolicy, SimComm
from repro.cluster.decomposition import Block, BlockDecomposition
from repro.obs.spans import span

__all__ = [
    "ClusterFluxComputation",
    "ClusterRunResult",
    "HaloLink",
    "halo_links",
    "HALO_DIRECTIONS",
]

#: The eight halo directions (dx, dy) with their message tags.
HALO_DIRECTIONS = [
    (1, 0), (-1, 0), (0, 1), (0, -1),
    (1, 1), (1, -1), (-1, 1), (-1, -1),
]
_HALO_DIRECTIONS = HALO_DIRECTIONS  # historical alias


def _halo_intersection(sender: Block, receiver: Block) -> tuple[int, int, int, int] | None:
    """Global (x_lo, x_hi, y_lo, y_hi) of sender-owned cells inside the
    receiver's padded region; None when empty.  Both sides compute this
    deterministically, so no coordinate metadata travels in messages."""
    x_lo = max(sender.x0, receiver.gx0)
    x_hi = min(sender.x1, receiver.gx1)
    y_lo = max(sender.y0, receiver.gy0)
    y_hi = min(sender.y1, receiver.gy1)
    if x_lo >= x_hi or y_lo >= y_hi:
        return None
    return (x_lo, x_hi, y_lo, y_hi)


@dataclass(frozen=True)
class HaloLink:
    """One directed halo transfer: sender-owned cells a receiver pads.

    ``x_lo:x_hi / y_lo:y_hi`` is the strip in *global* coordinates; both
    endpoints derive the same range deterministically, so no coordinate
    metadata ever travels with the data (and the shared-memory runtime
    can pre-allocate one fixed slot per link).
    """

    source: int
    dest: int
    tag: int
    x_lo: int
    x_hi: int
    y_lo: int
    y_hi: int

    @property
    def shape_yx(self) -> tuple[int, int]:
        """Strip extent as ``(ny, nx)``, matching the padded-array axes."""
        return (self.y_hi - self.y_lo, self.x_hi - self.x_lo)

    def cells(self, nz: int) -> int:
        """Number of cells this link carries for an ``nz``-layer mesh."""
        return nz * (self.y_hi - self.y_lo) * (self.x_hi - self.x_lo)


def halo_links(decomp: BlockDecomposition, grid: CartGrid) -> list[HaloLink]:
    """Every directed halo link of the decomposition, in the canonical
    deterministic order (sender rank major, tag minor) that both the
    serial exchange and the multiprocess runtime's shared-memory layout
    follow."""
    links: list[HaloLink] = []
    for block in decomp.blocks:
        for tag, (dx, dy) in enumerate(HALO_DIRECTIONS):
            dest = grid.neighbour(block.rank, dx, dy)
            if dest is None:
                continue
            rng = _halo_intersection(block, decomp.block(dest))
            if rng is None:
                continue
            links.append(HaloLink(block.rank, dest, tag, *rng))
    return links


@dataclass
class ClusterRunResult:
    """Outcome of a batch of applications on the rank grid."""

    residual: np.ndarray
    applications: int
    ranks: int
    messages_per_application: int
    halo_bytes_per_application: int
    total_bytes: int
    retransmissions: int = 0
    recovery_seconds: float = 0.0

    @property
    def halo_bytes_per_cell(self) -> float:
        """Halo traffic per owned cell per application."""
        return self.halo_bytes_per_application / self.residual.size

    def as_metrics(self) -> dict:
        """Counters as a plain dict for the obs metrics registry."""
        return {
            "applications": self.applications,
            "ranks": self.ranks,
            "messages_per_application": self.messages_per_application,
            "halo_bytes_per_application": self.halo_bytes_per_application,
            "total_bytes": self.total_bytes,
            "retransmissions": self.retransmissions,
            "recovery_seconds": self.recovery_seconds,
        }


class ClusterFluxComputation:
    """Algorithm 1 on a ``px x py`` rank grid with halo exchange.

    Parameters
    ----------
    mesh, fluid:
        Problem definition (global).
    px, py:
        Process grid dimensions.
    dtype:
        Floating dtype of the exchanged/computed fields.
    faults:
        Optional :class:`~repro.faults.injector.FaultInjector` with
        transient rank failures; the halo exchange then recovers lost
        strips by retransmitting under *retry*.
    retry:
        Receive :class:`~repro.cluster.comm.RetryPolicy`; defaults to a
        3-attempt exponential backoff when *faults* is given, else no
        retry (missing receives fail fast exactly as before).
    """

    def __init__(
        self,
        mesh: CartesianMesh3D,
        fluid: FluidProperties,
        *,
        px: int,
        py: int,
        gravity: float = constants.GRAVITY,
        dtype=np.float64,
        faults=None,
        retry: RetryPolicy | None = None,
        record=None,
    ) -> None:
        self.mesh = mesh
        self.fluid = fluid
        self.gravity = float(gravity)
        self.dtype = np.dtype(dtype)
        self.grid = CartGrid(px, py)
        self.decomp = BlockDecomposition(mesh, px, py)
        self.faults = faults
        self.retry = retry if retry is not None else (
            RetryPolicy() if faults is not None else None
        )
        self.comm = SimComm(self.grid.size, faults=faults)
        self._links = halo_links(self.decomp, self.grid)
        # per-rank state: local padded mesh + flux kernel + pressure buffer
        self._local = []
        for block in self.decomp.blocks:
            local_mesh = self.decomp.local_mesh(block)
            kernel = FluxKernel(
                local_mesh, fluid, gravity=gravity, dtype=self.dtype
            )
            self._local.append(
                {
                    "block": block,
                    "mesh": local_mesh,
                    "kernel": kernel,
                    "pressure": np.zeros(local_mesh.shape_zyx, self.dtype),
                    "residual": np.zeros(local_mesh.shape_zyx, self.dtype),
                }
            )
        self._applications = 0
        self._messages = 0
        #: Optional :class:`~repro.obs.replay.ReplayRecorder` digesting
        #: every assembled (pressure, residual) application pair.
        self.record = record

    # ------------------------------------------------------------------ #
    def _scatter_owned(self, pressure: np.ndarray) -> None:
        """Each rank takes ownership of its block's pressure cells."""
        for state in self._local:
            block: Block = state["block"]
            ys, xs = block.owned_slices_in_padded()
            state["pressure"][:, ys, xs] = pressure[
                :, block.y0 : block.y1, block.x0 : block.x1
            ]

    def _global_to_local(self, block: Block, x_lo, x_hi, y_lo, y_hi):
        return (
            slice(None),
            slice(y_lo - block.gy0, y_hi - block.gy0),
            slice(x_lo - block.gx0, x_hi - block.gx0),
        )

    def _send_strip(self, source_rank: int, dest_rank: int, tag: int) -> bool:
        """(Re)send the halo strip *source_rank* owes *dest_rank* under
        *tag*; False when the pair shares no halo cells."""
        state = self._local[source_rank]
        block: Block = state["block"]
        recv_block = self.decomp.block(dest_rank)
        rng = _halo_intersection(block, recv_block)
        if rng is None:
            return False
        strip = state["pressure"][self._global_to_local(block, *rng)]
        self.comm.isend(block.rank, dest_rank, tag, strip.copy())
        return True

    def _retransmit(self, source: int, dest: int, tag: int, attempt: int) -> None:
        """Sender-side recovery: the receive timed out, so the (now
        possibly recovered) source pushes its strip again."""
        if self.faults is not None:
            self.faults.begin_retry()
        if self._send_strip(source, dest, tag):
            self.comm.stats[source].retransmissions += 1

    def _halo_exchange(self) -> None:
        """One deadlock-free exchange: every rank sends its 8 strips,
        then every rank drains its incoming strips.

        Under a transient rank failure the first send pass loses the
        down rank's strips; each missing receive then times out and
        triggers a bounded retransmit-with-backoff from the recovered
        source (:meth:`_retransmit`).  The closing :meth:`SimComm.barrier`
        asserts nothing leaked."""
        if self.faults is not None:
            self.faults.begin_exchange()
        for link in self._links:
            if self._send_strip(link.source, link.dest, link.tag):
                self._messages += 1
        for state in self._local:
            block: Block = state["block"]
            for tag, (dx, dy) in enumerate(_HALO_DIRECTIONS):
                source = self.grid.neighbour(block.rank, -dx, -dy)
                if source is None:
                    continue
                send_block = self.decomp.block(source)
                rng = _halo_intersection(send_block, block)
                if rng is None:
                    continue
                data = self.comm.recv(
                    block.rank,
                    source,
                    tag,
                    retry=self.retry,
                    on_missing=self._retransmit,
                )
                state["pressure"][self._global_to_local(block, *rng)] = data
        self.comm.barrier("halo exchange")

    # ------------------------------------------------------------------ #
    def run(self, pressures) -> ClusterRunResult:
        """One application of Algorithm 1 per pressure field."""
        residual = np.zeros(self.mesh.shape_zyx, self.dtype)
        applications = 0
        msgs_before = self.comm.total_messages()
        bytes_before = self.comm.total_bytes()
        retrans_before = sum(st.retransmissions for st in self.comm.stats)
        waited_before = self.comm.waited_seconds
        for pressure in pressures:
            with span("cluster.application", backend="cluster",
                      ranks=self.grid.size):
                self.mesh.validate_field(pressure, name="pressure")
                self._scatter_owned(np.asarray(pressure, dtype=self.dtype))
                with span("cluster.halo_exchange"):
                    self._halo_exchange()
                with span("cluster.compute"):
                    for state in self._local:
                        block: Block = state["block"]
                        state["kernel"].residual(
                            state["pressure"], out=state["residual"]
                        )
                        ys, xs = block.owned_slices_in_padded()
                        residual[
                            :, block.y0 : block.y1, block.x0 : block.x1
                        ] = state["residual"][:, ys, xs]
                if self.record is not None:
                    self.record.record_step(pressure, residual)
                applications += 1
        if applications == 0:
            raise ValueError("no pressure fields supplied")
        self._applications += applications
        total_msgs = self.comm.total_messages() - msgs_before
        total_bytes = self.comm.total_bytes() - bytes_before
        return ClusterRunResult(
            residual=residual,
            applications=applications,
            ranks=self.grid.size,
            messages_per_application=total_msgs // applications,
            halo_bytes_per_application=total_bytes // applications,
            total_bytes=self.comm.total_bytes(),
            retransmissions=sum(st.retransmissions for st in self.comm.stats)
            - retrans_before,
            recovery_seconds=self.comm.waited_seconds - waited_before,
        )

    def run_single(self, pressure: np.ndarray) -> ClusterRunResult:
        """Run one application."""
        return self.run([pressure])
