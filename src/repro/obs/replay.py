"""Deterministic replay artifacts: record a run, re-execute it anywhere.

The repo's product is bit-identity across backends, and the replay
artifact is how that claim becomes *portable*: a single-file bundle
capturing everything needed to re-execute a recorded run on any backend
and diff the result (DESIGN.md Sec. 13):

* **meta.json** — schema version, backend name + configuration, the
  mesh/geomodel recipe (regenerable from its seed), the fault plan and
  RNG seeds, the program fingerprint (for fabric backends, derived from
  :class:`~repro.dataflow.export.ProgramExport`), per-step pressure and
  residual SHA-256 digests, TraceSink aggregates, the span timeline and
  a metrics snapshot;
* **snapshots/stepNNNNNN.npy** — periodic full residual fields (every
  ``snapshot_every`` steps plus always the last), so divergences can be
  localized to a cell, not just a step.

The container is a ZIP with *pinned* entry metadata (epoch timestamps,
no compression) and byte-stable JSON, so recording the same run twice
produces byte-identical files — golden artifacts diff cleanly in git
and CI caches can key on their hashes.

Recording is wired into every backend driver through a ``record=`` hook
(:class:`ReplayRecorder`); the cross-backend conformance runner lives in
:mod:`repro.conform`.
"""

from __future__ import annotations

import hashlib
import io
import zipfile
from pathlib import Path

import numpy as np

from repro.util.jsonio import stable_dumps

__all__ = [
    "SCHEMA_VERSION",
    "ARTIFACT_KIND",
    "digest_array",
    "fingerprint_document",
    "ReplayRecorder",
    "ReplayArtifact",
]

#: Bump on any incompatible change to the artifact layout; readers
#: refuse newer schemas, and ``bench --check`` verifies every golden
#: artifact still carries the current version.
SCHEMA_VERSION = 1

#: Sanity marker distinguishing replay bundles from arbitrary ZIPs.
ARTIFACT_KIND = "repro-replay-artifact"

#: Fixed ZIP entry timestamp (the format's epoch) so identical content
#: always produces identical bytes.
_EPOCH = (1980, 1, 1, 0, 0, 0)


def digest_array(arr: np.ndarray) -> str:
    """SHA-256 of an array's dtype, shape and exact bit pattern.

    The digest covers the bytes of the C-contiguous view, so two arrays
    are digest-equal iff they are bit-identical fields of the same
    dtype and shape — the currency of the conformance suite.
    """
    a = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(f"{a.dtype.str}:{a.shape}".encode())
    h.update(a.tobytes())
    return h.hexdigest()


def fingerprint_document(doc: dict) -> str:
    """SHA-256 over the byte-stable JSON form of *doc*."""
    return hashlib.sha256(stable_dumps(doc, indent=None).encode()).hexdigest()


class ReplayRecorder:
    """Per-step digesting hook handed to a backend driver as ``record=``.

    The driver calls :meth:`record_step` once per application with the
    input pressure and output residual; the recorder digests both in
    O(bytes) and keeps a full residual snapshot every
    ``snapshot_every`` steps (``1`` snapshots everything — the golden
    registry's policy, so divergence always localizes to a cell).
    :meth:`finalize` assembles the :class:`ReplayArtifact`.

    ``meta`` must carry at least ``backend``, ``mesh`` and
    ``pressure_seed``; :func:`repro.conform.record_run` builds it.
    """

    def __init__(self, meta: dict, *, snapshot_every: int = 1) -> None:
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.meta = dict(meta)
        self.snapshot_every = int(snapshot_every)
        self.steps: list[dict] = []
        self.snapshots: dict[int, np.ndarray] = {}
        self._last_residual: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    def record_step(self, pressure: np.ndarray, residual: np.ndarray) -> None:
        """Digest one application's input/output pair (driver hot hook)."""
        index = len(self.steps)
        snapshot = index % self.snapshot_every == 0
        self.steps.append(
            {
                "index": index,
                "pressure_sha256": digest_array(pressure),
                "residual_sha256": digest_array(residual),
                "snapshot": snapshot,
            }
        )
        if snapshot:
            self.snapshots[index] = np.array(residual, copy=True)
            self._last_residual = self.snapshots[index]
        else:
            # kept so finalize() can promote the final step to a
            # snapshot under sparse policies (snapshot_every > 1)
            self._last_residual = np.array(residual, copy=True)

    # ------------------------------------------------------------------ #
    def finalize(
        self,
        *,
        trace: dict | None = None,
        spans: list | None = None,
        metrics: dict | None = None,
        program_fingerprint: str | None = None,
    ) -> "ReplayArtifact":
        """Assemble the artifact (always snapshotting the final step)."""
        if not self.steps:
            raise ValueError("no steps recorded")
        last = self.steps[-1]
        if not last["snapshot"]:
            # the final state is the cheapest always-useful snapshot:
            # it anchors cell-level diffs even under sparse policies
            last["snapshot"] = True
            self.snapshots[last["index"]] = self._last_residual
        meta = dict(self.meta)
        meta["schema"] = SCHEMA_VERSION
        meta["kind"] = ARTIFACT_KIND
        meta["applications"] = len(self.steps)
        meta["snapshot_every"] = self.snapshot_every
        meta["steps"] = self.steps
        meta["program_fingerprint"] = program_fingerprint
        meta["trace"] = trace
        meta["spans"] = spans or []
        meta["metrics"] = metrics
        meta["config_fingerprint"] = fingerprint_document(
            {
                "backend": meta.get("backend"),
                "backend_config": meta.get("backend_config"),
                "mesh": meta.get("mesh"),
                "dtype": meta.get("dtype"),
                "pressure_seed": meta.get("pressure_seed"),
                "fault_plan": meta.get("fault_plan"),
                "applications": meta["applications"],
            }
        )
        return ReplayArtifact(meta=meta, snapshots=dict(self.snapshots))


class ReplayArtifact:
    """One recorded run: byte-stable metadata + residual snapshots.

    Save/load round-trips are exact: ``load(path).save(other)`` writes
    byte-identical files, and re-recording the same deterministic run
    reproduces the same bytes (tested in ``tests/conform``).
    """

    def __init__(self, meta: dict, snapshots: dict[int, np.ndarray]) -> None:
        self.meta = meta
        self.snapshots = snapshots

    # -- convenience views --------------------------------------------- #
    @property
    def schema(self) -> int:
        return int(self.meta.get("schema", -1))

    @property
    def backend(self) -> str:
        return self.meta["backend"]

    @property
    def applications(self) -> int:
        return int(self.meta["applications"])

    @property
    def steps(self) -> list[dict]:
        return self.meta["steps"]

    def snapshot(self, index: int) -> np.ndarray | None:
        """The full residual recorded at step *index* (None if not kept)."""
        return self.snapshots.get(index)

    def describe(self) -> str:
        mesh = self.meta["mesh"]
        plan = self.meta.get("fault_plan")
        return (
            f"{self.backend} run, mesh {mesh['nx']}x{mesh['ny']}x{mesh['nz']}"
            f" ({mesh['kind']}, seed {mesh['seed']}), "
            f"{self.applications} step(s), {len(self.snapshots)} snapshot(s)"
            + (", faulted" if plan else "")
        )

    # -- persistence ---------------------------------------------------- #
    def save(self, path) -> Path:
        """Write the deterministic single-file bundle to *path*."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        buf = io.BytesIO()
        with zipfile.ZipFile(buf, "w", zipfile.ZIP_STORED) as zf:
            zf.writestr(
                zipfile.ZipInfo("meta.json", date_time=_EPOCH),
                stable_dumps(self.meta),
            )
            for index in sorted(self.snapshots):
                arr = io.BytesIO()
                np.lib.format.write_array(
                    arr,
                    np.ascontiguousarray(self.snapshots[index]),
                    version=(1, 0),
                )
                zf.writestr(
                    zipfile.ZipInfo(
                        f"snapshots/step{index:06d}.npy", date_time=_EPOCH
                    ),
                    arr.getvalue(),
                )
        path.write_bytes(buf.getvalue())
        return path

    @classmethod
    def load(cls, path) -> "ReplayArtifact":
        """Read a bundle written by :meth:`save`; validates the schema."""
        path = Path(path)
        with zipfile.ZipFile(path, "r") as zf:
            import json

            meta = json.loads(zf.read("meta.json"))
            if meta.get("kind") != ARTIFACT_KIND:
                raise ValueError(f"{path} is not a replay artifact")
            if int(meta.get("schema", -1)) > SCHEMA_VERSION:
                raise ValueError(
                    f"{path} uses artifact schema {meta.get('schema')}; "
                    f"this build reads up to {SCHEMA_VERSION}"
                )
            snapshots: dict[int, np.ndarray] = {}
            for name in zf.namelist():
                if name.startswith("snapshots/") and name.endswith(".npy"):
                    index = int(name[len("snapshots/step"):-len(".npy")])
                    snapshots[index] = np.lib.format.read_array(
                        io.BytesIO(zf.read(name))
                    )
        return cls(meta=meta, snapshots=snapshots)
