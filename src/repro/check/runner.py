"""Verification orchestration: one call per program, fabric, or registry.

:func:`check_fabric` runs every fabric-level analyzer (deadlock, color
conflict, dead route, switch schedule, memory audit) over a configured
:class:`~repro.wse.fabric.Fabric`.  :func:`check_ir` runs the same
analyses over a serialized :class:`~repro.ir.schema.FabricProgramIR` —
the thin-waist representation every backend is lowered from — by
materializing the IR's fabric, routes, and memory records and reusing
the fabric analyzers verbatim.  :func:`check_program` captures a built
program's IR and verifies *that*, so the verifier and the runtimes read
the same single source of truth and cannot drift.
:func:`check_examples` builds the registry of shipped example
configurations and verifies each — the CI merge gate
(`repro check --examples`) and the ``BENCH_event_runtime.json``
verifier wall-time entry both run exactly this.
"""

from __future__ import annotations

from math import prod
from typing import Callable

import numpy as np

from repro.check.findings import CheckReport
from repro.check.graph import build_channel_graph, find_deadlocks
from repro.check.resources import (
    check_column_plan,
    check_dsd_bounds,
    check_memory,
)
from repro.check.routes import (
    check_color_conflicts,
    check_routes,
    check_switch_schedules,
)
from repro.wse.fabric import Fabric
from repro.wse.memory import WSE2_PE_MEMORY_BYTES

__all__ = [
    "check_fabric",
    "check_ir",
    "check_program",
    "check_examples",
    "EXAMPLE_PROGRAMS",
    "FABRIC_ANALYZERS",
    "PROGRAM_ANALYZERS",
    "ANALYZERS",
]

#: Named fabric-level analyzers, selectable via ``repro check --only``.
FABRIC_ANALYZERS: tuple[str, ...] = (
    "deadlock", "colors", "routes", "switches", "memory",
)

#: Program-aware analyzers layered on top by :func:`check_program`.
PROGRAM_ANALYZERS: tuple[str, ...] = ("plan", "dsd")

#: Every selectable analyzer name (the ``--only``/``--skip`` universe):
#: the fabric and program analyzers above, the determinism lint, and
#: the concurrency verifiers of :mod:`repro.check.race`.
ANALYZERS: tuple[str, ...] = (
    *FABRIC_ANALYZERS,
    *PROGRAM_ANALYZERS,
    "lint",
    "race-model",
    "race-lint",
    "race-hb",
    "race-drill",
)


def _selected(only: frozenset | set | None, names: tuple[str, ...]) -> set:
    if only is None:
        return set(names)
    return set(only) & set(names)


def check_fabric(
    fabric: Fabric,
    *,
    colors: dict[int, str] | None = None,
    expected_receivers: dict[int, frozenset] | None = None,
    memory_budget: int = WSE2_PE_MEMORY_BYTES,
    subject: str = "fabric",
    only: frozenset | set | None = None,
) -> CheckReport:
    """Run the fabric-level static analyzers; no events are executed.

    ``only`` restricts to a subset of :data:`FABRIC_ANALYZERS` (``None``
    runs them all — unknown names are the CLI's problem to reject).
    """
    report = CheckReport(subject=subject)
    run = _selected(only, FABRIC_ANALYZERS)
    if colors is None:
        colors = {cid: "" for cid in sorted(fabric.configured_colors())}
    expected = expected_receivers or {}
    per_color = run & {"deadlock", "colors", "routes", "switches"}
    for color in sorted(colors) if per_color else ():
        name = colors[color] or None
        graph = build_channel_graph(fabric, color)
        if "deadlock" in run:
            report.extend(
                find_deadlocks(fabric, color, color_name=name, graph=graph)
            )
        if "colors" in run:
            report.extend(
                check_color_conflicts(fabric, color, color_name=name)
            )
        if "routes" in run:
            report.extend(
                check_routes(
                    fabric,
                    color,
                    color_name=name,
                    expected_receivers=expected.get(color),
                    graph=graph,
                )
            )
        if "switches" in run:
            report.extend(
                check_switch_schedules(
                    fabric, color, color_name=name, graph=graph
                )
            )
    if "memory" in run:
        report.extend(check_memory(fabric, budget=memory_budget))
    return report


def _materialize_fabric(ir) -> Fabric:
    """Rebuild a live :class:`Fabric` from an IR's static definition.

    Route tables are installed through placeholder positions and edited
    in place: a captured IR may describe a *corrupted* fabric (e.g. a
    self-forwarding port) that :class:`~repro.wse.router.ColorConfig`
    would reject at configure time — the verifier must be able to
    materialize exactly what the IR says, bad routes included, so its
    findings match findings on the live broken object.
    """
    fabric = Fabric(
        ir.width,
        ir.height,
        pe_memory_bytes=ir.pe_memory_bytes,
        pe_memory_reserved=ir.pe_memory_reserved,
        vectorized=ir.vectorized,
        bypass_columns=ir.bypass_columns,
    )
    for color in ir.route_color_ids():
        for coord in ir.route_coords(color):
            positions, initial = ir.route_for(color, coord)
            router = fabric.router_map[coord]
            router.configure(
                color, [{} for _ in positions], initial=initial
            )
            cfg = router.configs[color]
            cfg.positions[:] = positions
            router.refresh(color)
    for coord in ir.memory_coords():
        memory = fabric.pe_map[coord].memory
        for rec in ir.memory_records_for(coord):
            if rec.get("alias_of"):
                memory.alias(rec["name"], rec["alias_of"])
            else:
                memory.alloc_array(
                    rec["name"], tuple(rec["shape"]), np.dtype(rec["dtype"])
                )
    return fabric


class _DsdLayoutView:
    """Just enough of a :class:`PEColumnLayout` for ``check_dsd_bounds``:
    descriptor extents reconstructed from the IR's memory records."""

    __slots__ = ("nz", "_send", "_recv_flat")

    def __init__(self, nz: int, send: np.ndarray, recv_flat: dict):
        self.nz = nz
        self._send = send
        self._recv_flat = recv_flat

    def send_train_flat(self) -> np.ndarray:
        return self._send

    @property
    def recv_flat(self) -> dict:
        return self._recv_flat


def _dsd_layouts_from_ir(ir) -> dict:
    from repro.core.stencil import XY_CONNECTIONS

    nz = ir.mesh_shape[2]
    reuse = ir.params["reuse_buffers"]
    layouts: dict = {}
    for coord in ir.memory_coords():
        records = {rec["name"]: rec for rec in ir.memory_records_for(coord)}

        def words(name: str) -> int:
            rec = records.get(name)
            return 0 if rec is None else prod(rec["shape"])

        send = np.empty(words("p_rho" if reuse else "send_staging"), np.uint8)
        recv = {
            conn: np.empty(
                words("recv_shared" if reuse else f"recv_{conn.name}"),
                np.uint8,
            )
            for conn in XY_CONNECTIONS
        }
        layouts[coord] = _DsdLayoutView(nz, send, recv)
    return layouts


def check_ir(
    ir,
    *,
    subject: str | None = None,
    only: frozenset | set | None = None,
    memory_budget: int = WSE2_PE_MEMORY_BYTES,
) -> CheckReport:
    """Verify a :class:`~repro.ir.schema.FabricProgramIR` directly.

    The IR's fabric, switch schedules, and memory records are
    materialized and the fabric analyzers run on the result; program
    IRs additionally get the column-plan and DSD-bounds checks from the
    IR's mesh/params blocks.  A bare-fabric IR (kind ``"fabric"``) runs
    the fabric analyses only.
    """
    from repro.ir.schema import KIND_PROGRAM

    fabric = _materialize_fabric(ir)
    colors = ir.colors or None
    expected = {
        color: frozenset(map(tuple, ir.expected_receivers(color)))
        for color in ir.route_color_ids()
        if ir.expected_receivers(color)
    }
    report = check_fabric(
        fabric,
        colors=colors,
        expected_receivers=expected or None,
        memory_budget=memory_budget,
        subject=subject or f"program on {fabric.width}x{fabric.height}",
        only=only,
    )
    if ir.kind != KIND_PROGRAM:
        return report
    run = _selected(only, PROGRAM_ANALYZERS)
    if "plan" in run:
        report.extend(
            check_column_plan(
                ir.mesh_shape[2],
                capacity_bytes=WSE2_PE_MEMORY_BYTES,
                reserved_bytes=ir.pe_memory_reserved,
                reuse_buffers=ir.params["reuse_buffers"],
            )
        )
    if "dsd" in run:
        report.extend(check_dsd_bounds(_dsd_layouts_from_ir(ir)))
    return report


def check_program(
    program,
    *,
    subject: str | None = None,
    only: frozenset | set | None = None,
) -> CheckReport:
    """Verify a built :class:`~repro.dataflow.program.FluxProgram`.

    The program's IR is captured (:func:`repro.ir.builder.build_ir`) and
    verified through :func:`check_ir` — the verifier sees exactly the
    representation the backends are lowered from.  Fabric-level analyses
    plus the program-aware ones: every expected receiver must be
    reachable, DSD descriptors must agree on train sizes, and the
    Z-column plan must fit the WSE-2 memory model even when the
    simulated fabric was built with a roomier scratchpad.  ``only``
    selects among :data:`FABRIC_ANALYZERS` + :data:`PROGRAM_ANALYZERS`.
    A legacy :class:`~repro.dataflow.export.ProgramExport` is still
    accepted and checked from its own view.
    """
    from repro.dataflow.export import ProgramExport, export_program

    if not isinstance(program, ProgramExport):
        from repro.ir.builder import build_ir

        ir = build_ir(program)
        w, h = ir.width, ir.height
        return check_ir(
            ir, subject=subject or f"program on {w}x{h}", only=only
        )
    export = program
    mesh_nz = export.nz
    report = check_fabric(
        export.fabric,
        colors=export.colors,
        expected_receivers=export.expected_receivers,
        subject=subject or f"program on {export.fabric.width}x{export.fabric.height}",
        only=only,
    )
    run = _selected(only, PROGRAM_ANALYZERS)
    if "plan" in run:
        report.extend(
            check_column_plan(
                mesh_nz,
                capacity_bytes=WSE2_PE_MEMORY_BYTES,
                reserved_bytes=export.pe_memory_reserved,
                reuse_buffers=export.reuse_buffers,
            )
        )
    if "dsd" in run:
        report.extend(check_dsd_bounds(export.layouts))
    return report


# ------------------------------------------------------------------ #
# Shipped example programs
# ------------------------------------------------------------------ #
def _flux_program(nx: int, ny: int, nz: int, **kwargs):
    from repro.core import CartesianMesh3D, FluidProperties
    from repro.dataflow.program import FluxProgram

    return FluxProgram(CartesianMesh3D(nx, ny, nz), FluidProperties(), **kwargs)


def _remap_program(nx: int, ny: int, nz: int, dead):
    from repro.dataflow.mapping import SpareColumnRemap

    remap = SpareColumnRemap.around_dead_pes((nx, ny), dead)
    return _flux_program(nx, ny, nz, remap=remap)


#: name -> zero-argument factory building the example's fabric program.
#: Mirrors the configurations exercised by the scripts in ``examples/``
#: (mesh shapes and program variants), kept small enough that the whole
#: registry verifies in seconds — the CI gate and the tracked
#: ``verifier`` bench entry iterate exactly this table.
EXAMPLE_PROGRAMS: dict[str, Callable[[], object]] = {
    "quickstart-10x8x6": lambda: _flux_program(10, 8, 6),
    "communication-trace-6x5x4": lambda: _flux_program(6, 5, 4),
    "no-reuse-ablation-6x5x4": lambda: _flux_program(
        6, 5, 4, reuse_buffers=False
    ),
    "no-overlap-ablation-5x4x3": lambda: _flux_program(
        5, 4, 3, reuse_buffers=False, overlap_compute=False
    ),
    "comm-only-table3-6x6x4": lambda: _flux_program(
        6, 6, 4, compute_fluxes=False
    ),
    "spare-column-remap-6x5x4": lambda: _remap_program(6, 5, 4, [(2, 1)]),
    "weak-scaling-16x16x8": lambda: _flux_program(16, 16, 8),
}


def check_examples(
    names: list[str] | None = None,
    *,
    only: frozenset | set | None = None,
) -> dict[str, CheckReport]:
    """Build and verify every registered example program."""
    selected = names or sorted(EXAMPLE_PROGRAMS)
    out: dict[str, CheckReport] = {}
    for name in selected:
        try:
            factory = EXAMPLE_PROGRAMS[name]
        except KeyError:
            raise KeyError(
                f"unknown example program {name!r} "
                f"(registered: {sorted(EXAMPLE_PROGRAMS)})"
            ) from None
        out[name] = check_program(
            factory(), subject=f"example {name}", only=only
        )
    return out
