"""Discrete-event runtime for the fabric.

Wavelet trains move router-to-router as timestamped events; links have
finite bandwidth with serialization and occupancy (two trains contending
for one link queue behind each other); PEs execute color-bound tasks on
the cycles accounted by their DSD engines.  Control wavelets advance
router switch positions as they propagate (Fig. 6b semantics).

The runtime is deliberately faithful at the *message/protocol* level —
exactly-once delivery, multicast fan-out, dynamic routing under switch
changes — while transporting whole trains per event for tractability.
Correctness tests run real flux computations through it on small fabrics
and compare against the NumPy reference bit-for-bit (modulo summation
order).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.wse.fabric import Fabric
from repro.wse.geometry import Port, shift
from repro.wse.packet import KIND_CONTROL, KIND_DATA, Message
from repro.wse.perf import WSE2, WsePerfModel

__all__ = ["EventRuntime", "RuntimeStats"]


@dataclass
class RuntimeStats:
    """Aggregate traffic/progress counters of one runtime."""

    events_processed: int = 0
    messages_injected: int = 0
    messages_delivered: int = 0
    messages_dropped_offchip: int = 0
    control_advances: int = 0
    fabric_word_hops: int = 0
    max_hops_seen: int = 0

    @property
    def fabric_bytes_moved(self) -> int:
        """Total link traffic: every word counted once per hop."""
        return self.fabric_word_hops * 4


class EventRuntime:
    """Event-driven simulator over a :class:`Fabric`.

    Parameters
    ----------
    fabric:
        The PE/router grid to simulate.
    perf:
        Cost model converting words and instruction elements to cycles.
    trace:
        When True, every delivery is appended to :attr:`trace_log` as
        ``(time, coord, message)`` for debugging and protocol tests.
    """

    def __init__(
        self,
        fabric: Fabric,
        perf: WsePerfModel = WSE2,
        *,
        trace: bool = False,
    ) -> None:
        self.fabric = fabric
        self.perf = perf
        self.now: float = 0.0
        self.stats = RuntimeStats()
        self.trace_log: list[tuple[float, tuple[int, int], Message]] = []
        self._trace = trace
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        #: busy-until time of each directed link, keyed by (coord, out_port)
        self._link_busy: dict[tuple[tuple[int, int], Port], float] = {}

    # ------------------------------------------------------------------ #
    # Scheduling primitives
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run *fn* at ``now + delay`` (FIFO-stable at equal times)."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))
        self._seq += 1

    def run(self, *, max_events: int | None = None) -> float:
        """Drain the event queue; return the final simulation time."""
        processed = 0
        while self._heap:
            if max_events is not None and processed >= max_events:
                raise RuntimeError(
                    f"event budget exhausted after {processed} events "
                    "(possible protocol livelock)"
                )
            time, _, fn = heapq.heappop(self._heap)
            self.now = time
            fn()
            processed += 1
            self.stats.events_processed += 1
        return self.now

    @property
    def idle(self) -> bool:
        """True when no events are pending."""
        return not self._heap

    # ------------------------------------------------------------------ #
    # Injection and routing
    # ------------------------------------------------------------------ #
    def inject(
        self,
        coord: tuple[int, int],
        color: int,
        payload=None,
        *,
        kind: str = KIND_DATA,
        at: float | None = None,
        meta: dict | None = None,
    ) -> Message:
        """A PE sends a message: it enters its own router via the RAMP.

        ``at`` overrides the entry time (defaults to ``now`` plus the
        injection overhead); handlers use this to model sends issued after
        their compute finishes.
        """
        pe = self.fabric.pe(*coord)
        msg = Message(color=color, payload=payload, kind=kind, source=coord)
        if meta:
            msg.meta.update(meta)
        pe.messages_sent += 1
        pe.words_sent += msg.num_words
        entry = (at if at is not None else self.now) + (
            self.perf.injection_overhead_cycles
        )
        self.stats.messages_injected += 1
        self.schedule(
            max(0.0, entry - self.now),
            lambda: self._arrive(coord, Port.RAMP, msg),
        )
        return msg

    def _arrive(self, coord: tuple[int, int], in_port: Port, msg: Message) -> None:
        """A message reaches the router at *coord* through *in_port*."""
        router = self.fabric.router(*coord)
        outputs = router.routes(msg.color, in_port)
        for out in outputs:
            if out is Port.RAMP:
                self._deliver(coord, msg.fork())
            else:
                self._transmit(coord, out, msg.fork())
        if msg.kind == KIND_CONTROL:
            # the command advances this router's switch position after
            # being forwarded along the current configuration (Fig. 6b)
            router.advance(msg.color)
            self.stats.control_advances += 1

    def _transmit(
        self, coord: tuple[int, int], out_port: Port, msg: Message
    ) -> None:
        """Send a train over the directed link (coord, out_port)."""
        dest = shift(coord, out_port)
        if not self.fabric.contains(dest):
            self.stats.messages_dropped_offchip += 1
            return
        key = (coord, out_port)
        start = max(self.now, self._link_busy.get(key, 0.0))
        duration = (
            self.perf.hop_latency_cycles + self.perf.transfer_cycles(msg.num_words)
        )
        finish = start + duration
        self._link_busy[key] = finish
        self.stats.fabric_word_hops += msg.num_words
        msg.hops += 1
        self.stats.max_hops_seen = max(self.stats.max_hops_seen, msg.hops)
        self.schedule(
            finish - self.now,
            lambda: self._arrive(dest, out_port.opposite, msg),
        )

    def _deliver(self, coord: tuple[int, int], msg: Message) -> None:
        """Hand a message to the PE at *coord* and run its bound task."""
        pe = self.fabric.pe(*coord)
        pe.messages_received += 1
        pe.words_received += msg.num_words
        self.stats.messages_delivered += 1
        if self._trace:
            self.trace_log.append((self.now, coord, msg))
        handler = pe.handler_for(msg)
        if handler is None:
            return
        start = max(self.now, pe.busy_until)
        cycles_before = pe.dsd.cycles
        pe.state["_exec_start"] = start
        pe.state["_cycles_at_start"] = cycles_before
        handler(self, pe, msg)
        pe.busy_until = start + (pe.dsd.cycles - cycles_before)

    def pe_send_time(self, pe) -> float:
        """Time at which a send issued by the currently-running task of
        *pe* enters the fabric: after the compute executed so far."""
        start = pe.state.get("_exec_start", self.now)
        cycles_at_start = pe.state.get("_cycles_at_start", pe.dsd.cycles)
        return start + (pe.dsd.cycles - cycles_at_start)

    # ------------------------------------------------------------------ #
    def elapsed_seconds(self) -> float:
        """Wall-clock equivalent of the current simulation time."""
        return self.perf.seconds(self.now)
