"""SimComm fault paths and cluster halo re-exchange recovery."""

import numpy as np
import pytest

from repro.cluster import RetryPolicy, SimComm
from repro.cluster.flux import ClusterFluxComputation
from repro.core import (
    CartesianMesh3D,
    FluidProperties,
    compute_flux_residual,
    random_pressure,
)
from repro.faults import (
    CommTimeoutError,
    FaultInjector,
    FaultPlan,
    PendingLeakError,
    RankFailure,
)


class TestRetryPolicy:
    def test_backoff_schedule(self):
        policy = RetryPolicy(attempts=3, base_delay=1e-6, multiplier=2.0)
        assert [policy.delay(a) for a in range(3)] == [1e-6, 2e-6, 4e-6]

    def test_validation(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)


class TestSimCommFaultPaths:
    def test_missing_recv_fails_fast_without_retry(self):
        comm = SimComm(2)
        with pytest.raises(CommTimeoutError, match="deadlock") as info:
            comm.recv(1, 0, tag=5)
        assert (info.value.source, info.value.dest, info.value.tag) == (0, 1, 5)
        assert info.value.attempts == 0

    def test_retry_recovers_when_sender_retransmits(self):
        comm = SimComm(2)
        resent = []

        def retransmit(source, dest, tag, attempt):
            resent.append(attempt)
            if attempt == 1:  # sender comes back on the second retry
                comm.isend(source, dest, tag, np.arange(4.0))

        got = comm.recv(
            1, 0, tag=9,
            retry=RetryPolicy(attempts=3), on_missing=retransmit,
        )
        np.testing.assert_array_equal(got, np.arange(4.0))
        assert resent == [0, 1]
        assert comm.stats[1].retry_waits == 2
        assert comm.waited_seconds == pytest.approx(1e-6 + 2e-6)

    def test_retry_budget_exhaustion_reports_attempts(self):
        comm = SimComm(2)
        with pytest.raises(CommTimeoutError, match="3 retries") as info:
            comm.recv(1, 0, tag=0, retry=RetryPolicy(attempts=3))
        assert info.value.attempts == 3
        assert comm.stats[1].retry_waits == 3

    def test_barrier_fails_fast_on_leaked_sends(self):
        comm = SimComm(2)
        comm.isend(0, 1, 7, np.zeros(3))
        with pytest.raises(PendingLeakError, match="never received") as info:
            comm.barrier("halo exchange")
        assert info.value.leaked == [(0, 1, 7)]
        assert "halo exchange" in str(info.value)
        comm.recv(1, 0, 7)
        comm.barrier("halo exchange")  # clean now

    def test_double_send_still_rejected(self):
        comm = SimComm(2)
        comm.isend(0, 1, 0, np.zeros(1))
        with pytest.raises(RuntimeError, match="unmatched"):
            comm.isend(0, 1, 0, np.zeros(1))

    def test_total_bytes_sides(self):
        comm = SimComm(2)
        comm.isend(0, 1, 0, np.zeros(4))  # 32 bytes
        assert comm.total_bytes() == 32
        assert comm.total_bytes(side="received") == 0
        comm.recv(1, 0, 0)
        assert comm.total_bytes(side="received") == 32
        assert comm.total_bytes(side="both") == 64
        with pytest.raises(ValueError, match="side"):
            comm.total_bytes(side="sideways")

    def test_down_rank_drops_sends(self):
        inj = FaultInjector(
            FaultPlan(rank_failures=(RankFailure(rank=1, exchange=0),))
        )
        comm = SimComm(2, faults=inj)
        inj.begin_exchange()
        comm.isend(0, 1, 0, np.zeros(8))  # towards the down rank: dropped
        comm.isend(1, 0, 1, np.zeros(8))  # from the down rank: dropped
        assert comm.pending == 0
        assert comm.stats[0].sends_dropped == 1
        assert comm.stats[1].sends_dropped == 1
        assert inj.stats.sends_dropped == 2
        inj.begin_retry()  # rank back up
        comm.isend(0, 1, 0, np.zeros(8))
        assert comm.pending == 1


class TestClusterRecovery:
    def make_problem(self):
        mesh = CartesianMesh3D(8, 8, 3)
        fluid = FluidProperties()
        pressure = random_pressure(mesh, seed=5)
        return mesh, fluid, pressure

    def test_transient_rank_failure_recovers_exactly(self):
        mesh, fluid, pressure = self.make_problem()
        reference = compute_flux_residual(mesh, fluid, pressure)
        injector = FaultInjector(
            FaultPlan(rank_failures=(RankFailure(rank=1, exchange=0),))
        )
        cluster = ClusterFluxComputation(
            mesh, fluid, px=2, py=2, faults=injector
        )
        result = cluster.run([pressure])
        assert injector.stats.sends_dropped > 0
        assert result.retransmissions == injector.stats.sends_dropped
        assert result.recovery_seconds > 0.0
        np.testing.assert_array_equal(result.residual, reference)
        # every dropped strip was retransmitted and received: symmetric
        assert cluster.comm.total_bytes() == cluster.comm.total_bytes(
            side="received"
        )

    def test_second_application_is_unaffected(self):
        """The failure window is exchange 0 only: application 2 runs with
        zero retransmissions and still matches the reference."""
        mesh, fluid, pressure = self.make_problem()
        p2 = random_pressure(mesh, seed=6)
        injector = FaultInjector(
            FaultPlan(rank_failures=(RankFailure(rank=2, exchange=0),))
        )
        cluster = ClusterFluxComputation(
            mesh, fluid, px=2, py=2, faults=injector
        )
        result = cluster.run([pressure, p2])
        np.testing.assert_array_equal(
            result.residual, compute_flux_residual(mesh, fluid, p2)
        )

    def test_persistent_failure_exhausts_retries(self):
        mesh, fluid, pressure = self.make_problem()
        injector = FaultInjector(
            FaultPlan(rank_failures=(RankFailure(rank=1, exchange=0, attempts=99),))
        )
        cluster = ClusterFluxComputation(
            mesh, fluid, px=2, py=2, faults=injector,
            retry=RetryPolicy(attempts=2),
        )
        with pytest.raises(CommTimeoutError, match="2 retries"):
            cluster.run([pressure])

    def test_healthy_cluster_has_no_recovery_cost(self):
        mesh, fluid, pressure = self.make_problem()
        cluster = ClusterFluxComputation(mesh, fluid, px=2, py=2)
        result = cluster.run([pressure])
        assert result.retransmissions == 0
        assert result.recovery_seconds == 0.0
        np.testing.assert_array_equal(
            result.residual, compute_flux_residual(mesh, fluid, pressure)
        )
