"""Command-line interface: ``python -m repro <command>``.

Gives downstream users the paper's headline artifacts without writing
code:

* ``tables``  — reproduce Tables 1-4, Fig. 8, and the energy comparison;
* ``validate`` — cross-validate all implementations on a chosen mesh;
* ``scaling`` — the Table 2 weak-scaling projection;
* ``listing`` — the pseudo-CSL program listing for a mesh;
* ``inject``  — a quick implicit CO2-injection run;
* ``trace``   — run any backend under observability and emit an
  aggregated traffic report plus a Perfetto-loadable trace
  (DESIGN.md Sec. 9);
* ``chaos``   — run the backends under a deterministic fault plan and
  report which faults were detected and recovered (DESIGN.md Sec. 10);
* ``par-scale`` — weak-scaling sweep of the real multiprocess SPMD
  runtime: measured efficiency next to the modelled prediction, every
  point verified bit-identical against the serial cluster backend
  (DESIGN.md Sec. 12);
* ``check``   — statically verify a compiled fabric program without
  executing it: deadlock cycles, color conflicts, dead routes, stale
  switch schedules, memory budgets, plus the determinism lint
  (DESIGN.md Sec. 11).  Exits nonzero on any ERROR finding.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Massively Distributed Finite-Volume Flux "
            "Computation' (SC 2023)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="reproduce the paper's tables and figures")

    p_val = sub.add_parser(
        "validate", help="cross-validate all implementations on one mesh"
    )
    p_val.add_argument("--nx", type=int, default=6)
    p_val.add_argument("--ny", type=int, default=5)
    p_val.add_argument("--nz", type=int, default=4)
    p_val.add_argument("--seed", type=int, default=0)
    p_val.add_argument(
        "--geomodel",
        default="lognormal",
        choices=["uniform", "layered", "lognormal", "channelized"],
    )

    p_scale = sub.add_parser("scaling", help="Table 2 weak-scaling projection")
    p_scale.add_argument(
        "--applications", type=int, default=1000, help="applications of Algorithm 1"
    )

    p_list = sub.add_parser("listing", help="pseudo-CSL program listing")
    p_list.add_argument("--nx", type=int, default=4)
    p_list.add_argument("--ny", type=int, default=4)
    p_list.add_argument("--nz", type=int, default=8)

    p_inj = sub.add_parser("inject", help="implicit CO2-injection run")
    p_inj.add_argument("--steps", type=int, default=5)
    p_inj.add_argument("--dt", type=float, default=86400.0, help="step size [s]")
    p_inj.add_argument("--rate", type=float, default=0.5, help="kg/s")

    p_tr = sub.add_parser(
        "trace",
        help="run under observability; emit traffic report + Perfetto trace",
    )
    p_tr.add_argument("--nx", type=int, default=6)
    p_tr.add_argument("--ny", type=int, default=5)
    p_tr.add_argument("--nz", type=int, default=4)
    p_tr.add_argument(
        "--applications", type=int, default=2, help="applications of Algorithm 1"
    )
    p_tr.add_argument("--seed", type=int, default=0)
    p_tr.add_argument(
        "--geomodel",
        default="uniform",
        choices=["uniform", "layered", "lognormal", "channelized"],
    )
    p_tr.add_argument(
        "--backend",
        default="event",
        choices=["event", "fused", "lockstep", "gpu", "cluster", "par"],
        help="which implementation to run (fabric heatmaps need 'event'; "
        "'par' merges every worker's spans into one timeline)",
    )
    p_tr.add_argument(
        "--variant", default="raja", choices=["raja", "cuda"],
        help="kernel style for the gpu backend",
    )
    p_tr.add_argument("--px", type=int, default=2, help="cluster ranks along X")
    p_tr.add_argument("--py", type=int, default=2, help="cluster ranks along Y")
    p_tr.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the par backend (default: one per rank)",
    )
    p_tr.add_argument(
        "--capacity", type=int, default=1024,
        help="delivery ring-buffer capacity (aggregates are unaffected)",
    )
    p_tr.add_argument(
        "--out", default=None, metavar="DIR",
        help="write trace.json (Perfetto) and report.json (aggregates) here",
    )
    p_tr.add_argument(
        "--profile", action="store_true",
        help="cProfile the run and print the hottest functions",
    )
    p_tr.add_argument(
        "--profile-baseline", default=None, metavar="FILE",
        help="diff the profile against a profile.json from a previous --out",
    )

    p_ch = sub.add_parser(
        "chaos",
        help="inject a seeded fault plan; report detected/recovered faults",
    )
    p_ch.add_argument("--nx", type=int, default=4)
    p_ch.add_argument("--ny", type=int, default=4)
    p_ch.add_argument("--nz", type=int, default=3)
    p_ch.add_argument(
        "--seed", type=int, default=7,
        help="fault-plan seed (same seed => same plan and outcomes)",
    )
    p_ch.add_argument("--px", type=int, default=2, help="cluster ranks along X")
    p_ch.add_argument("--py", type=int, default=2, help="cluster ranks along Y")
    p_ch.add_argument(
        "--watchdog", type=float, default=20_000.0, metavar="CYCLES",
        help="progress-watchdog threshold in device cycles",
    )
    p_ch.add_argument(
        "--steps", type=int, default=4,
        help="implicit solver steps for the checkpoint/restart drill",
    )
    p_ch.add_argument(
        "--plan", default=None, metavar="FILE",
        help="load a FaultPlan JSON instead of the seeded plan",
    )
    p_ch.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the chaos report (plan + outcomes) as JSON",
    )
    p_ch.add_argument(
        "--postmortem", default="chaos-postmortem", metavar="DIR",
        help="directory for the replay artifact recorded when a "
        "scenario fails (the bundle path is printed in the failure "
        "line); pass 'none' to disable",
    )
    p_ch.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="list every chaos scenario with a one-line description "
        "and exit",
    )
    p_ch.add_argument(
        "--only", default=None, metavar="NAME[,NAME...]",
        help="run only the named scenario(s); unknown names are a "
        "usage error naming the valid set (see --list)",
    )

    p_sv = sub.add_parser(
        "supervise",
        help="run flux applications under the self-healing resilience "
        "supervisor (checkpoint restarts + backend degradation)",
    )
    p_sv.add_argument(
        "--backend", default="event",
        choices=["event", "lockstep", "gpu", "cluster", "par"],
        help="starting backend (may degrade down the policy ladder)",
    )
    p_sv.add_argument("--nx", type=int, default=4)
    p_sv.add_argument("--ny", type=int, default=4)
    p_sv.add_argument("--nz", type=int, default=3)
    p_sv.add_argument(
        "--applications", type=int, default=3,
        help="flux applications to drive to committed residuals",
    )
    p_sv.add_argument("--px", type=int, default=2, help="cluster ranks along X")
    p_sv.add_argument("--py", type=int, default=2, help="cluster ranks along Y")
    p_sv.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the par backend (default: one per rank)",
    )
    p_sv.add_argument(
        "--seed", type=int, default=0, help="pressure-field seed",
    )
    p_sv.add_argument(
        "--policy", default=None, metavar="FILE",
        help="ResiliencePolicy JSON (default: built-in policy)",
    )
    p_sv.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="mirror checkpoints to disk (restores then survive "
        "checkpoint corruption by falling back to an intact file)",
    )
    p_sv.add_argument(
        "--inject", action="store_true",
        help="inject a seeded demo fault into the first attempt "
        "(router stall for fabric backends, rank failure for "
        "cluster/par) so the recovery path is exercised",
    )
    p_sv.add_argument(
        "--plan", default=None, metavar="FILE",
        help="FaultPlan JSON injected into the first attempt "
        "(transient-fault model; restarts run clean)",
    )
    p_sv.add_argument(
        "--postmortem", default="supervisor-postmortem", metavar="DIR",
        help="directory for the give-up post-mortem bundle and "
        "decision timeline; pass 'none' to disable",
    )
    p_sv.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the supervised-run record (backend chain, "
        "restarts, timeline, per-step digests) as JSON",
    )

    p_ps = sub.add_parser(
        "par-scale",
        help="measured scaling of the multiprocess SPMD runtime",
    )
    p_ps.add_argument(
        "--grids", default="1x1,2x1,2x2", metavar="SPEC",
        help="comma-separated rank grids, e.g. '1x1,2x2,3x2'",
    )
    p_ps.add_argument(
        "--base-nx", type=int, default=16, help="owned cells per rank along X"
    )
    p_ps.add_argument(
        "--base-ny", type=int, default=16, help="owned cells per rank along Y"
    )
    p_ps.add_argument("--nz", type=int, default=4)
    p_ps.add_argument(
        "--applications", type=int, default=2,
        help="timed applications of Algorithm 1 per grid point",
    )
    p_ps.add_argument(
        "--workers", default=None, metavar="N[,N...]",
        help="worker processes per point (default: one per rank); with "
        "--mesh, a comma list sweeps worker counts, e.g. '1,2,4'.  "
        "Explicit counts above the host's usable CPUs are a usage "
        "error (exit 2)",
    )
    p_ps.add_argument(
        "--mesh", default=None, metavar="NXxNYxNZ",
        help="strong-scaling mode: fix this global mesh and sweep "
        "--workers on the --grid rank grid instead of weak scaling",
    )
    p_ps.add_argument(
        "--grid", default="2x2", metavar="PXxPY",
        help="rank grid for the --mesh worker sweep (default 2x2)",
    )
    p_ps.add_argument(
        "--gate-speedup", action="store_true",
        help="with --mesh: exit 1 unless the largest swept worker "
        "count beats the serial backend (only enforced when the host "
        "has at least that many usable CPUs)",
    )
    p_ps.add_argument("--seed", type=int, default=0)
    p_ps.add_argument(
        "--no-verify", action="store_true",
        help="skip the bit-identity check against the serial backend",
    )
    p_ps.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the scaling points as JSON",
    )

    p_chk = sub.add_parser(
        "check",
        help="statically verify a fabric program (no execution)",
    )
    p_chk.add_argument("--nx", type=int, default=6)
    p_chk.add_argument("--ny", type=int, default=5)
    p_chk.add_argument("--nz", type=int, default=4)
    p_chk.add_argument(
        "--examples", action="store_true",
        help="verify every registered example program instead of one mesh",
    )
    p_chk.add_argument(
        "--program", default=None, metavar="FILE",
        help="verify a serialized fabric-program IR (JSON written by "
        "--emit-ir or FabricProgramIR.to_json) instead of building one; "
        "an unreadable or invalid file is a usage error (exit 2)",
    )
    p_chk.add_argument(
        "--emit-ir", default=None, metavar="FILE",
        help="also serialize the verified program's IR to FILE "
        "(byte-stable JSON with an embedded content hash)",
    )
    p_chk.add_argument(
        "--lint", action="append", default=None, metavar="PATH",
        help="also run the determinism lint over PATH (repeatable)",
    )
    p_chk.add_argument(
        "--lint-only", action="store_true",
        help="run only the determinism lint (requires --lint)",
    )
    p_chk.add_argument(
        "--race", action="store_true",
        help="run the concurrency verifier instead: bounded model check "
        "of the shared-memory halo protocol, concurrency lint over "
        "src/repro, and a live happens-before probe",
    )
    p_chk.add_argument(
        "--race-drill", action="store_true",
        help="run the seeded-mutation drill: every protocol mutation "
        "must be flagged as exactly one ERROR with a replayable witness",
    )
    p_chk.add_argument(
        "--only", default=None, metavar="ANALYZER[,ANALYZER...]",
        help="run only the named analyzers (see repro.check.ANALYZERS; "
        "unknown names exit 2 listing the valid set)",
    )
    p_chk.add_argument(
        "--skip", default=None, metavar="ANALYZER[,ANALYZER...]",
        help="run everything selected except the named analyzers",
    )
    p_chk.add_argument(
        "--json", default=None, metavar="FILE",
        help="write machine-readable findings as JSON",
    )

    p_cf = sub.add_parser(
        "conform",
        help="record a replay artifact, or replay one on any backend and "
        "diff against the recording (DESIGN.md Sec. 13)",
    )
    p_cf.add_argument(
        "artifact", nargs="?", default=None,
        help="replay artifact (.rpz) to re-execute; omit with --record "
        "or --golden",
    )
    p_cf.add_argument(
        "--backend", default=None,
        choices=["event", "fused", "lockstep", "gpu", "cluster", "par"],
        help="backend to record on / replay with",
    )
    p_cf.add_argument(
        "--record", action="store_true",
        help="record a fresh artifact on --backend instead of replaying",
    )
    p_cf.add_argument(
        "--out", default=None, metavar="FILE",
        help="with --record: where to write the artifact "
        "(default <backend>.rpz)",
    )
    p_cf.add_argument(
        "--golden", action="store_true",
        help="replay the whole golden registry (tests/conform/golden)",
    )
    p_cf.add_argument(
        "--golden-dir", default=None, metavar="DIR",
        help="override the golden registry directory",
    )
    p_cf.add_argument(
        "--backends", default=None, metavar="B[,B...]",
        help="with --golden: restrict replays to these backends",
    )
    p_cf.add_argument(
        "--tolerance", default=None, choices=["bit-exact", "ulp-bounded"],
        help="override the backend pair's default tolerance class",
    )
    p_cf.add_argument(
        "--report", default=None, metavar="DIR",
        help="write machine-readable divergence reports here",
    )
    p_cf.add_argument("--nx", type=int, default=4)
    p_cf.add_argument("--ny", type=int, default=4)
    p_cf.add_argument("--nz", type=int, default=3)
    p_cf.add_argument(
        "--geomodel", default="lognormal",
        choices=["uniform", "layered", "lognormal", "channelized"],
    )
    p_cf.add_argument("--seed", type=int, default=0)
    p_cf.add_argument(
        "--applications", type=int, default=2,
        help="applications of Algorithm 1 to record",
    )
    p_cf.add_argument("--px", type=int, default=2, help="rank grid along X")
    p_cf.add_argument("--py", type=int, default=2, help="rank grid along Y")
    p_cf.add_argument(
        "--workers", type=int, default=None,
        help="par worker processes (default: one per rank)",
    )
    p_cf.add_argument(
        "--variant", default="raja", choices=["raja", "cuda"],
        help="kernel style when recording on the gpu backend",
    )
    p_cf.add_argument(
        "--snapshot-every", type=int, default=1, metavar="K",
        help="keep a full residual snapshot every K steps (1 = all)",
    )
    p_cf.add_argument(
        "--faulted", action="store_true",
        help="with --record: inject the seeded transient rank-failure "
        "plan (recovery must reproduce the fault-free bits)",
    )
    return parser


# --------------------------------------------------------------------- #
def _check_rank_grid(px: int, py: int, nx: int, ny: int) -> str | None:
    """The BlockDecomposition oversubscription guard, surfaced before
    any backend is built: an error message, or None when the grid fits."""
    if px > nx:
        return (
            f"error: --px {px} ranks along X exceed mesh Nx={nx} "
            "(every rank needs at least one owned cell column)"
        )
    if py > ny:
        return (
            f"error: --py {py} ranks along Y exceed mesh Ny={ny} "
            "(every rank needs at least one owned cell row)"
        )
    return None


def _cmd_tables(out) -> int:
    from repro.core.constants import PAPER_MESH, PAPER_WEAK_SCALING_MESHES
    from repro.dataflow import interior_cell_table
    from repro.perf import (
        A100_CUDA_TIME_MODEL,
        A100_RAJA_TIME_MODEL,
        CS2_TIME_MODEL,
        PAPER_TABLE1,
        a100_kernel_point,
        a100_roofline,
        compare_energy,
        cs2_kernel_points,
        cs2_roofline,
        weak_scaling_row,
    )
    from repro.util.reporting import Table

    nx, ny, nz = PAPER_MESH
    t1 = Table("Table 1 - 1000 applications, 750x994x246", ["Arch", "Model [s]", "Paper [s]"])
    for name, model in (
        ("Dataflow/CSL", CS2_TIME_MODEL.seconds(nx, ny, nz)),
        ("GPU/RAJA", A100_RAJA_TIME_MODEL.seconds(nx, ny, nz)),
        ("GPU/CUDA", A100_CUDA_TIME_MODEL.seconds(nx, ny, nz)),
    ):
        t1.add_row([name, f"{model:.4f}", f"{PAPER_TABLE1[name][0]:.4f}"])
    print(t1.render(), file=out)

    t2 = Table("Table 2 - weak scaling", ["Mesh", "Gcell/s", "CS-2 [s]", "A100 [s]"])
    for mesh in PAPER_WEAK_SCALING_MESHES:
        row = weak_scaling_row(*mesh)
        t2.add_row(
            [
                f"{row.nx}x{row.ny}x{row.nz}",
                f"{row.throughput_gcells:.1f}",
                f"{row.cs2_seconds:.4f}",
                f"{row.a100_seconds:.3f}",
            ]
        )
    print("", file=out)
    print(t2.render(), file=out)

    split = CS2_TIME_MODEL.time_split(nx, ny, nz)
    t3 = Table("Table 3 - CS-2 time split", ["Component", "[s]", "[%]"])
    for name, (secs, pct) in split.items():
        t3.add_row([name, f"{secs:.4f}", f"{pct:.2f}"])
    print("", file=out)
    print(t3.render(), file=out)

    table4 = interior_cell_table()
    t4 = Table("Table 4 - per-cell instructions (measured)", ["Op", "Count", "Mem", "Fabric"])
    for row in table4.rows:
        t4.add_row(
            [row.op, row.count, row.mem_traffic_label, row.fabric_loads or "-"]
        )
    t4.add_note(
        f"{table4.flops_per_cell} FLOPs/cell, AI mem "
        f"{table4.arithmetic_intensity_memory:.4f}, AI fabric "
        f"{table4.arithmetic_intensity_fabric:.4f}"
    )
    print("", file=out)
    print(t4.render(), file=out)

    rl = cs2_roofline(table4)
    mem_pt, fab_pt = cs2_kernel_points(table4)
    arl = a100_roofline()
    apt = a100_kernel_point()
    print("", file=out)
    print(
        f"Fig. 8: CS-2 kernel {mem_pt.achieved_flops / 1e12:.2f} TFLOPS "
        f"(memory bandwidth-bound, fabric compute-bound); "
        f"A100 kernel {apt.achieved_flops / 1e9:.0f} GFLOPS at "
        f"{arl.efficiency(apt):.0%} of attainable (memory-bound)",
        file=out,
    )
    cmp = compare_energy()
    print(
        f"Energy: {cmp.cs2_gflops_per_watt:.2f} GFLOP/W on CS-2; "
        f"{cmp.energy_efficiency_ratio:.2f}x energy advantage per job",
        file=out,
    )
    return 0


def _cmd_validate(args, out) -> int:
    from repro.core import (
        FluidProperties,
        Transmissibility,
        compute_flux_residual,
        random_pressure,
    )
    from repro.dataflow import LockstepWseSimulation, WseFluxComputation
    from repro.gpu import GpuFluxComputation
    from repro.workloads import make_geomodel

    mesh = make_geomodel(args.nx, args.ny, args.nz, kind=args.geomodel, seed=args.seed)
    fluid = FluidProperties()
    trans = Transmissibility(mesh)
    p = random_pressure(mesh, seed=args.seed)
    ref = compute_flux_residual(mesh, fluid, p, trans)
    scale = float(np.abs(ref).max())
    results = {
        "gpu/raja": GpuFluxComputation(mesh, fluid, trans, variant="raja", dtype=np.float64)
        .run_single(p).residual,
        "gpu/cuda": GpuFluxComputation(mesh, fluid, trans, variant="cuda", dtype=np.float64)
        .run_single(p).residual,
        "wse/event": WseFluxComputation(mesh, fluid, trans, dtype=np.float64)
        .run_single(p).residual,
        "wse/lockstep": LockstepWseSimulation(mesh, fluid, trans, dtype=np.float64)
        .run_application(p),
    }
    print(
        f"mesh {args.nx}x{args.ny}x{args.nz} ({args.geomodel}, seed {args.seed}); "
        f"|r|_max = {scale:.6e}",
        file=out,
    )
    worst = 0.0
    for name, res in results.items():
        err = float(np.abs(res - ref).max()) / scale
        worst = max(worst, err)
        print(f"  {name:<13} max rel deviation {err:.3e}", file=out)
    ok = worst < 1e-10
    print("VALIDATION PASSED" if ok else "VALIDATION FAILED", file=out)
    return 0 if ok else 1


def _cmd_scaling(args, out) -> int:
    from repro.core.constants import PAPER_WEAK_SCALING_MESHES
    from repro.perf import weak_scaling_row
    from repro.util.reporting import Table

    t = Table(
        f"Weak scaling, {args.applications} applications",
        ["Mesh", "Cells", "Gcell/s", "CS-2 [s]", "A100 [s]", "Speedup"],
    )
    for mesh in PAPER_WEAK_SCALING_MESHES:
        row = weak_scaling_row(*mesh, applications=args.applications)
        t.add_row(
            [
                f"{row.nx}x{row.ny}x{row.nz}",
                f"{row.total_cells:,}",
                f"{row.throughput_gcells:.1f}",
                f"{row.cs2_seconds:.4f}",
                f"{row.a100_seconds:.3f}",
                f"{row.speedup:.1f}x",
            ]
        )
    print(t.render(), file=out)
    return 0


def _cmd_listing(args, out) -> int:
    from repro.core import CartesianMesh3D, FluidProperties
    from repro.dataflow import generate_listing
    from repro.dataflow.program import FluxProgram

    program = FluxProgram(
        CartesianMesh3D(args.nx, args.ny, args.nz), FluidProperties()
    )
    print(generate_listing(program), file=out)
    return 0


def _cmd_inject(args, out) -> int:
    from repro.solver import SinglePhaseFlowSimulator
    from repro.workloads import InjectionScenario

    scenario = InjectionScenario(rate=args.rate)
    mesh = scenario.build_mesh()
    sim = SinglePhaseFlowSimulator(
        mesh,
        scenario.fluid,
        wells=scenario.wells(),
        initial_pressure=scenario.initial_pressure(mesh),
    )
    m0 = sim.mass_in_place()
    injected = 0.0
    for _ in range(args.steps):
        report = sim.step(args.dt, rtol=1e-8)
        injected += sim.injected_rate * report.dt
        print(
            f"t={report.time / 86400:6.2f} d  p_avg={report.average_pressure / 1e6:8.4f} MPa  "
            f"newton={report.newton.iterations}",
            file=out,
        )
    err = abs((sim.mass_in_place() - m0) - injected) / max(injected, 1e-30)
    print(f"mass balance error: {err:.2e}", file=out)
    return 0 if err < 1e-5 else 1


def _cmd_trace(args, out) -> int:
    from pathlib import Path

    from repro.core import FluidProperties, random_pressure
    from repro.obs import (
        MetricsRegistry,
        SpanRecorder,
        chrome_trace_document,
        consistency,
        diff_rows,
        load_rows,
        profile_call,
        profile_rows,
        render_report,
        render_rows,
        report_document,
        run_result_metrics,
        runtime_stats_metrics,
        save_rows,
        set_recorder,
        trace_sink_metrics,
    )
    from repro.util.reporting import Table
    from repro.workloads import make_geomodel

    if args.backend in ("cluster", "par"):
        problem = _check_rank_grid(args.px, args.py, args.nx, args.ny)
        if problem is not None:
            print(problem, file=sys.stderr)
            return 2
    mesh = make_geomodel(args.nx, args.ny, args.nz, kind=args.geomodel, seed=args.seed)
    fluid = FluidProperties()
    pressures = [
        random_pressure(mesh, seed=args.seed + i) for i in range(args.applications)
    ]
    registry = MetricsRegistry()

    def run_event():
        from repro.dataflow import WseFluxComputation
        from repro.dataflow.cardinal import CARDINAL_CHANNELS
        from repro.dataflow.diagonal import DIAGONAL_CHANNELS

        wse = WseFluxComputation(
            mesh, fluid, trace=True, trace_capacity=args.capacity
        )
        names = {
            wse.program.colors.lookup(ch.name): ch.name
            for ch in (*CARDINAL_CHANNELS, *DIAGONAL_CHANNELS)
        }
        result = wse.run(pressures)
        registry.register(
            "runtime_stats", lambda: runtime_stats_metrics(result.stats)
        )
        registry.register("run_result", lambda: run_result_metrics(result))
        registry.register("trace", lambda: trace_sink_metrics(wse.trace_sink))
        return wse.trace_sink, result.stats, names

    def run_fused():
        from repro.ir import FusedFluxComputation

        drv = FusedFluxComputation(mesh, fluid)
        drv.run(pressures)
        registry.register("fused", drv.report().as_metrics)
        return None, None, None

    def run_lockstep():
        from repro.dataflow import LockstepWseSimulation

        sim = LockstepWseSimulation(mesh, fluid)
        for p in pressures:
            sim.run_application(p)
        registry.register("lockstep", sim.report().as_metrics)
        return None, None, None

    def run_gpu():
        from repro.gpu import GpuFluxComputation

        gpu = GpuFluxComputation(mesh, fluid, variant=args.variant)
        result = gpu.run(pressures)
        registry.register(
            "gpu",
            lambda: {
                "variant": args.variant,
                "applications": result.applications,
                "kernel_launches": result.kernel_launches,
                "tiles_executed": result.tiles_executed,
                "flops": result.flops,
            },
        )
        return None, None, None

    def run_cluster():
        from repro.cluster.flux import ClusterFluxComputation

        cluster = ClusterFluxComputation(mesh, fluid, px=args.px, py=args.py)
        result = cluster.run(pressures)
        registry.register("cluster", result.as_metrics)
        return None, None, None

    def run_par():
        from repro.par.flux import ParClusterFluxComputation

        # worker-side spans come back over the reply pipes and are
        # ingested into the installed recorder with each worker's OS pid,
        # so the Perfetto document shows one process row per worker
        with ParClusterFluxComputation(
            mesh, fluid, px=args.px, py=args.py, workers=args.workers
        ) as par:
            result = par.run(pressures)
            rank_stats = par.rank_stats()
        registry.register("par", result.as_metrics)
        # fold the per-rank worker counters into one summary row
        registry.register(
            "par_ranks_merged", lambda: registry.merge(*rank_stats)
        )
        return None, None, None

    runners = {
        "event": run_event,
        "fused": run_fused,
        "lockstep": run_lockstep,
        "gpu": run_gpu,
        "cluster": run_cluster,
        "par": run_par,
    }

    recorder = SpanRecorder()
    previous = set_recorder(recorder)
    prof = None
    try:
        if args.profile:
            (sink, stats, color_names), prof = profile_call(runners[args.backend])
        else:
            sink, stats, color_names = runners[args.backend]()
    finally:
        set_recorder(previous)

    # calibrated analytic expectation alongside the measured counters
    if args.backend == "gpu":
        from repro.perf import A100_CUDA_TIME_MODEL, A100_RAJA_TIME_MODEL

        model = (
            A100_CUDA_TIME_MODEL if args.variant == "cuda" else A100_RAJA_TIME_MODEL
        )
    else:
        from repro.perf import CS2_TIME_MODEL as model
    registry.register(
        "time_model",
        lambda: model.as_metrics(args.nx, args.ny, args.nz, len(pressures)),
    )
    metrics = registry.collect()
    span_summary = recorder.summary()

    print(
        f"backend {args.backend}: mesh {args.nx}x{args.ny}x{args.nz} "
        f"({args.geomodel}), {len(pressures)} applications",
        file=out,
    )
    if sink is not None:
        print(
            render_report(
                sink,
                stats=stats,
                fabric_shape=(args.nx, args.ny),
                color_names=color_names,
                span_summary=span_summary,
            ),
            file=out,
        )
    else:
        t = Table("Host phase spans", ["Span", "Count", "Total [s]", "Mean [s]"])
        for name in sorted(span_summary):
            row = span_summary[name]
            t.add_row(
                [
                    name,
                    str(int(row["count"])),
                    f"{row['total_seconds']:.6f}",
                    f"{row['mean_seconds']:.6f}",
                ]
            )
        print(t.render(), file=out)
        print(f"metric sources: {', '.join(registry.sources)}", file=out)
        if args.backend == "par":
            par_metrics = metrics.get("par", {})
            merged = metrics.get("par_ranks_merged", {})
            print(
                f"par: {par_metrics.get('distinct_pids', 0)} distinct "
                f"worker pid(s), "
                f"{merged.get('messages_sent', 0)} halo messages "
                f"({merged.get('bytes_sent', 0)} bytes) merged from "
                f"{par_metrics.get('ranks', 0)} rank(s)",
                file=out,
            )

    rows = None
    if prof is not None:
        rows = profile_rows(prof)
        print("", file=out)
        print("hottest functions (cumulative seconds):", file=out)
        print(render_rows(rows), file=out)
        if args.profile_baseline:
            delta = diff_rows(load_rows(args.profile_baseline), rows)
            print("", file=out)
            print(f"profile delta vs {args.profile_baseline}:", file=out)
            print(render_rows(delta), file=out)

    if args.out:
        outdir = Path(args.out)
        outdir.mkdir(parents=True, exist_ok=True)
        from repro.util.jsonio import write_stable_json

        trace_path = outdir / "trace.json"
        doc = chrome_trace_document(recorder, sink, color_names=color_names)
        write_stable_json(trace_path, doc, indent=None)
        report = (
            report_document(
                sink,
                stats=stats,
                fabric_shape=(args.nx, args.ny),
                color_names=color_names,
                span_summary=span_summary,
                extra={"metrics": metrics},
            )
            if sink is not None
            else {"spans": span_summary, "metrics": metrics}
        )
        write_stable_json(outdir / "report.json", report)
        if rows is not None:
            save_rows(rows, outdir / "profile.json")
        print("", file=out)
        print(
            f"wrote {trace_path} (open in https://ui.perfetto.dev) and "
            f"{outdir / 'report.json'}",
            file=out,
        )

    if sink is not None:
        check = consistency(sink, stats)
        return 0 if check["messages_match"] and check["word_hops_match"] else 1
    return 0


def _cmd_chaos(args, out) -> int:
    import json
    from pathlib import Path

    from repro.faults import FaultPlan, run_chaos
    from repro.faults.chaos import SCENARIOS

    if args.list_scenarios:
        width = max(len(name) for name in SCENARIOS)
        for name in sorted(SCENARIOS):
            print(f"{name:<{width}}  {SCENARIOS[name]}", file=out)
        return 0
    only = None
    if args.only:
        only = [name.strip() for name in args.only.split(",") if name.strip()]
        unknown = sorted(set(only) - set(SCENARIOS))
        if unknown:
            print(
                "error: unknown chaos scenario(s) "
                + ", ".join(repr(u) for u in unknown)
                + "; valid: " + ", ".join(sorted(SCENARIOS)),
                file=sys.stderr,
            )
            return 2

    problem = _check_rank_grid(args.px, args.py, args.nx, args.ny)
    if problem is not None:
        print(problem, file=sys.stderr)
        return 2
    plan = None
    if args.plan:
        plan = FaultPlan.from_dict(json.loads(Path(args.plan).read_text()))
        if plan.empty:
            # an empty plan would "pass" without exercising anything —
            # reject it loudly instead of reporting a hollow green run
            print(
                f"error: fault plan {args.plan} injects no faults "
                "(empty plan); drop --plan to use the seeded plan",
                file=sys.stderr,
            )
            return 2
    report = run_chaos(
        plan,
        nx=args.nx,
        ny=args.ny,
        nz=args.nz,
        seed=args.seed,
        px=args.px,
        py=args.py,
        watchdog_cycles=args.watchdog,
        steps=args.steps,
        only=only,
        postmortem_dir=(
            None if args.postmortem == "none" else args.postmortem
        ),
    )
    print(report.render(), file=out)
    if args.out:
        from repro.util.jsonio import write_stable_json

        path = write_stable_json(Path(args.out), report.as_dict())
        print(f"wrote {path}", file=out)
    return 0 if report.ok else 1


def _cmd_supervise(args, out) -> int:
    import json
    from pathlib import Path

    import numpy as np

    from repro.core import (
        CartesianMesh3D,
        FluidProperties,
        random_pressure,
    )
    from repro.faults import FaultPlan
    from repro.resilience import (
        ResiliencePolicy,
        RunSupervisor,
        SupervisorGiveUp,
    )

    if args.backend in ("cluster", "par"):
        problem = _check_rank_grid(args.px, args.py, args.nx, args.ny)
        if problem is not None:
            print(problem, file=sys.stderr)
            return 2
    if args.applications < 1:
        print("error: --applications must be >= 1", file=sys.stderr)
        return 2
    try:
        policy = (
            ResiliencePolicy.load(args.policy) if args.policy
            else ResiliencePolicy()
        )
    except (OSError, ValueError, TypeError) as exc:
        print(f"error: bad --policy file: {exc}", file=sys.stderr)
        return 2
    plan = None
    watchdog = None
    if args.plan:
        plan = FaultPlan.from_dict(json.loads(Path(args.plan).read_text()))
    elif args.inject:
        if args.backend in ("cluster", "par"):
            plan = FaultPlan.seeded(
                args.seed, fabric_shape=(args.nx, args.ny),
                ranks=args.px * args.py,
                dead_pes=0, lossy_links=0, router_stalls=0,
            )
        else:
            plan = FaultPlan.seeded(
                args.seed, fabric_shape=(args.nx, args.ny),
                dead_pes=0, lossy_links=0, rank_failures=0,
                router_stalls=1,
            )
            watchdog = 20_000.0

    mesh = CartesianMesh3D(args.nx, args.ny, args.nz)
    supervisor = RunSupervisor(
        mesh, FluidProperties(),
        policy=policy,
        backend=args.backend,
        px=args.px, py=args.py, workers=args.workers,
        plan=plan,
        watchdog_cycles=watchdog,
        checkpoint_dir=args.checkpoint_dir,
        postmortem_dir=(
            None if args.postmortem == "none" else args.postmortem
        ),
    )
    pressures = [
        random_pressure(mesh, seed=args.seed + i)
        for i in range(args.applications)
    ]
    print(
        f"supervising {args.applications} application(s) on "
        f"{args.backend} [{policy.describe()}]",
        file=out,
    )
    try:
        result = supervisor.run(pressures)
    except SupervisorGiveUp as exc:
        print(f"SUPERVISION FAILED: {exc}", file=sys.stderr)
        if exc.postmortem_bundle:
            print(
                f"post-mortem bundle: {exc.postmortem_bundle}",
                file=sys.stderr,
            )
        if exc.postmortem_timeline:
            print(
                f"decision timeline: {exc.postmortem_timeline}",
                file=sys.stderr,
            )
        return 1
    for event in result.timeline:
        kind = event["event"]
        if kind == "failure":
            print(
                f"  ! {event['error']} on {event['backend']} at "
                f"application {event['step']} (attempt {event['attempt']})",
                file=out,
            )
        elif kind == "restore":
            print(
                f"  < restored to application {event['to_step']} "
                f"from {event['source']}",
                file=out,
            )
        elif kind == "degrade":
            print(
                f"  v degraded {event['from']} -> {event['to']}",
                file=out,
            )
        elif kind == "replay_verify":
            print(
                f"  = replay-verified application {event['step']} "
                f"({event['rule']}): {'ok' if event['ok'] else 'MISMATCH'}",
                file=out,
            )
    residual_norm = float(np.abs(result.residual).max())
    print(
        f"SUPERVISION {'RECOVERED' if result.restarts or result.degraded else 'CLEAN'}: "
        f"{result.applications} application(s) committed on chain "
        f"{' -> '.join(result.backend_chain)} "
        f"({result.restarts} restart(s), {result.restores} restore(s), "
        f"{result.checkpoints_written} checkpoint(s)); "
        f"max|residual| {residual_norm:.6e}",
        file=out,
    )
    if args.out:
        from repro.util.jsonio import write_stable_json

        path = write_stable_json(Path(args.out), result.as_dict())
        print(f"wrote {path}", file=out)
    return 0


def _cmd_par_scale(args, out) -> int:
    from pathlib import Path

    from repro.par.runtime import available_cpus
    from repro.par.scale import (
        parse_grids,
        parse_workers,
        render_scaling,
        weak_scaling,
    )

    verify = not args.no_verify
    worker_counts = None
    if args.workers is not None:
        try:
            worker_counts = parse_workers(str(args.workers))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        cpus = available_cpus()
        if max(worker_counts) > cpus:
            print(
                f"error: --workers {max(worker_counts)} exceeds the "
                f"{cpus} CPU(s) this process may run on; an "
                f"oversubscribed sweep measures scheduler contention, "
                f"not scaling",
                file=sys.stderr,
            )
            return 2

    if args.mesh is not None:
        return _par_scale_sweep(args, out, worker_counts, verify)

    if worker_counts is not None and len(worker_counts) != 1:
        print(
            "error: weak scaling takes a single --workers count; "
            "a comma sweep needs --mesh",
            file=sys.stderr,
        )
        return 2
    try:
        grids = parse_grids(args.grids)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    points = weak_scaling(
        grids,
        base_nx=args.base_nx,
        base_ny=args.base_ny,
        nz=args.nz,
        applications=args.applications,
        workers=worker_counts[0] if worker_counts else None,
        seed=args.seed,
        verify=verify,
    )
    print(
        f"weak scaling, {args.base_nx}x{args.base_ny}x{args.nz} owned "
        f"cells per rank, {args.applications} applications per point "
        f"(+1 warm-up){'' if verify else ', verification OFF'}",
        file=out,
    )
    print(render_scaling(points), file=out)
    if args.out:
        from repro.util.jsonio import write_stable_json

        path = write_stable_json(
            Path(args.out), [pt.as_dict() for pt in points]
        )
        print(f"wrote {path}", file=out)
    if verify and not all(pt.bit_identical for pt in points):
        bad = [f"{pt.px}x{pt.py}" for pt in points if not pt.bit_identical]
        print(
            f"error: residual mismatch vs serial cluster backend at "
            f"grid(s) {', '.join(bad)}",
            file=sys.stderr,
        )
        return 1
    return 0


def _par_scale_sweep(args, out, worker_counts, verify) -> int:
    """Strong-scaling worker sweep on a fixed mesh (``--mesh`` mode)."""
    from pathlib import Path

    from repro.par.runtime import available_cpus
    from repro.par.scale import (
        parse_grids,
        parse_mesh,
        render_sweep,
        worker_sweep,
    )

    try:
        nx, ny, nz = parse_mesh(args.mesh)
        (px, py), = parse_grids(args.grid)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if worker_counts is None:
        worker_counts = sorted(
            {w for w in (1, 2, 4) if w <= min(px * py, available_cpus())}
        )
    if max(worker_counts) > px * py:
        print(
            f"error: --workers {max(worker_counts)} exceeds the "
            f"{px * py} rank(s) of the {px}x{py} grid",
            file=sys.stderr,
        )
        return 2
    points = worker_sweep(
        worker_counts,
        nx=nx, ny=ny, nz=nz, px=px, py=py,
        applications=args.applications,
        seed=args.seed,
        verify=verify,
    )
    print(
        f"strong scaling, {nx}x{ny}x{nz} global mesh on a {px}x{py} "
        f"rank grid, {args.applications} applications per point "
        f"(+1 warm-up){'' if verify else ', verification OFF'}",
        file=out,
    )
    print(render_sweep(points), file=out)
    if args.out:
        from repro.util.jsonio import write_stable_json

        path = write_stable_json(
            Path(args.out), [pt.as_dict() for pt in points]
        )
        print(f"wrote {path}", file=out)
    if verify and not all(pt.bit_identical for pt in points):
        bad = [str(pt.workers) for pt in points if not pt.bit_identical]
        print(
            f"error: residual mismatch vs serial cluster backend at "
            f"worker count(s) {', '.join(bad)}",
            file=sys.stderr,
        )
        return 1
    if args.gate_speedup:
        top = max(points, key=lambda pt: pt.workers)
        if available_cpus() < top.workers:
            print(
                f"speedup gate skipped: {available_cpus()} usable "
                f"CPU(s) < {top.workers} workers",
                file=out,
            )
        elif top.speedup <= 1.0:
            print(
                f"error: speedup {top.speedup:.2f} <= 1 at "
                f"{top.workers} workers on a host with "
                f"{available_cpus()} usable CPUs",
                file=sys.stderr,
            )
            return 1
    return 0


def _cmd_check(args, out) -> int:
    import time
    from pathlib import Path

    from repro.check import (
        ANALYZERS,
        FABRIC_ANALYZERS,
        PROGRAM_ANALYZERS,
        CheckReport,
        Severity,
        check_examples,
        check_ir,
        check_program,
        lint_paths,
    )
    from repro.check.race import drill_findings, run_race_checks

    if args.lint_only and not args.lint:
        print("error: --lint-only requires at least one --lint PATH", file=sys.stderr)
        return 2

    serialized_ir = None
    if args.program is not None:
        from repro.ir import FabricProgramIR

        try:
            serialized_ir = FabricProgramIR.from_json(args.program)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    def _parse_analyzers(raw: str | None, flag: str) -> set | None:
        if raw is None:
            return None
        names = {name.strip() for name in raw.split(",") if name.strip()}
        unknown = sorted(names - set(ANALYZERS))
        if unknown:
            print(
                f"error: unknown analyzer(s) for {flag} "
                + ", ".join(repr(u) for u in unknown)
                + "; valid: " + ", ".join(ANALYZERS),
                file=sys.stderr,
            )
            return set()  # sentinel: caller exits 2
        return names

    only = _parse_analyzers(args.only, "--only")
    if only == set():
        return 2
    skip = _parse_analyzers(args.skip, "--skip")
    if skip == set() and args.skip is not None:
        return 2

    # what would run without --only: the program/fabric analyzers (or
    # the race verifiers under --race, the drill under --race-drill),
    # plus the determinism lint when --lint paths are given
    race_names = {"race-model", "race-lint", "race-hb"}
    if args.race_drill:
        selected = {"race-drill"} | (race_names if args.race else set())
    elif args.race:
        selected = set(race_names)
    elif args.lint_only:
        selected = {"lint"}
    else:
        selected = set(FABRIC_ANALYZERS) | set(PROGRAM_ANALYZERS)
        if args.lint:
            selected.add("lint")
    if only is not None:
        selected = only
    if skip:
        selected -= skip

    t0 = time.perf_counter()
    reports: list[CheckReport] = []
    program_part = selected & (set(FABRIC_ANALYZERS) | set(PROGRAM_ANALYZERS))
    if program_part:
        part = None if program_part == set(FABRIC_ANALYZERS) | set(
            PROGRAM_ANALYZERS
        ) else program_part
        if serialized_ir is not None:
            reports.append(
                check_ir(
                    serialized_ir,
                    subject=f"ir {args.program}",
                    only=part,
                )
            )
        elif args.examples:
            reports.extend(check_examples(only=part).values())
        else:
            from repro.core import CartesianMesh3D, FluidProperties
            from repro.dataflow.program import FluxProgram

            program = FluxProgram(
                CartesianMesh3D(args.nx, args.ny, args.nz), FluidProperties()
            )
            reports.append(
                check_program(
                    program,
                    subject=f"program {args.nx}x{args.ny}x{args.nz}",
                    only=part,
                )
            )
            if args.emit_ir:
                from repro.ir import build_ir

                build_ir(program).to_json(args.emit_ir)
                print(f"wrote {args.emit_ir}", file=out)
    if "lint" in selected:
        for path in args.lint or ("src/repro",):
            lint = CheckReport(subject=f"determinism lint {path}")
            lint.extend(lint_paths(path))
            reports.append(lint)
    race_selected = selected & race_names
    if race_selected:
        lint_root = (args.lint or ("src/repro",))[0]
        reports.extend(
            run_race_checks(
                lint_root,
                model="race-model" in race_selected,
                lint="race-lint" in race_selected,
                hb="race-hb" in race_selected,
            )
        )
    if "race-drill" in selected:
        reports.append(drill_findings())
    elapsed = time.perf_counter() - t0

    for report in reports:
        print(report.render(), file=out)
    errors = sum(len(r.errors) for r in reports)
    warnings = sum(len(r.by_severity(Severity.WARNING)) for r in reports)
    verdict = "CHECK PASSED" if errors == 0 else "CHECK FAILED"
    print(
        f"{verdict}: {len(reports)} subject(s), {errors} error(s), "
        f"{warnings} warning(s) in {elapsed:.2f}s",
        file=out,
    )

    if args.json:
        from repro.util.jsonio import write_stable_json

        doc = {
            "ok": errors == 0,
            # rounded so semantically identical runs produce stable text
            # and only real finding changes show up in artifact diffs
            "elapsed_seconds": round(elapsed, 3),
            "subjects": [r.as_dict() for r in reports],
        }
        path = write_stable_json(Path(args.json), doc)
        print(f"wrote {path}", file=out)
    return 0 if errors == 0 else 1


def _cmd_conform(args, out) -> int:
    from pathlib import Path

    from repro.conform import (
        named_tolerance,
        record_run,
        replay,
        run_golden,
    )
    from repro.obs.replay import ReplayArtifact
    from repro.util.jsonio import write_stable_json

    def write_reports(results) -> None:
        if not args.report:
            return
        path = write_stable_json(
            Path(args.report) / "conform.json",
            {
                "ok": all(r.ok for r in results),
                "results": [r.as_dict() for r in results],
            },
        )
        print(f"wrote {path}", file=out)

    # ---- golden registry mode ---------------------------------------- #
    if args.golden:
        from repro.par.runtime import available_cpus

        backends = args.backends.split(",") if args.backends else None
        # par replays spawn a worker pool per artifact — only worth it
        # when the host actually has a second CPU (the result would
        # still be bit-identical on one, per the equivalence tests)
        skip_par = available_cpus() < 2 and (
            backends is None or "par" not in backends
        )
        results = run_golden(
            Path(args.golden_dir) if args.golden_dir else None,
            backends=backends,
            skip_par=skip_par,
        )
        if not results:
            print("error: no golden replays selected", file=sys.stderr)
            return 2
        for res in results:
            print(res.render(), file=out)
        failed = [r for r in results if not r.ok]
        if skip_par:
            print(
                f"(par replays skipped: {available_cpus()} usable CPU)",
                file=out,
            )
        print(
            f"conform: {len(results) - len(failed)}/{len(results)} golden "
            f"replay(s) passed",
            file=out,
        )
        write_reports(results)
        return 0 if not failed else 1

    # ---- record mode -------------------------------------------------- #
    if args.record:
        if not args.backend:
            print("error: --record requires --backend", file=sys.stderr)
            return 2
        if args.backend in ("cluster", "par"):
            problem = _check_rank_grid(args.px, args.py, args.nx, args.ny)
            if problem is not None:
                print(problem, file=sys.stderr)
                return 2
        plan = None
        if args.faulted:
            from repro.faults import FaultPlan

            plan = FaultPlan.seeded(
                args.seed, fabric_shape=(args.nx, args.ny),
                ranks=args.px * args.py,
            ).only_ranks()
        artifact = record_run(
            args.backend,
            nx=args.nx, ny=args.ny, nz=args.nz,
            geomodel=args.geomodel, seed=args.seed,
            applications=args.applications,
            px=args.px, py=args.py, workers=args.workers,
            variant=args.variant, plan=plan,
            snapshot_every=args.snapshot_every,
        )
        path = artifact.save(args.out or f"{args.backend}.rpz")
        print(f"recorded {artifact.describe()}", file=out)
        print(f"wrote {path}", file=out)
        return 0

    # ---- replay mode --------------------------------------------------- #
    if not args.artifact:
        print(
            "error: give an artifact to replay, or --record / --golden",
            file=sys.stderr,
        )
        return 2
    if not args.backend:
        print("error: replay requires --backend", file=sys.stderr)
        return 2
    artifact = ReplayArtifact.load(args.artifact)
    result = replay(
        artifact,
        args.backend,
        tolerance=(
            named_tolerance(args.tolerance) if args.tolerance else None
        ),
        artifact_name=Path(args.artifact).name,
    )
    print(result.render(), file=out)
    write_reports([result])
    return 0 if result.ok else 1


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "tables":
        return _cmd_tables(out)
    if args.command == "validate":
        return _cmd_validate(args, out)
    if args.command == "scaling":
        return _cmd_scaling(args, out)
    if args.command == "listing":
        return _cmd_listing(args, out)
    if args.command == "inject":
        return _cmd_inject(args, out)
    if args.command == "trace":
        return _cmd_trace(args, out)
    if args.command == "chaos":
        return _cmd_chaos(args, out)
    if args.command == "supervise":
        return _cmd_supervise(args, out)
    if args.command == "par-scale":
        return _cmd_par_scale(args, out)
    if args.command == "check":
        return _cmd_check(args, out)
    if args.command == "conform":
        return _cmd_conform(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
