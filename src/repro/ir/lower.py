"""Lowering passes: compile a :class:`FabricProgramIR` to a backend.

Each ``lower_to_*`` function materializes one runtime from the IR:

* ``event`` — builds a :class:`~repro.dataflow.driver.WseFluxComputation`
  whose :class:`~repro.dataflow.program.FluxProgram` *consumes* the IR's
  route tables and injector sets instead of re-deriving them (and
  cross-checks its color allocation against the IR's color table).
* ``lockstep`` — builds a
  :class:`~repro.dataflow.lockstep.LockstepWseSimulation` driven by the
  IR's exchange-plan contract (phase order, connection order, hop
  counts) rather than its own hard-coded fold order.
* ``fused`` — the whole-array backend of :mod:`repro.ir.fused`.
* ``gpu`` / ``cluster`` — delegate to the existing constructors (those
  backends own their decomposition), but validate the IR and take the
  mesh/dtype parameters from it, so a program lowered to every backend
  is guaranteed to describe the same computation.

All passes raise ``ValueError`` when the IR cannot describe the
requested lowering (bare-fabric IR, mesh mismatch, missing contracts).
"""

from __future__ import annotations

import numpy as np

from repro.ir.fused import FusedFluxComputation
from repro.ir.schema import KIND_PROGRAM, FabricProgramIR

__all__ = [
    "lower_to_event",
    "lower_to_lockstep",
    "lower_to_fused",
    "lower_to_gpu",
    "lower_to_cluster",
]


def _require_program_ir(ir: FabricProgramIR, mesh, backend: str) -> dict:
    if ir.kind != KIND_PROGRAM:
        raise ValueError(
            f"cannot lower a {ir.kind!r} IR to the {backend} backend"
        )
    if ir.mesh_shape != (mesh.nx, mesh.ny, mesh.nz):
        raise ValueError(
            f"IR was built for mesh {ir.mesh_shape}, got "
            f"({mesh.nx}, {mesh.ny}, {mesh.nz})"
        )
    params = ir.params
    if params is None:
        raise ValueError("program IR carries no params block")
    return params


def lower_to_event(ir: FabricProgramIR, mesh, fluid, trans=None, **kwargs):
    """IR -> event runtime (routes and injectors taken from the IR)."""
    from repro.dataflow.driver import WseFluxComputation

    params = _require_program_ir(ir, mesh, "event")
    return WseFluxComputation(
        mesh,
        fluid,
        trans,
        dtype=np.dtype(params["dtype"]),
        reuse_buffers=params["reuse_buffers"],
        overlap_compute=params["overlap_compute"],
        compute_fluxes=params["compute_fluxes"],
        vectorized=ir.vectorized,
        pe_memory_bytes=ir.pe_memory_bytes,
        pe_memory_reserved=ir.pe_memory_reserved,
        ir=ir,
        **kwargs,
    )


def lower_to_lockstep(ir: FabricProgramIR, mesh, fluid, trans=None, **kwargs):
    """IR -> lockstep simulation (fold order from the IR contract)."""
    from repro.dataflow.lockstep import LockstepWseSimulation

    params = _require_program_ir(ir, mesh, "lockstep")
    plan = ir.exchange_plan
    if not plan:
        raise ValueError("IR carries no exchange plan to lower")
    return LockstepWseSimulation(
        mesh,
        fluid,
        trans,
        dtype=np.dtype(params["dtype"]),
        compute_fluxes=params["compute_fluxes"],
        vectorized=ir.vectorized,
        exchange_plan=plan,
        **kwargs,
    )


def lower_to_fused(ir: FabricProgramIR, mesh, fluid, trans=None, **kwargs):
    """IR -> fused whole-array backend."""
    params = _require_program_ir(ir, mesh, "fused")
    return FusedFluxComputation(
        mesh,
        fluid,
        trans,
        dtype=np.dtype(params["dtype"]),
        ir=ir,
        **kwargs,
    )


def lower_to_gpu(ir: FabricProgramIR, mesh, fluid, **kwargs):
    """IR -> GPU-model backend (delegates; dtype/mesh from the IR)."""
    from repro.gpu.reference import GpuFluxComputation

    params = _require_program_ir(ir, mesh, "gpu")
    kwargs.setdefault("dtype", np.dtype(params["dtype"]))
    return GpuFluxComputation(mesh, fluid, **kwargs)


def lower_to_cluster(ir: FabricProgramIR, mesh, fluid, **kwargs):
    """IR -> MPI-model cluster backend (delegates; dtype from the IR)."""
    from repro.cluster.flux import ClusterFluxComputation

    params = _require_program_ir(ir, mesh, "cluster")
    kwargs.setdefault("dtype", np.dtype(params["dtype"]))
    return ClusterFluxComputation(mesh, fluid, **kwargs)
