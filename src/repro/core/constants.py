"""Physical constants and default fluid/rock properties.

Defaults are representative of supercritical CO2 injection conditions in a
saline aquifer, the scenario motivating the paper (Sec. 1).  All quantities
are SI: pressure in Pa, density in kg/m^3, viscosity in Pa.s, permeability
in m^2, compressibility in 1/Pa.
"""

from __future__ import annotations

__all__ = [
    "GRAVITY",
    "DEFAULT_VISCOSITY",
    "DEFAULT_COMPRESSIBILITY",
    "DEFAULT_REFERENCE_DENSITY",
    "DEFAULT_REFERENCE_PRESSURE",
    "DEFAULT_ROCK_COMPRESSIBILITY",
    "DEFAULT_POROSITY",
    "DEFAULT_PERMEABILITY",
    "MILLIDARCY",
    "PAPER_MESH",
    "PAPER_ITERATIONS",
    "PAPER_WEAK_SCALING_MESHES",
]

#: Standard gravitational acceleration [m/s^2].
GRAVITY = 9.80665

#: Supercritical CO2 viscosity at reservoir conditions [Pa.s] (constant, Eq. 1a).
DEFAULT_VISCOSITY = 5.0e-5

#: Fluid compressibility c_f [1/Pa] (Eq. 5, slight compressibility).
DEFAULT_COMPRESSIBILITY = 1.0e-9

#: Reference density rho_ref [kg/m^3] (Eq. 5).
DEFAULT_REFERENCE_DENSITY = 700.0

#: Reference pressure p_ref [Pa] (Eq. 5).
DEFAULT_REFERENCE_PRESSURE = 1.0e7

#: Rock (pore volume) compressibility [1/Pa] used by the implicit solver,
#: where porosity depends linearly on pressure (Sec. 3).
DEFAULT_ROCK_COMPRESSIBILITY = 1.0e-10

#: Default porosity [-].
DEFAULT_POROSITY = 0.2

#: One millidarcy in m^2.
MILLIDARCY = 9.869233e-16

#: Default permeability [m^2] (100 mD).
DEFAULT_PERMEABILITY = 100.0 * MILLIDARCY

#: The largest mesh evaluated in the paper (Nx, Ny, Nz) — Sec. 7.2.
PAPER_MESH = (750, 994, 246)

#: Number of applications of Algorithm 1 per experiment (Sec. 3).
PAPER_ITERATIONS = 1000

#: The weak-scaling grid sizes of Table 2 as (Nx, Ny, Nz).
PAPER_WEAK_SCALING_MESHES = [
    (200, 200, 246),
    (400, 400, 246),
    (600, 600, 246),
    (750, 600, 246),
    (750, 800, 246),
    (750, 950, 246),
]
