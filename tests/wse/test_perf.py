"""Unit tests for the WSE cost model."""

import pytest

from repro.wse.perf import WSE2, WsePerfModel


class TestWsePerfModel:
    def test_default_is_wse2(self):
        assert WSE2.clock_hz == 850e6
        assert WSE2.steady_state_power_w == 23_000.0

    def test_seconds_conversion(self):
        assert WSE2.seconds(850e6) == pytest.approx(1.0)
        assert WSE2.seconds(0) == 0.0

    def test_transfer_cycles_linear(self):
        m = WsePerfModel(link_words_per_cycle=1.0)
        assert m.transfer_cycles(10) == 10.0
        m2 = WsePerfModel(link_words_per_cycle=2.0)
        assert m2.transfer_cycles(10) == 5.0

    def test_energy(self):
        assert WSE2.energy_joules(2.0) == pytest.approx(46_000.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            WSE2.clock_hz = 1.0

    def test_custom_model_flows_into_runtime_timing(self):
        import numpy as np

        from repro.wse.fabric import Fabric
        from repro.wse.geometry import Port
        from repro.wse.runtime import EventRuntime

        fabric = Fabric(2, 1)
        slow = WsePerfModel(
            link_words_per_cycle=0.5,
            hop_latency_cycles=0.0,
            injection_overhead_cycles=0.0,
        )
        rt = EventRuntime(fabric, slow)
        fabric.configure_color(
            0, lambda c: [{Port.RAMP: (Port.EAST,), Port.WEST: (Port.RAMP,)}]
        )
        times = []
        fabric.bind_all(0, lambda r, pe, m: times.append(r.now))
        rt.inject((0, 0), 0, np.zeros(10, dtype=np.float32))
        rt.run()
        assert times == [20.0]  # 10 words at half a word per cycle
