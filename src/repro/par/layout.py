"""Deterministic shared-memory map for one SPMD rank grid.

Both the parent and every worker derive the identical
:class:`HaloLayout` from ``(mesh shape, px, py, dtype)``, so no offsets
ever travel between processes — only the segment name does.  The
segment holds, in order:

* **two** global **pressure** fields, one per application parity — the
  parent writes application ``k``'s pressures into slot ``k % 2``,
  which lets it stage application ``k + 1`` while ``k`` is still in
  flight (depth-2 pipelining) without tearing the field a worker is
  scattering from;
* the global **residual** field (each worker writes its ranks' owned
  blocks — disjoint regions, so no locking is needed);
* one **heartbeat** counter per rank (``uint64``): workers bump their
  ranks' counters at every phase boundary (and periodically inside
  recv spin loops), and the parent's lease-liveness check reads them to
  tell a *hung* worker from a merely slow one — a stalled counter past
  the lease is treated like a crash;
* **two parity slots** per directed halo link, in the canonical
  :func:`~repro.cluster.flux.halo_links` order.  Each parity slot is an
  8-byte sequence header followed by the strip payload; exchange ``k``
  uses slot ``k % 2``.  The sequence number is the publication
  protocol: a sender writes the payload, then stores ``k + 1`` into the
  header; a receiver spins until the header reaches the value it
  expects.  Two slots make the protocol safe under *overlapped*
  exchange: a sender may publish exchange ``k + 1`` while its neighbour
  is still absorbing exchange ``k`` (endpoints drift by at most one
  exchange — the parent only issues application ``k`` once every worker
  finished ``k - 2``), and the two in-flight strips never share bytes.
  Per-link monotonic sequence numbers keep lost, duplicate and stale
  strips all detectable.

Everything is 8-byte aligned so the ``uint64`` headers and float
payload views are aligned regardless of dtype.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.comm import CartGrid
from repro.cluster.decomposition import BlockDecomposition
from repro.cluster.flux import HaloLink, halo_links

__all__ = ["LinkSlot", "HaloLayout", "SEQ_BYTES", "NUM_PARITIES"]

#: Bytes of the per-link sequence header (one little-endian uint64).
SEQ_BYTES = 8

#: Parity slots per halo link (and per pressure field): even/odd
#: exchanges alternate slots, which is sufficient because pipelined
#: endpoints are never more than one exchange apart.
NUM_PARITIES = 2


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


@dataclass(frozen=True)
class LinkSlot:
    """One halo link's fixed regions (both parities) in the segment."""

    link: HaloLink
    seq_offsets: tuple[int, int]
    payload_offsets: tuple[int, int]
    payload_bytes: int

    @property
    def key(self) -> tuple[int, int, int]:
        """(source, dest, tag) — the same key SimComm's mailbox uses."""
        return (self.link.source, self.link.dest, self.link.tag)


class HaloLayout:
    """Byte map of the shared arena for a ``px x py`` decomposition.

    Picklable (plain ints, dataclasses and a dtype string), so it can be
    shipped to spawned workers; under ``fork`` it is inherited.
    """

    def __init__(
        self,
        *,
        shape_zyx: tuple[int, int, int],
        px: int,
        py: int,
        links: list[HaloLink],
        dtype=np.float64,
    ) -> None:
        self.shape_zyx = tuple(int(n) for n in shape_zyx)
        self.px = int(px)
        self.py = int(py)
        self.dtype = np.dtype(dtype)
        nz, ny, nx = self.shape_zyx
        field_bytes = nz * ny * nx * self.dtype.itemsize
        self.pressure_offsets = (0, _align8(field_bytes))
        self.residual_offset = _align8(self.pressure_offsets[1] + field_bytes)
        # one uint64 heartbeat counter per rank, after the residual field
        self.heartbeat_offset = _align8(self.residual_offset + field_bytes)
        heartbeat_bytes = self.px * self.py * SEQ_BYTES
        offset = _align8(self.heartbeat_offset + heartbeat_bytes)
        slots: list[LinkSlot] = []
        for link in links:
            payload_bytes = link.cells(nz) * self.dtype.itemsize
            seq_offsets = []
            payload_offsets = []
            for _ in range(NUM_PARITIES):
                seq_offset = offset
                payload_offset = _align8(seq_offset + SEQ_BYTES)
                seq_offsets.append(seq_offset)
                payload_offsets.append(payload_offset)
                offset = _align8(payload_offset + payload_bytes)
            slots.append(
                LinkSlot(
                    link=link,
                    seq_offsets=tuple(seq_offsets),
                    payload_offsets=tuple(payload_offsets),
                    payload_bytes=payload_bytes,
                )
            )
        self.slots = tuple(slots)
        self.total_bytes = max(offset, 1)  # SharedMemory rejects size 0

    # ------------------------------------------------------------------ #
    @classmethod
    def from_decomposition(
        cls, decomp: BlockDecomposition, grid: CartGrid, *, dtype=np.float64
    ) -> "HaloLayout":
        """The canonical layout for *decomp* on *grid*."""
        nz = decomp.mesh.nz
        return cls(
            shape_zyx=(nz, decomp.mesh.ny, decomp.mesh.nx),
            px=grid.px,
            py=grid.py,
            links=halo_links(decomp, grid),
            dtype=dtype,
        )

    @property
    def size(self) -> int:
        """Communicator size (number of ranks)."""
        return self.px * self.py

    @property
    def links(self) -> list[HaloLink]:
        return [slot.link for slot in self.slots]

    def slot(self, source: int, dest: int, tag: int) -> LinkSlot:
        """The slot for link ``(source, dest, tag)``; KeyError when the
        pair shares no halo cells."""
        return self._by_key[(source, dest, tag)]

    @property
    def _by_key(self) -> dict[tuple[int, int, int], LinkSlot]:
        by_key = self.__dict__.get("_by_key_cache")
        if by_key is None:
            by_key = {slot.key: slot for slot in self.slots}
            self.__dict__["_by_key_cache"] = by_key
        return by_key

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_by_key_cache", None)
        return state
