"""Physics core: mesh, fluid model, TPFA transmissibilities, flux kernel.

This subpackage is the numerical ground truth of the reproduction — the
discretized single-phase compressible flow model of paper Sec. 3 and the
reference vectorized implementation of Algorithm 1.
"""

from repro.core import constants
from repro.core.flux import FluxKernel, compute_face_fluxes, compute_flux_residual
from repro.core.fluid import FluidProperties, upwind_mobility
from repro.core.kernels import (
    FLOPS_PER_CELL,
    FLOPS_PER_FLUX,
    FLUXES_PER_CELL,
    face_flux_array,
    face_flux_scalar,
    face_flux_with_derivatives,
)
from repro.core.mesh import CartesianMesh3D
from repro.core.state import PressureSequence, hydrostatic_pressure, random_pressure
from repro.core.stencil import (
    ALL_CONNECTIONS,
    CARDINAL_XY,
    DIAGONAL_XY,
    VERTICAL,
    XY_CONNECTIONS,
    Connection,
    interior_slices,
    iter_neighbours,
    opposite,
)
from repro.core.transmissibility import CANONICAL_CONNECTIONS, Transmissibility

__all__ = [
    "constants",
    "CartesianMesh3D",
    "FluidProperties",
    "upwind_mobility",
    "Transmissibility",
    "CANONICAL_CONNECTIONS",
    "Connection",
    "ALL_CONNECTIONS",
    "CARDINAL_XY",
    "DIAGONAL_XY",
    "VERTICAL",
    "XY_CONNECTIONS",
    "interior_slices",
    "iter_neighbours",
    "opposite",
    "FluxKernel",
    "compute_flux_residual",
    "compute_face_fluxes",
    "face_flux_scalar",
    "face_flux_array",
    "face_flux_with_derivatives",
    "FLOPS_PER_FLUX",
    "FLOPS_PER_CELL",
    "FLUXES_PER_CELL",
    "PressureSequence",
    "hydrostatic_pressure",
    "random_pressure",
]
