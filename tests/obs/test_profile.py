"""cProfile capture, JSON persistence, and fixed-workload diffing."""

from repro.obs.profile import (
    diff_rows,
    load_rows,
    profile_call,
    profile_rows,
    render_rows,
    save_rows,
)


def workload():
    total = 0
    for i in range(1000):
        total += i * i
    return total


class TestProfileCall:
    def test_returns_result_and_stats(self):
        result, stats = profile_call(workload)
        assert result == workload()
        rows = profile_rows(stats)
        assert rows, "profiling a real call yields at least one row"
        names = [r["function"] for r in rows]
        assert any("workload" in n for n in names)

    def test_rows_sorted_by_cumtime_and_limited(self):
        _, stats = profile_call(workload)
        rows = profile_rows(stats, limit=2)
        assert len(rows) <= 2
        cums = [r["cumtime"] for r in rows]
        assert cums == sorted(cums, reverse=True)
        for row in rows:
            assert set(row) == {"function", "ncalls", "tottime", "cumtime"}


class TestDiff:
    def test_diff_covers_both_sides(self):
        baseline = [
            {"function": "a.py:1:hot", "ncalls": 10, "tottime": 1.0, "cumtime": 2.0},
            {"function": "a.py:9:gone", "ncalls": 5, "tottime": 0.5, "cumtime": 0.5},
        ]
        current = [
            {"function": "a.py:1:hot", "ncalls": 12, "tottime": 0.4, "cumtime": 1.1},
            {"function": "b.py:3:new", "ncalls": 7, "tottime": 0.2, "cumtime": 0.2},
        ]
        rows = {r["function"]: r for r in diff_rows(baseline, current)}
        assert rows["a.py:1:hot"]["tottime_delta"] == -0.6
        assert rows["a.py:1:hot"]["ncalls_delta"] == 2
        # eliminated functions diff against zero (show as negative)
        assert rows["a.py:9:gone"]["tottime_delta"] == -0.5
        # new hot spots surface as positive deltas
        assert rows["b.py:3:new"]["tottime_delta"] == 0.2

    def test_diff_sorted_by_absolute_self_cost_shift(self):
        baseline = [
            {"function": "f", "ncalls": 1, "tottime": 1.0, "cumtime": 1.0},
            {"function": "g", "ncalls": 1, "tottime": 0.1, "cumtime": 0.1},
        ]
        current = [
            {"function": "f", "ncalls": 1, "tottime": 0.9, "cumtime": 0.9},
            {"function": "g", "ncalls": 1, "tottime": 0.9, "cumtime": 0.9},
        ]
        rows = diff_rows(baseline, current)
        assert rows[0]["function"] == "g"  # |+0.8| ranks above |-0.1|


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        rows = [{"function": "x", "ncalls": 3, "tottime": 0.25, "cumtime": 0.5}]
        path = tmp_path / "profile.json"
        save_rows(rows, path)
        assert load_rows(path) == rows

    def test_render_rows(self):
        rows = [{"function": "x.py:1:f", "ncalls": 3, "tottime": 0.25,
                 "cumtime": 0.5}]
        text = render_rows(rows)
        assert "x.py:1:f" in text
        assert "tottime" in text.splitlines()[0]
        assert render_rows([]) == "(no profile rows)"
