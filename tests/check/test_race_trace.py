"""Happens-before analysis: recorder plumbing, clean runs, injected races."""

from repro.check import ArenaAccess, RaceTraceRecorder, check_hb, describe_loc
from repro.check.race import hb_live_probe


class TestRecorder:
    def test_round_trip_through_drain_and_ingest(self):
        worker = RaceTraceRecorder("worker0")
        worker.record("write", ("residual", 0), value=1, step=1, rank=0)
        worker.record("release", ("reply", 0), value=1, step=1)
        parent = RaceTraceRecorder("parent")
        parent.record("acquire", ("reply", 0), value=1, step=1)
        parent.ingest(worker.drain())
        assert worker.events == []
        assert [e.actor for e in parent.events] == ["parent", "worker0", "worker0"]
        assert parent.events[1] == ArenaAccess(
            actor="worker0", index=0, op="write", loc=("residual", 0),
            value=1, step=1, rank=0,
        )

    def test_index_keeps_running_across_drains(self):
        rec = RaceTraceRecorder("w")
        rec.record("write", ("app",))
        rec.drain()
        rec.record("write", ("app",))
        assert rec.events[0].index == 1

    def test_describe_loc_names_link_slot_and_rank(self):
        assert describe_loc(("link", 0, 1, 0, 1, "payload")) == (
            "link (0, 1, 0) parity-1 payload"
        )
        assert describe_loc(("residual", 3)) == "residual block of rank 3"
        assert describe_loc(("pressure", 0)) == "pressure parity-0"
        assert describe_loc(("app",)) == "application stamp"


def _ordered_pair():
    """Writer releases, reader acquires: properly synchronized accesses."""
    a = RaceTraceRecorder("a")
    a.record("write", ("link", 0, 1, 0, 0, "payload"), value=1, step=0, rank=0)
    a.record("release", ("link", 0, 1, 0, 0, "header"), value=1, step=0)
    b = RaceTraceRecorder("b")
    b.record("acquire", ("link", 0, 1, 0, 0, "header"), value=1, step=0)
    b.record("read", ("link", 0, 1, 0, 0, "payload"), value=1, step=0, rank=1)
    return a.events + b.events


class TestCheckHb:
    def test_release_acquire_chain_orders_the_accesses(self):
        assert check_hb(_ordered_pair()) == []

    def test_unsynchronized_write_write_is_flagged(self):
        a = RaceTraceRecorder("a")
        a.record("write", ("pressure", 0), value=1, step=1, rank=0)
        b = RaceTraceRecorder("b")
        b.record("write", ("pressure", 0), value=1, step=1, rank=1)
        findings = check_hb(a.events + b.events)
        assert len(findings) == 1
        assert findings[0].code == "race-hb-conflict"
        assert "pressure parity-0" in findings[0].message

    def test_read_read_is_never_a_conflict(self):
        a = RaceTraceRecorder("a")
        a.record("read", ("pressure", 0))
        b = RaceTraceRecorder("b")
        b.record("read", ("pressure", 0))
        assert check_hb(a.events + b.events) == []

    def test_findings_deduplicate_per_location(self):
        a = RaceTraceRecorder("a")
        b = RaceTraceRecorder("b")
        for _ in range(3):
            a.record("write", ("residual", 0), rank=0)
            b.record("write", ("residual", 0), rank=1)
        assert len(check_hb(a.events + b.events)) == 1

    def test_injected_race_is_localized_to_link_slot_rank_step(self):
        events = list(_ordered_pair())
        rogue = RaceTraceRecorder("rogue")
        rogue.record(
            "write", ("link", 0, 1, 0, 0, "payload"), value=9, step=2, rank=1
        )
        findings = check_hb(events + rogue.events)
        assert len(findings) == 1
        f = findings[0]
        assert "link (0, 1, 0) parity-0 payload" in f.message
        assert "rogue" in f.detail and "rank 1 step 2" in f.detail

    def test_unmatched_acquire_runs_joinless_without_hiding_races(self):
        # acquire whose release was never recorded (tracing attached
        # mid-run) must not deadlock the scheduler — and the conflicting
        # write behind it is still reported.
        a = RaceTraceRecorder("a")
        a.record("acquire", ("app",), value=7)
        a.record("write", ("pressure", 1), rank=0)
        b = RaceTraceRecorder("b")
        b.record("write", ("pressure", 1), rank=1)
        findings = check_hb(a.events + b.events)
        assert [f.code for f in findings] == ["race-hb-conflict"]


class TestLiveProbe:
    def test_clean_two_rank_probe_has_zero_findings(self):
        findings, events = hb_live_probe()
        assert findings == []
        assert events > 0
