"""The SPMD worker process body.

One worker executes one or more contiguous ranks of the decomposition.
It rebuilds all per-rank state (padded local mesh, flux kernel,
pressure/residual buffers) from the picklable :class:`WorkerSpec`,
attaches the shared arena by name, then serves ``("run",)`` commands
from the parent pipe — one command per flux application:

1. scatter: copy each owned block's pressure cells from the arena's
   global pressure field into the rank's padded buffer;
2. exchange: publish every outgoing halo strip, then spin-receive every
   incoming one (all-send-then-all-receive across *all* owned ranks, so
   the schedule stays deadlock-free even with several ranks per
   process);
3. compute: run the reference flux kernel per rank and write the owned
   residual block into the arena's global residual field (disjoint
   regions across workers — no locking).

Each application replies ``("ok", payload)`` with per-rank stats
deltas, span records and phase nanosecond timings.  Fault injection is
real here: when the plan downs one of this worker's ranks and
``kill_for_real`` is set, the process dies with ``os._exit`` — the
parent's crash detector, not a simulated flag, has to notice.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.core import constants
from repro.core.flux import FluxKernel
from repro.core.fluid import FluidProperties
from repro.core.mesh import CartesianMesh3D
from repro.cluster.decomposition import Block, BlockDecomposition
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.obs.spans import Span, SpanRecorder, spans_to_payload
from repro.par.comm import ProcComm
from repro.par.layout import HaloLayout
from repro.par.shm import SharedArena

__all__ = ["WorkerSpec", "worker_main", "KILL_EXIT_CODE"]

#: Exit code of a worker killed by an injected rank failure — lets the
#: parent (and tests) tell an injected crash from an organic one.
KILL_EXIT_CODE = 73


@dataclass
class WorkerSpec:
    """Everything a worker needs to rebuild its world (picklable)."""

    index: int
    ranks: tuple[int, ...]
    arena_name: str
    layout: HaloLayout
    mesh: CartesianMesh3D
    fluid: FluidProperties
    px: int
    py: int
    gravity: float = constants.GRAVITY
    dtype: str = "float64"
    plan: FaultPlan | None = None
    #: Die with ``os._exit(KILL_EXIT_CODE)`` when the plan downs one of
    #: our ranks (a *real* crashed process, not a dropped send).
    kill_for_real: bool = False
    #: Completed exchanges to resume from (respawn after a crash).
    start_exchange: int = 0
    #: ``begin_retry`` calls to replay on the first application so a
    #: respawned worker lands past the failure window instead of
    #: re-dying on the same exchange.
    attempt_offset: int = 0
    record_spans: bool = True


def _build_states(spec: WorkerSpec, decomp: BlockDecomposition) -> list[dict]:
    dtype = np.dtype(spec.dtype)
    states = []
    for rank in spec.ranks:
        block = decomp.block(rank)
        local_mesh = decomp.local_mesh(block)
        kernel = FluxKernel(
            local_mesh, spec.fluid, gravity=spec.gravity, dtype=dtype
        )
        states.append(
            {
                "rank": rank,
                "block": block,
                "kernel": kernel,
                "pressure": np.zeros(local_mesh.shape_zyx, dtype),
                "residual": np.zeros(local_mesh.shape_zyx, dtype),
            }
        )
    return states


def _global_to_local(block: Block, x_lo, x_hi, y_lo, y_hi):
    return (
        slice(None),
        slice(y_lo - block.gy0, y_hi - block.gy0),
        slice(x_lo - block.gx0, x_hi - block.gx0),
    )


def _record(recorder: SpanRecorder | None, name: str, start_ns: int,
            end_ns: int, **args) -> None:
    """Append one explicitly-timed span (measured with perf_counter_ns,
    the same system-wide monotonic clock as the parent's recorder)."""
    if recorder is None:
        return
    sp = Span(name, "phase", start_ns, 0)
    sp.duration_ns = end_ns - start_ns
    sp.args.update(args)
    recorder.spans.append(sp)


def worker_main(spec: WorkerSpec, conn) -> None:
    """Process entry point: serve applications until ``("quit",)``.

    Module-level (not a closure) so it pickles under the ``spawn`` start
    method as well as inheriting under ``fork``.
    """
    try:
        _worker_loop(spec, conn)
    except BaseException as exc:  # noqa: BLE001 - report, then die nonzero
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        os._exit(1)


def _worker_loop(spec: WorkerSpec, conn) -> None:
    decomp = BlockDecomposition(spec.mesh, spec.px, spec.py)
    states = _build_states(spec, decomp)
    arena = SharedArena(spec.layout, name=spec.arena_name, create=False)
    my_ranks = set(spec.ranks)
    state_of = {state["rank"]: state for state in states}

    injector = None
    if spec.plan is not None and spec.plan.rank_failures:
        injector = FaultInjector(spec.plan)
        # fast-forward past the exchanges completed before a respawn so
        # exchange-scoped failure windows line up with the global index
        for _ in range(spec.start_exchange):
            injector.begin_exchange()

    comm = ProcComm(
        spec.layout,
        arena,
        ranks=spec.ranks,
        faults=injector,
        start_exchange=spec.start_exchange,
    )
    # canonical halo_links order restricted to this worker's endpoints
    out_links = [lk for lk in spec.layout.links if lk.source in my_ranks]
    in_links = sorted(
        (lk for lk in spec.layout.links if lk.dest in my_ranks),
        key=lambda lk: (lk.dest, lk.tag),
    )

    recorder = SpanRecorder() if spec.record_spans else None
    applications = 0
    pid = os.getpid()

    while True:
        cmd = conn.recv()
        if cmd[0] == "quit":
            break
        if cmd[0] != "run":
            raise RuntimeError(f"unknown worker command {cmd[0]!r}")

        if injector is not None:
            injector.begin_exchange()
            if applications == 0:
                for _ in range(spec.attempt_offset):
                    injector.begin_retry()
            if spec.kill_for_real and any(
                injector.rank_down(r) for r in spec.ranks
            ):
                # a real crash: no reply, no cleanup — the parent's
                # liveness checks must detect and recover
                os._exit(KILL_EXIT_CODE)

        if recorder is not None:
            recorder.clear()
        waited_before = comm.waited_seconds
        t_app0 = time.perf_counter_ns()

        # scatter owned pressure cells from the shared global field
        for state in states:
            block: Block = state["block"]
            ys, xs = block.owned_slices_in_padded()
            state["pressure"][:, ys, xs] = arena.pressure[
                :, block.y0 : block.y1, block.x0 : block.x1
            ]
        t_scatter = time.perf_counter_ns()
        _record(recorder, "par.scatter", t_app0, t_scatter,
                worker=spec.index)

        # halo exchange: all sends for all owned ranks, then all recvs
        for link in out_links:
            state = state_of[link.source]
            strip = state["pressure"][
                _global_to_local(state["block"], link.x_lo, link.x_hi,
                                 link.y_lo, link.y_hi)
            ]
            comm.isend(link.source, link.dest, link.tag, strip)
        for link in in_links:
            state = state_of[link.dest]
            data = comm.recv(link.dest, link.source, link.tag)
            state["pressure"][
                _global_to_local(state["block"], link.x_lo, link.x_hi,
                                 link.y_lo, link.y_hi)
            ] = data
        comm.complete_exchange()
        t_exchange = time.perf_counter_ns()
        exchange_ns = t_exchange - t_scatter
        _record(recorder, "par.exchange", t_scatter, t_exchange,
                worker=spec.index)

        # compute: reference kernel per rank, residual into shared field
        per_rank_ns = {}
        for state in states:
            block = state["block"]
            t_c0 = time.perf_counter_ns()
            state["kernel"].residual(state["pressure"], out=state["residual"])
            ys, xs = block.owned_slices_in_padded()
            arena.residual[
                :, block.y0 : block.y1, block.x0 : block.x1
            ] = state["residual"][:, ys, xs]
            t_c1 = time.perf_counter_ns()
            per_rank_ns[state["rank"]] = {
                "compute_ns": t_c1 - t_c0,
                "exchange_ns": exchange_ns // len(states),
            }
            _record(recorder, "par.compute", t_c0, t_c1,
                    worker=spec.index, rank=state["rank"])

        applications += 1
        payload = {
            "pid": pid,
            "worker": spec.index,
            "ranks": list(spec.ranks),
            "wall_ns": time.perf_counter_ns() - t_app0,
            "waited_seconds": comm.waited_seconds - waited_before,
            "per_rank_ns": {int(r): dict(ns) for r, ns in per_rank_ns.items()},
            "stats": {
                int(r): {
                    "messages_sent": comm.stats[r].messages_sent,
                    "messages_received": comm.stats[r].messages_received,
                    "bytes_sent": comm.stats[r].bytes_sent,
                    "bytes_received": comm.stats[r].bytes_received,
                    "sends_dropped": comm.stats[r].sends_dropped,
                    "retry_waits": comm.stats[r].retry_waits,
                }
                for r in spec.ranks
            },
            "spans": spans_to_payload(recorder) if recorder is not None else [],
        }
        conn.send(("ok", payload))

    arena.close()
    conn.close()
