"""Tests of the roofline models (Fig. 8)."""

import pytest

from repro.perf.roofline import (
    KernelPoint,
    RooflineModel,
    a100_kernel_point,
    a100_roofline,
    cs2_kernel_points,
    cs2_roofline,
)


class TestRooflineModel:
    def test_attainable_bandwidth_bound(self):
        rl = RooflineModel("m", peak_flops=100.0, bandwidths={"mem": 10.0})
        assert rl.attainable(2.0, "mem") == 20.0

    def test_attainable_compute_bound(self):
        rl = RooflineModel("m", peak_flops=100.0, bandwidths={"mem": 10.0})
        assert rl.attainable(50.0, "mem") == 100.0

    def test_ridge_point(self):
        rl = RooflineModel("m", peak_flops=100.0, bandwidths={"mem": 10.0})
        assert rl.ridge_point("mem") == 10.0
        assert rl.is_compute_bound(10.0, "mem")
        assert not rl.is_compute_bound(9.9, "mem")

    def test_rejects_nonpositive_ai(self):
        rl = RooflineModel("m", peak_flops=1.0, bandwidths={"mem": 1.0})
        with pytest.raises(ValueError):
            rl.attainable(0.0, "mem")

    def test_efficiency(self):
        rl = RooflineModel("m", peak_flops=100.0, bandwidths={"mem": 10.0})
        pt = KernelPoint("k", "mem", 2.0, achieved_flops=10.0)
        assert rl.efficiency(pt) == pytest.approx(0.5)


class TestCs2Roofline:
    def test_kernel_achieves_311_tflops(self):
        mem_pt, fabric_pt = cs2_kernel_points()
        assert mem_pt.achieved_flops == pytest.approx(311.85e12, rel=1e-3)
        assert fabric_pt.achieved_flops == mem_pt.achieved_flops

    def test_arithmetic_intensities(self):
        mem_pt, fabric_pt = cs2_kernel_points()
        assert mem_pt.arithmetic_intensity == pytest.approx(0.0862, abs=5e-5)
        assert fabric_pt.arithmetic_intensity == pytest.approx(2.1875)

    def test_memory_bandwidth_bound(self):
        """The paper: bandwidth-bound for memory access."""
        rl = cs2_roofline()
        mem_pt, _ = cs2_kernel_points()
        assert not rl.is_compute_bound(mem_pt.arithmetic_intensity, "memory")
        # sitting exactly on the slope: efficiency 1 by calibration
        assert rl.efficiency(mem_pt) == pytest.approx(1.0)

    def test_fabric_compute_bound(self):
        """The paper: compute-bound for fabric access."""
        rl = cs2_roofline()
        _, fabric_pt = cs2_kernel_points()
        assert rl.is_compute_bound(fabric_pt.arithmetic_intensity, "fabric")

    def test_memory_balance_matches_paper(self):
        """Ridge at 0.0892 FLOP/Byte — 'nearly compute-bound'."""
        rl = cs2_roofline()
        assert rl.ridge_point("memory") == pytest.approx(0.0892)
        mem_pt, _ = cs2_kernel_points()
        # the kernel AI is close to, but below, the balance point
        assert 0.9 < mem_pt.arithmetic_intensity / rl.ridge_point("memory") < 1.0


class TestA100Roofline:
    def test_kernel_point(self):
        pt = a100_kernel_point()
        assert pt.arithmetic_intensity == 2.11
        assert pt.achieved_flops == 6012e9

    def test_memory_bound_at_76_percent(self):
        """The paper: memory-bound at 76% of attainable."""
        rl = a100_roofline()
        pt = a100_kernel_point()
        assert not rl.is_compute_bound(pt.arithmetic_intensity, "l2")
        assert rl.efficiency(pt) == pytest.approx(0.76)

    def test_hbm_ceiling_present(self):
        rl = a100_roofline()
        assert rl.bandwidths["hbm"] == pytest.approx(1555e9)
        assert rl.bandwidths["l2"] > rl.bandwidths["hbm"]

    def test_peak_is_fp32(self):
        assert a100_roofline().peak_flops == pytest.approx(19.5e12)


class TestCrossMachine:
    def test_cs2_kernel_beats_a100_kernel(self):
        """The 311.85 TFLOPS vs 6012 GFLOPS contrast of Fig. 8."""
        mem_pt, _ = cs2_kernel_points()
        a_pt = a100_kernel_point()
        assert mem_pt.achieved_flops / a_pt.achieved_flops > 50
