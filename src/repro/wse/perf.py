"""WSE-2 cost model: clocks, link rates, power.

Every quantity used by the discrete-event runtime to turn instruction and
traffic counts into cycles/seconds lives here, so calibration is explicit
and testable.  Values marked *calibrated* are fitted to the paper's own
measurements (DESIGN.md Sec. 6); the rest are WSE-2 hardware parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WsePerfModel", "WSE2"]


@dataclass(frozen=True)
class WsePerfModel:
    """Cycle/energy cost model of a WSE-2 class fabric.

    Attributes
    ----------
    clock_hz:
        PE and fabric clock (WSE-2: 850 MHz).
    link_words_per_cycle:
        Throughput of each directed router-router link (32-bit words per
        cycle; the fabric moves one packet per link per cycle, Sec. 4).
    hop_latency_cycles:
        Router traversal latency per hop.
    injection_overhead_cycles:
        Fixed cost for a PE to start an asynchronous send (descriptor
        setup); small because "the fabric and routers work completely
        independently from the processing elements" (Sec. 5.3.2).
    steady_state_power_w:
        Whole-system power at steady state (23 kW, Sec. 7.2, from [11]).
    """

    clock_hz: float = 850e6
    link_words_per_cycle: float = 1.0
    hop_latency_cycles: float = 1.0
    injection_overhead_cycles: float = 2.0
    steady_state_power_w: float = 23_000.0

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to wall-clock seconds."""
        return cycles / self.clock_hz

    def transfer_cycles(self, num_words: int) -> float:
        """Serialization time of a wavelet train over one link."""
        return num_words / self.link_words_per_cycle

    def energy_joules(self, seconds: float) -> float:
        """Energy at steady-state power."""
        return self.steady_state_power_w * seconds


#: Default WSE-2 model.
WSE2 = WsePerfModel()
