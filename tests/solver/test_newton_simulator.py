"""Tests for Newton's method and the implicit flow simulator."""

import numpy as np
import pytest

from repro.core import (
    CartesianMesh3D,
    FluidProperties,
    hydrostatic_pressure,
)
from repro.solver import (
    FlowResidual,
    SinglePhaseFlowSimulator,
    Well,
    newton_solve,
)
from repro.workloads import make_geomodel


class TestNewton:
    def test_steady_state_converges_in_zero_iterations(self, fluid):
        mesh = CartesianMesh3D(4, 4, 2)
        res = FlowResidual(mesh, fluid, dt=100.0, gravity=0.0)
        p = mesh.full(1.5e7)
        result = newton_solve(res, p)
        assert result.converged
        assert result.iterations == 0

    def test_relaxation_to_equilibrium(self, fluid):
        """A perturbed field relaxes: Newton converges each step and the
        pressure spread shrinks."""
        mesh = CartesianMesh3D(5, 5, 3)
        res = FlowResidual(mesh, fluid, dt=3600.0, gravity=0.0)
        rng = np.random.default_rng(0)
        p0 = 1.5e7 + 1e5 * rng.standard_normal(mesh.shape_zyx)
        result = newton_solve(res, p0)
        assert result.converged
        assert result.pressure.std() < p0.std()

    def test_residual_history_decreases(self, fluid):
        mesh = CartesianMesh3D(4, 4, 2)
        res = FlowResidual(mesh, fluid, dt=3600.0, gravity=0.0)
        rng = np.random.default_rng(1)
        p0 = 1.5e7 + 5e5 * rng.standard_normal(mesh.shape_zyx)
        result = newton_solve(res, p0)
        assert result.converged
        assert result.residual_history[-1] < result.residual_history[0]
        assert result.linear_iterations > 0

    def test_source_raises_pressure(self, fluid):
        mesh = CartesianMesh3D(5, 5, 2)
        src = mesh.zeros()
        src[1, 2, 2] = 3.0
        res = FlowResidual(mesh, fluid, dt=3600.0, gravity=0.0, source=src)
        p0 = mesh.full(1.5e7)
        result = newton_solve(res, p0)
        assert result.converged
        assert result.pressure.mean() > 1.5e7
        # pressure peaks at the injector
        peak = np.unravel_index(np.argmax(result.pressure), mesh.shape_zyx)
        assert peak == (1, 2, 2)

    def test_gravity_equilibration(self, fluid):
        """Starting uniform with gravity, the solve moves toward a
        hydrostatic-like vertical gradient (pressure decreasing upward)."""
        mesh = CartesianMesh3D(3, 3, 6)
        res = FlowResidual(mesh, fluid, dt=1e7)
        p0 = mesh.full(1.5e7)
        result = newton_solve(res, p0)
        assert result.converged
        column = result.pressure[:, 1, 1]
        assert np.all(np.diff(column) < 0)


class TestSimulator:
    def test_mass_conservation_with_injection(self, fluid):
        """Injected mass == mass-in-place change (global balance)."""
        mesh = make_geomodel(6, 6, 3, kind="layered", seed=2)
        sim = SinglePhaseFlowSimulator(
            mesh, fluid, wells=[Well(3, 3, 1, rate=4.0)], gravity=0.0
        )
        m0 = sim.mass_in_place()
        sim.run(num_steps=4, dt=7200.0, rtol=1e-10)
        injected = 4.0 * 4 * 7200.0
        assert sim.mass_in_place() - m0 == pytest.approx(injected, rel=1e-6)

    def test_no_wells_conserves_mass(self, fluid):
        mesh = CartesianMesh3D(4, 4, 3)
        rng = np.random.default_rng(3)
        p0 = 1.5e7 + 1e5 * rng.standard_normal(mesh.shape_zyx)
        sim = SinglePhaseFlowSimulator(
            mesh, fluid, gravity=0.0, initial_pressure=p0
        )
        m0 = sim.mass_in_place()
        sim.run(num_steps=3, dt=3600.0, rtol=1e-10)
        assert sim.mass_in_place() == pytest.approx(m0, rel=1e-10)

    def test_production_reduces_pressure(self, fluid):
        mesh = CartesianMesh3D(5, 5, 2)
        sim = SinglePhaseFlowSimulator(
            mesh, fluid, wells=[Well(2, 2, 0, rate=-2.0)], gravity=0.0
        )
        p0 = sim.pressure.mean()
        sim.run(num_steps=2, dt=3600.0)
        assert sim.pressure.mean() < p0

    def test_reports_accumulate(self, fluid):
        mesh = CartesianMesh3D(4, 4, 2)
        sim = SinglePhaseFlowSimulator(
            mesh, fluid, wells=[Well(1, 1, 0, rate=1.0)], gravity=0.0
        )
        reports = sim.run(num_steps=3, dt=100.0)
        assert [r.time for r in reports] == pytest.approx([100.0, 200.0, 300.0])
        assert sim.reports == reports
        assert all(r.newton.converged for r in reports)

    def test_hydrostatic_initial_state_is_stable(self, fluid):
        mesh = CartesianMesh3D(4, 4, 5)
        p0 = hydrostatic_pressure(mesh, fluid)
        sim = SinglePhaseFlowSimulator(mesh, fluid, initial_pressure=p0)
        sim.step(dt=3600.0)
        # near-equilibrium: pressure changes stay tiny
        assert np.abs(sim.pressure - p0).max() < 1e-2 * np.abs(p0).max()

    def test_injected_rate_property(self, fluid):
        mesh = CartesianMesh3D(4, 4, 2)
        sim = SinglePhaseFlowSimulator(
            mesh,
            fluid,
            wells=[Well(0, 0, 0, rate=2.0), Well(3, 3, 1, rate=-0.5)],
        )
        assert sim.injected_rate == pytest.approx(1.5)

    def test_rejects_bad_num_steps(self, fluid):
        sim = SinglePhaseFlowSimulator(CartesianMesh3D(2, 2, 2), fluid)
        with pytest.raises(ValueError):
            sim.run(num_steps=0, dt=1.0)

    def test_well_outside_mesh_rejected(self, fluid):
        mesh = CartesianMesh3D(3, 3, 2)
        with pytest.raises(IndexError):
            SinglePhaseFlowSimulator(mesh, fluid, wells=[Well(5, 0, 0, rate=1.0)])

    def test_heterogeneous_channelized_case_converges(self, fluid):
        """Strong transmissibility contrasts: the solver still converges."""
        mesh = make_geomodel(8, 8, 3, kind="channelized", seed=4)
        sim = SinglePhaseFlowSimulator(
            mesh, fluid, wells=[Well(4, 4, 1, rate=2.0)], gravity=0.0
        )
        report = sim.step(dt=3600.0)
        assert report.newton.converged
