"""Unit tests for fabric messages."""

import numpy as np
import pytest

from repro.wse.packet import KIND_CONTROL, KIND_DATA, WORD_BYTES, Message


class TestDataMessages:
    def test_float32_word_count(self):
        msg = Message(color=1, payload=np.zeros(10, dtype=np.float32))
        assert msg.num_words == 10
        assert msg.num_bytes == 40

    def test_float64_counts_double(self):
        msg = Message(color=1, payload=np.zeros(10, dtype=np.float64))
        assert msg.num_words == 20

    def test_scalar_payload_promoted(self):
        msg = Message(color=0, payload=np.float32(3.5))
        assert msg.payload.shape == (1,)
        assert msg.num_words == 1

    def test_requires_payload(self):
        with pytest.raises(ValueError, match="payload"):
            Message(color=0, payload=None, kind=KIND_DATA)

    def test_rejects_2d_payload(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            Message(color=0, payload=np.zeros((2, 3)))

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            Message(color=0, payload=np.zeros(1), kind="telepathy")


class TestControlMessages:
    def test_single_word(self):
        msg = Message(color=2, kind=KIND_CONTROL)
        assert msg.num_words == 1
        assert msg.num_bytes == WORD_BYTES

    def test_rejects_payload(self):
        with pytest.raises(ValueError, match="control"):
            Message(color=2, payload=np.zeros(3), kind=KIND_CONTROL)


class TestFork:
    def test_shares_payload(self):
        payload = np.arange(4, dtype=np.float32)
        msg = Message(color=3, payload=payload, source=(1, 2))
        copy = msg.fork()
        assert copy.payload is msg.payload
        assert copy.color == 3
        assert copy.source == (1, 2)

    def test_meta_independent(self):
        msg = Message(color=3, payload=np.zeros(1), meta={"k": 1})
        copy = msg.fork()
        copy.meta["k"] = 2
        assert msg.meta["k"] == 1

    def test_hops_carried(self):
        msg = Message(color=3, payload=np.zeros(1))
        msg.hops = 2
        assert msg.fork().hops == 2
