"""Tests for the pseudo-CSL program listing."""

import numpy as np
import pytest

from repro.core import CartesianMesh3D, FluidProperties
from repro.dataflow.codegen import generate_listing
from repro.dataflow.program import FluxProgram


@pytest.fixture(scope="module")
def program():
    return FluxProgram(CartesianMesh3D(4, 4, 6), FluidProperties())


@pytest.fixture(scope="module")
def listing(program):
    return generate_listing(program)


class TestListing:
    def test_declares_all_colors(self, program, listing):
        for name in program.colors.names():
            cid = program.colors.lookup(name)
            assert f"const {name}: color = @get_color({cid});" in listing

    def test_mentions_all_twelve_channels(self, listing):
        for name in (
            "card_east", "card_west", "card_north", "card_south",
            "diag_se", "diag_sw", "diag_nw", "diag_ne",
        ):
            assert name in listing

    def test_memory_map_matches_scratchpad(self, program, listing):
        pe = program.fabric.pe(0, 0)
        for name in pe.memory.names():
            alloc = pe.memory.get(name)
            assert name in listing
            assert f"@ offset {alloc.offset}" in listing
        assert f"high water: {pe.memory.high_water}" in listing

    def test_flux_sequence_has_fourteen_ops(self, listing):
        """The rendered kernel body shows the Table-4 instruction mix."""
        body = listing.split("fn flux_face")[1]
        assert body.count("@fmuls") == 6
        assert body.count("@fsubs") == 4
        assert body.count("@fadds") == 1
        assert body.count("@fmacs") == 1
        assert body.count("@fnegs") == 1
        assert body.count("@select") == 1

    def test_router_roles_rendered(self, listing):
        assert "seed edge" in listing
        assert "two-hop route" in listing
        assert "RAMP -> {EAST}" in listing

    def test_options_reflected(self):
        prog = FluxProgram(
            CartesianMesh3D(3, 3, 2),
            FluidProperties(),
            compute_fluxes=False,
            dtype=np.float64,
        )
        text = generate_listing(prog)
        assert "compute_fluxes=False" in text
        assert "dtype float64" in text
        # comm-only: no flux_face call inside the receive tasks' bodies
        tasks = text.split("fn flux_face")[0]
        assert "flux_face(trans_" not in tasks

    def test_deterministic(self, program):
        assert generate_listing(program) == generate_listing(program)

    def test_tasks_for_every_channel(self, listing):
        for name in ("card_east", "diag_ne"):
            assert f"task recv_{name}()" in listing
        for name in ("card_east", "card_north"):
            assert f"task ctrl_{name}()" in listing
