#!/usr/bin/env python
"""Trace the fabric protocol: Figs. 5-6 as an executable timeline.

Runs one application of Algorithm 1 on a tiny 3x3 fabric with event
tracing enabled and prints, per delivery, when each PE received which
neighbour's column over which channel — making the two-step cardinal
switch protocol and the two-hop diagonal flows visible.

Tracing goes through :class:`repro.obs.TraceSink`: aggregates (per-color
counters, hop histograms, the link heatmap) are streaming and O(1) per
event, while the ring buffer retains the most recent deliveries for
timelines like this one.  On a 3x3 fabric a small ``trace_capacity``
keeps every delivery; at benchmark scale the default capacity bounds
memory while the aggregates still cover the whole run.

Run:  python examples/communication_trace.py
"""

import numpy as np

from repro.core import CartesianMesh3D, FluidProperties, random_pressure
from repro.dataflow import WseFluxComputation
from repro.dataflow.cardinal import CARDINAL_CHANNELS
from repro.dataflow.diagonal import DIAGONAL_CHANNELS
from repro.obs import render_heatmap


def main() -> None:
    mesh = CartesianMesh3D(3, 3, 4)
    fluid = FluidProperties()
    # 4096 >> the ~150 deliveries of one 3x3 application, so the ring
    # retains the complete timeline (the aggregates would be exact
    # regardless of capacity).
    wse = WseFluxComputation(
        mesh, fluid, dtype=np.float32, trace=True, trace_capacity=4096
    )
    pressure = random_pressure(mesh, seed=0)

    color_names = {}
    for ch in CARDINAL_CHANNELS:
        color_names[wse.program.colors.lookup(ch.name)] = (ch.name, ch.delivers.name)
    for ch in DIAGONAL_CHANNELS:
        color_names[wse.program.colors.lookup(ch.name)] = (ch.name, ch.delivers.name)

    result = wse.run_single(pressure)
    sink = wse.trace_sink

    print("fabric 3x3, Z column depth 4 — one application of Algorithm 1")
    print(f"{result.stats.messages_injected} messages injected, "
          f"{result.stats.messages_delivered} delivered, "
          f"{result.stats.messages_dropped_offchip} dropped off-chip "
          f"(boundary), max hops {result.stats.max_hops_seen}")
    print()
    print(f"{'cycle':>8}  {'PE':>6}  {'channel':<11} {'kind':<8} "
          f"{'from PE':>8}  {'hops':>4}  delivers")
    for rec in sink.timeline():
        msg = rec.message
        name, delivers = color_names[msg.color]
        payload = (
            f"{delivers} neighbour data" if msg.kind == "data"
            else "switch command"
        )
        print(f"{rec.time:8.1f}  {str(rec.coord):>6}  {name:<11} "
              f"{msg.kind:<8} {str(msg.source):>8}  {msg.hops:>4}  {payload}")
    print()

    centre = wse.program.fabric.pe(1, 1)
    print(f"centre PE (1,1): received {centre.messages_received} messages "
          f"({centre.words_received} words) — 4 cardinal + 4 diagonal")
    print()
    print("streaming aggregates (exact at any ring capacity):")
    hops = sink.hop_histogram()
    print(f" * hop histogram: " + ", ".join(
        f"{h} hop{'s' if h != 1 else ''}: {n} messages"
        for h, n in sorted(hops.items())))
    print(render_heatmap(sink, 3, 3))
    print()
    print("observations:")
    print(" * cardinal data arrives in two waves (Sending/Receiving roles")
    print("   alternate via the control wavelets, Fig. 6b);")
    print(" * every diagonal train shows hops=2: source -> intermediary ->")
    print("   target, the rotating clockwise schedule of Fig. 5;")
    print(" * flux computations run on arrival — communication overlaps")
    print("   compute (Sec. 5.3.2).")


if __name__ == "__main__":
    main()
