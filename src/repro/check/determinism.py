"""Determinism lint: AST pass protecting the bit-identical guarantees.

The cross-validation suite asserts bit-identical residuals between
backends, which only holds while summation order, RNG streams, and
control flow are reproducible.  Three rule families, tuned to stay
green over ``src/repro`` so CI can gate on zero ERROR findings:

``det-set-iter``
    Iterating a ``set``/``frozenset`` expression (literal, call, or
    comprehension) in a ``for`` loop whose body accumulates (``+=`` or
    an in-place arithmetic call): set order is unspecified across
    processes, so float accumulation over it is run-dependent.  ERROR
    when the body accumulates; WARNING for bare iteration (order still
    leaks into event/summation order downstream).
``det-unseeded-rng``
    Module-level ``random.<fn>()`` convenience calls, legacy global
    ``np.random.<fn>()`` draws, and ``np.random.default_rng()`` with no
    seed argument.  All draw from hidden global (or OS-entropy) state;
    deterministic code must thread an explicitly seeded generator.
``det-time-control``
    Wall-clock reads (``time.time``, ``perf_counter``, ``monotonic``,
    ``datetime.now``, ...) inside an ``if``/``while`` condition: the
    branch taken then depends on host speed, which is exactly how
    "works on my machine" hot-path divergence starts.  Timing for
    *measurement* (spans, benchmarks) is untouched.

A trailing ``# det: allow`` comment on the offending line suppresses
the finding (used where non-determinism is deliberate and contained).
The cross-family ``# check: allow[RULE]`` pragma (by stable rule ID or
kebab-case code — see :data:`repro.check.findings.RULE_IDS`) works here
too and is the only form the concurrency lint honours.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.check.findings import Finding, Severity, suppresses

__all__ = ["lint_source", "lint_file", "lint_paths"]

#: ``random.<fn>`` module-level conveniences that use the hidden global
#: Mersenne Twister.  ``random.Random(seed)`` is explicitly fine.
_UNSEEDED_RANDOM = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
        "getrandbits",
        "randbytes",
        "triangular",
    }
)

#: Legacy ``np.random.<fn>`` draws against the global ``RandomState``.
_UNSEEDED_NP_RANDOM = frozenset(
    {
        "rand",
        "randn",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "randint",
        "normal",
        "uniform",
        "standard_normal",
        "choice",
        "shuffle",
        "permutation",
        "exponential",
        "lognormal",
        "poisson",
        "beta",
        "gamma",
        "binomial",
    }
)

#: Wall-clock reads that make control flow host-speed-dependent.
_CLOCK_CALLS = frozenset(
    {
        ("time", "time"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "process_time"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
    }
)


def _dotted(node: ast.AST) -> tuple[str, ...]:
    """``a.b.c`` attribute chain as a name tuple (empty when dynamic)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = _dotted(node.func)
        return chain[-1:] in (("set",), ("frozenset",)) and len(chain) == 1
    return False


def _accumulates(body: list[ast.stmt]) -> bool:
    """Does the loop body fold values in place (``+=`` and friends)?"""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub, ast.Mult)
            ):
                return True
    return False


class _Linter(ast.NodeVisitor):
    def __init__(self, filename: str, source_lines: list[str]) -> None:
        self.filename = filename
        self.lines = source_lines
        self.findings: list[Finding] = []
        self._control_depth = 0

    # ------------------------------------------------------------------ #
    def _suppressed(self, lineno: int, code: str) -> bool:
        if 1 <= lineno <= len(self.lines):
            return suppresses(self.lines[lineno - 1], code)
        return False

    def _emit(
        self, code: str, severity: Severity, message: str, node: ast.AST, detail: str = ""
    ) -> None:
        if self._suppressed(node.lineno, code):
            return
        self.findings.append(
            Finding(
                code=code,
                severity=severity,
                message=message,
                file=self.filename,
                line=node.lineno,
                detail=detail,
            )
        )

    # ------------------------------------------------------------------ #
    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            if _accumulates(node.body):
                self._emit(
                    "det-set-iter",
                    Severity.ERROR,
                    "accumulation over a set expression: iteration order "
                    "is unspecified, so the folded result is run-dependent",
                    node,
                    detail="sort the elements (or use an ordered container)",
                )
            else:
                self._emit(
                    "det-set-iter",
                    Severity.WARNING,
                    "iteration over a set expression: order is unspecified",
                    node,
                    detail="sort before iterating if order can reach results",
                )
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    def _check_call(self, node: ast.Call) -> None:
        chain = _dotted(node.func)
        if len(chain) < 2:
            return
        head, tail = chain[0], chain[-1]
        module_ish = chain[:-1]
        if module_ish == ("random",) and tail in _UNSEEDED_RANDOM:
            self._emit(
                "det-unseeded-rng",
                Severity.ERROR,
                f"random.{tail}() draws from the hidden global RNG",
                node,
                detail="thread a random.Random(seed) instance instead",
            )
        elif (
            head in ("np", "numpy")
            and "random" in module_ish
            and tail in _UNSEEDED_NP_RANDOM
        ):
            self._emit(
                "det-unseeded-rng",
                Severity.ERROR,
                f"np.random.{tail}() draws from the legacy global RandomState",
                node,
                detail="use np.random.default_rng(seed)",
            )
        elif tail == "default_rng" and not node.args and not node.keywords:
            self._emit(
                "det-unseeded-rng",
                Severity.ERROR,
                "default_rng() without a seed pulls OS entropy",
                node,
                detail="pass an explicit seed",
            )
        if self._control_depth and chain[-2:] and tuple(chain[-2:]) in _CLOCK_CALLS:
            self._emit(
                "det-time-control",
                Severity.ERROR,
                f"wall-clock read {'.'.join(chain)}() inside a control-flow "
                "condition: the branch taken depends on host speed",
                node,
                detail="gate on logical progress (counters, budgets) instead",
            )

    def visit_Call(self, node: ast.Call) -> None:
        self._check_call(node)
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    def _visit_test(self, test: ast.expr) -> None:
        self._control_depth += 1
        self.visit(test)
        self._control_depth -= 1

    def visit_If(self, node: ast.If) -> None:
        self._visit_test(node.test)
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_While(self, node: ast.While) -> None:
        self._visit_test(node.test)
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)


def lint_source(source: str, filename: str = "<string>") -> list[Finding]:
    """Lint one source string; returns findings (never raises on clean
    parseable input).  A syntax error is itself an ERROR finding."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as err:
        return [
            Finding(
                code="det-parse",
                severity=Severity.ERROR,
                message=f"cannot parse: {err.msg}",
                file=filename,
                line=err.lineno or 0,
            )
        ]
    linter = _Linter(filename, source.splitlines())
    linter.visit(tree)
    return sorted(linter.findings, key=lambda f: (f.file or "", f.line or 0))


def lint_file(path: Path | str) -> list[Finding]:
    path = Path(path)
    return lint_source(path.read_text(), filename=str(path))


def lint_paths(root: Path | str) -> list[Finding]:
    """Lint every ``.py`` file under *root* (or the single file *root*)."""
    root = Path(root)
    files = [root] if root.is_file() else sorted(root.rglob("*.py"))
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path))
    return findings
