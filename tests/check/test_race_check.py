"""`repro check --race` orchestration: green path, drill, CLI selection."""

import io
import json

from repro.check import (
    MUTATIONS,
    ModelConfig,
    drill_findings,
    mutation_drill,
    run_race_checks,
)
from repro.check.findings import Severity
from repro.cli import main


class TestRunRaceChecks:
    def test_healthy_tree_yields_zero_findings_everywhere(self):
        reports = run_race_checks()
        assert len(reports) == 4  # two model bounds + lint + hb probe
        for report in reports:
            assert report.ok, report.render()
            assert report.findings == [], report.render()

    def test_subjects_name_their_verifier(self):
        subjects = [r.subject for r in run_race_checks()]
        assert sum(s.startswith("race model:") for s in subjects) == 2
        assert any(s.startswith("race lint:") for s in subjects)
        assert any(s.startswith("race hb:") for s in subjects)

    def test_verifiers_are_individually_selectable(self):
        assert [
            r.subject.split(":")[0] for r in run_race_checks(model=False, hb=False)
        ] == ["race lint"]


class TestMutationDrill:
    def test_drill_covers_every_mutation(self):
        results = mutation_drill()
        assert set(results) == set(MUTATIONS)
        for mutation, result in results.items():
            assert result.violation is not None, mutation

    def test_drill_findings_are_all_info_on_a_healthy_checker(self):
        report = drill_findings()
        assert report.ok, report.render()
        assert len(report.findings) == len(MUTATIONS)
        assert all(f.severity == Severity.INFO for f in report.findings)
        assert all("replayable witness" in f.message for f in report.findings)

    def test_drill_accepts_custom_bounds(self):
        report = drill_findings(ModelConfig(workers=2, exchanges=2))
        assert report.ok, report.render()


class TestCliRace:
    def test_check_race_passes(self, tmp_path):
        out = io.StringIO()
        json_path = tmp_path / "race.json"
        code = main(["check", "--race", "--json", str(json_path)], out=out)
        assert code == 0
        assert "CHECK PASSED" in out.getvalue()
        doc = json.loads(json_path.read_text())
        assert doc["ok"] is True
        assert len(doc["subjects"]) == 4

    def test_check_race_drill_reports_each_mutation(self):
        out = io.StringIO()
        code = main(["check", "--race-drill"], out=out)
        assert code == 0
        text = out.getvalue()
        for mutation in MUTATIONS:
            assert mutation in text

    def test_only_restricts_the_analyzer_set(self):
        out = io.StringIO()
        code = main(["check", "--race", "--only", "race-lint"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "race lint" in text
        assert "race model" not in text

    def test_skip_drops_an_analyzer(self):
        out = io.StringIO()
        code = main(
            ["check", "--race", "--skip", "race-hb,race-model"], out=out
        )
        assert code == 0
        text = out.getvalue()
        assert "race lint" in text
        assert "race hb" not in text

    def test_unknown_analyzer_is_usage_error_listing_valid_names(self, capsys):
        code = main(["check", "--only", "bogus,deadlock"], out=io.StringIO())
        assert code == 2
        err = capsys.readouterr().err
        assert "bogus" in err
        assert "race-model" in err and "deadlock" in err

    def test_unknown_skip_is_usage_error(self, capsys):
        code = main(["check", "--skip", "nonsense"], out=io.StringIO())
        assert code == 2
        assert "nonsense" in capsys.readouterr().err

    def test_only_applies_to_fabric_analyzers_too(self):
        out = io.StringIO()
        code = main(
            ["check", "--nx", "5", "--ny", "4", "--nz", "3",
             "--only", "memory"],
            out=out,
        )
        assert code == 0
        # route/boundary INFO findings come from the skipped analyzers
        assert "offchip-exit" not in out.getvalue()
