"""The fused backend: whole-array execution of the IR's per-color rounds.

This is the raw-speed ceiling for pure Python: instead of simulating one
message at a time (event) or one communication phase per application
(lockstep), the fused backend batches *all* applications of a run along
a leading axis and executes each per-color communication round as one
whole-array NumPy kernel call — the ufunc count is independent of the
number of applications.

Bit-identity with the event backend (same conform fold class) comes from
two properties:

* Every kernel call issues exactly the element-wise operations of
  :func:`~repro.dataflow.flux_pe.compute_face_flux_column` on the same
  values — element-wise ufuncs over a batched array produce the same
  bits per element as per-column calls.  X-Y faces pass the *same*
  elevation view twice, taking the kernel's collapsed branch exactly
  like the event backend's receive task does.
* Per-connection contributions are first materialized into full-shape
  arrays, then folded into the residual **in the event backend's per-PE
  arrival order** (the IR's probed fold schedule,
  :mod:`repro.ir.schedule`): round ``k`` adds, for each connection, the
  contribution of every PE whose ``k``-th arrival is that connection.
  Each PE appears at most once per round, so its residual sees its
  contributions in exactly its arrival order.  The one rewrite — the
  contribution array holds ``0.0 + f`` rather than ``f`` — only flips
  the sign of zero contributions, and a residual accumulated from
  ``+0.0`` can never be ``-0.0``, so the flipped bit is unobservable
  (same argument as the kernel's collapsed branch).

Fabric traffic is accounted arithmetically from the IR's exchange plan
(2·nz words per face, 1 hop cardinal / 2 hops diagonal) — no halo
copies are performed, which is also where the throughput win over the
lockstep simulator comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.core import constants
from repro.core.fluid import FluidProperties
from repro.core.mesh import CartesianMesh3D
from repro.core.stencil import Connection, interior_slices
from repro.core.transmissibility import Transmissibility
from repro.dataflow.flux_pe import (
    FluxScratch,
    compute_face_flux_column,
    evaluate_density_column,
)
from repro.dataflow.program import padded_trans_fields
from repro.ir.builder import derive_ir
from repro.ir.schema import KIND_PROGRAM, FabricProgramIR
from repro.ir.schedule import arrival_schedule
from repro.obs.spans import span
from repro.wse.dsd import DsdEngine

__all__ = ["FusedFluxComputation", "FusedReport", "FusedRunResult"]


@dataclass
class FusedReport:
    """Aggregate accounting of a fused run (lockstep-report shape plus
    the IR-build and schedule-probe startup costs)."""

    applications: int
    instruction_counts: dict[str, int]
    flops: int
    fabric_words_received: int
    fabric_word_hops: int
    compute_cycles: float
    ir_build_seconds: float
    schedule_seconds: float

    def as_metrics(self) -> dict:
        return {
            "applications": self.applications,
            "instruction_counts": dict(self.instruction_counts),
            "flops": self.flops,
            "fabric_words_received": self.fabric_words_received,
            "fabric_word_hops": self.fabric_word_hops,
            "compute_cycles": self.compute_cycles,
            "ir_build_seconds": self.ir_build_seconds,
            "schedule_seconds": self.schedule_seconds,
        }


@dataclass
class FusedRunResult:
    """Result of one fused run."""

    residual: np.ndarray
    applications: int
    elapsed_seconds: float
    cells: int
    residuals: list | None = None

    @property
    def throughput_cells_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.cells * self.applications / self.elapsed_seconds


class FusedFluxComputation:
    """IR-lowered whole-array flux computation.

    Parameters mirror :class:`~repro.dataflow.driver.WseFluxComputation`
    where applicable.  Pass ``ir=`` to lower an existing
    :class:`FabricProgramIR`; otherwise the IR is derived from the mesh
    and parameters at construction (``ir_build_seconds`` on the report).
    """

    def __init__(
        self,
        mesh: CartesianMesh3D,
        fluid: FluidProperties,
        trans: Transmissibility | None = None,
        *,
        gravity: float = constants.GRAVITY,
        dtype=np.float32,
        reuse_buffers: bool = True,
        vectorized: bool = True,
        compute_fluxes: bool = True,
        overlap_compute: bool = True,
        record=None,
        ir: FabricProgramIR | None = None,
    ) -> None:
        self.mesh = mesh
        self.fluid = fluid
        self.dtype = np.dtype(dtype)
        self.compute_fluxes = bool(compute_fluxes)
        self.record = record

        t0 = perf_counter()
        if ir is None:
            ir = derive_ir(
                mesh,
                dtype=self.dtype,
                reuse_buffers=reuse_buffers,
                vectorized=vectorized,
                compute_fluxes=compute_fluxes,
                overlap_compute=overlap_compute,
            )
        self.ir_build_seconds = perf_counter() - t0
        _check_ir_lowerable(ir, mesh, self.dtype)
        self.ir = ir
        params = ir.params
        self._reuse_buffers = params["reuse_buffers"]
        self._overlap_compute = params["overlap_compute"]
        self._vectorized = ir.vectorized
        self.compute_fluxes = params["compute_fluxes"]

        if trans is None:
            trans = Transmissibility(mesh, dtype=self.dtype)
        elif trans.mesh is not mesh:
            raise ValueError("trans was built for a different mesh")
        self.trans_fields = padded_trans_fields(mesh, trans, self.dtype)
        self.engine = DsdEngine(vectorized=self._vectorized)
        self._elev = np.ascontiguousarray(mesh.elevation, dtype=self.dtype)
        _scalar = self.dtype.type
        self._inv_viscosity = _scalar(1.0 / fluid.viscosity)
        self._gravity = _scalar(gravity)
        self._words_per_element = max(1, self.dtype.itemsize // 4)
        self._applications = 0
        self._fabric_loads = 0
        self._fabric_word_hops = 0

        # the probed fold schedule is a derived annotation: it amortizes
        # like a backend compile step and stays out of the content hash
        t1 = perf_counter()
        schedule = arrival_schedule(
            mesh.nx,
            mesh.ny,
            reuse_buffers=self._reuse_buffers,
            overlap_compute=self._overlap_compute,
            vectorized=self._vectorized,
        )
        self._rounds = _fold_rounds(schedule)
        self.schedule_seconds = perf_counter() - t1
        ir.annotate(
            "fold_schedule",
            {f"{x},{y}": list(order) for (x, y), order in sorted(schedule.items())},
        )

    # ------------------------------------------------------------------ #
    def run(self, pressures, *, keep_all: bool = False) -> FusedRunResult:
        """Run one application per pressure field, batched."""
        fields = list(pressures)
        if not fields:
            raise ValueError("no pressure fields supplied")
        mesh = self.mesh
        for field in fields:
            mesh.validate_field(field, name="pressure")
        started = perf_counter()
        batch = len(fields)
        shape = mesh.shape_zyx
        nz, ny, nx = shape
        engine = self.engine

        with span("fused.run", backend="fused", applications=batch):
            p = np.empty((batch,) + shape, self.dtype)
            for i, field in enumerate(fields):
                p[i] = field  # cast, exactly like load_pressure
            rho = np.empty_like(p)
            residual = np.zeros_like(p)
            scratch_full = tuple(
                np.zeros((batch,) + shape, self.dtype) for _ in range(4)
            )

            def scratch_for(index):
                a, b, c, d = scratch_full
                return FluxScratch(a[index], b[index], c[index], d[index])

            with span("fused.local"):
                evaluate_density_column(
                    engine,
                    p,
                    rho,
                    compressibility=self.fluid.compressibility,
                    reference_density=self.fluid.reference_density,
                    reference_pressure=self.fluid.reference_pressure,
                )
                if self.compute_fluxes:
                    for conn in (Connection.UP, Connection.DOWN):
                        local, neigh = interior_slices(shape, conn)
                        bl = (slice(None),) + local
                        bn = (slice(None),) + neigh
                        compute_face_flux_column(
                            engine,
                            scratch_for(bl),
                            p[bl],
                            p[bn],
                            self._elev[local],
                            self._elev[neigh],
                            rho[bl],
                            rho[bn],
                            self.trans_fields[conn][local],
                            residual[bl],
                            gravity=self._gravity,
                            inv_viscosity=self._inv_viscosity,
                        )

            # per-connection contribution arrays, one whole-array kernel
            # call each; traffic booked from the IR's exchange plan
            contributions: dict[Connection, np.ndarray] = {}
            with span("fused.rounds"):
                for connections, hops, _phase in self.ir.exchange_plan:
                    for conn in connections:
                        local, neigh = interior_slices(shape, conn)
                        bl = (slice(None),) + local
                        contribution = np.zeros_like(p)
                        if self.compute_fluxes:
                            # X-Y neighbours share the elevation column:
                            # same view object twice -> collapsed branch,
                            # exactly like the event receive task
                            elev_view = self._elev[local]
                            compute_face_flux_column(
                                engine,
                                scratch_for(bl),
                                p[bl],
                                p[(slice(None),) + neigh],
                                elev_view,
                                elev_view,
                                rho[bl],
                                rho[(slice(None),) + neigh],
                                self.trans_fields[conn][local],
                                contribution[bl],
                                gravity=self._gravity,
                                inv_viscosity=self._inv_viscosity,
                            )
                        contributions[conn] = contribution
                        dx, dy, _dz = conn.offset
                        faces = (ny - abs(dy)) * (nx - abs(dx))
                        words = 2 * nz * faces * batch
                        self._fabric_loads += words
                        self._fabric_word_hops += (
                            words * self._words_per_element * hops
                        )

                # serial fold: event arrival order, one scatter-add per
                # (round, connection) group
                for groups in self._rounds:
                    for conn, ys, xs in groups:
                        residual[:, :, ys, xs] += contributions[conn][
                            :, :, ys, xs
                        ]

        self._applications += batch
        if self.record is not None:
            for i, field in enumerate(fields):
                self.record.record_step(field, residual[i])
        elapsed = perf_counter() - started
        residuals = None
        if keep_all:
            residuals = [residual[i].copy() for i in range(batch)]
        return FusedRunResult(
            residual=residual[batch - 1].copy(),
            applications=batch,
            elapsed_seconds=elapsed,
            cells=mesh.nx * mesh.ny * mesh.nz,
            residuals=residuals,
        )

    # ------------------------------------------------------------------ #
    def report(self) -> FusedReport:
        """Accounting accumulated since construction."""
        return FusedReport(
            applications=self._applications,
            instruction_counts=dict(self.engine.counts),
            flops=self.engine.flops,
            fabric_words_received=self._fabric_loads
            * self._words_per_element,
            fabric_word_hops=self._fabric_word_hops,
            compute_cycles=self.engine.cycles,
            ir_build_seconds=self.ir_build_seconds,
            schedule_seconds=self.schedule_seconds,
        )


def _check_ir_lowerable(
    ir: FabricProgramIR, mesh: CartesianMesh3D, dtype: np.dtype
) -> None:
    if ir.kind != KIND_PROGRAM:
        raise ValueError(
            f"cannot lower a {ir.kind!r} IR to the fused backend "
            "(needs a flux-program IR with mesh and params)"
        )
    if ir.remap is not None:
        raise ValueError(
            "fused backend does not support spare-column remapping "
            "(the fold schedule is probed on the unmapped fabric)"
        )
    if ir.mesh_shape != (mesh.nx, mesh.ny, mesh.nz):
        raise ValueError(
            f"IR was built for mesh {ir.mesh_shape}, got "
            f"({mesh.nx}, {mesh.ny}, {mesh.nz})"
        )
    if np.dtype(ir.params["dtype"]) != dtype:
        raise ValueError(
            f"IR was built for dtype {ir.params['dtype']}, got {dtype.name}"
        )
    if not ir.exchange_plan:
        raise ValueError("IR carries no exchange plan to lower")


def _fold_rounds(schedule) -> list[list[tuple[Connection, np.ndarray, np.ndarray]]]:
    """Regroup the per-PE arrival schedule into scatter-add rounds.

    Round ``k`` holds, per connection, the index arrays of every PE whose
    ``k``-th arrival is that connection; a PE appears at most once per
    round, so adding rounds in order replays each PE's serial fold.
    """
    if not schedule:
        return []
    depth = max(len(order) for order in schedule.values())
    rounds = []
    for k in range(depth):
        groups: dict[str, list[tuple[int, int]]] = {}
        for coord in sorted(schedule):
            order = schedule[coord]
            if k < len(order):
                groups.setdefault(order[k], []).append(coord)
        rounds.append(
            [
                (
                    Connection[name],
                    np.array([c[1] for c in coords], dtype=np.intp),
                    np.array([c[0] for c in coords], dtype=np.intp),
                )
                for name, coords in groups.items()
            ]
        )
    return rounds
