"""Unit tests for the per-PE DSD flux kernel."""

import numpy as np
import pytest

from repro.core.kernels import face_flux_array
from repro.dataflow.flux_pe import (
    FluxScratch,
    compute_face_flux_column,
    evaluate_density_column,
)
from repro.wse.dsd import DsdEngine
from repro.wse.memory import Scratchpad

G = 9.80665
MU = 5e-5


def make_face_data(n, seed=0):
    rng = np.random.default_rng(seed)
    return dict(
        p_k=1e7 + 1e6 * rng.standard_normal(n),
        p_l=1e7 + 1e6 * rng.standard_normal(n),
        z_k=10.0 * rng.random(n),
        z_l=10.0 * rng.random(n),
        rho_k=700.0 + rng.random(n),
        rho_l=700.0 + rng.random(n),
        trans=1e-13 * (0.5 + rng.random(n)),
    )


def make_scratch(n, dtype=np.float64):
    return FluxScratch(
        np.empty(n, dtype), np.empty(n, dtype), np.empty(n, dtype), np.empty(n, dtype)
    )


class TestFluxColumn:
    def test_matches_reference_kernel(self):
        n = 57
        data = make_face_data(n)
        engine = DsdEngine()
        residual = np.zeros(n)
        compute_face_flux_column(
            engine,
            make_scratch(n),
            **data,
            residual=residual,
            gravity=G,
            inv_viscosity=1.0 / MU,
        )
        expected = face_flux_array(**data, gravity=G, viscosity=MU)
        np.testing.assert_allclose(residual, expected, rtol=1e-12)

    def test_accumulates_into_residual(self):
        n = 8
        data = make_face_data(n)
        engine = DsdEngine()
        residual = np.ones(n)
        compute_face_flux_column(
            engine, make_scratch(n), **data,
            residual=residual, gravity=G, inv_viscosity=1.0 / MU,
        )
        expected = 1.0 + face_flux_array(**data, gravity=G, viscosity=MU)
        np.testing.assert_allclose(residual, expected, rtol=1e-12)

    def test_paper_instruction_mix(self):
        """The canonical sequence: 6 FMUL, 4 FSUB, 1 FADD, 1 FMA, 1 FNEG."""
        n = 13
        engine = DsdEngine()
        residual = np.zeros(n)
        compute_face_flux_column(
            engine, make_scratch(n), **make_face_data(n),
            residual=residual, gravity=G, inv_viscosity=1.0 / MU,
        )
        assert engine.counts["FMUL"] == 6 * n
        assert engine.counts["FSUB"] == 4 * n
        assert engine.counts["FADD"] == 1 * n
        assert engine.counts["FMA"] == 1 * n
        assert engine.counts["FNEG"] == 1 * n
        assert engine.flops == 14 * n

    def test_upwind_selection(self):
        """dPhi > 0 picks rho_K (Eq. 4 as printed)."""
        engine = DsdEngine()
        residual = np.zeros(2)
        compute_face_flux_column(
            engine,
            make_scratch(2),
            p_k=np.array([1.0, 2.0]),
            p_l=np.array([2.0, 1.0]),
            z_k=np.zeros(2),
            z_l=np.zeros(2),
            rho_k=np.array([700.0, 700.0]),
            rho_l=np.array([800.0, 800.0]),
            trans=np.ones(2),
            residual=residual,
            gravity=G,
            inv_viscosity=1.0,
        )
        assert residual[0] == pytest.approx(700.0)   # dPhi=+1 -> rho_K
        assert residual[1] == pytest.approx(-800.0)  # dPhi=-1 -> rho_L

    def test_scratch_views_shorter_than_storage(self):
        """Vertical faces reuse the same scratch at length n-1."""
        n = 10
        scratch = make_scratch(n)
        data = make_face_data(n - 1)
        engine = DsdEngine()
        residual = np.zeros(n - 1)
        compute_face_flux_column(
            engine, scratch, **data,
            residual=residual, gravity=G, inv_viscosity=1.0 / MU,
        )
        expected = face_flux_array(**data, gravity=G, viscosity=MU)
        np.testing.assert_allclose(residual, expected, rtol=1e-12)

    def test_3d_scratch_shape_mismatch_rejected(self):
        scratch = FluxScratch(
            np.empty((2, 3)), np.empty((2, 3)), np.empty((2, 3)), np.empty((2, 3))
        )
        with pytest.raises(ValueError, match="scratch shape"):
            compute_face_flux_column(
                DsdEngine(), scratch,
                p_k=np.zeros((3, 2)), p_l=np.zeros((3, 2)),
                z_k=np.zeros((3, 2)), z_l=np.zeros((3, 2)),
                rho_k=np.zeros((3, 2)), rho_l=np.zeros((3, 2)),
                trans=np.zeros((3, 2)), residual=np.zeros((3, 2)),
                gravity=G, inv_viscosity=1.0,
            )


class TestFluxScratchAllocate:
    def test_allocates_four_columns(self):
        pad = Scratchpad(4096)
        scratch = FluxScratch.allocate(pad, 16, np.float32)
        assert pad.used == 4 * 16 * 4
        assert scratch.dp.shape == (16,)

    def test_view(self):
        pad = Scratchpad(4096)
        scratch = FluxScratch.allocate(pad, 16)
        v = scratch.view(5)
        assert v.dp.shape == (5,)
        assert v.dp.base is scratch.dp or v.dp.base is scratch.dp.base


class TestDensityColumn:
    def test_matches_eq5(self):
        engine = DsdEngine()
        p = np.array([1e7, 1.5e7, 2e7])
        rho = np.empty(3)
        evaluate_density_column(
            engine, p, rho,
            compressibility=1e-9,
            reference_density=700.0,
            reference_pressure=1e7,
        )
        expected = 700.0 * np.exp(1e-9 * (p - 1e7))
        np.testing.assert_allclose(rho, expected, rtol=1e-14)

    def test_counts_as_aux_not_table4(self):
        engine = DsdEngine()
        p = np.full(5, 1e7)
        rho = np.empty(5)
        evaluate_density_column(
            engine, p, rho,
            compressibility=1e-9, reference_density=700.0,
            reference_pressure=1e7,
        )
        assert engine.counts == {"AUX_FEXP": 5}
        assert engine.flops == 0
        assert engine.cycles > 0
