"""Unit tests for the shared-memory layout and arena."""

import pickle

import numpy as np
import pytest

from repro.core import CartesianMesh3D
from repro.cluster.comm import CartGrid
from repro.cluster.decomposition import BlockDecomposition
from repro.cluster.flux import halo_links
from repro.par.layout import NUM_PARITIES, SEQ_BYTES, HaloLayout
from repro.par.shm import SharedArena


def make_layout(nx=8, ny=8, nz=3, px=2, py=2, dtype=np.float64):
    mesh = CartesianMesh3D(nx, ny, nz)
    decomp = BlockDecomposition(mesh, px, py)
    grid = CartGrid(px, py)
    return HaloLayout.from_decomposition(decomp, grid, dtype=dtype), decomp, grid


class TestHaloLayout:
    def test_fields_disjoint_and_aligned(self):
        layout, _, _ = make_layout()
        field_bytes = 3 * 8 * 8 * 8
        assert layout.pressure_offsets[0] == 0
        assert layout.pressure_offsets[1] >= field_bytes
        assert layout.residual_offset >= layout.pressure_offsets[1] + field_bytes
        assert layout.residual_offset % 8 == 0
        for slot in layout.slots:
            for parity in range(NUM_PARITIES):
                assert slot.seq_offsets[parity] % 8 == 0
                assert slot.payload_offsets[parity] % 8 == 0
                assert (
                    slot.payload_offsets[parity]
                    >= slot.seq_offsets[parity] + SEQ_BYTES
                )

    def test_slots_do_not_overlap(self):
        layout, _, _ = make_layout(px=3, py=2, nx=9)
        prev_end = layout.residual_offset + 3 * 8 * 9 * 8
        for slot in layout.slots:
            for parity in range(NUM_PARITIES):
                assert slot.seq_offsets[parity] >= prev_end
                prev_end = slot.payload_offsets[parity] + slot.payload_bytes
        assert layout.total_bytes >= prev_end

    def test_one_slot_per_halo_link(self):
        layout, decomp, grid = make_layout(px=3, py=2, nx=9)
        links = halo_links(decomp, grid)
        assert [slot.link for slot in layout.slots] == links
        for link in links:
            slot = layout.slot(link.source, link.dest, link.tag)
            assert slot.link == link
        with pytest.raises(KeyError):
            layout.slot(0, 0, 99)

    def test_payload_bytes_match_strip(self):
        layout, decomp, _ = make_layout()
        nz = decomp.mesh.nz
        for slot in layout.slots:
            assert slot.payload_bytes == slot.link.cells(nz) * 8

    def test_picklable(self):
        layout, _, _ = make_layout()
        layout.slot(0, 1, 0)  # populate the key cache
        clone = pickle.loads(pickle.dumps(layout))
        assert clone.total_bytes == layout.total_bytes
        assert (
            clone.slot(0, 1, 0).payload_offsets
            == layout.slot(0, 1, 0).payload_offsets
        )


class TestSharedArena:
    def test_views_roundtrip(self):
        layout, _, _ = make_layout()
        arena = SharedArena(layout, create=True)
        try:
            arena.pressure(0)[:] = 7.5
            arena.pressure(1)[:] = 8.5
            key = layout.slots[0].key
            arena.payload(key, 0)[:] = 1.25
            arena.payload(key, 1)[:] = 2.25
            assert arena.seq(key, 0) == 0
            arena.set_seq(key, 0, 3)
            assert arena.seq(key, 1) == 0  # parities are independent
            # a second attachment sees the same bytes
            other = SharedArena(layout, name=arena.name, create=False)
            try:
                assert float(other.pressure(0)[0, 0, 0]) == 7.5
                assert float(other.pressure(1)[0, 0, 0]) == 8.5
                assert float(other.payload(key, 0).ravel()[0]) == 1.25
                assert float(other.payload(key, 1).ravel()[0]) == 2.25
                assert other.seq(key, 0) == 3
                assert other.seq(key, 1) == 0
            finally:
                other.close()
        finally:
            arena.close()

    @pytest.mark.parametrize(
        "completed,even,odd",
        [
            (0, 0, 0),
            (1, 1, 0),  # exchange 0 published 1 into parity 0
            (2, 1, 2),  # exchange 1 published 2 into parity 1
            (3, 3, 2),
            (6, 5, 6),
        ],
    )
    def test_reset_seqs_parity_values(self, completed, even, odd):
        layout, _, _ = make_layout()
        arena = SharedArena(layout, create=True)
        try:
            for slot in layout.slots:
                arena.set_seq(slot.key, 0, 99)
                arena.set_seq(slot.key, 1, 99)
            arena.reset_seqs(completed)
            for slot in layout.slots:
                assert arena.seq(slot.key, 0) == even
                assert arena.seq(slot.key, 1) == odd
        finally:
            arena.close()

    def test_owner_unlinks(self):
        layout, _, _ = make_layout()
        arena = SharedArena(layout, create=True)
        name = arena.name
        arena.close()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name, create=False)

    def test_finalizer_unlinks_without_close(self):
        """An arena dropped without close() must not leak the segment."""
        layout, _, _ = make_layout()
        arena = SharedArena(layout, create=True)
        name = arena.name
        arena._finalizer()  # what gc / atexit would run
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name, create=False)
