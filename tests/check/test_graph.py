"""Channel-dependency-graph construction and deadlock detection."""

from repro.check import Severity, build_channel_graph, find_deadlocks
from repro.wse.fabric import Fabric
from repro.wse.geometry import Port

COLOR = 3


def _line_broadcast(width: int) -> Fabric:
    """(0,0) injects east; every other PE delivers and forwards east."""
    fabric = Fabric(width, 1)
    fabric.router(0, 0).configure(COLOR, [{Port.RAMP: (Port.EAST,)}])
    for x in range(1, width):
        fabric.router(x, 0).configure(
            COLOR, [{Port.WEST: (Port.RAMP, Port.EAST)}]
        )
    return fabric


class TestBuildChannelGraph:
    def test_line_broadcast_feeds_every_link(self):
        graph = build_channel_graph(_line_broadcast(4), COLOR)
        assert graph.injectors == {(0, 0)}
        assert graph.seeds == {((0, 0), Port.EAST)}
        assert graph.fed == {((x, 0), Port.EAST) for x in range(4)}
        assert graph.delivers == {(1, 0), (2, 0), (3, 0)}
        assert graph.offchip == {((3, 0), Port.EAST)}
        assert not graph.dead_ends

    def test_arrivals_are_link_destinations(self):
        graph = build_channel_graph(_line_broadcast(3), COLOR)
        # the off-fabric hop contributes coordinate (3, 0): arrival sets
        # are about switch advancement, not delivery
        assert graph.arrivals() == {(1, 0), (2, 0), (3, 0)}

    def test_unconfigured_color_yields_empty_graph(self):
        graph = build_channel_graph(_line_broadcast(3), COLOR + 1)
        assert not graph.edges
        assert not graph.fed

    def test_bypass_column_is_walked_past(self):
        fabric = Fabric(3, 1, bypass_columns=[1])
        fabric.router(0, 0).configure(COLOR, [{Port.RAMP: (Port.EAST,)}])
        fabric.router(2, 0).configure(COLOR, [{Port.WEST: (Port.RAMP,)}])
        graph = build_channel_graph(fabric, COLOR)
        assert graph.delivers == {(2, 0)}
        assert not graph.dead_ends

    def test_union_covers_all_switch_positions(self):
        fabric = Fabric(2, 1)
        fabric.router(0, 0).configure(
            COLOR,
            [{Port.RAMP: (Port.EAST,)}, {Port.RAMP: ()}],
        )
        fabric.router(1, 0).configure(
            COLOR,
            [{Port.WEST: ()}, {Port.WEST: (Port.RAMP,)}],
        )
        graph = build_channel_graph(fabric, COLOR)
        # position 1 of (1,0) delivers, so the union must see it
        assert graph.delivers == {(1, 0)}


class TestFindDeadlocks:
    def test_two_cycle_is_exactly_one_error_with_coordinates(self):
        """ISSUE bad fabric (b): a two-link routing loop.

        ``ColorConfig`` rejects u-turn entries at configure time, so the
        corrupt tables are injected by in-place edit + ``refresh`` — the
        same path fault injection uses, and the class of damage only a
        static pass can catch before execution."""
        fabric = Fabric(2, 1)
        west = fabric.router(0, 0)
        west.configure(COLOR, [{Port.RAMP: (Port.EAST,)}])
        west.configs[COLOR].positions[0][Port.EAST] = (Port.EAST,)
        west.refresh(COLOR)
        east = fabric.router(1, 0)
        east.configure(COLOR, [{Port.WEST: (Port.RAMP,)}])
        east.configs[COLOR].positions[0][Port.WEST] = (Port.WEST,)
        east.refresh(COLOR)
        findings = find_deadlocks(fabric, COLOR, color_name="loop")
        errors = [f for f in findings if f.severity is Severity.ERROR]
        assert len(errors) == 1
        err = errors[0]
        assert err.code == "deadlock-cycle"
        assert err.coord == (0, 0)
        assert err.port == "EAST"
        assert err.color == COLOR
        assert "(0,0)->EAST" in err.detail and "(1,0)->WEST" in err.detail

    def test_unfed_cycle_is_a_warning(self):
        fabric = Fabric(2, 1)
        for coord, in_port in (((0, 0), Port.EAST), ((1, 0), Port.WEST)):
            router = fabric.router(*coord)
            router.configure(COLOR, [{in_port: (Port.RAMP,)}])
            router.configs[COLOR].positions[0][in_port] = (in_port,)
            router.refresh(COLOR)
        findings = find_deadlocks(fabric, COLOR)
        assert [f.severity for f in findings] == [Severity.WARNING]
        assert "unfed" in findings[0].message

    def test_four_link_ring_is_one_component(self):
        fabric = Fabric(2, 2)
        ring = {
            (0, 0): {Port.RAMP: (Port.EAST,), Port.WEST: (Port.EAST,)},
            (1, 0): {Port.WEST: (Port.SOUTH,)},
            (1, 1): {Port.NORTH: (Port.WEST,)},
            (0, 1): {Port.EAST: (Port.NORTH,)},
        }
        # the ring turns corners, so in-ports are the arrival sides
        fabric.router(0, 0).configure(
            COLOR, [{Port.RAMP: (Port.EAST,), Port.SOUTH: (Port.EAST,)}]
        )
        fabric.router(1, 0).configure(COLOR, [{Port.WEST: (Port.SOUTH,)}])
        fabric.router(1, 1).configure(COLOR, [{Port.NORTH: (Port.WEST,)}])
        fabric.router(0, 1).configure(COLOR, [{Port.EAST: (Port.NORTH,)}])
        findings = find_deadlocks(fabric, COLOR)
        errors = [f for f in findings if f.severity is Severity.ERROR]
        assert len(errors) == 1
        assert "4 link(s)" in errors[0].message

    def test_acyclic_broadcast_has_no_findings(self):
        assert find_deadlocks(_line_broadcast(5), COLOR) == []
