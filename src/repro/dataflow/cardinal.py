"""Cardinal-neighbour exchange: the two-step Sending/Receiving protocol.

Paper Sec. 5.2.1 and Fig. 6: each X-Y cardinal direction owns a color
whose router configuration has **two switch positions** — position 0 makes
the PE the root of a localized broadcast (*Sending*: RAMP -> link),
position 1 makes it a *Receiving* PE (link -> RAMP).  After sending, a PE
issues a control wavelet that travels the same broadcast pattern and
flips the configurations of its own and the neighbouring router, so the
roles alternate and "after two steps, all data have been sent and
received by all PEs".

The chain must be seeded from the edge the control wavelets flow *away*
from: step-1 senders are the PEs at even distance from that edge
(:func:`is_step1_sender`), and the edge PE itself — which can never be
triggered by a neighbour — gets two identical Sending positions so the
flip is harmless (:func:`switch_positions_for`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stencil import Connection
from repro.wse.geometry import Port
from repro.wse.router import RoutePosition

__all__ = [
    "CardinalChannel",
    "CARDINAL_CHANNELS",
    "channel_for_flow",
    "is_step1_sender",
    "switch_positions_for",
]


@dataclass(frozen=True)
class CardinalChannel:
    """One cardinal exchange color.

    Attributes
    ----------
    name:
        Color name, e.g. ``"card_east"``.
    flow:
        Fabric port the data travels through (EAST = data moves east).
    delivers:
        The mesh connection whose neighbour data this channel delivers:
        a PE receiving on the eastward channel is looking at its *west*
        neighbour's column.
    """

    name: str
    flow: Port
    delivers: Connection

    @property
    def receive_port(self) -> Port:
        """Port on which a Receiving PE sees this channel's data."""
        return self.flow.opposite


#: The four cardinal channels (Sec. 5.2.1: one pattern per direction).
CARDINAL_CHANNELS = (
    CardinalChannel("card_east", Port.EAST, Connection.WEST),
    CardinalChannel("card_west", Port.WEST, Connection.EAST),
    CardinalChannel("card_south", Port.SOUTH, Connection.NORTH),
    CardinalChannel("card_north", Port.NORTH, Connection.SOUTH),
)

_BY_FLOW = {ch.flow: ch for ch in CARDINAL_CHANNELS}


def channel_for_flow(flow: Port) -> CardinalChannel:
    """The channel whose data flows through fabric port *flow*."""
    return _BY_FLOW[flow]


def _distance_from_seed_edge(
    coord: tuple[int, int], flow: Port, width: int, height: int
) -> int:
    """Hops from the edge that seeds the control-wavelet chain.

    Control wavelets travel with the data (direction *flow*), so the
    chain starts at the edge the flow leaves from: the west edge for an
    eastward channel, the east edge for a westward one, etc.
    """
    x, y = coord
    if flow is Port.EAST:
        return x
    if flow is Port.WEST:
        return (width - 1) - x
    if flow is Port.SOUTH:
        return y
    if flow is Port.NORTH:
        return (height - 1) - y
    raise ValueError(f"no cardinal channel flows through {flow}")


def is_step1_sender(
    coord: tuple[int, int], channel: CardinalChannel, width: int, height: int
) -> bool:
    """True when *coord* transmits in step 1 of *channel*'s exchange."""
    return _distance_from_seed_edge(coord, channel.flow, width, height) % 2 == 0


def switch_positions_for(
    coord: tuple[int, int], channel: CardinalChannel, width: int, height: int
) -> tuple[list[RoutePosition], int]:
    """Router switch positions and initial index for one PE (Fig. 6a).

    Returns ``(positions, initial)`` where positions[0] is the Sending
    configuration (RAMP broadcasts through the flow port) and
    positions[1] the Receiving one (flow's opposite port delivers to the
    RAMP).  The seed-edge PE has no upstream neighbour to trigger it, so
    both of its positions are Sending (flips are no-ops for it).
    """
    sending: RoutePosition = {Port.RAMP: (channel.flow,)}
    receiving: RoutePosition = {channel.receive_port: (Port.RAMP,)}
    dist = _distance_from_seed_edge(coord, channel.flow, width, height)
    if dist == 0:
        return [dict(sending), dict(sending)], 0
    initial = 0 if dist % 2 == 0 else 1
    return [sending, receiving], initial
