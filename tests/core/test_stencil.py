"""Unit tests for the 10-neighbour stencil."""

import numpy as np
import pytest

from repro.core.stencil import (
    ALL_CONNECTIONS,
    CARDINAL_XY,
    DIAGONAL_XY,
    VERTICAL,
    XY_CONNECTIONS,
    Connection,
    interior_slices,
    iter_neighbours,
    opposite,
)


class TestConnectionSets:
    def test_counts(self):
        assert len(ALL_CONNECTIONS) == 10
        assert len(CARDINAL_XY) == 4
        assert len(DIAGONAL_XY) == 4
        assert len(VERTICAL) == 2
        assert len(XY_CONNECTIONS) == 8

    def test_partition_is_disjoint_and_complete(self):
        assert set(ALL_CONNECTIONS) == set(CARDINAL_XY) | set(DIAGONAL_XY) | set(
            VERTICAL
        )
        assert not set(CARDINAL_XY) & set(DIAGONAL_XY)

    def test_paper_direction_conventions(self):
        # Sec. 5.2.1: east (x+1), west (x-1), north (x, y-1), south (x, y+1)
        assert Connection.EAST.offset == (1, 0, 0)
        assert Connection.WEST.offset == (-1, 0, 0)
        assert Connection.NORTH.offset == (0, -1, 0)
        assert Connection.SOUTH.offset == (0, 1, 0)
        assert Connection.UP.offset == (0, 0, 1)

    def test_classification_flags(self):
        assert Connection.EAST.is_cardinal_xy
        assert not Connection.EAST.is_diagonal
        assert Connection.NORTHEAST.is_diagonal
        assert not Connection.NORTHEAST.is_vertical
        assert Connection.UP.is_vertical
        assert not Connection.UP.is_cardinal_xy

    def test_offsets_unique(self):
        offsets = {c.offset for c in ALL_CONNECTIONS}
        assert len(offsets) == 10


class TestOpposite:
    @pytest.mark.parametrize("conn", ALL_CONNECTIONS)
    def test_involution(self, conn):
        assert opposite(opposite(conn)) is conn

    @pytest.mark.parametrize("conn", ALL_CONNECTIONS)
    def test_offset_negation(self, conn):
        assert tuple(-d for d in conn.offset) == opposite(conn).offset


class TestInteriorSlices:
    @pytest.mark.parametrize("conn", ALL_CONNECTIONS)
    def test_alignment(self, conn):
        """arr[neigh] - arr[local] equals the flat-index offset of conn."""
        shape = (4, 5, 6)  # (nz, ny, nx)
        nz, ny, nx = shape
        idx = np.arange(nz * ny * nx).reshape(shape)
        local, neigh = interior_slices(shape, conn)
        dx, dy, dz = conn.offset
        expected = dx + dy * nx + dz * nx * ny
        diff = idx[neigh] - idx[local]
        assert np.all(diff == expected)

    @pytest.mark.parametrize("conn", ALL_CONNECTIONS)
    def test_shapes_match(self, conn):
        shape = (4, 5, 6)
        arr = np.zeros(shape)
        local, neigh = interior_slices(shape, conn)
        assert arr[local].shape == arr[neigh].shape

    def test_east_drops_last_x_column(self):
        local, neigh = interior_slices((2, 3, 4), Connection.EAST)
        arr = np.zeros((2, 3, 4))
        assert arr[local].shape == (2, 3, 3)

    def test_diagonal_drops_both_axes(self):
        local, _ = interior_slices((2, 3, 4), Connection.NORTHEAST)
        arr = np.zeros((2, 3, 4))
        assert arr[local].shape == (2, 2, 3)

    @pytest.mark.parametrize("conn", ALL_CONNECTIONS)
    def test_views_not_copies(self, conn):
        arr = np.zeros((3, 3, 3))
        local, _ = interior_slices(arr.shape, conn)
        view = arr[local]
        assert view.base is arr


class TestIterNeighbours:
    def test_interior_cell_has_ten(self):
        shape = (5, 5, 5)
        neighbours = list(iter_neighbours(2, 2, 2, shape))
        assert len(neighbours) == 10
        conns = [c for c, _ in neighbours]
        assert set(conns) == set(ALL_CONNECTIONS)

    def test_corner_cell(self):
        # (0,0,0) of a big mesh: EAST, SOUTH, SOUTHEAST, UP exist
        found = dict(iter_neighbours(0, 0, 0, (5, 5, 5)))
        assert set(found) == {
            Connection.EAST,
            Connection.SOUTH,
            Connection.SOUTHEAST,
            Connection.UP,
        }
        assert found[Connection.SOUTHEAST] == (1, 1, 0)

    def test_single_cell_mesh_has_none(self):
        assert list(iter_neighbours(0, 0, 0, (1, 1, 1))) == []

    def test_coordinates_in_bounds(self):
        shape = (3, 4, 2)
        for x in range(3):
            for y in range(4):
                for z in range(2):
                    for _, (xx, yy, zz) in iter_neighbours(x, y, z, shape):
                        assert 0 <= xx < 3 and 0 <= yy < 4 and 0 <= zz < 2

    def test_reciprocity(self):
        """If L is K's neighbour via c, K is L's neighbour via opposite(c)."""
        shape = (4, 3, 3)
        for x in range(4):
            for y in range(3):
                for z in range(3):
                    for conn, (xx, yy, zz) in iter_neighbours(x, y, z, shape):
                        back = dict(iter_neighbours(xx, yy, zz, shape))
                        assert back[opposite(conn)] == (x, y, z)
