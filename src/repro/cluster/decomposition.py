"""Block domain decomposition of the X-Y plane across ranks.

The Z dimension stays whole per rank (the same choice the paper makes
per PE, Sec. 5.1); the X-Y plane splits into a ``px x py`` grid of
near-equal blocks.  Each rank's working set is its block padded by a
one-cell halo clipped to the global mesh — wide enough for the
10-neighbour stencil (all offsets are at most one cell).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mesh import CartesianMesh3D

__all__ = ["Block", "BlockDecomposition"]


def _split(n: int, parts: int) -> list[tuple[int, int]]:
    """Split range(n) into ``parts`` contiguous near-equal pieces."""
    base, extra = divmod(n, parts)
    out = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        out.append((start, start + size))
        start += size
    return out


@dataclass(frozen=True)
class Block:
    """One rank's region of the global mesh.

    ``x0:x1 / y0:y1`` is the *owned* cell range; ``gx0:gx1 / gy0:gy1``
    is the halo-padded range actually resident on the rank.
    """

    rank: int
    x0: int
    x1: int
    y0: int
    y1: int
    gx0: int
    gx1: int
    gy0: int
    gy1: int

    @property
    def owned_cells_xy(self) -> int:
        return (self.x1 - self.x0) * (self.y1 - self.y0)

    @property
    def padded_shape_xy(self) -> tuple[int, int]:
        return (self.gx1 - self.gx0, self.gy1 - self.gy0)

    def owned_slices_in_padded(self) -> tuple[slice, slice]:
        """(y, x) slices selecting owned cells within the padded arrays."""
        return (
            slice(self.y0 - self.gy0, self.y1 - self.gy0),
            slice(self.x0 - self.gx0, self.x1 - self.gx0),
        )


class BlockDecomposition:
    """Split a mesh's X-Y plane into ``px x py`` halo-padded blocks."""

    def __init__(self, mesh: CartesianMesh3D, px: int, py: int) -> None:
        if px < 1 or py < 1:
            raise ValueError("process grid dimensions must be >= 1")
        # px > Nx (or py > Ny) would make _split hand some ranks
        # zero-width pieces: name the offending axis and both sizes
        # instead of silently yielding empty blocks downstream.
        if px > mesh.nx:
            raise ValueError(
                f"process grid {px}x{py}: px={px} ranks along X exceed "
                f"mesh Nx={mesh.nx} (empty blocks)"
            )
        if py > mesh.ny:
            raise ValueError(
                f"process grid {px}x{py}: py={py} ranks along Y exceed "
                f"mesh Ny={mesh.ny} (empty blocks)"
            )
        self.mesh = mesh
        self.px = px
        self.py = py
        xs = _split(mesh.nx, px)
        ys = _split(mesh.ny, py)
        self.blocks: list[Block] = []
        for cy in range(py):
            for cx in range(px):
                x0, x1 = xs[cx]
                y0, y1 = ys[cy]
                self.blocks.append(
                    Block(
                        rank=cy * px + cx,
                        x0=x0, x1=x1, y0=y0, y1=y1,
                        gx0=max(0, x0 - 1), gx1=min(mesh.nx, x1 + 1),
                        gy0=max(0, y0 - 1), gy1=min(mesh.ny, y1 + 1),
                    )
                )

    @property
    def size(self) -> int:
        return self.px * self.py

    def block(self, rank: int) -> Block:
        """The block owned by *rank*."""
        return self.blocks[rank]

    def padded_field_slices(self, block: Block) -> tuple[slice, slice, slice]:
        """(z, y, x) slices of a global field giving the padded region."""
        return (
            slice(None),
            slice(block.gy0, block.gy1),
            slice(block.gx0, block.gx1),
        )

    def local_mesh(self, block: Block) -> CartesianMesh3D:
        """The halo-padded sub-mesh resident on *block*'s rank.

        Permeability is sliced from the global field so the harmonic
        face transmissibilities inside the padded region match the
        global build exactly.
        """
        mesh = self.mesh
        pw, ph = block.padded_shape_xy
        return CartesianMesh3D(
            nx=pw,
            ny=ph,
            nz=mesh.nz,
            dx=mesh.dx,
            dy=mesh.dy,
            dz=mesh.dz,
            dz_layers=mesh.dz_layers,
            origin=(
                mesh.origin[0] + block.gx0 * mesh.dx,
                mesh.origin[1] + block.gy0 * mesh.dy,
                mesh.origin[2],
            ),
            permeability=np.ascontiguousarray(
                mesh.permeability[self.padded_field_slices(block)]
            ),
            porosity=np.ascontiguousarray(
                mesh.porosity[self.padded_field_slices(block)]
            ),
        )

    def coverage_check(self) -> None:
        """Assert the owned regions tile the plane exactly once."""
        cover = np.zeros((self.mesh.ny, self.mesh.nx), dtype=int)
        for block in self.blocks:
            cover[block.y0 : block.y1, block.x0 : block.x1] += 1
        if not np.all(cover == 1):
            raise AssertionError("blocks do not tile the plane exactly once")
