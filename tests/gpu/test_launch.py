"""Unit tests for threadblock tiling and tile/stencil intersection."""

import numpy as np
import pytest

from repro.core.stencil import ALL_CONNECTIONS, Connection, interior_slices
from repro.gpu.launch import PAPER_TILE, TiledLaunch


class TestGrid:
    def test_paper_tile_is_1024_threads(self):
        launch = TiledLaunch((246, 994, 750))
        assert launch.threads_per_block == 1024
        assert launch.tile_xyz == PAPER_TILE == (16, 8, 8)

    def test_grid_dims_ceil(self):
        launch = TiledLaunch((10, 9, 17), (16, 8, 8))
        assert launch.grid_dims == (2, 2, 2)
        assert launch.num_blocks == 8

    def test_exact_fit(self):
        launch = TiledLaunch((8, 8, 16), (16, 8, 8))
        assert launch.grid_dims == (1, 1, 1)

    def test_rejects_oversized_block(self):
        with pytest.raises(ValueError, match="1024"):
            TiledLaunch((4, 4, 4), (32, 8, 8))

    def test_rejects_zero_tile(self):
        with pytest.raises(ValueError):
            TiledLaunch((4, 4, 4), (0, 8, 8))


class TestTileEnumeration:
    def test_clamped_tiles_cover_mesh_exactly(self):
        shape = (10, 9, 17)
        launch = TiledLaunch(shape, (16, 8, 8), clamp=True)
        covered = np.zeros(shape, dtype=int)
        for tile in launch.tiles():
            covered[tile.slices] += 1
        assert np.all(covered == 1)

    def test_unclamped_tiles_are_full(self):
        launch = TiledLaunch((10, 9, 17), (16, 8, 8), clamp=False)
        for tile in launch.tiles():
            assert tile.num_cells == 1024

    def test_tile_count_matches_grid(self):
        launch = TiledLaunch((20, 20, 20), (16, 8, 8))
        assert len(list(launch.tiles())) == launch.num_blocks

    def test_block_indices_unique(self):
        launch = TiledLaunch((20, 20, 20), (16, 8, 8))
        idx = [t.block_index for t in launch.tiles()]
        assert len(set(idx)) == len(idx)


class TestDirectionViews:
    @pytest.mark.parametrize("conn", ALL_CONNECTIONS)
    def test_union_over_tiles_equals_interior(self, conn):
        """Per-tile direction views tile the global interior region."""
        shape = (5, 7, 9)
        launch = TiledLaunch(shape, (4, 4, 4))
        covered = np.zeros(shape, dtype=int)
        for tile in launch.tiles():
            views = launch.tile_direction_views(tile, conn)
            if views is None:
                continue
            local, _ = views
            covered[local] += 1
        ref_local, _ = interior_slices(shape, conn)
        expected = np.zeros(shape, dtype=int)
        expected[ref_local] = 1
        np.testing.assert_array_equal(covered, expected)

    @pytest.mark.parametrize("conn", ALL_CONNECTIONS)
    def test_neighbour_offset_consistent(self, conn):
        shape = (4, 5, 6)
        nz, ny, nx = shape
        idx = np.arange(nz * ny * nx).reshape(shape)
        launch = TiledLaunch(shape, (4, 4, 2))
        dx, dy, dz = conn.offset
        flat_off = dx + dy * nx + dz * nx * ny
        for tile in launch.tiles():
            views = launch.tile_direction_views(tile, conn)
            if views is None:
                continue
            local, neigh = views
            assert np.all(idx[neigh] - idx[local] == flat_off)

    def test_none_when_tile_has_no_neighbours(self):
        """A 1-cell-thick boundary tile may have no cells for a direction."""
        shape = (1, 1, 8)
        launch = TiledLaunch(shape, (4, 4, 4))
        tiles = list(launch.tiles())
        assert launch.tile_direction_views(tiles[0], Connection.NORTH) is None
        assert launch.tile_direction_views(tiles[0], Connection.UP) is None
        assert launch.tile_direction_views(tiles[0], Connection.EAST) is not None
