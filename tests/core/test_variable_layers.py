"""Tests for variable layer thickness (rectilinear Z) support."""

import numpy as np
import pytest

from repro.core import (
    CartesianMesh3D,
    Connection,
    FluidProperties,
    Transmissibility,
    compute_flux_residual,
    random_pressure,
)
from repro.core.unstructured import from_cartesian, unstructured_flux_residual
from repro.dataflow import WseFluxComputation
from repro.gpu import GpuFluxComputation
from repro.solver import SinglePhaseFlowSimulator, Well


@pytest.fixture
def layered_mesh():
    """5 layers with strongly varying thicknesses."""
    return CartesianMesh3D(
        6, 5, 5, dx=10.0, dy=10.0, dz_layers=np.array([1.0, 4.0, 2.0, 8.0, 0.5])
    )


class TestGeometry:
    def test_uniform_flag(self, layered_mesh, small_mesh):
        assert not layered_mesh.is_uniform_z
        assert small_mesh.is_uniform_z

    def test_dz_column(self, layered_mesh):
        np.testing.assert_array_equal(
            layered_mesh.dz_column, [1.0, 4.0, 2.0, 8.0, 0.5]
        )
        assert layered_mesh.dz == pytest.approx(3.1)  # mean

    def test_elevation_cumulative(self, layered_mesh):
        z = layered_mesh.elevation[:, 0, 0]
        np.testing.assert_allclose(z, [0.5, 3.0, 6.0, 11.0, 15.25])

    def test_cell_volume_scalar_rejected(self, layered_mesh):
        with pytest.raises(ValueError, match="cell_volumes"):
            layered_mesh.cell_volume

    def test_cell_volumes(self, layered_mesh):
        v = layered_mesh.cell_volumes
        assert v.shape == (5, 1, 1)
        np.testing.assert_allclose(v[:, 0, 0], 100.0 * layered_mesh.dz_column)

    def test_cell_centre_uses_layering(self, layered_mesh):
        assert layered_mesh.cell_centre(0, 0, 3)[2] == pytest.approx(11.0)

    def test_uniform_mesh_unchanged(self):
        m = CartesianMesh3D(3, 3, 4, dz=2.0)
        np.testing.assert_allclose(m.dz_column, 2.0)
        assert m.cell_volume == pytest.approx(m.dx * m.dy * 2.0)
        np.testing.assert_allclose(m.cell_volumes, m.cell_volume)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="dz_layers"):
            CartesianMesh3D(2, 2, 3, dz_layers=np.ones(4))

    def test_rejects_nonpositive_thickness(self):
        with pytest.raises(ValueError, match="dz_layers"):
            CartesianMesh3D(2, 2, 3, dz_layers=np.array([1.0, 0.0, 1.0]))


class TestTransmissibility:
    def test_vertical_uses_each_sides_half_distance(self):
        mesh = CartesianMesh3D(
            1, 1, 2, dx=10.0, dy=10.0, dz_layers=np.array([2.0, 6.0])
        )
        t = Transmissibility(mesh)
        area = 100.0
        t_k = mesh.permeability[0, 0, 0] * area / 1.0  # dz/2 = 1
        t_l = mesh.permeability[1, 0, 0] * area / 3.0  # dz/2 = 3
        expected = t_k * t_l / (t_k + t_l)
        assert t.face_array(Connection.UP)[0, 0, 0] == pytest.approx(expected)

    def test_horizontal_scales_with_layer_thickness(self):
        mesh = CartesianMesh3D(
            2, 1, 2, dx=10.0, dy=10.0, dz_layers=np.array([1.0, 5.0])
        )
        t = Transmissibility(mesh)
        east = t.face_array(Connection.EAST)
        assert east[1, 0, 0] == pytest.approx(5.0 * east[0, 0, 0])

    def test_matches_uniform_when_layers_equal(self):
        a = CartesianMesh3D(4, 3, 3, dz=2.0)
        b = CartesianMesh3D(4, 3, 3, dz_layers=np.full(3, 2.0))
        ta, tb = Transmissibility(a), Transmissibility(b)
        for conn in (Connection.EAST, Connection.UP, Connection.SOUTHEAST):
            np.testing.assert_allclose(ta.face_array(conn), tb.face_array(conn))

    def test_for_cell_consistent(self, layered_mesh):
        t = Transmissibility(layered_mesh)
        vals = t.for_cell(2, 2, 1)
        assert vals[Connection.UP] > 0
        assert vals[Connection.UP] != vals[Connection.DOWN]


class TestCrossImplementation:
    def test_all_implementations_agree(self, layered_mesh, fluid):
        trans = Transmissibility(layered_mesh)
        p = random_pressure(layered_mesh, seed=17)
        ref = compute_flux_residual(layered_mesh, fluid, p, trans)
        scale = np.abs(ref).max()
        wse = WseFluxComputation(
            layered_mesh, fluid, trans, dtype=np.float64
        ).run_single(p)
        gpu = GpuFluxComputation(
            layered_mesh, fluid, trans, dtype=np.float64
        ).run_single(p)
        np.testing.assert_allclose(wse.residual, ref, atol=1e-12 * scale)
        np.testing.assert_allclose(gpu.residual, ref, atol=1e-12 * scale)

    def test_unstructured_agrees(self, layered_mesh, fluid):
        trans = Transmissibility(layered_mesh)
        umesh = from_cartesian(layered_mesh, trans)
        p = random_pressure(layered_mesh, seed=18)
        r_u = unstructured_flux_residual(umesh, fluid, p.ravel())
        r_s = compute_flux_residual(layered_mesh, fluid, p, trans)
        scale = np.abs(r_s).max()
        np.testing.assert_allclose(
            r_u.reshape(layered_mesh.shape_zyx), r_s, atol=1e-12 * scale
        )

    def test_unstructured_volumes_vary(self, layered_mesh):
        umesh = from_cartesian(layered_mesh)
        assert umesh.volumes.min() != umesh.volumes.max()

    def test_mass_balance_holds(self, layered_mesh, fluid):
        p = random_pressure(layered_mesh, seed=19)
        r = compute_flux_residual(layered_mesh, fluid, p)
        scale = np.abs(r).max()
        assert abs(r.sum()) <= 1e-12 * scale * r.size


class TestSolverWithLayering:
    def test_mass_conservation(self, fluid):
        mesh = CartesianMesh3D(
            5, 5, 4, dz_layers=np.array([1.0, 3.0, 2.0, 6.0])
        )
        sim = SinglePhaseFlowSimulator(
            mesh, fluid, wells=[Well(2, 2, 1, rate=3.0)], gravity=0.0
        )
        m0 = sim.mass_in_place()
        sim.run(num_steps=3, dt=3600.0, rtol=1e-10)
        injected = 3.0 * 3 * 3600.0
        assert sim.mass_in_place() - m0 == pytest.approx(injected, rel=1e-6)

    def test_jacobian_matches_fd(self, fluid):
        from repro.solver import FlowResidual, MatrixFreeJacobian

        mesh = CartesianMesh3D(4, 3, 3, dz_layers=np.array([1.0, 2.0, 4.0]))
        res = FlowResidual(mesh, fluid, dt=3600.0)
        p = random_pressure(mesh, seed=20, amplitude=1e5)
        jac = MatrixFreeJacobian(res, p)
        mass = res.mass_density(p)
        rng = np.random.default_rng(5)
        v = rng.standard_normal(mesh.shape_zyx)
        eps = 1.0
        fd = (res(p + eps * v, mass) - res(p - eps * v, mass)) / (2 * eps)
        mv = jac.matvec(v)
        scale = np.abs(fd).max()
        np.testing.assert_allclose(mv, fd, atol=1e-6 * scale)

    def test_cluster_decomposition_with_layering(self, fluid):
        from repro.cluster import ClusterFluxComputation

        mesh = CartesianMesh3D(8, 6, 3, dz_layers=np.array([1.0, 4.0, 2.0]))
        p = random_pressure(mesh, seed=21)
        ref = compute_flux_residual(mesh, fluid, p)
        cl = ClusterFluxComputation(mesh, fluid, px=2, py=2)
        result = cl.run_single(p)
        scale = np.abs(ref).max()
        np.testing.assert_allclose(result.residual, ref, atol=1e-11 * scale)
