"""Figure 8 — roofline models for CS-2 and A100.

Paper: the CS-2 kernel achieves 311.85 TFLOPS; it is bandwidth-bound for
memory accesses (AI 0.0862, machine balance 0.0892) and compute-bound for
fabric accesses (AI 2.1875).  The A100 kernel is memory-bound at 76% of
its attainable with AI 2.11 and 6012 GFLOPS.

The benchmark regenerates both charts' data (ceilings, ridge points,
kernel dots, boundedness verdicts) from the instruction-count machinery
and the calibrated machine models, and renders an ASCII roofline.
"""

import math

import pytest

from repro.dataflow import interior_cell_table
from repro.perf import (
    a100_kernel_point,
    a100_roofline,
    cs2_kernel_points,
    cs2_roofline,
)
from repro.util.reporting import Table, format_si


def ascii_roofline(model, points, *, ai_range=(1e-2, 1e2), width=60) -> str:
    """Log-log ASCII roofline with kernel dots marked '*'."""
    lo, hi = (math.log10(a) for a in ai_range)
    lines = [f"{model.name}  (peak {format_si(model.peak_flops, 'FLOP/s')})"]
    for resource, bw in model.bandwidths.items():
        cols = []
        for i in range(width):
            ai = 10 ** (lo + (hi - lo) * i / (width - 1))
            att = model.attainable(ai, resource)
            frac = att / model.peak_flops
            cols.append("-" if frac >= 0.999 else "/")
        # mark kernel dots on this resource's ceiling
        for pt in points:
            if pt.resource != resource:
                continue
            i = round(
                (math.log10(pt.arithmetic_intensity) - lo) / (hi - lo) * (width - 1)
            )
            if 0 <= i < width:
                cols[i] = "*"
        lines.append(
            f"  {resource:<7}|{''.join(cols)}|  BW {format_si(bw, 'B/s')}"
        )
    lines.append(f"  AI axis: {ai_range[0]:g} .. {ai_range[1]:g} FLOP/Byte (log)")
    return "\n".join(lines)


def test_reproduce_fig8_cs2(report, benchmark):
    table4 = interior_cell_table()
    model = benchmark(lambda: cs2_roofline(table4))
    mem_pt, fab_pt = cs2_kernel_points(table4)

    table = Table(
        "Figure 8 (top) — CS-2 roofline",
        ["Quantity", "Reproduced", "Paper"],
    )
    table.add_row(
        ["kernel TFLOPS", f"{mem_pt.achieved_flops / 1e12:.2f}", "311.85"]
    )
    table.add_row(["AI (memory)", f"{mem_pt.arithmetic_intensity:.4f}", "0.0862"])
    table.add_row(["AI (fabric)", f"{fab_pt.arithmetic_intensity:.4f}", "2.1875"])
    table.add_row(["memory balance", f"{model.ridge_point('memory'):.4f}", "0.0892"])
    table.add_row(
        [
            "memory verdict",
            "bandwidth-bound"
            if not model.is_compute_bound(mem_pt.arithmetic_intensity, "memory")
            else "compute-bound",
            "bandwidth-bound",
        ]
    )
    table.add_row(
        [
            "fabric verdict",
            "compute-bound"
            if model.is_compute_bound(fab_pt.arithmetic_intensity, "fabric")
            else "bandwidth-bound",
            "compute-bound",
        ]
    )
    report(table.render() + "\n\n" + ascii_roofline(model, [mem_pt, fab_pt]))

    assert mem_pt.achieved_flops == pytest.approx(311.85e12, rel=1e-3)
    assert not model.is_compute_bound(mem_pt.arithmetic_intensity, "memory")
    assert model.is_compute_bound(fab_pt.arithmetic_intensity, "fabric")
    assert model.ridge_point("memory") == pytest.approx(0.0892)


def test_reproduce_fig8_a100(report, benchmark):
    model = benchmark(a100_roofline)
    pt = a100_kernel_point()

    table = Table(
        "Figure 8 (bottom) — A100 roofline",
        ["Quantity", "Reproduced", "Paper"],
    )
    table.add_row(["kernel GFLOPS", f"{pt.achieved_flops / 1e9:.0f}", "6012"])
    table.add_row(["kernel AI", f"{pt.arithmetic_intensity:.2f}", "2.11"])
    table.add_row(["efficiency", f"{model.efficiency(pt):.2f}", "0.76"])
    table.add_row(
        [
            "verdict",
            "memory-bound"
            if not model.is_compute_bound(pt.arithmetic_intensity, "l2")
            else "compute-bound",
            "memory-bound",
        ]
    )
    report(table.render() + "\n\n" + ascii_roofline(model, [pt]))

    assert model.efficiency(pt) == pytest.approx(0.76)
    assert not model.is_compute_bound(pt.arithmetic_intensity, "l2")


def test_roofline_evaluation_speed(benchmark):
    """Roofline assembly (incl. measured instruction mix) is cheap."""
    benchmark(lambda: cs2_roofline(interior_cell_table()))
