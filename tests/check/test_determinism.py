"""The determinism lint: every rule family, suppression, and the gate."""

import textwrap
from pathlib import Path

from repro.check import Severity, lint_paths, lint_source

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def _lint(code: str):
    return lint_source(textwrap.dedent(code), filename="sample.py")


class TestSetIteration:
    def test_accumulation_over_set_literal_is_error(self):
        findings = _lint(
            """
            total = 0.0
            for v in {a, b, c}:
                total += v
            """
        )
        assert [f.code for f in findings] == ["det-set-iter"]
        assert findings[0].severity is Severity.ERROR
        assert findings[0].line == 3

    def test_accumulation_over_set_call_is_error(self):
        findings = _lint(
            """
            for v in set(values):
                acc *= v
            """
        )
        assert [f.severity for f in findings] == [Severity.ERROR]

    def test_bare_set_iteration_is_warning(self):
        findings = _lint(
            """
            for v in {a, b}:
                print(v)
            """
        )
        assert [f.severity for f in findings] == [Severity.WARNING]

    def test_sorted_set_is_clean(self):
        assert _lint("for v in sorted({a, b}):\n    total += v\n") == []

    def test_list_iteration_is_clean(self):
        assert _lint("for v in [a, b]:\n    total += v\n") == []


class TestUnseededRng:
    def test_random_module_convenience(self):
        findings = _lint("x = random.random()\n")
        assert [f.code for f in findings] == ["det-unseeded-rng"]

    def test_numpy_legacy_global(self):
        findings = _lint("x = np.random.normal(0, 1, 10)\n")
        assert [f.code for f in findings] == ["det-unseeded-rng"]

    def test_unseeded_default_rng(self):
        findings = _lint("rng = np.random.default_rng()\n")
        assert [f.code for f in findings] == ["det-unseeded-rng"]

    def test_seeded_generators_are_clean(self):
        assert _lint("rng = np.random.default_rng(7)\n") == []
        assert _lint("rng = random.Random(7)\n") == []


class TestTimeControl:
    def test_clock_in_if_condition(self):
        findings = _lint(
            """
            if time.perf_counter() > deadline:
                bail()
            """
        )
        assert [f.code for f in findings] == ["det-time-control"]

    def test_clock_in_while_condition(self):
        findings = _lint(
            """
            while time.monotonic() < t_end:
                step()
            """
        )
        assert [f.code for f in findings] == ["det-time-control"]

    def test_measurement_outside_control_flow_is_clean(self):
        assert _lint("t0 = time.perf_counter()\nrun()\n") == []


class TestSuppressionAndParse:
    def test_det_allow_pragma_suppresses(self):
        findings = _lint("x = random.random()  # det: allow\n")
        assert findings == []

    def test_syntax_error_is_a_finding_not_an_exception(self):
        findings = lint_source("def broken(:\n", filename="bad.py")
        assert [f.code for f in findings] == ["det-parse"]
        assert findings[0].severity is Severity.ERROR


class TestRepoGate:
    def test_src_repro_is_lint_clean(self):
        """The CI gate: zero ERROR findings over the whole package."""
        findings = lint_paths(REPO_SRC)
        errors = [f for f in findings if f.severity is Severity.ERROR]
        assert errors == [], "\n".join(f.render() for f in errors)
