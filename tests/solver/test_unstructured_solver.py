"""Tests for the implicit solver on unstructured topologies."""

import numpy as np
import pytest

from repro.core import (
    CartesianMesh3D,
    FluidProperties,
    Transmissibility,
    random_pressure,
)
from repro.core.unstructured import delaunay_mesh_2d, from_cartesian
from repro.solver import (
    FlowResidual,
    MatrixFreeJacobian,
    UnstructuredFlowResidual,
    UnstructuredMatrixFreeJacobian,
    assemble_unstructured_jacobian,
    newton_solve,
    newton_solve_unstructured,
)

FLUID = FluidProperties()


@pytest.fixture(scope="module")
def cartesian_pair():
    """A structured problem and its connection-list twin."""
    mesh = CartesianMesh3D(5, 4, 3)
    trans = Transmissibility(mesh)
    umesh = from_cartesian(mesh, trans)
    s_res = FlowResidual(mesh, FLUID, dt=3600.0, trans=trans)
    u_res = UnstructuredFlowResidual(
        umesh, FLUID, dt=3600.0, porosity=float(mesh.porosity[0, 0, 0])
    )
    p = random_pressure(mesh, seed=40, amplitude=2e5)
    return mesh, s_res, u_res, p


class TestResidualEquivalence:
    def test_matches_structured_residual(self, cartesian_pair):
        mesh, s_res, u_res, p = cartesian_pair
        mass_s = s_res.mass_density(p)
        mass_u = u_res.mass_density(p.ravel())
        np.testing.assert_allclose(mass_u, mass_s.ravel(), rtol=1e-13)
        r_s = s_res(p, mass_s)
        r_u = u_res(p.ravel(), mass_u)
        scale = np.abs(r_s).max()
        np.testing.assert_allclose(r_u, r_s.ravel(), atol=1e-11 * scale)

    def test_source_term(self, cartesian_pair):
        mesh, _, _, p = cartesian_pair
        umesh = from_cartesian(mesh)
        src = np.zeros(umesh.num_cells)
        src[5] = 3.0
        res = UnstructuredFlowResidual(umesh, FLUID, dt=10.0, source=src)
        r = res(p.ravel(), res.mass_density(p.ravel()))
        r0 = UnstructuredFlowResidual(umesh, FLUID, dt=10.0)(
            p.ravel(), res.mass_density(p.ravel())
        )
        np.testing.assert_allclose(r, r0 - src)

    def test_rejects_bad_inputs(self):
        umesh = delaunay_mesh_2d(20, seed=0)
        with pytest.raises(ValueError, match="dt"):
            UnstructuredFlowResidual(umesh, FLUID, dt=0.0)
        with pytest.raises(ValueError, match="porosity"):
            UnstructuredFlowResidual(umesh, FLUID, dt=1.0, porosity=0.0)
        with pytest.raises(ValueError, match="source"):
            UnstructuredFlowResidual(umesh, FLUID, dt=1.0, source=np.zeros(3))


class TestJacobian:
    def test_matches_structured_jacobian(self, cartesian_pair):
        mesh, s_res, u_res, p = cartesian_pair
        s_jac = MatrixFreeJacobian(s_res, p)
        u_jac = UnstructuredMatrixFreeJacobian(u_res, p.ravel())
        rng = np.random.default_rng(2)
        v = rng.standard_normal(mesh.num_cells)
        mv_s = s_jac.matvec(v)
        mv_u = u_jac.matvec(v)
        scale = np.abs(mv_s).max()
        np.testing.assert_allclose(mv_u, mv_s, atol=1e-11 * scale)
        np.testing.assert_allclose(
            u_jac.diagonal(), s_jac.diagonal().ravel(), rtol=1e-10
        )

    def test_matches_finite_difference_on_delaunay(self):
        umesh = delaunay_mesh_2d(60, seed=3)
        res = UnstructuredFlowResidual(umesh, FLUID, dt=3600.0, gravity=0.0)
        rng = np.random.default_rng(4)
        p = 1e7 + 2e5 * rng.standard_normal(umesh.num_cells)
        jac = UnstructuredMatrixFreeJacobian(res, p)
        mass = res.mass_density(p)
        v = rng.standard_normal(umesh.num_cells)
        eps = 1.0
        fd = (res(p + eps * v, mass) - res(p - eps * v, mass)) / (2 * eps)
        mv = jac.matvec(v)
        scale = np.abs(fd).max()
        np.testing.assert_allclose(mv, fd, atol=1e-6 * scale)

    def test_assembled_matches_matfree(self):
        umesh = delaunay_mesh_2d(40, seed=5)
        res = UnstructuredFlowResidual(umesh, FLUID, dt=100.0)
        rng = np.random.default_rng(6)
        p = 1e7 + 1e5 * rng.standard_normal(umesh.num_cells)
        jac = UnstructuredMatrixFreeJacobian(res, p)
        J = assemble_unstructured_jacobian(res, p)
        v = rng.standard_normal(umesh.num_cells)
        np.testing.assert_allclose(jac.matvec(v), J @ v, rtol=1e-12, atol=1e-20)

    def test_rejects_wrong_size(self):
        umesh = delaunay_mesh_2d(10, seed=0)
        res = UnstructuredFlowResidual(umesh, FLUID, dt=1.0)
        jac = UnstructuredMatrixFreeJacobian(res, np.full(10, 1e7))
        with pytest.raises(ValueError):
            jac.matvec(np.zeros(11))


class TestNewton:
    def test_matches_structured_newton(self, cartesian_pair):
        """Same problem, same Newton trajectory, same answer."""
        mesh, s_res, u_res, p = cartesian_pair
        s_result = newton_solve(s_res, p, rtol=1e-9)
        u_result = newton_solve_unstructured(u_res, p.ravel(), rtol=1e-9)
        assert s_result.converged and u_result.converged
        assert s_result.iterations == u_result.iterations
        scale = np.abs(s_result.pressure).max()
        np.testing.assert_allclose(
            u_result.pressure,
            s_result.pressure.ravel(),
            atol=1e-7 * scale,
        )

    def test_injection_on_delaunay_conserves_mass(self):
        """A source on a random triangulation: implicit step conserves
        mass to Newton tolerance."""
        umesh = delaunay_mesh_2d(80, seed=7)
        src = np.zeros(umesh.num_cells)
        src[40] = 2.0
        dt = 3600.0
        res = UnstructuredFlowResidual(
            umesh, FLUID, dt=dt, gravity=0.0, source=src
        )
        p0 = np.full(umesh.num_cells, 1.5e7)
        result = newton_solve_unstructured(res, p0, rtol=1e-10)
        assert result.converged
        mass0 = (res.mass_density(p0) * umesh.volumes).sum()
        mass1 = (res.mass_density(result.pressure) * umesh.volumes).sum()
        assert mass1 - mass0 == pytest.approx(2.0 * dt, rel=1e-6)

    def test_pressure_peaks_at_source(self):
        umesh = delaunay_mesh_2d(80, seed=8)
        src = np.zeros(umesh.num_cells)
        src[10] = 4.0
        res = UnstructuredFlowResidual(
            umesh, FLUID, dt=3600.0, gravity=0.0, source=src
        )
        result = newton_solve_unstructured(
            res, np.full(umesh.num_cells, 1.5e7), rtol=1e-9
        )
        assert result.converged
        assert int(np.argmax(result.pressure)) == 10
