"""Tests for the TTI acoustic wave application (paper Sec. 8)."""

import math

import numpy as np
import pytest

from repro.core import CartesianMesh3D
from repro.core.stencil import DIAGONAL_XY, Connection
from repro.wave import (
    TTIMedium,
    WavePropagator,
    WseWavePropagator,
    ricker_wavelet,
    stencil_coefficients,
)


@pytest.fixture
def mesh():
    return CartesianMesh3D(8, 7, 6, dx=10.0, dy=10.0, dz=10.0)


@pytest.fixture
def medium():
    return TTIMedium(velocity=3000.0, epsilon=0.2, theta=math.pi / 5)


class TestMedium:
    def test_isotropic_limit(self):
        m = TTIMedium(epsilon=0.0, theta=0.7)
        assert m.wxx == pytest.approx(1.0)
        assert m.wyy == pytest.approx(1.0)
        assert m.wxy == pytest.approx(0.0)

    def test_untilted_no_cross_term(self):
        m = TTIMedium(epsilon=0.3, theta=0.0)
        assert m.wxy == pytest.approx(0.0)
        assert m.wxx == pytest.approx(1.6)
        assert m.wyy == pytest.approx(1.0)

    def test_tilt_rotates_weights(self):
        a = TTIMedium(epsilon=0.3, theta=0.0)
        b = TTIMedium(epsilon=0.3, theta=math.pi / 2)
        assert a.wxx == pytest.approx(b.wyy)
        assert a.wyy == pytest.approx(b.wxx)

    def test_cross_term_maximised_at_45_degrees(self):
        m45 = TTIMedium(epsilon=0.3, theta=math.pi / 4)
        m30 = TTIMedium(epsilon=0.3, theta=math.pi / 6)
        assert abs(m45.wxy) > abs(m30.wxy)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TTIMedium(velocity=0.0)
        with pytest.raises(ValueError):
            TTIMedium(epsilon=-0.6)

    def test_cfl_decreases_with_velocity(self):
        slow = TTIMedium(velocity=1500.0)
        fast = TTIMedium(velocity=4000.0)
        assert fast.max_stable_dt(10, 10, 10) < slow.max_stable_dt(10, 10, 10)


class TestStencilCoefficients:
    def test_diagonal_signs_form_cross_derivative(self, medium):
        coeffs = stencil_coefficients(medium, 10.0, 10.0, 10.0)
        wd = medium.wxy / 400.0
        assert coeffs[Connection.SOUTHEAST][0] == pytest.approx(wd)
        assert coeffs[Connection.NORTHWEST][0] == pytest.approx(wd)
        assert coeffs[Connection.NORTHEAST][0] == pytest.approx(-wd)
        assert coeffs[Connection.SOUTHWEST][0] == pytest.approx(-wd)

    def test_diagonal_coefficients_sum_to_zero(self, medium):
        coeffs = stencil_coefficients(medium, 10.0, 10.0, 10.0)
        total = sum(coeffs[c][0] for c in DIAGONAL_XY)
        assert total == pytest.approx(0.0, abs=1e-18)

    def test_constant_field_annihilated_interior(self, medium, mesh):
        """L(const) == 0 on interior cells (full diagonal cross present;
        boundary cells lose members of the +/- cross and pick up a
        Dirichlet-edge contribution, as any truncated stencil does)."""
        dt = 0.5 * medium.max_stable_dt(mesh.dx, mesh.dy, mesh.dz)
        prop = WavePropagator(mesh, medium, dt)
        lap = prop.laplacian(mesh.full(3.7))
        np.testing.assert_allclose(lap[1:-1, 1:-1, 1:-1], 0.0, atol=1e-12)

    def test_quadratic_field_gives_constant_laplacian(self, medium):
        """L(x^2) == 2 wxx on interior cells (consistency order check)."""
        mesh = CartesianMesh3D(9, 9, 3, dx=2.0, dy=2.0, dz=2.0)
        dt = 0.5 * medium.max_stable_dt(2.0, 2.0, 2.0)
        prop = WavePropagator(mesh, medium, dt)
        x = np.arange(9) * 2.0
        field = np.broadcast_to(x**2, mesh.shape_zyx).copy()
        lap = prop.laplacian(field)
        interior = lap[1:-1, 1:-1, 1:-1]
        np.testing.assert_allclose(interior, 2.0 * medium.wxx, rtol=1e-10)


class TestReferencePropagator:
    def test_cfl_enforced(self, mesh, medium):
        limit = medium.max_stable_dt(mesh.dx, mesh.dy, mesh.dz)
        with pytest.raises(ValueError, match="CFL"):
            WavePropagator(mesh, medium, 1.5 * limit)
        with pytest.raises(ValueError):
            WavePropagator(mesh, medium, 0.0)

    def test_zero_field_stays_zero(self, mesh, medium):
        dt = 0.5 * medium.max_stable_dt(mesh.dx, mesh.dy, mesh.dz)
        prop = WavePropagator(mesh, medium, dt)
        for _ in range(5):
            prop.step()
        assert prop.max_amplitude() == 0.0

    def test_source_injects_energy(self, mesh, medium):
        dt = 0.5 * medium.max_stable_dt(mesh.dx, mesh.dy, mesh.dz)
        prop = WavePropagator(mesh, medium, dt, source=(4, 3, 3))
        prop.step(source_amplitude=1.0)
        assert prop.max_amplitude() > 0.0
        # the injection is local at first
        u = prop.u_curr
        assert np.count_nonzero(u) == 1

    def test_wave_propagates_outward(self, medium):
        mesh = CartesianMesh3D(15, 15, 3, dx=10.0, dy=10.0, dz=10.0)
        dt = 0.5 * medium.max_stable_dt(10.0, 10.0, 10.0)
        prop = WavePropagator(mesh, medium, dt, source=(7, 7, 1))
        wavelet = ricker_wavelet(30, dt, peak_frequency=40.0)
        prop.run(wavelet)
        u = prop.u_curr[1]
        assert abs(u[7, 10]) > 0  # energy reached 3 cells away
        assert prop.step_count == 30

    def test_stable_under_cfl(self, medium):
        """Long run at 0.9 CFL stays bounded (no blow-up)."""
        mesh = CartesianMesh3D(10, 10, 4, dx=10.0, dy=10.0, dz=10.0)
        dt = 0.9 * medium.max_stable_dt(10.0, 10.0, 10.0)
        prop = WavePropagator(mesh, medium, dt, source=(5, 5, 2))
        wavelet = ricker_wavelet(20, dt, peak_frequency=40.0)
        prop.run(wavelet)
        peak_after_source = prop.max_amplitude()
        for _ in range(150):
            prop.step()
        assert prop.max_amplitude() < 50 * peak_after_source

    def test_untilted_symmetric_source_symmetric_field(self):
        """theta = 0, centred source: the field keeps x/y mirror symmetry."""
        medium = TTIMedium(epsilon=0.2, theta=0.0)
        mesh = CartesianMesh3D(11, 11, 3, dx=10.0, dy=10.0, dz=10.0)
        dt = 0.5 * medium.max_stable_dt(10.0, 10.0, 10.0)
        prop = WavePropagator(mesh, medium, dt, source=(5, 5, 1))
        prop.run(ricker_wavelet(25, dt, peak_frequency=40.0))
        u = prop.u_curr
        np.testing.assert_allclose(u, u[:, :, ::-1], atol=1e-18)
        np.testing.assert_allclose(u, u[:, ::-1, :], atol=1e-18)

    def test_ricker_wavelet_shape(self):
        w = ricker_wavelet(100, 1e-3, peak_frequency=25.0)
        assert w.shape == (100,)
        assert w.max() == pytest.approx(1.0, abs=1e-6)  # peak at t = t0
        with pytest.raises(ValueError):
            ricker_wavelet(10, 1e-3, peak_frequency=0.0)


class TestDataflowPropagator:
    def test_matches_reference(self, medium):
        mesh = CartesianMesh3D(6, 5, 4, dx=10.0, dy=10.0, dz=10.0)
        dt = 0.7 * medium.max_stable_dt(10.0, 10.0, 10.0)
        wavelet = ricker_wavelet(10, dt, peak_frequency=40.0)
        ref = WavePropagator(mesh, medium, dt, source=(3, 2, 2))
        u_ref = ref.run(wavelet)
        wse = WseWavePropagator(mesh, medium, dt, source=(3, 2, 2))
        u_wse = wse.run(wavelet)
        scale = np.abs(u_ref).max()
        np.testing.assert_allclose(u_wse, u_ref, atol=1e-13 * scale)

    def test_matches_reference_isotropic(self):
        medium = TTIMedium(epsilon=0.0, theta=0.0)
        mesh = CartesianMesh3D(5, 5, 3, dx=10.0, dy=10.0, dz=10.0)
        dt = 0.7 * medium.max_stable_dt(10.0, 10.0, 10.0)
        wavelet = ricker_wavelet(8, dt, peak_frequency=40.0)
        u_ref = WavePropagator(mesh, medium, dt, source=(2, 2, 1)).run(wavelet)
        u_wse = WseWavePropagator(mesh, medium, dt, source=(2, 2, 1)).run(wavelet)
        scale = max(np.abs(u_ref).max(), 1e-30)
        np.testing.assert_allclose(u_wse, u_ref, atol=1e-13 * scale)

    def test_reuses_flux_channel_definitions(self, medium):
        """The wave program binds the exact flux-kernel channels."""
        mesh = CartesianMesh3D(4, 4, 3)
        dt = 0.5 * medium.max_stable_dt(mesh.dx, mesh.dy, mesh.dz)
        wse = WseWavePropagator(mesh, medium, dt)
        names = {wse.colors.name_of(c) for c in range(len(wse.colors))}
        assert names == {
            "card_east", "card_west", "card_south", "card_north",
            "diag_se", "diag_sw", "diag_nw", "diag_ne",
        }

    def test_single_pe_fabric(self, medium):
        """1x1: vertical-only physics, zero fabric traffic."""
        mesh = CartesianMesh3D(1, 1, 6, dx=10.0, dy=10.0, dz=10.0)
        dt = 0.5 * medium.max_stable_dt(10.0, 10.0, 10.0)
        wavelet = ricker_wavelet(6, dt, peak_frequency=40.0)
        u_ref = WavePropagator(mesh, medium, dt, source=(0, 0, 3)).run(wavelet)
        u_wse = WseWavePropagator(mesh, medium, dt, source=(0, 0, 3)).run(wavelet)
        scale = max(np.abs(u_ref).max(), 1e-30)
        np.testing.assert_allclose(u_wse, u_ref, atol=1e-13 * scale)

    def test_cfl_enforced(self, mesh, medium):
        limit = medium.max_stable_dt(mesh.dx, mesh.dy, mesh.dz)
        with pytest.raises(ValueError):
            WseWavePropagator(mesh, medium, 2 * limit)

    def test_variable_layering_rejected(self, medium):
        """The wave stencil assumes uniform spacing: a variable-dz mesh
        must be refused, not silently mis-discretized."""
        lmesh = CartesianMesh3D(
            4, 4, 3, dx=10.0, dy=10.0, dz_layers=np.array([1.0, 2.0, 4.0])
        )
        with pytest.raises(ValueError, match="dz_layers"):
            WavePropagator(lmesh, medium, 1e-4)
        with pytest.raises(ValueError, match="dz_layers"):
            WseWavePropagator(lmesh, medium, 1e-4)
