"""Pseudo-CSL listing of the configured flux program.

The paper implements its kernel in the Cerebras Software Language (CSL);
our simulator configures the same objects programmatically.  This module
renders a configured :class:`~repro.dataflow.program.FluxProgram` back
into a human-readable CSL-flavoured listing — color declarations, router
configurations by PE role, the per-PE memory map, and the task bodies
with the exact DSD instruction sequence — so the simulated program can
be reviewed the way the real one would be.

The listing is documentation, not compilable CSL; its value is that it
is generated *from the live configuration*, so it cannot drift from what
the simulator executes (tests assert the structural facts against the
program object).
"""

from __future__ import annotations

from repro.dataflow.cardinal import CARDINAL_CHANNELS
from repro.dataflow.diagonal import DIAGONAL_CHANNELS, static_position
from repro.dataflow.program import FluxProgram
from repro.wse.geometry import Port

__all__ = ["generate_listing"]

_FLUX_SEQUENCE = """\
  // one face direction over the Z column (14 FLOPs per cell, Table 4)
  @fsubs(dp, p_L, p_K);            // 1  dPhi pressure part
  @fsubs(gz, z_L, z_K);            // 2  elevation difference
  @fmuls(gz, gz, g);               // 3  g * dz (in-place reuse)
  @fmuls(a,  rho_K, gz);           // 4
  @fmuls(b,  rho_L, gz);           // 5
  @fadds(a,  a, b);                // 6  rho_K*g*dz + rho_L*g*dz
  @fmacs(b,  a, half, dp);         // 7  dPhi = 0.5*s + dp  (FMA)
  @fsubs(a,  zero, b);             // 8  upwind compare (-dPhi)
  @select(dp, a < 0, rho_K, rho_L);//    Eq. 4 predicated pick
  @fmuls(dp, dp, inv_mu);          // 9  lambda_upw
  @fmuls(dp, dp, trans);           // 10 Upsilon * lambda
  @fmuls(dp, dp, b);               // 11 F = ... * dPhi
  @fnegs(a,  dp);                  // 12
  @fsubs(r,  r, a);                // 13-14 residual += F"""


def _port_name(port: Port) -> str:
    return port.name


def _routes_line(position) -> str:
    parts = []
    for in_port, outs in position.items():
        outs_s = ", ".join(_port_name(o) for o in outs)
        parts.append(f"{_port_name(in_port)} -> {{{outs_s}}}")
    return "; ".join(parts) if parts else "(drop)"


def generate_listing(program: FluxProgram) -> str:
    """Render *program* as a pseudo-CSL listing."""
    mesh = program.mesh
    lines: list[str] = []
    w = lines.append

    w("// ===================================================================")
    w("// FV flux computation on the WSE fabric - generated program listing")
    import numpy as np

    w(f"// mesh {mesh.nx} x {mesh.ny} x {mesh.nz}; fabric "
      f"{program.fabric.width} x {program.fabric.height} PEs; "
      f"dtype {np.dtype(program.dtype).name}")
    w(f"// options: reuse_buffers={program.reuse_buffers} "
      f"vectorized={program.vectorized} "
      f"compute_fluxes={program.compute_fluxes} "
      f"overlap_compute={program.overlap_compute}")
    w("// ===================================================================")
    w("")

    # ---- colors ------------------------------------------------------
    w("// ---- routable colors (Sec. 5.2) ----")
    for name in program.colors.names():
        cid = program.colors.lookup(name)
        w(f"const {name}: color = @get_color({cid});")
    w("")

    # ---- router configuration by PE role -----------------------------
    w("// ---- router configuration ----")
    for channel in CARDINAL_CHANNELS:
        color = program.colors.lookup(channel.name)
        w(f"// {channel.name}: two switch positions "
          f"(Fig. 6a), control wavelets alternate them")
        samples = {
            "seed edge": None,
            "even distance": None,
            "odd distance": None,
        }
        for pe in program.fabric.pes():
            router = program.fabric.router(*pe.coord)
            cfg = router.configs[color]
            if cfg.positions[0] == cfg.positions[1]:
                key = "seed edge"
            elif cfg.position == 0:
                key = "even distance"
            else:
                key = "odd distance"
            if samples[key] is None:
                samples[key] = cfg
        for role, cfg in samples.items():
            if cfg is None:
                continue
            w(f"//   {role:<13} pos0: {_routes_line(cfg.positions[0])}  |  "
              f"pos1: {_routes_line(cfg.positions[1])}")
    for channel in DIAGONAL_CHANNELS:
        pos = static_position(channel)
        w(f"// {channel.name}: static two-hop route (Fig. 5): "
          f"{_routes_line(pos)}")
    w("")

    # ---- memory map ---------------------------------------------------
    w("// ---- PE memory map (48 KB scratchpad, Sec. 5.1 / 5.3.1) ----")
    pe0 = program.fabric.pe(0, 0)
    for name in pe0.memory.names():
        alloc = pe0.memory.get(name)
        w(f"var {name:<22} : [{alloc.nbytes:>6} B]  @ offset {alloc.offset}")
    w(f"// high water: {pe0.memory.high_water} of {pe0.memory.capacity} B")
    w("")

    # ---- tasks --------------------------------------------------------
    w("// ---- tasks (activated by wavelet arrival, Sec. 5.2) ----")
    for channel in CARDINAL_CHANNELS:
        w(f"task recv_{channel.name}() {{  // data from the "
          f"{channel.delivers.name} neighbour")
        w("  @fmovs(recv, fabric_queue);   // 2 words/cell (Table 4 FMOV)")
        if program.compute_fluxes:
            w(f"  flux_face(trans_{channel.delivers.name});"
              + ("" if program.overlap_compute else "  // deferred variant"))
        w("}")
        w(f"task ctrl_{channel.name}() {{ if (!sent) send_column(); }}")
    for channel in DIAGONAL_CHANNELS:
        w(f"task recv_{channel.name}() {{  // two-hop data from the "
          f"{channel.delivers.name} neighbour")
        w("  @fmovs(recv, fabric_queue);")
        if program.compute_fluxes:
            w(f"  flux_face(trans_{channel.delivers.name});")
        w("}")
    w("")
    w("fn flux_face(trans: dsd) {")
    w(_FLUX_SEQUENCE)
    w("}")
    return "\n".join(lines)
