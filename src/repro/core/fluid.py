"""Fluid property model: density EOS and mobility (paper Eqs. 4-5).

The fluid is slightly compressible with an exponential equation of state,

    rho(p) = rho_ref * exp(c_f * (p - p_ref))                        (Eq. 5)

and a constant viscosity.  The upwinded mobility used by the TPFA flux is

    lambda_upw = rho_K / mu   if dPhi_KL > 0
               = rho_L / mu   otherwise                              (Eq. 4)

which matches the paper's convention exactly (including the sign choice of
Eq. 4 as printed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import constants
from repro.util.arrays import check_positive

__all__ = ["FluidProperties", "upwind_mobility"]


@dataclass(frozen=True)
class FluidProperties:
    """Constant fluid parameters of the single-phase model (Sec. 3).

    Attributes
    ----------
    viscosity:
        Dynamic viscosity ``mu`` [Pa.s]; constant per Eq. 1a.
    compressibility:
        Fluid compressibility ``c_f`` [1/Pa] of Eq. 5.
    reference_density:
        ``rho_ref`` [kg/m^3] of Eq. 5.
    reference_pressure:
        ``p_ref`` [Pa] of Eq. 5.
    """

    viscosity: float = constants.DEFAULT_VISCOSITY
    compressibility: float = constants.DEFAULT_COMPRESSIBILITY
    reference_density: float = constants.DEFAULT_REFERENCE_DENSITY
    reference_pressure: float = constants.DEFAULT_REFERENCE_PRESSURE

    def __post_init__(self) -> None:
        check_positive(self.viscosity, name="viscosity")
        check_positive(self.compressibility, name="compressibility", allow_zero=True)
        check_positive(self.reference_density, name="reference_density")

    def density(self, pressure, out: np.ndarray | None = None) -> np.ndarray:
        """Evaluate Eq. 5 for a scalar or array of pressures.

        Parameters
        ----------
        pressure:
            Cell pressure(s) [Pa].
        out:
            Optional output array reused in-place (hot-loop idiom).
        """
        p = np.asarray(pressure)
        if out is None:
            out = np.empty_like(p, dtype=np.result_type(p, np.float64) if p.dtype.kind != "f" else p.dtype)
        np.subtract(p, self.reference_pressure, out=out)
        out *= self.compressibility
        np.exp(out, out=out)
        out *= self.reference_density
        return out

    def density_derivative(self, pressure) -> np.ndarray:
        """d(rho)/dp = c_f * rho(p); used by the implicit solver's Jacobian."""
        return self.compressibility * self.density(pressure)

    def mobility(self, density) -> np.ndarray:
        """Single-phase mobility rho / mu for a given density."""
        return np.asarray(density) / self.viscosity


def upwind_mobility(
    potential_difference,
    density_K,
    density_L,
    viscosity: float,
) -> np.ndarray:
    """Single-point upwinding of the mobility (Eq. 4), vectorized.

    Parameters
    ----------
    potential_difference:
        ``dPhi_KL = p_L - p_K + rho_avg * g * (z_L - z_K)`` (Eq. 3b).
    density_K, density_L:
        Densities in the local cell K and its neighbour L.
    viscosity:
        Constant dynamic viscosity ``mu``.

    Returns
    -------
    numpy.ndarray
        ``rho_K / mu`` where ``dPhi > 0``, else ``rho_L / mu``.
    """
    dphi = np.asarray(potential_difference)
    rho = np.where(dphi > 0, density_K, density_L)
    return rho / viscosity
