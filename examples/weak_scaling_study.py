#!/usr/bin/env python
"""Weak-scaling study: reproduce the shape of paper Table 2.

Sweeps the X-Y plane at constant Nz exactly as the paper does, printing
(a) the calibrated model's projection of every published row, and
(b) a functional sweep of the lockstep dataflow simulator, whose modelled
per-PE cycles demonstrate the flat weak-scaling directly: the per-cell
work is independent of how many PEs participate.

Run:  python examples/weak_scaling_study.py
"""

import time

import numpy as np

from repro.core import FluidProperties, Transmissibility, random_pressure
from repro.core.constants import PAPER_WEAK_SCALING_MESHES
from repro.dataflow import LockstepWseSimulation
from repro.perf import PAPER_TABLE2_CS2_SECONDS, PAPER_TABLE2_A100_SECONDS, weak_scaling_row
from repro.workloads import make_geomodel


def projected_table() -> None:
    print("— model projection of paper Table 2 "
          "(1000 applications, Nz = 246) —")
    print(f"{'mesh':>14} {'cells':>12} {'Gcell/s':>9} "
          f"{'CS-2 [s]':>9} {'paper':>7} {'A100 [s]':>9} {'paper':>8} {'speedup':>8}")
    for mesh in PAPER_WEAK_SCALING_MESHES:
        row = weak_scaling_row(*mesh)
        print(f"{row.nx:>4}x{row.ny:<4}x{row.nz:<3} {row.total_cells:>12,} "
              f"{row.throughput_gcells:>9.1f} {row.cs2_seconds:>9.4f} "
              f"{PAPER_TABLE2_CS2_SECONDS[mesh]:>7.4f} "
              f"{row.a100_seconds:>9.3f} "
              f"{PAPER_TABLE2_A100_SECONDS[mesh]:>8.4f} {row.speedup:>7.1f}x")
    print("shape check: CS-2 column flat, A100 column linear in cells,\n"
          "speedup grows from ~11x to ~200x as the mesh fills the fabric\n")


def functional_sweep() -> None:
    print("— functional lockstep sweep (per-PE modelled cycles stay flat) —")
    fluid = FluidProperties()
    nz = 12
    print(f"{'mesh':>12} {'cells':>9} {'host [ms]':>10} "
          f"{'model cycles/PE':>16} {'flops/cell':>11}")
    for n in (12, 24, 36, 48, 64):
        mesh = make_geomodel(n, n, nz, kind="uniform")
        trans = Transmissibility(mesh, dtype=np.float32)
        sim = LockstepWseSimulation(mesh, fluid, trans, dtype=np.float32)
        pressure = random_pressure(mesh, seed=0, dtype=np.float32)
        t0 = time.perf_counter()
        sim.run_application(pressure)
        host_ms = (time.perf_counter() - t0) * 1e3
        rep = sim.report()
        cycles_per_pe = rep.compute_cycles / (n * n)
        flops_per_cell = rep.flops / mesh.num_cells
        print(f"{n:>4}x{n:<4}x{nz:<2} {mesh.num_cells:>9,} {host_ms:>10.2f} "
              f"{cycles_per_pe:>16.1f} {flops_per_cell:>11.1f}")
    print("cycles per PE are constant across the sweep — every PE works on\n"
          "its own Z column regardless of fabric size, the mechanism behind\n"
          "the paper's near-perfect weak scaling")


def main() -> None:
    projected_table()
    functional_sweep()


if __name__ == "__main__":
    main()
