"""Policy-driven self-healing runs (`repro.resilience`).

The composition layer over the robustness primitives the earlier
subsystems shipped: fault *detection* (`repro.faults` structured
errors, the par runtime's crash/heartbeat liveness), *state capture*
(`repro.solver.checkpoint`), and *proof of equivalence*
(`repro.conform` tolerance classes, `repro.obs.replay` artifacts) —
driven end to end by one :class:`RunSupervisor` executing a
:class:`ResiliencePolicy`:

* bounded-loss restart from the newest intact checkpoint (corrupt
  checkpoints are checksum-detected and skipped),
* jittered-exponential retry budgets, seeded for reproducibility,
* heartbeat/lease detection of hung-but-alive par workers,
* conformance-verified degradation down a backend ladder
  (par → cluster, gpu → lockstep), stamped in the result,
* post-mortem ``.rpz`` bundles + decision timelines on give-up.

``repro supervise`` is the CLI front end; the compound scenarios in
``repro chaos`` soak it in CI.
"""

from repro.resilience.policy import DEFAULT_LADDER, ResiliencePolicy
from repro.resilience.supervisor import (
    RECOVERABLE_ERRORS,
    RunSupervisor,
    SupervisedResult,
    SupervisorGiveUp,
)

__all__ = [
    "DEFAULT_LADDER",
    "ResiliencePolicy",
    "RECOVERABLE_ERRORS",
    "RunSupervisor",
    "SupervisedResult",
    "SupervisorGiveUp",
]
