"""`FabricProgramIR` serialization: byte-stable round trips, stable hashes."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import CartesianMesh3D
from repro.ir import FabricProgramIR, derive_ir

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def _small_ir() -> FabricProgramIR:
    return derive_ir(CartesianMesh3D(4, 3, 4))


class TestRoundTrip:
    def test_to_json_from_json_round_trips_byte_for_byte(self, tmp_path):
        ir = _small_ir()
        path = tmp_path / "ir.json"
        ir.to_json(path)
        first = path.read_bytes()
        loaded = FabricProgramIR.from_json(path)
        assert loaded.doc == ir.doc
        assert loaded.content_hash == ir.content_hash
        loaded.to_json(path)
        assert path.read_bytes() == first

    def test_dumps_matches_serialized_file(self, tmp_path):
        ir = _small_ir()
        path = tmp_path / "ir.json"
        ir.to_json(path)
        assert path.read_text(encoding="utf-8") == ir.dumps()

    def test_typed_accessors_survive_the_round_trip(self, tmp_path):
        ir = _small_ir()
        path = tmp_path / "ir.json"
        ir.to_json(path)
        loaded = FabricProgramIR.from_json(path)
        assert loaded.mesh_shape == (4, 3, 4)
        assert loaded.colors == ir.colors
        assert loaded.exchange_plan == ir.exchange_plan
        for color in ir.route_color_ids():
            for coord in ir.route_coords(color):
                assert loaded.route_for(color, coord) == ir.route_for(
                    color, coord
                )


class TestContentHash:
    def test_hash_is_stable_across_processes(self):
        """The fingerprint replay artifacts pin on must not depend on
        interpreter state (hash randomization, dict order, ...)."""
        ir = _small_ir()
        code = (
            "from repro.core import CartesianMesh3D;"
            "from repro.ir import derive_ir;"
            "print(derive_ir(CartesianMesh3D(4, 3, 4)).content_hash)"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert out.stdout.strip() == ir.content_hash

    def test_annotations_are_excluded_from_the_hash(self):
        ir = _small_ir()
        before = ir.content_hash
        ir.annotate("fold_schedule", {"0,0": ["WEST"]})
        assert ir.content_hash == before

    def test_distinct_programs_hash_differently(self):
        a = derive_ir(CartesianMesh3D(4, 3, 4))
        b = derive_ir(CartesianMesh3D(4, 3, 5))
        assert a.content_hash != b.content_hash
        assert a != b and a == _small_ir()


class TestInvalidFiles:
    def test_missing_file_is_value_error_naming_path(self, tmp_path):
        path = tmp_path / "absent.json"
        with pytest.raises(ValueError, match="absent.json"):
            FabricProgramIR.from_json(path)

    def test_invalid_json_names_source(self, tmp_path):
        path = tmp_path / "mangled.json"
        path.write_text("{this is not json", encoding="utf-8")
        with pytest.raises(ValueError, match="mangled.json"):
            FabricProgramIR.from_json(path)

    def test_non_object_document_is_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(ValueError, match="not an IR document"):
            FabricProgramIR.from_json(path)

    def test_missing_keys_are_named(self, tmp_path):
        path = tmp_path / "sparse.json"
        path.write_text(json.dumps({"schema": 1}), encoding="utf-8")
        with pytest.raises(ValueError, match="missing keys"):
            FabricProgramIR.from_json(path)

    def test_tampered_document_fails_the_hash_check(self, tmp_path):
        path = tmp_path / "ir.json"
        _small_ir().to_json(path)
        doc = json.loads(path.read_text(encoding="utf-8"))
        doc["mesh"]["nx"] = 99
        path.write_text(json.dumps(doc), encoding="utf-8")
        with pytest.raises(ValueError, match="content hash mismatch"):
            FabricProgramIR.from_json(path)
