"""Concurrency lint rules: positives, negatives, pragma suppression."""

from repro.check import race_lint_paths, race_lint_source
from repro.check.findings import Severity


def codes(findings):
    return [f.code for f in findings]


class TestForkUnsafe:
    def test_import_time_lock_is_error(self):
        findings = race_lint_source(
            "import threading\n_LOCK = threading.Lock()\n", "mod.py"
        )
        assert codes(findings) == ["race-fork-unsafe"]
        assert findings[0].severity == Severity.ERROR
        assert findings[0].line == 2

    def test_class_scope_counts_as_import_time(self):
        src = (
            "import threading\n"
            "class Pool:\n"
            "    guard = threading.RLock()\n"
        )
        assert codes(race_lint_source(src, "mod.py")) == ["race-fork-unsafe"]

    def test_thread_inside_function_is_warning(self):
        src = (
            "import threading\n"
            "def start():\n"
            "    t = threading.Thread(target=print)\n"
            "    t.start()\n"
        )
        findings = race_lint_source(src, "mod.py")
        assert codes(findings) == ["race-fork-unsafe"]
        assert findings[0].severity == Severity.WARNING

    def test_lock_inside_function_is_clean(self):
        src = (
            "import threading\n"
            "def make():\n"
            "    return threading.Lock()\n"
        )
        assert race_lint_source(src, "mod.py") == []


class TestUnguardedWrite:
    def test_subscript_store_into_protocol_array_is_error(self):
        src = "def poke(arena):\n    arena.heartbeats[0] = 99\n"
        findings = race_lint_source(src, "rogue.py")
        assert codes(findings) == ["race-unguarded-write"]

    def test_set_seq_outside_protocol_modules_is_error(self):
        src = "def poke(arena):\n    arena.set_seq((0, 1, 0), 0, 5)\n"
        assert codes(race_lint_source(src, "rogue.py")) == [
            "race-unguarded-write"
        ]

    def test_protocol_modules_themselves_are_exempt(self):
        src = "def publish(self, key, parity, want):\n    self.set_seq(key, parity, want)\n"
        assert race_lint_source(src, "src/repro/par/comm.py") == []

    def test_unrelated_subscript_store_is_clean(self):
        src = "def fill(block):\n    block[0] = 1.0\n"
        assert race_lint_source(src, "mod.py") == []


class TestUnboundedSpin:
    def test_polling_condition_with_no_escape_is_error(self):
        src = (
            "def wait(arena, key):\n"
            "    while arena.seq(key, 0) < 3:\n"
            "        pass\n"
        )
        assert codes(race_lint_source(src, "mod.py")) == ["race-unbounded-spin"]

    def test_while_true_with_no_escape_is_error(self):
        src = "def hang():\n    while True:\n        pass\n"
        assert codes(race_lint_source(src, "mod.py")) == ["race-unbounded-spin"]

    def test_break_in_own_body_is_an_escape(self):
        src = (
            "def wait(arena, key):\n"
            "    while arena.seq(key, 0) < 3:\n"
            "        if ready():\n"
            "            break\n"
        )
        assert race_lint_source(src, "mod.py") == []

    def test_break_only_in_nested_loop_is_not_an_escape(self):
        src = (
            "def wait(arena, key):\n"
            "    while arena.seq(key, 0) < 3:\n"
            "        for _ in range(4):\n"
            "            break\n"
        )
        assert codes(race_lint_source(src, "mod.py")) == ["race-unbounded-spin"]

    def test_raise_and_process_exit_are_escapes(self):
        for escape in ("raise RuntimeError('x')", "os._exit(1)"):
            src = (
                "import os\n"
                "def wait():\n"
                "    while True:\n"
                f"        {escape}\n"
            )
            assert race_lint_source(src, "mod.py") == [], escape

    def test_progress_bounded_backoff_loop_is_clean(self):
        # test drives the loop by a counter; the body merely sleeps
        src = (
            "import time\n"
            "def drain(n):\n"
            "    done = 0\n"
            "    while done < n:\n"
            "        done += step()\n"
            "        time.sleep(0.01)\n"
        )
        assert race_lint_source(src, "mod.py") == []


class TestSuppressionAndOrchestration:
    def test_pragma_suppresses_by_kebab_code_and_rule_id(self):
        for pragma in ("race-unbounded-spin", "RACE009"):
            src = (
                "def hang():\n"
                f"    while True:  # check: allow[{pragma}]\n"
                "        pass\n"
            )
            assert race_lint_source(src, "mod.py") == [], pragma

    def test_syntax_error_shares_det_parse(self):
        findings = race_lint_source("def broken(:\n", "bad.py")
        assert codes(findings) == ["det-parse"]

    def test_race_lint_paths_walks_a_tree(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        (tmp_path / "bad.py").write_text(
            "import threading\nL = threading.Lock()\n"
        )
        findings = race_lint_paths(tmp_path)
        assert codes(findings) == ["race-fork-unsafe"]
        assert findings[0].file.endswith("bad.py")

    def test_src_repro_lints_green(self):
        errors = [
            f for f in race_lint_paths("src/repro")
            if f.severity == Severity.ERROR
        ]
        assert errors == [], [f.render() for f in errors]
