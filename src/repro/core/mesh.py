"""3D Cartesian mesh with geometry and rock properties (paper Secs. 3, 5.1).

The data domain is an ``Nx x Ny x Nz`` Cartesian mesh (Fig. 4).  Arrays are
stored C-ordered with shape ``(nz, ny, nx)`` so the X dimension is innermost
— exactly the memory layout of the paper's GPU reference implementation
(Sec. 6) — while the public API speaks in ``(x, y, z)`` cell coordinates.

Gravity acts along the Z axis; ``elevation`` returns cell-centre z
coordinates used in the potential difference of Eq. 3b.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import constants
from repro.util.arrays import broadcast_to_shape, check_positive

__all__ = ["CartesianMesh3D"]


@dataclass
class CartesianMesh3D:
    """Uniform-spacing Cartesian mesh carrying per-cell rock properties.

    Parameters
    ----------
    nx, ny, nz:
        Number of cells per axis (all >= 1).
    dx, dy, dz:
        Cell spacing per axis [m].
    origin:
        Coordinate of the minimum corner of cell (0, 0, 0) [m].
    permeability:
        Scalar (homogeneous) or ``(nz, ny, nx)`` array of kappa [m^2].
    porosity:
        Scalar or ``(nz, ny, nx)`` array of reference porosity [-]; only
        used by the implicit solver's accumulation term.
    dz_layers:
        Optional per-layer thicknesses, shape ``(nz,)`` [m].  Geological
        models routinely have non-uniform layering; when given, ``dz``
        is ignored, elevations/volumes follow the cumulative
        thicknesses, and vertical transmissibilities use each side's own
        half distance.
    """

    nx: int
    ny: int
    nz: int
    dx: float = 10.0
    dy: float = 10.0
    dz: float = 2.0
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0)
    permeability: np.ndarray | float = constants.DEFAULT_PERMEABILITY
    porosity: np.ndarray | float = constants.DEFAULT_POROSITY
    dz_layers: np.ndarray | None = None
    _elevation: np.ndarray = field(init=False, repr=False)
    _dz_column: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        for name in ("nx", "ny", "nz"):
            n = getattr(self, name)
            if not isinstance(n, (int, np.integer)) or n < 1:
                raise ValueError(f"{name}: must be a positive integer, got {n!r}")
            setattr(self, name, int(n))
        check_positive(self.dx, name="dx")
        check_positive(self.dy, name="dy")
        if self.dz_layers is not None:
            layers = np.ascontiguousarray(self.dz_layers, dtype=np.float64)
            if layers.shape != (self.nz,):
                raise ValueError(
                    f"dz_layers: expected shape ({self.nz},), got {layers.shape}"
                )
            check_positive(layers, name="dz_layers")
            self.dz_layers = layers
            self._dz_column = layers
            self.dz = float(layers.mean())
        else:
            check_positive(self.dz, name="dz")
            self._dz_column = np.full(self.nz, float(self.dz))
        self.permeability = broadcast_to_shape(
            self.permeability, self.shape_zyx, name="permeability"
        )
        check_positive(self.permeability, name="permeability")
        self.porosity = broadcast_to_shape(self.porosity, self.shape_zyx, name="porosity")
        check_positive(self.porosity, name="porosity")
        z0 = self.origin[2]
        tops = z0 + np.concatenate(([0.0], np.cumsum(self._dz_column)))
        centres = 0.5 * (tops[:-1] + tops[1:])
        self._elevation = np.broadcast_to(
            centres[:, None, None], self.shape_zyx
        )

    # ------------------------------------------------------------------ #
    # Shape / size helpers
    # ------------------------------------------------------------------ #
    @property
    def shape_xyz(self) -> tuple[int, int, int]:
        """Logical dimensions ``(nx, ny, nz)`` as the paper writes them."""
        return (self.nx, self.ny, self.nz)

    @property
    def shape_zyx(self) -> tuple[int, int, int]:
        """Array storage shape ``(nz, ny, nx)`` (X innermost)."""
        return (self.nz, self.ny, self.nx)

    @property
    def num_cells(self) -> int:
        """Total number of cells ``Nx * Ny * Nz``."""
        return self.nx * self.ny * self.nz

    @property
    def is_uniform_z(self) -> bool:
        """True when every layer shares one thickness."""
        return self.dz_layers is None

    @property
    def dz_column(self) -> np.ndarray:
        """Per-layer thicknesses, shape ``(nz,)`` (uniform -> constant)."""
        return self._dz_column

    @property
    def cell_volume(self) -> float:
        """Uniform cell volume ``V_K = dx * dy * dz`` [m^3] (Eq. 2).

        Raises
        ------
        ValueError
            For variable layering — use :attr:`cell_volumes`.
        """
        if not self.is_uniform_z:
            raise ValueError(
                "cell_volume is undefined for variable layering; use "
                "cell_volumes"
            )
        return self.dx * self.dy * self.dz

    @property
    def cell_volumes(self) -> np.ndarray:
        """Per-cell volumes as a ``(nz, 1, 1)`` broadcastable array."""
        return (self.dx * self.dy * self._dz_column)[:, None, None]

    @property
    def spacing(self) -> tuple[float, float, float]:
        """Cell spacing ``(dx, dy, dz)`` (dz is the mean layer thickness
        for variable layering)."""
        return (self.dx, self.dy, self.dz)

    @property
    def elevation(self) -> np.ndarray:
        """Cell-centre z coordinates, shape ``(nz, ny, nx)`` (read-only view)."""
        return self._elevation

    # ------------------------------------------------------------------ #
    # Coordinate conversion
    # ------------------------------------------------------------------ #
    def cell_index(self, x: int, y: int, z: int) -> tuple[int, int, int]:
        """Convert cell coordinate ``(x, y, z)`` into an array index ``(z, y, x)``."""
        if not (0 <= x < self.nx and 0 <= y < self.ny and 0 <= z < self.nz):
            raise IndexError(f"cell ({x}, {y}, {z}) outside mesh {self.shape_xyz}")
        return (z, y, x)

    def flat_index(self, x: int, y: int, z: int) -> int:
        """Row-major flat index of cell ``(x, y, z)`` in a raveled field."""
        z_, y_, x_ = self.cell_index(x, y, z)
        return (z_ * self.ny + y_) * self.nx + x_

    def cell_centre(self, x: int, y: int, z: int) -> tuple[float, float, float]:
        """Physical coordinates of the cell centre [m]."""
        self.cell_index(x, y, z)
        ox, oy, _ = self.origin
        return (
            ox + (x + 0.5) * self.dx,
            oy + (y + 0.5) * self.dy,
            float(self._elevation[z, 0, 0]),
        )

    # ------------------------------------------------------------------ #
    # Field constructors
    # ------------------------------------------------------------------ #
    def full(self, value: float, dtype=np.float64) -> np.ndarray:
        """Allocate a constant cell field of the mesh's storage shape."""
        return np.full(self.shape_zyx, float(value), dtype=dtype)

    def zeros(self, dtype=np.float64) -> np.ndarray:
        """Allocate a zero cell field of the mesh's storage shape."""
        return np.zeros(self.shape_zyx, dtype=dtype)

    def validate_field(self, arr: np.ndarray, *, name: str = "field") -> np.ndarray:
        """Check that *arr* is a cell field of this mesh; return it unchanged."""
        if tuple(arr.shape) != self.shape_zyx:
            raise ValueError(
                f"{name}: expected shape {self.shape_zyx} (nz, ny, nx), got {tuple(arr.shape)}"
            )
        return arr

    # ------------------------------------------------------------------ #
    # Column access (dataflow mapping: one PE owns a whole Z column)
    # ------------------------------------------------------------------ #
    def column(self, arr: np.ndarray, x: int, y: int) -> np.ndarray:
        """View of field *arr* along the Z column at ``(x, y)`` (Sec. 5.1)."""
        self.validate_field(arr)
        if not (0 <= x < self.nx and 0 <= y < self.ny):
            raise IndexError(f"column ({x}, {y}) outside mesh plane")
        return arr[:, y, x]
