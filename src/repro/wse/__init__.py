"""Wafer-scale engine simulator: fabric, routers, PEs, DSD datapath.

This substrate stands in for the Cerebras CS-2 (paper Sec. 4): a 2D mesh
of processing elements with private single-level memories, connected by a
low-latency fabric routed per color, programmed by binding tasks to
colors.  The dataflow TPFA implementation (:mod:`repro.dataflow`) runs on
top of it.
"""

from repro.wse.color import MAX_ROUTABLE_COLORS, ColorAllocator
from repro.wse.dsd import OP_FLOPS, OP_TRAFFIC, DsdEngine, OpTraffic
from repro.wse.fabric import WSE2_MAX_FABRIC, Fabric
from repro.wse.geometry import CARDINAL_PORTS, Port, in_bounds, port_for_connection, shift
from repro.wse.memory import (
    WSE2_PE_MEMORY_BYTES,
    Allocation,
    PEMemoryError,
    Scratchpad,
)
from repro.wse.packet import KIND_CONTROL, KIND_DATA, WORD_BYTES, Message
from repro.wse.pe import ProcessingElement
from repro.wse.perf import WSE2, WsePerfModel
from repro.wse.router import ColorConfig, Router
from repro.wse.runtime import EventRuntime, RuntimeStats

__all__ = [
    "ColorAllocator",
    "MAX_ROUTABLE_COLORS",
    "DsdEngine",
    "OpTraffic",
    "OP_TRAFFIC",
    "OP_FLOPS",
    "Fabric",
    "WSE2_MAX_FABRIC",
    "Port",
    "CARDINAL_PORTS",
    "shift",
    "in_bounds",
    "port_for_connection",
    "Scratchpad",
    "Allocation",
    "PEMemoryError",
    "WSE2_PE_MEMORY_BYTES",
    "Message",
    "KIND_DATA",
    "KIND_CONTROL",
    "WORD_BYTES",
    "ProcessingElement",
    "WsePerfModel",
    "WSE2",
    "Router",
    "ColorConfig",
    "EventRuntime",
    "RuntimeStats",
]
