"""Deterministic, seed-driven fault plans.

A :class:`FaultPlan` is a frozen, JSON-round-trippable description of
*what* goes wrong: which PEs are dead on arrival, which directed fabric
links drop/corrupt/delay traffic, which routers stall, and which cluster
ranks fail during which halo exchange.  It carries no runtime state —
the :class:`~repro.faults.injector.FaultInjector` derives the hot-path
lookup structures and the RNG from it.

Plans are deterministic by construction: :meth:`FaultPlan.seeded` maps
``(seed, topology)`` to the same plan on every run, which is what lets
the chaos harness and CI assert exact detected/recovered outcomes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.faults.errors import FaultPlanError
from repro.wse.geometry import CARDINAL_PORTS, OFFSET, Port

__all__ = [
    "DeadPE",
    "LinkFault",
    "RouterStall",
    "RankFailure",
    "FaultPlan",
    "LINK_FAULT_MODES",
]

#: What a faulty link does to each packet crossing it.
LINK_FAULT_MODES = ("drop", "corrupt", "delay")


@dataclass(frozen=True)
class DeadPE:
    """A PE that never sends and never receives (manufacturing defect)."""

    x: int
    y: int

    @property
    def coord(self) -> tuple[int, int]:
        return (self.x, self.y)


@dataclass(frozen=True)
class LinkFault:
    """A directed fabric link ``(x, y) --port-->`` that misbehaves.

    ``probability`` is the per-packet chance the fault fires (1.0 =
    every packet); ``delay_cycles`` only applies to ``mode="delay"``.
    """

    x: int
    y: int
    port: Port
    mode: str = "drop"
    probability: float = 1.0
    delay_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in LINK_FAULT_MODES:
            raise FaultPlanError(
                f"unknown link fault mode {self.mode!r} "
                f"(expected one of {LINK_FAULT_MODES})"
            )
        if not 0.0 < self.probability <= 1.0:
            raise FaultPlanError(
                f"link fault probability must be in (0, 1], got {self.probability}"
            )
        if self.mode == "delay" and self.delay_cycles <= 0.0:
            raise FaultPlanError("delay link faults need delay_cycles > 0")
        if self.port not in CARDINAL_PORTS:
            raise FaultPlanError(
                f"link faults apply to cardinal links, got {self.port!r}"
            )

    @property
    def coord(self) -> tuple[int, int]:
        return (self.x, self.y)


@dataclass(frozen=True)
class RouterStall:
    """Every egress hop of the router at ``(x, y)`` is delayed.

    Models a backpressured/slow router rather than a dead one: traffic
    still flows, ``stall_cycles`` late.  Large stalls are what the
    progress watchdog is meant to catch.
    """

    x: int
    y: int
    stall_cycles: float

    def __post_init__(self) -> None:
        if not self.stall_cycles > 0.0:
            raise FaultPlanError("router stalls need stall_cycles > 0")

    @property
    def coord(self) -> tuple[int, int]:
        return (self.x, self.y)


@dataclass(frozen=True)
class RankFailure:
    """A cluster rank that drops its sends during one halo exchange.

    The rank is down for the first ``attempts`` send passes of exchange
    number ``exchange`` (0-based, counted per communicator lifetime) and
    recovers afterwards — the transient-failure model that halo
    re-exchange with retry is designed to survive.
    """

    rank: int
    exchange: int = 0
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise FaultPlanError("rank failures need rank >= 0")
        if self.attempts < 1:
            raise FaultPlanError("rank failures need attempts >= 1")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, deterministic description of injected faults."""

    seed: int = 0
    dead_pes: tuple[DeadPE, ...] = ()
    link_faults: tuple[LinkFault, ...] = ()
    router_stalls: tuple[RouterStall, ...] = ()
    rank_failures: tuple[RankFailure, ...] = ()

    @property
    def empty(self) -> bool:
        return not (
            self.dead_pes
            or self.link_faults
            or self.router_stalls
            or self.rank_failures
        )

    @property
    def fabric_faults(self) -> int:
        return len(self.dead_pes) + len(self.link_faults) + len(self.router_stalls)

    def describe(self) -> list[str]:
        """Human-readable one-liner per fault (stable order)."""
        lines: list[str] = []
        for d in self.dead_pes:
            lines.append(f"dead PE at {d.coord}")
        for lf in self.link_faults:
            extra = (
                f" p={lf.probability:g}" if lf.probability < 1.0 else ""
            ) + (f" +{lf.delay_cycles:g}cy" if lf.mode == "delay" else "")
            lines.append(f"{lf.mode} link {lf.coord}->{lf.port.name}{extra}")
        for st in self.router_stalls:
            lines.append(f"stalled router at {st.coord} (+{st.stall_cycles:g}cy/hop)")
        for rf in self.rank_failures:
            lines.append(
                f"rank {rf.rank} down for exchange {rf.exchange} "
                f"({rf.attempts} attempt(s))"
            )
        return lines

    # -------------------------------------------------------------- #
    # JSON round-trip
    # -------------------------------------------------------------- #
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "dead_pes": [[d.x, d.y] for d in self.dead_pes],
            "link_faults": [
                {
                    "x": lf.x,
                    "y": lf.y,
                    "port": lf.port.name,
                    "mode": lf.mode,
                    "probability": lf.probability,
                    "delay_cycles": lf.delay_cycles,
                }
                for lf in self.link_faults
            ],
            "router_stalls": [
                {"x": st.x, "y": st.y, "stall_cycles": st.stall_cycles}
                for st in self.router_stalls
            ],
            "rank_failures": [
                {"rank": rf.rank, "exchange": rf.exchange, "attempts": rf.attempts}
                for rf in self.rank_failures
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed", 0)),
            dead_pes=tuple(DeadPE(int(x), int(y)) for x, y in data.get("dead_pes", ())),
            link_faults=tuple(
                LinkFault(
                    x=int(lf["x"]),
                    y=int(lf["y"]),
                    port=Port[lf["port"]],
                    mode=lf.get("mode", "drop"),
                    probability=float(lf.get("probability", 1.0)),
                    delay_cycles=float(lf.get("delay_cycles", 0.0)),
                )
                for lf in data.get("link_faults", ())
            ),
            router_stalls=tuple(
                RouterStall(int(st["x"]), int(st["y"]), float(st["stall_cycles"]))
                for st in data.get("router_stalls", ())
            ),
            rank_failures=tuple(
                RankFailure(
                    rank=int(rf["rank"]),
                    exchange=int(rf.get("exchange", 0)),
                    attempts=int(rf.get("attempts", 1)),
                )
                for rf in data.get("rank_failures", ())
            ),
        )

    # -------------------------------------------------------------- #
    # Seeded construction
    # -------------------------------------------------------------- #
    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        fabric_shape: tuple[int, int],
        ranks: int = 0,
        dead_pes: int = 1,
        lossy_links: int = 1,
        rank_failures: int = 1,
        router_stalls: int = 0,
        stall_cycles: float = 1_000_000.0,
    ) -> "FaultPlan":
        """The canonical chaos plan for a ``fabric_shape`` fabric.

        Picks ``dead_pes`` distinct dead PEs, ``lossy_links`` interior
        links that drop every packet, and (when ``ranks > 0``)
        ``rank_failures`` transient rank failures on exchange 0 — all
        driven by ``random.Random(seed)`` so the same seed reproduces the
        same plan bit-for-bit.
        """
        width, height = fabric_shape
        if width < 2 or height < 1:
            raise FaultPlanError(
                f"seeded plans need a fabric at least 2x1, got {fabric_shape}"
            )
        rng = random.Random(seed)
        dead: list[DeadPE] = []
        taken: set[tuple[int, int]] = set()
        while len(dead) < dead_pes:
            coord = (rng.randrange(width), rng.randrange(height))
            if coord in taken:
                continue
            taken.add(coord)
            dead.append(DeadPE(*coord))
        links: list[LinkFault] = []
        seen_links: set[tuple[int, int, Port]] = set()
        while len(links) < lossy_links:
            x, y = rng.randrange(width), rng.randrange(height)
            port = rng.choice(CARDINAL_PORTS)
            dx, dy = OFFSET[port]
            # keep the link on-fabric and clear of dead endpoints so the
            # drop is observable as missing traffic, not masked silence
            if not (0 <= x + dx < width and 0 <= y + dy < height):
                continue
            if (x, y) in taken or (x + dx, y + dy) in taken:
                continue
            if (x, y, port) in seen_links:
                continue
            seen_links.add((x, y, port))
            links.append(LinkFault(x, y, port, mode="drop"))
        stalls: list[RouterStall] = []
        while len(stalls) < router_stalls:
            coord = (rng.randrange(width), rng.randrange(height))
            if coord in taken:
                continue
            taken.add(coord)
            stalls.append(RouterStall(*coord, stall_cycles=stall_cycles))
        failures: list[RankFailure] = []
        if ranks > 0:
            picked: set[int] = set()
            while len(failures) < min(rank_failures, ranks):
                rank = rng.randrange(ranks)
                if rank in picked:
                    continue
                picked.add(rank)
                failures.append(RankFailure(rank=rank, exchange=0))
        return cls(
            seed=seed,
            dead_pes=tuple(dead),
            link_faults=tuple(links),
            router_stalls=tuple(stalls),
            rank_failures=tuple(failures),
        )

    def only_fabric(self) -> "FaultPlan":
        """This plan with the cluster-rank failures stripped."""
        return replace(self, rank_failures=())

    def only_ranks(self) -> "FaultPlan":
        """This plan with the fabric faults stripped."""
        return replace(self, dead_pes=(), link_faults=(), router_stalls=())
