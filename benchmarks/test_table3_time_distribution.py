"""Table 3 — time distribution on CS-2 at the largest mesh.

Paper (comm-only rerun of the dataflow code):

    Data Movement   0.0199 s   24.18 %
    Computation     0.0624 s   75.82 %
    Total           0.0823 s   100 %

Regenerated two ways: (a) the calibrated analytic model at the paper
mesh; (b) the same *experiment protocol* executed on the event-driven
simulator — run the full program, rerun with flux computations removed,
subtract — demonstrating the split is measurable, not assumed.
"""

import numpy as np
import pytest

from repro.core import CartesianMesh3D, FluidProperties, Transmissibility, random_pressure
from repro.core.constants import PAPER_MESH
from repro.dataflow import WseFluxComputation
from repro.perf import CS2_TIME_MODEL, PAPER_TABLE3
from repro.util.reporting import Table

FLUID = FluidProperties()


def test_reproduce_table3(report, benchmark):
    """Analytic split at the paper mesh vs the published split."""
    nx, ny, nz = PAPER_MESH
    split = benchmark(lambda: CS2_TIME_MODEL.time_split(nx, ny, nz))
    table = Table(
        "Table 3 — time distribution on CS-2, 750x994x246 mesh",
        ["Component", "Model [s]", "Model [%]", "Paper [s]", "Paper [%]"],
    )
    for name in ("Data Movement", "Computation", "Total"):
        secs, pct = split[name]
        p_secs, p_pct = PAPER_TABLE3[name]
        table.add_row([name, f"{secs:.4f}", f"{pct:.2f}", f"{p_secs:.4f}", f"{p_pct:.2f}"])
    report(table.render())

    assert split["Data Movement"][1] == pytest.approx(24.18, abs=0.2)
    assert split["Computation"][1] == pytest.approx(75.82, abs=0.2)


def test_event_sim_split_protocol(report, benchmark):
    """Execute the paper's comm-only protocol on the event simulator."""
    mesh = CartesianMesh3D(6, 6, 12)
    trans = Transmissibility(mesh, dtype=np.float32)
    pressure = random_pressure(mesh, seed=0)

    full = WseFluxComputation(mesh, FLUID, trans, dtype=np.float32)
    comm = WseFluxComputation(
        mesh, FLUID, trans, dtype=np.float32, compute_fluxes=False
    )
    t_total = full.run_single(pressure).device_cycles
    t_comm = comm.run_single(pressure).device_cycles
    t_compute = t_total - t_comm

    table = Table(
        "Table 3 protocol on the event simulator (6x6x12 fabric, cycles)",
        ["Component", "Cycles", "Percent"],
    )
    table.add_row(["Data Movement", f"{t_comm:.0f}", f"{100 * t_comm / t_total:.2f}"])
    table.add_row(["Computation", f"{t_compute:.0f}", f"{100 * t_compute / t_total:.2f}"])
    table.add_row(["Total", f"{t_total:.0f}", "100.00"])
    table.add_note(
        "paper split at full scale: 24.18 / 75.82 — compute dominates "
        "whenever the Z column is deep enough to amortize the exchange"
    )
    report(table.render())

    assert 0 < t_comm < t_total
    # compute is the majority share, as in the paper
    assert t_compute > t_comm

    benchmark(lambda: full.run_single(pressure))
