"""Process-pool plumbing: spawn, command pipes, crash detection.

:class:`ProcPool` owns the worker processes for one
:class:`~repro.par.flux.ParClusterFluxComputation` run.  The parent
drives applications with a per-worker command pipe — send ``("run",)``
to every worker, then collect one reply from each.  The collect loop
polls each pipe in short slices interleaved with liveness checks, so a
worker that died (injected kill, OOM, organic crash) surfaces as a
structured :class:`~repro.faults.errors.WorkerCrashError` within one
poll slice instead of hanging the parent until a timeout.

``fork`` is preferred (the spec is inherited, no re-import cost);
everything is pickle-clean so ``spawn`` works where fork is
unavailable.
"""

from __future__ import annotations

import multiprocessing as mp

from repro.faults.errors import WorkerCrashError
from repro.par.worker import WorkerSpec, worker_main

__all__ = ["ProcPool"]

#: Seconds per pipe-poll slice in :meth:`ProcPool.collect`.
POLL_SLICE_SECONDS = 0.05


def _context() -> mp.context.BaseContext:
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return mp.get_context("spawn")


class ProcPool:
    """A fixed set of SPMD worker processes with command pipes."""

    def __init__(self, specs: list[WorkerSpec]) -> None:
        ctx = _context()
        self.specs = list(specs)
        self.procs: list[mp.Process] = []
        self.conns = []
        for spec in self.specs:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=worker_main,
                args=(spec, child_conn),
                daemon=True,
                name=f"repro-par-w{spec.index}",
            )
            proc.start()
            child_conn.close()
            self.procs.append(proc)
            self.conns.append(parent_conn)

    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return len(self.procs)

    def pids(self) -> list[int]:
        """OS process id of every worker, in worker-index order."""
        return [proc.pid for proc in self.procs]

    def send_run(self) -> None:
        """Start one application on every worker."""
        for conn in self.conns:
            conn.send(("run",))

    def dead_workers(self) -> list[tuple[int, int, int | None, tuple[int, ...]]]:
        """``(index, pid, exitcode, ranks)`` for every non-live worker."""
        dead = []
        for i, proc in enumerate(self.procs):
            if not proc.is_alive():
                dead.append(
                    (i, proc.pid, proc.exitcode, tuple(self.specs[i].ranks))
                )
        return dead

    def collect(self, *, timeout_seconds: float = 120.0,
                phase: str = "application") -> list[dict]:
        """One ``("ok", payload)`` reply per worker, in worker order.

        Raises
        ------
        WorkerCrashError
            When a worker dies (or its pipe hits EOF) before replying.
        RuntimeError
            When a worker reports an application-level error, or no
            reply arrives within the poll budget.
        """
        payloads: list[dict | None] = [None] * self.size
        # a fixed slice count, not a wall-clock deadline: deterministic
        # control flow, and each slice doubles as a liveness check
        budget = max(1, int(timeout_seconds / POLL_SLICE_SECONDS))
        for _ in range(budget):
            waiting = False
            for i, conn in enumerate(self.conns):
                if payloads[i] is not None:
                    continue
                try:
                    ready = conn.poll(POLL_SLICE_SECONDS)
                except (OSError, EOFError):
                    ready = False
                if not ready:
                    waiting = True
                    continue
                try:
                    kind, body = conn.recv()
                except (EOFError, OSError):
                    waiting = True
                    continue
                if kind == "error":
                    raise RuntimeError(
                        f"worker {self.specs[i].index} failed during "
                        f"{phase}: {body}"
                    )
                payloads[i] = body
            dead = [
                entry for entry in self.dead_workers()
                if payloads[entry[0]] is None
            ]
            if dead:
                raise WorkerCrashError(dead, phase)
            if not waiting:
                return [p for p in payloads if p is not None]
        missing = [
            self.specs[i].index for i, p in enumerate(payloads) if p is None
        ]
        raise RuntimeError(
            f"timed out waiting for worker(s) {missing} during {phase} "
            f"({timeout_seconds:.0f}s budget)"
        )

    # ------------------------------------------------------------------ #
    def terminate(self) -> None:
        """Hard-stop every worker (crash recovery path)."""
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self.procs:
            proc.join(timeout=2.0)
        for conn in self.conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def shutdown(self) -> None:
        """Graceful stop: quit commands, join, terminate stragglers."""
        for conn, proc in zip(self.conns, self.procs):
            if proc.is_alive():
                try:
                    conn.send(("quit",))
                except (OSError, BrokenPipeError):
                    pass
        for proc in self.procs:
            proc.join(timeout=2.0)
        for proc in self.procs:
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self.conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
