"""Unit tests for the reference Algorithm 1 implementation."""

import numpy as np
import pytest

from repro.core import (
    ALL_CONNECTIONS,
    CartesianMesh3D,
    Connection,
    FluidProperties,
    FluxKernel,
    Transmissibility,
    compute_face_fluxes,
    compute_flux_residual,
    face_flux_scalar,
    hydrostatic_pressure,
    iter_neighbours,
    random_pressure,
)
from repro.core.constants import GRAVITY


def brute_force_residual(mesh, fluid, pressure, trans, gravity=GRAVITY):
    """Direct transcription of Algorithm 1: loop cells, loop neighbours."""
    res = mesh.zeros()
    rho = fluid.density(pressure)
    z = mesh.elevation
    nx, ny, nz = mesh.shape_xyz
    for x in range(nx):
        for y in range(ny):
            for zc in range(nz):
                t_cell = trans.for_cell(x, y, zc)
                k = mesh.cell_index(x, y, zc)
                for conn, (xx, yy, zz) in iter_neighbours(x, y, zc, mesh.shape_xyz):
                    l = mesh.cell_index(xx, yy, zz)
                    res[k] += face_flux_scalar(
                        pressure[k], pressure[l], z[k], z[l],
                        rho[k], rho[l], t_cell[conn], gravity, fluid.viscosity,
                    )
    return res


class TestAgainstBruteForce:
    def test_small_homogeneous(self, small_mesh, fluid, small_trans, small_pressure):
        expected = brute_force_residual(small_mesh, fluid, small_pressure, small_trans)
        got = compute_flux_residual(small_mesh, fluid, small_pressure, small_trans)
        np.testing.assert_allclose(got, expected, rtol=1e-10, atol=1e-20)

    def test_heterogeneous(self, hetero_mesh, fluid, hetero_trans, hetero_pressure):
        expected = brute_force_residual(
            hetero_mesh, fluid, hetero_pressure, hetero_trans
        )
        got = compute_flux_residual(hetero_mesh, fluid, hetero_pressure, hetero_trans)
        np.testing.assert_allclose(got, expected, rtol=1e-10, atol=1e-20)

    def test_face_method_heterogeneous(
        self, hetero_mesh, fluid, hetero_trans, hetero_pressure
    ):
        expected = brute_force_residual(
            hetero_mesh, fluid, hetero_pressure, hetero_trans
        )
        got = compute_flux_residual(
            hetero_mesh, fluid, hetero_pressure, hetero_trans, method="face"
        )
        np.testing.assert_allclose(got, expected, rtol=1e-10, atol=1e-20)


class TestInvariants:
    def test_cell_vs_face_methods_agree(
        self, hetero_mesh, fluid, hetero_trans, hetero_pressure
    ):
        r_cell = compute_flux_residual(
            hetero_mesh, fluid, hetero_pressure, hetero_trans, method="cell"
        )
        r_face = compute_flux_residual(
            hetero_mesh, fluid, hetero_pressure, hetero_trans, method="face"
        )
        scale = np.abs(r_cell).max()
        np.testing.assert_allclose(r_cell, r_face, atol=1e-12 * scale)

    @pytest.mark.parametrize("method", ["cell", "face"])
    def test_global_mass_balance(
        self, hetero_mesh, fluid, hetero_trans, hetero_pressure, method
    ):
        """No-flow boundaries: fluxes cancel pairwise, sum(r) == 0."""
        r = compute_flux_residual(
            hetero_mesh, fluid, hetero_pressure, hetero_trans, method=method
        )
        scale = np.abs(r).max()
        assert abs(r.sum()) <= 1e-12 * scale * r.size

    def test_uniform_pressure_no_gravity_zero_residual(self, small_mesh, fluid):
        p = small_mesh.full(1.5e7)
        r = compute_flux_residual(small_mesh, fluid, p, gravity=0.0)
        np.testing.assert_array_equal(r, 0.0)

    def test_uniform_pressure_with_gravity_nonzero(self, small_mesh, fluid):
        """Gravity drives vertical segregation flux even at uniform p."""
        p = small_mesh.full(1.5e7)
        r = compute_flux_residual(small_mesh, fluid, p)
        assert np.abs(r).max() > 0.0

    def test_hydrostatic_near_equilibrium(self, small_mesh, fluid):
        """Hydrostatic p nearly cancels the gravity flux of a uniform p.

        The rho_ref-based hydrostatic profile is only first-order exact for
        a compressible fluid, so we compare against the fully-segregating
        uniform-pressure state rather than demanding machine zero.
        """
        p_eq = hydrostatic_pressure(small_mesh, fluid)
        r_eq = np.abs(compute_flux_residual(small_mesh, fluid, p_eq)).max()
        p_uniform = small_mesh.full(float(p_eq.mean()))
        r_uniform = np.abs(compute_flux_residual(small_mesh, fluid, p_uniform)).max()
        assert r_eq < 1e-3 * r_uniform

    def test_diagonal_weight_zero_matches_seven_point(
        self, hetero_mesh, fluid, hetero_pressure
    ):
        """With diagonal_weight=0, only the 6 axis connections contribute."""
        t0 = Transmissibility(hetero_mesh, diagonal_weight=0.0)
        r = compute_flux_residual(hetero_mesh, fluid, hetero_pressure, t0)
        # brute force over the 6 axis connections only
        expected = brute_force_residual(hetero_mesh, fluid, hetero_pressure, t0)
        np.testing.assert_allclose(r, expected, rtol=1e-10)

    def test_single_column_mesh(self, fluid):
        """nx = ny = 1: only vertical fluxes exist."""
        mesh = CartesianMesh3D(1, 1, 8)
        p = random_pressure(mesh, seed=2)
        r = compute_flux_residual(mesh, fluid, p)
        scale = np.abs(r).max()
        assert scale > 0
        assert abs(r.sum()) <= 1e-12 * scale * r.size

    def test_single_layer_mesh(self, fluid):
        """nz = 1: no vertical fluxes; diagonals active."""
        mesh = CartesianMesh3D(5, 4, 1)
        p = random_pressure(mesh, seed=3)
        r = compute_flux_residual(mesh, fluid, p)
        assert np.abs(r).max() > 0

    def test_1x1x1_mesh_zero_residual(self, fluid):
        mesh = CartesianMesh3D(1, 1, 1)
        r = compute_flux_residual(mesh, fluid, mesh.full(2e7))
        np.testing.assert_array_equal(r, 0.0)


class TestFluxKernelClass:
    def test_out_reuse(self, small_mesh, fluid, small_trans, small_pressure):
        kernel = FluxKernel(small_mesh, fluid, small_trans)
        buf = small_mesh.zeros()
        r1 = kernel.residual(small_pressure, out=buf)
        assert r1 is buf
        r2 = kernel.residual(small_pressure)
        np.testing.assert_array_equal(r1, r2)

    def test_repeated_calls_are_independent(
        self, small_mesh, fluid, small_trans
    ):
        kernel = FluxKernel(small_mesh, fluid, small_trans)
        p1 = random_pressure(small_mesh, seed=1)
        p2 = random_pressure(small_mesh, seed=2)
        r1a = kernel.residual(p1).copy()
        kernel.residual(p2)
        r1b = kernel.residual(p1)
        np.testing.assert_array_equal(r1a, r1b)

    def test_rejects_bad_method(self, small_mesh, fluid):
        with pytest.raises(ValueError, match="method"):
            FluxKernel(small_mesh, fluid, method="warp")

    def test_rejects_foreign_trans(self, small_mesh, hetero_mesh, fluid):
        t_other = Transmissibility(hetero_mesh)
        with pytest.raises(ValueError, match="different mesh"):
            FluxKernel(small_mesh, fluid, t_other)

    def test_rejects_wrong_shape_pressure(self, small_mesh, fluid):
        kernel = FluxKernel(small_mesh, fluid)
        with pytest.raises(ValueError, match="pressure"):
            kernel.residual(np.zeros((1, 2, 3)))

    def test_float32_mode(self, small_mesh, fluid, small_pressure):
        t32 = Transmissibility(small_mesh, dtype=np.float32)
        k32 = FluxKernel(small_mesh, fluid, t32, dtype=np.float32)
        r32 = k32.residual(small_pressure.astype(np.float32))
        r64 = compute_flux_residual(small_mesh, fluid, small_pressure)
        assert r32.dtype == np.float32
        scale = np.abs(r64).max()
        np.testing.assert_allclose(r32, r64, atol=2e-4 * scale)


class TestFaceFluxes:
    def test_reciprocal_fluxes_antisymmetric(
        self, hetero_mesh, fluid, hetero_trans, hetero_pressure
    ):
        from repro.core import interior_slices, opposite

        fluxes = compute_face_fluxes(
            hetero_mesh, fluid, hetero_pressure, hetero_trans
        )
        for conn in ALL_CONNECTIONS:
            f_fwd = fluxes[conn]
            f_bwd = fluxes[opposite(conn)]
            # f_fwd[i] (local cells of conn) pairs with f_bwd at the
            # neighbour position; realign through full-shape scatter.
            full_fwd = np.zeros(hetero_mesh.shape_zyx)
            full_bwd = np.zeros(hetero_mesh.shape_zyx)
            local_f, neigh_f = interior_slices(hetero_mesh.shape_zyx, conn)
            local_b, _ = interior_slices(hetero_mesh.shape_zyx, opposite(conn))
            full_fwd[local_f] = f_fwd
            full_bwd[local_b] = f_bwd
            np.testing.assert_allclose(
                full_fwd[local_f], -full_bwd[neigh_f], rtol=1e-12, atol=1e-25
            )

    def test_all_ten_directions_present(
        self, small_mesh, fluid, small_trans, small_pressure
    ):
        fluxes = compute_face_fluxes(small_mesh, fluid, small_pressure, small_trans)
        assert set(fluxes) == set(ALL_CONNECTIONS)

    def test_east_flux_shape(self, small_mesh, fluid, small_pressure):
        fluxes = compute_face_fluxes(small_mesh, fluid, small_pressure)
        nz, ny, nx = small_mesh.shape_zyx
        assert fluxes[Connection.EAST].shape == (nz, ny, nx - 1)
        assert fluxes[Connection.UP].shape == (nz - 1, ny, nx)
