#!/usr/bin/env python
"""Trace the fabric protocol: Figs. 5-6 as an executable timeline.

Runs one application of Algorithm 1 on a tiny 3x3 fabric with event
tracing enabled and prints, per delivery, when each PE received which
neighbour's column over which channel — making the two-step cardinal
switch protocol and the two-hop diagonal flows visible.

Run:  python examples/communication_trace.py
"""

import numpy as np

from repro.core import CartesianMesh3D, FluidProperties, random_pressure
from repro.dataflow import WseFluxComputation
from repro.dataflow.cardinal import CARDINAL_CHANNELS
from repro.dataflow.diagonal import DIAGONAL_CHANNELS


def main() -> None:
    mesh = CartesianMesh3D(3, 3, 4)
    fluid = FluidProperties()
    wse = WseFluxComputation(mesh, fluid, dtype=np.float32, trace=True)
    pressure = random_pressure(mesh, seed=0)

    color_names = {}
    for ch in CARDINAL_CHANNELS:
        color_names[wse.program.colors.lookup(ch.name)] = (ch.name, ch.delivers.name)
    for ch in DIAGONAL_CHANNELS:
        color_names[wse.program.colors.lookup(ch.name)] = (ch.name, ch.delivers.name)

    result = wse.run_single(pressure)
    rt = wse.last_runtime

    print("fabric 3x3, Z column depth 4 — one application of Algorithm 1")
    print(f"{result.stats.messages_injected} messages injected, "
          f"{result.stats.messages_delivered} delivered, "
          f"{result.stats.messages_dropped_offchip} dropped off-chip "
          f"(boundary), max hops {result.stats.max_hops_seen}")
    print()
    print(f"{'cycle':>8}  {'PE':>6}  {'channel':<11} {'kind':<8} "
          f"{'from PE':>8}  {'hops':>4}  delivers")
    for t, coord, msg in rt.trace_log:
        name, delivers = color_names[msg.color]
        print(f"{t:8.1f}  {str(coord):>6}  {name:<11} {msg.kind:<8} "
              f"{str(msg.source):>8}  {msg.hops:>4}  {delivers} neighbour data"
              if msg.kind == "data" else
              f"{t:8.1f}  {str(coord):>6}  {name:<11} {msg.kind:<8} "
              f"{str(msg.source):>8}  {msg.hops:>4}  switch command")
    print()

    centre = wse.program.fabric.pe(1, 1)
    print(f"centre PE (1,1): received {centre.messages_received} messages "
          f"({centre.words_received} words) — 4 cardinal + 4 diagonal")
    print("observations:")
    print(" * cardinal data arrives in two waves (Sending/Receiving roles")
    print("   alternate via the control wavelets, Fig. 6b);")
    print(" * every diagonal train shows hops=2: source -> intermediary ->")
    print("   target, the rotating clockwise schedule of Fig. 5;")
    print(" * flux computations run on arrival — communication overlaps")
    print("   compute (Sec. 5.3.2).")


if __name__ == "__main__":
    main()
