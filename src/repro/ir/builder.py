"""Constructing :class:`~repro.ir.schema.FabricProgramIR`.

Two independent construction paths that must agree:

* :func:`derive_ir` — the *compiler* path: closed-form derivation from a
  mesh and program parameters, using the same channel/switch formulas
  (:mod:`repro.dataflow.cardinal`/``diagonal``) and one throwaway
  :class:`~repro.dataflow.halos.PEColumnLayout` probe for the memory
  plan.  No fabric is built; this is the cheap path the fused backend
  and ``repro.serve``-style caching take at startup.
* :func:`build_ir` — the *capture* path: read every router's installed
  switch schedule, every scratchpad's allocation records, and every PE's
  injector set off a live :class:`~repro.dataflow.program.FluxProgram`.

On a healthy program ``derive_ir(...) == build_ir(program)`` byte for
byte — a testable invariant that pins the compiler to the runtime.  The
capture path additionally works on *broken* fabrics
(:func:`ir_from_fabric`), which is how ``repro check`` findings on the
IR can match findings on a live corrupted program.

This module subsumes :func:`repro.dataflow.export.export_program`: the
IR carries everything ``ProgramExport`` carried (colors, expected
receivers, layouts-as-records, memory plan) plus the routes, injectors,
and fold contracts the export never saw.
"""

from __future__ import annotations

import numpy as np

from repro.core.stencil import CARDINAL_XY, DIAGONAL_XY
from repro.dataflow.cardinal import (
    CARDINAL_CHANNELS,
    is_step1_sender,
    switch_positions_for,
)
from repro.dataflow.diagonal import DIAGONAL_CHANNELS, static_position
from repro.dataflow.halos import PEColumnLayout
from repro.ir.schema import (
    IR_SCHEMA_VERSION,
    KIND_FABRIC,
    KIND_PROGRAM,
    FabricProgramIR,
    encode_position,
)
from repro.wse.memory import WSE2_PE_MEMORY_BYTES, Scratchpad

__all__ = ["build_ir", "derive_ir", "ir_from_fabric"]


def _coord_key(coord) -> str:
    x, y = coord
    return f"{int(x)},{int(y)}"


def _contracts_doc() -> dict:
    return {
        "exchange_plan": [
            {
                "phase": "cardinal",
                "connections": [c.name for c in CARDINAL_XY],
                "hops": 1,
            },
            {
                "phase": "diagonal",
                "connections": [c.name for c in DIAGONAL_XY],
                "hops": 2,
            },
        ],
        "fold": "per-pe-arrival-order",
        "determinism": "single-stream-event-order",
    }


class _ClassTable:
    """Deduplicating class table: identical entries share one index.

    Interning is keyed on a cheap canonical tuple, not a JSON dump of
    the entry — the JSON doc is only materialized the first time a class
    is seen.  On a regular fabric that is a handful of times total, not
    once per PE, which keeps :func:`derive_ir` off the run-startup
    critical path.
    """

    def __init__(self):
        self.classes: list = []
        self._index: dict = {}

    def intern(self, key, make_doc) -> int:
        idx = self._index.get(key)
        if idx is None:
            idx = self._index[key] = len(self.classes)
            self.classes.append(make_doc())
        return idx


def _route_key(positions, initial: int) -> tuple:
    """Canonical hashable key of a route class.

    Two (positions, initial) pairs share a key iff their
    :func:`_route_class_doc` serializations are byte-identical: keys are
    built from the Port members themselves (name lookup is deferred to
    doc construction), with multi-entry positions canonicalized by the
    same port-name order :func:`encode_position` serializes in.
    """
    parts = []
    for pos in positions:
        items = pos.items()
        if len(pos) > 1:
            items = sorted(items, key=lambda kv: kv[0].name)
        parts.append(tuple(items))
    return (int(initial), tuple(parts))


def _route_class_doc(positions, initial: int) -> dict:
    return {
        "initial": int(initial),
        "positions": [encode_position(pos) for pos in positions],
    }


def _memory_key(records: list[dict]) -> tuple:
    """Canonical hashable key of a memory class (allocation-order tuple)."""
    return tuple(
        (r["name"], tuple(r["shape"]), r["dtype"], r.get("alias_of"))
        for r in records
    )


def _memory_records(memory: Scratchpad) -> list[dict]:
    """Allocation records of one scratchpad, in allocation order."""
    records: list[dict] = []
    by_span: dict[tuple[int, int], str] = {}
    for name in memory.names():
        alloc = memory.get(name)
        rec = {
            "name": name,
            "shape": list(alloc.array.shape),
            "dtype": str(alloc.array.dtype),
        }
        span = (alloc.offset, alloc.nbytes)
        prior = by_span.get(span)
        if prior is not None and prior != name:
            rec["alias_of"] = prior
        else:
            by_span[span] = name
        records.append(rec)
    return records


def _remap_doc(remap) -> dict | None:
    if remap is None:
        return None
    return {
        "logical_width": remap.logical_width,
        "height": remap.height,
        "physical_width": remap.physical_width,
        "column_map": list(remap.column_map),
    }


def _base_doc(kind: str) -> dict:
    return {
        "schema": IR_SCHEMA_VERSION,
        "kind": kind,
        "colors": [],
        "routes": {},
        "expected_receivers": {},
        "injectors": {},
        "memory": {"classes": [], "assignment": {}},
        "annotations": {},
    }


def _expected_receivers_doc(nx: int, ny: int, remap, channels, color_of) -> dict:
    """``color id -> sorted receiver coords`` from the mesh stencil.

    Mirrors :func:`repro.dataflow.export._receivers_for`: a PE receives a
    channel's color iff its ``delivers`` neighbour is in bounds.
    """
    out: dict[str, list] = {}
    for channel in channels:
        dx, dy, _ = channel.delivers.offset
        coords = []
        for y in range(ny):
            for x in range(nx):
                if 0 <= x + dx < nx and 0 <= y + dy < ny:
                    coord = (x, y)
                    if remap is not None:
                        coord = remap.physical(coord)
                    coords.append(coord)
        out[str(color_of(channel.name))] = [list(c) for c in sorted(coords)]
    return out


# --------------------------------------------------------------------- #
# Derivation (closed form, no fabric)
# --------------------------------------------------------------------- #
def derive_ir(
    mesh,
    *,
    dtype=np.float32,
    reuse_buffers: bool = True,
    vectorized: bool = True,
    compute_fluxes: bool = True,
    overlap_compute: bool = True,
    pe_memory_bytes: int = WSE2_PE_MEMORY_BYTES,
    pe_memory_reserved: int = 2048,
    remap=None,
) -> FabricProgramIR:
    """Derive the program IR from a mesh and parameters — no fabric built.

    Produces a document byte-identical to capturing the same program with
    :func:`build_ir`; parameters mirror
    :class:`~repro.dataflow.program.FluxProgram`.
    """
    nx, ny, nz = mesh.nx, mesh.ny, mesh.nz
    width = nx if remap is None else remap.physical_width
    doc = _base_doc(KIND_PROGRAM)
    doc["fabric"] = {
        "width": width,
        "height": ny,
        "pe_memory_bytes": int(pe_memory_bytes),
        "pe_memory_reserved": int(pe_memory_reserved),
        "vectorized": bool(vectorized),
        "bypass_columns": sorted(remap.bypassed_columns) if remap else [],
    }
    doc["mesh"] = {"nx": nx, "ny": ny, "nz": nz}
    doc["params"] = {
        "dtype": np.dtype(dtype).name,
        "reuse_buffers": bool(reuse_buffers),
        "overlap_compute": bool(overlap_compute),
        "compute_fluxes": bool(compute_fluxes),
    }
    doc["contracts"] = _contracts_doc()
    doc["remap"] = _remap_doc(remap)

    def physical(coord):
        return coord if remap is None else remap.physical(coord)

    channels = (*CARDINAL_CHANNELS, *DIAGONAL_CHANNELS)
    doc["colors"] = [
        {"id": cid, "name": ch.name} for cid, ch in enumerate(channels)
    ]
    color_of = {ch.name: cid for cid, ch in enumerate(channels)}

    cells = [(lx, ly) for ly in range(ny) for lx in range(nx)]
    cell_keys = [_coord_key(physical(c)) for c in cells]

    routes: dict[str, dict] = {}
    for cid, channel in enumerate(CARDINAL_CHANNELS):
        table = _ClassTable()
        assignment: dict[str, int] = {}
        for cell, key in zip(cells, cell_keys):
            positions, initial = switch_positions_for(cell, channel, nx, ny)
            assignment[key] = table.intern(
                _route_key(positions, initial),
                lambda: _route_class_doc(positions, initial),
            )
        routes[str(cid)] = {
            "classes": table.classes,
            "assignment": assignment,
        }
    for offset, channel in enumerate(DIAGONAL_CHANNELS):
        cid = len(CARDINAL_CHANNELS) + offset
        table = _ClassTable()
        position = static_position(channel)
        idx = table.intern(
            _route_key([position], 0),
            lambda: _route_class_doc([position], 0),
        )
        routes[str(cid)] = {
            "classes": table.classes,
            "assignment": {key: idx for key in cell_keys},
        }
    doc["routes"] = routes

    doc["expected_receivers"] = _expected_receivers_doc(
        nx, ny, remap, channels, color_of.__getitem__
    )

    injectors: dict[str, list] = {}
    for channel in CARDINAL_CHANNELS:
        coords = [
            physical((lx, ly))
            for ly in range(ny)
            for lx in range(nx)
            if is_step1_sender((lx, ly), channel, nx, ny)
        ]
        injectors[channel.name] = [list(c) for c in sorted(coords)]
    all_coords = sorted(
        physical((lx, ly)) for ly in range(ny) for lx in range(nx)
    )
    for channel in DIAGONAL_CHANNELS:
        injectors[channel.name] = [list(c) for c in all_coords]
    doc["injectors"] = injectors

    # one probe layout stands for every PE — the plan is uniform
    probe = Scratchpad(pe_memory_bytes, reserved=pe_memory_reserved)
    PEColumnLayout.build(probe, nz, dtype=dtype, reuse_buffers=reuse_buffers)
    doc["memory"] = {
        "classes": [_memory_records(probe)],
        "assignment": {_coord_key(c): 0 for c in all_coords},
    }
    return FabricProgramIR(doc)


# --------------------------------------------------------------------- #
# Capture (from live objects)
# --------------------------------------------------------------------- #
def _capture_routes(fabric, coords, colors) -> dict:
    routes: dict[str, dict] = {}
    for color in colors:
        table = _ClassTable()
        assignment: dict[str, int] = {}
        for coord in coords:
            router = fabric.router_map[coord]
            cfg = router.configs.get(color)
            if cfg is None:
                continue
            positions = router.positions_of(color)
            assignment[_coord_key(coord)] = table.intern(
                _route_key(positions, cfg.initial),
                lambda: _route_class_doc(positions, cfg.initial),
            )
        if assignment:
            routes[str(color)] = {
                "classes": table.classes,
                "assignment": assignment,
            }
    return routes


def _capture_memory(fabric, coords) -> dict:
    table = _ClassTable()
    assignment: dict[str, int] = {}
    for coord in coords:
        memory = fabric.pe_map[coord].memory
        if not memory.names():
            continue
        records = _memory_records(memory)
        assignment[_coord_key(coord)] = table.intern(
            _memory_key(records), lambda: records
        )
    return {"classes": table.classes, "assignment": assignment}


def _fabric_doc(fabric) -> dict:
    sample = next(iter(fabric.pes()))
    return {
        "width": fabric.width,
        "height": fabric.height,
        "pe_memory_bytes": sample.memory.capacity,
        "pe_memory_reserved": sample.memory.reserved,
        "vectorized": sample.dsd.vectorized,
        "bypass_columns": sorted(fabric.bypass_columns),
    }


def build_ir(program) -> FabricProgramIR:
    """Capture the IR off a built :class:`FluxProgram` (routers, memory,
    injectors read from the live objects, not re-derived)."""
    mesh = program.mesh
    doc = _base_doc(KIND_PROGRAM)
    doc["fabric"] = {
        "width": program.fabric.width,
        "height": program.fabric.height,
        "pe_memory_bytes": int(program.pe_memory_bytes),
        "pe_memory_reserved": int(program.pe_memory_reserved),
        "vectorized": bool(program.vectorized),
        "bypass_columns": sorted(program.fabric.bypass_columns),
    }
    doc["mesh"] = {"nx": mesh.nx, "ny": mesh.ny, "nz": mesh.nz}
    doc["params"] = {
        "dtype": np.dtype(program.dtype).name,
        "reuse_buffers": bool(program.reuse_buffers),
        "overlap_compute": bool(program.overlap_compute),
        "compute_fluxes": bool(program.compute_fluxes),
    }
    doc["contracts"] = _contracts_doc()
    doc["remap"] = _remap_doc(program.remap)

    names = program.colors.names()
    doc["colors"] = [
        {"id": program.colors.lookup(name), "name": name} for name in names
    ]

    program_coords = [pe.coord for _lx, _ly, pe in program.program_pes()]
    color_ids = [program.colors.lookup(name) for name in names]
    doc["routes"] = _capture_routes(program.fabric, program_coords, color_ids)

    doc["expected_receivers"] = _expected_receivers_doc(
        mesh.nx,
        mesh.ny,
        program.remap,
        (*CARDINAL_CHANNELS, *DIAGONAL_CHANNELS),
        program.colors.lookup,
    )

    injectors: dict[str, list] = {ch.name: [] for ch in CARDINAL_CHANNELS}
    for _lx, _ly, pe in program.program_pes():
        for channel in pe.state["step1_channels"]:
            injectors[channel.name].append(pe.coord)
    for name in injectors:
        injectors[name] = [list(c) for c in sorted(injectors[name])]
    for channel in DIAGONAL_CHANNELS:
        injectors[channel.name] = [list(c) for c in sorted(program_coords)]
    doc["injectors"] = injectors

    doc["memory"] = _capture_memory(program.fabric, program_coords)
    return FabricProgramIR(doc)


def ir_from_fabric(
    fabric,
    *,
    colors: dict[int, str] | None = None,
    expected_receivers: dict | None = None,
) -> FabricProgramIR:
    """Capture a bare-fabric IR — routes and memory as installed.

    This is the path for fabrics that never came from a
    :class:`FluxProgram` (tests, corrupted fabrics): ``repro check`` on
    the resulting IR reproduces ``check_fabric`` on the live object.
    """
    doc = _base_doc(KIND_FABRIC)
    doc["fabric"] = _fabric_doc(fabric)
    doc["mesh"] = None
    doc["params"] = None
    doc["remap"] = None
    if colors:
        doc["colors"] = [
            {"id": cid, "name": name} for cid, name in sorted(colors.items())
        ]
    coords = [pe.coord for pe in fabric.pes()]
    color_ids = sorted(
        {
            color
            for router in fabric.router_map.values()
            for color in router.configured_colors()
        }
    )
    doc["routes"] = _capture_routes(fabric, coords, color_ids)
    if expected_receivers:
        doc["expected_receivers"] = {
            str(cid): [list(c) for c in sorted(coords_)]
            for cid, coords_ in sorted(expected_receivers.items())
        }
    doc["memory"] = _capture_memory(fabric, coords)
    return FabricProgramIR(doc)
