"""Chaos harness: run the backends under a fault plan, end to end.

:func:`run_chaos` takes a :class:`~repro.faults.plan.FaultPlan` (or
builds the canonical seeded one), derives one *scenario* per fault
group, and reports for each whether the fault was actually injected,
whether the stack **detected** it (structured error or cross-check
mismatch), and whether the recovery mechanism **recovered** from it:

- dead PEs      -> exactly-once delivery verification detects them; a
                   :class:`~repro.dataflow.mapping.SpareColumnRemap`
                   recovers bit-identically (CS-2 yield handling);
- drop links    -> missing neighbour columns at verification;
- corrupt links -> silent data corruption, caught by cross-checking the
                   residual against a healthy run;
- delay links   -> packets late, caught as extra device cycles;
- router stalls -> the progress watchdog raises
                   :class:`~repro.faults.errors.FabricStallError`;
- rank failures -> halo re-exchange with retry/backoff recovers the
                   lost strips and the residual still matches the
                   reference kernel;
- plus a checkpoint/restart drill: the implicit solver is killed
  mid-campaign and must resume bit-identically from its last
  checkpoint.

Backends (dataflow/cluster/solver) are imported lazily inside
:func:`run_chaos`, so ``repro.faults`` stays importable from the runtime
layers without cycles.  ``repro chaos`` is the CLI front end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.faults.errors import FabricStallError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, LinkFault

__all__ = ["FaultOutcome", "ChaosReport", "SCENARIOS", "run_chaos"]

#: Every scenario :func:`run_chaos` can grow, with a one-line intent
#: (``repro chaos --list`` prints this; ``--only`` validates against it).
#: Whether a given run actually *grows* a scenario still depends on the
#: plan contents and the ``include_*`` switches.
SCENARIOS = {
    "dead-pe/detect": (
        "dead PE breaks exactly-once delivery; verification must flag it"
    ),
    "dead-pe/remap": (
        "spare-column remap routes around dead PEs bit-identically"
    ),
    "link-drop/detect": (
        "dropped packets leave missing neighbour columns at verification"
    ),
    "link-corrupt/cross-check": (
        "silent payload corruption caught by residual cross-check"
    ),
    "link-delay/detect": (
        "delayed packets surface as extra device cycles (or a stall)"
    ),
    "router-stall/watchdog": (
        "stalled router must trip the progress watchdog"
    ),
    "rank-failure/re-exchange": (
        "transient rank failure healed by halo re-exchange with retry"
    ),
    "par/worker-kill/detect": (
        "killed worker process detected by pool exit-code reaping"
    ),
    "par/worker-kill/respawn": (
        "killed worker respawned; residual bit-identical to serial run"
    ),
    "par/worker-hang/lease": (
        "hung (SIGSTOP) worker caught by heartbeat lease; supervisor "
        "restarts bit-identically"
    ),
    "solver/checkpoint-restart": (
        "solver killed mid-campaign resumes bit-identically from its "
        "checkpoint"
    ),
    "checkpoint/corruption": (
        "bit-flipped checkpoint rejected by checksum; store falls back "
        "to the previous intact one"
    ),
    "supervisor/transient-repeat": (
        "repeated transient faults absorbed by bounded-loss restarts"
    ),
    "supervisor/crash-during-recovery": (
        "second fault during replay-verify still recovered within the "
        "retry budget"
    ),
    "supervisor/degrade-ladder": (
        "persistently failing backend degrades down the ladder, "
        "conformance-verified"
    ),
}


@dataclass
class FaultOutcome:
    """One chaos scenario: what was injected and what the stack did."""

    scenario: str
    fault: str
    injected: bool
    detected: bool
    recovered: bool
    benign: bool = False
    detail: str = ""

    @property
    def ok(self) -> bool:
        """An injected fault must be detected, recovered from, or proven
        benign (it fired but demonstrably did not alter the result —
        e.g. a bit flip in an upwind-unused payload word)."""
        return self.injected and (self.detected or self.recovered or self.benign)

    @property
    def status(self) -> str:
        if not self.injected:
            return "NOT INJECTED"
        if self.recovered:
            return "RECOVERED"
        if self.detected:
            return "DETECTED"
        if self.benign:
            return "BENIGN"
        return "MISSED"

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "fault": self.fault,
            "injected": self.injected,
            "detected": self.detected,
            "recovered": self.recovered,
            "benign": self.benign,
            "status": self.status,
            "detail": self.detail,
        }


@dataclass
class ChaosReport:
    """Every scenario outcome of one chaos run."""

    seed: int
    fabric_shape: tuple[int, int]
    ranks: int
    plan: FaultPlan
    outcomes: list[FaultOutcome] = field(default_factory=list)
    #: Replay bundle recorded when any scenario failed (see
    #: :func:`run_chaos`'s ``postmortem_dir``); None when all passed.
    postmortem_path: str | None = None

    @property
    def ok(self) -> bool:
        """All scenarios injected their fault and it was caught."""
        return bool(self.outcomes) and all(o.ok for o in self.outcomes)

    @property
    def failed(self) -> list[FaultOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "fabric_shape": list(self.fabric_shape),
            "ranks": self.ranks,
            "plan": self.plan.to_dict(),
            "outcomes": [o.as_dict() for o in self.outcomes],
            "ok": self.ok,
            "postmortem_path": self.postmortem_path,
        }

    def render(self) -> str:
        from repro.util.reporting import Table

        width, height = self.fabric_shape
        lines = [
            f"chaos run: seed {self.seed}, fabric {width}x{height}, "
            f"{self.ranks} rank(s)",
            "injected plan:",
        ]
        lines += [f"  - {line}" for line in self.plan.describe()]
        table = Table(
            "Fault scenarios",
            ["Scenario", "Fault", "Status", "Detail"],
        )
        for o in self.outcomes:
            table.add_row([o.scenario, o.fault, o.status, o.detail])
        lines += ["", table.render()]
        caught = sum(o.ok for o in self.outcomes)
        verdict = "CHAOS PASSED" if self.ok else "CHAOS FAILED"
        postmortem = (
            f" (post-mortem replay bundle: {self.postmortem_path})"
            if self.postmortem_path
            else ""
        )
        lines.append(
            f"{verdict}: {caught}/{len(self.outcomes)} fault scenarios "
            f"detected or recovered{postmortem}"
        )
        return "\n".join(lines)


def _first_line(exc: BaseException) -> str:
    return str(exc).splitlines()[0]


def run_chaos(
    plan: FaultPlan | None = None,
    *,
    nx: int = 4,
    ny: int = 4,
    nz: int = 3,
    seed: int = 7,
    px: int = 2,
    py: int = 2,
    watchdog_cycles: float = 20_000.0,
    steps: int = 4,
    dt: float = 3600.0,
    include_corruption: bool = True,
    include_checkpoint_drill: bool = True,
    include_par_drill: bool = True,
    include_supervisor_drills: bool = True,
    only=None,
    postmortem_dir: str | None = None,
) -> ChaosReport:
    """Run every backend under *plan* and report per-fault outcomes.

    With ``plan=None`` the canonical seeded plan for the ``nx x ny``
    fabric and ``px x py`` rank grid is used (1 dead PE, 1 lossy link,
    1 transient rank failure).  The same seed always reproduces the
    same plan, scenarios, and outcomes.

    ``only`` restricts the run to the named scenarios (any iterable of
    :data:`SCENARIOS` keys); unknown names raise ``ValueError`` listing
    the valid set.  The ``include_*`` switches still apply on top.

    With ``postmortem_dir`` set, any failed scenario (MISSED or NOT
    INJECTED) records a replay artifact there — the healthy reference
    run's per-step digests plus the offending plan and the failed
    outcomes under the ``postmortem`` meta key — so the failure can be
    reproduced and bisected offline (``repro conform`` reads it).
    """
    from repro.cluster.flux import ClusterFluxComputation
    from repro.core import (
        CartesianMesh3D,
        FluidProperties,
        Transmissibility,
        compute_flux_residual,
        random_pressure,
    )
    from repro.dataflow import SpareColumnRemap, WseFluxComputation

    if only is not None:
        only = tuple(only)
        unknown = sorted(set(only) - set(SCENARIOS))
        if unknown:
            raise ValueError(
                "unknown chaos scenario(s) "
                + ", ".join(repr(u) for u in unknown)
                + "; valid: " + ", ".join(sorted(SCENARIOS))
            )
    wanted = None if only is None else set(only)

    def want(name: str) -> bool:
        return wanted is None or name in wanted

    if plan is None:
        plan = FaultPlan.seeded(seed, fabric_shape=(nx, ny), ranks=px * py)
    report = ChaosReport(
        seed=plan.seed, fabric_shape=(nx, ny), ranks=px * py, plan=plan
    )

    mesh = CartesianMesh3D(nx, ny, nz)
    fluid = FluidProperties()
    trans = Transmissibility(mesh)
    pressure = random_pressure(mesh, seed=plan.seed)

    def wse(**kwargs):
        return WseFluxComputation(
            mesh, fluid, trans, dtype=np.float64,
            watchdog_cycles=watchdog_cycles, **kwargs,
        )

    healthy = wse().run_single(pressure)
    healthy_bytes = healthy.residual.tobytes()

    # ---------------------------------------------------------------- #
    # Dead PEs: detection (missing deliveries), then spare-column
    # recovery with a bit-identity check against the healthy fabric.
    # ---------------------------------------------------------------- #
    if plan.dead_pes and (want("dead-pe/detect") or want("dead-pe/remap")):
        label = ", ".join(str(d.coord) for d in plan.dead_pes)
        sub = FaultPlan(seed=plan.seed, dead_pes=plan.dead_pes)
    if plan.dead_pes and want("dead-pe/detect"):
        injector = FaultInjector(sub)
        try:
            wse(faults=injector).run_single(pressure)
            detected, detail = False, "run completed without any error"
        except RuntimeError as exc:
            detected, detail = True, _first_line(exc)
        report.outcomes.append(
            FaultOutcome(
                scenario="dead-pe/detect",
                fault=f"dead PE {label}",
                injected=injector.stats.fabric_events > 0,
                detected=detected,
                recovered=False,
                detail=detail,
            )
        )

    if plan.dead_pes and want("dead-pe/remap"):
        try:
            remap = SpareColumnRemap.around_dead_pes(
                (nx, ny), [d.coord for d in plan.dead_pes]
            )
            injector = FaultInjector(sub)
            result = wse(faults=injector, remap=remap).run_single(pressure)
            recovered = result.residual.tobytes() == healthy_bytes
            detail = (
                "spare column(s) "
                f"{sorted(remap.bypassed_columns)} bypassed; residual "
                + ("bit-identical to healthy fabric" if recovered else "DIFFERS")
            )
        except RuntimeError as exc:
            recovered, detail = False, _first_line(exc)
        report.outcomes.append(
            FaultOutcome(
                scenario="dead-pe/remap",
                fault=f"dead PE {label}",
                injected=True,
                detected=False,
                recovered=recovered,
                detail=detail,
            )
        )

    # ---------------------------------------------------------------- #
    # Link faults, one scenario per mode present in the plan.
    # ---------------------------------------------------------------- #
    drops = tuple(lf for lf in plan.link_faults if lf.mode == "drop")
    delays = tuple(lf for lf in plan.link_faults if lf.mode == "delay")
    corrupts = tuple(lf for lf in plan.link_faults if lf.mode == "corrupt")
    if include_corruption and drops and not corrupts:
        # derive a silent-corruption twin of the first lossy link so the
        # cross-check path is exercised even by pure-drop seeded plans
        lf = drops[0]
        corrupts = (LinkFault(lf.x, lf.y, lf.port, mode="corrupt"),)

    def link_label(faults) -> str:
        return ", ".join(f"{lf.coord}->{lf.port.name}" for lf in faults)

    if drops and want("link-drop/detect"):
        injector = FaultInjector(FaultPlan(seed=plan.seed, link_faults=drops))
        try:
            wse(faults=injector).run_single(pressure)
            detected, detail = False, "run completed without any error"
        except RuntimeError as exc:
            detected, detail = True, _first_line(exc)
        report.outcomes.append(
            FaultOutcome(
                scenario="link-drop/detect",
                fault=f"drop link {link_label(drops)}",
                injected=injector.stats.packets_dropped > 0,
                detected=detected,
                recovered=False,
                detail=f"{injector.stats.packets_dropped} packet(s) dropped; {detail}",
            )
        )

    if corrupts and want("link-corrupt/cross-check"):
        injector = FaultInjector(FaultPlan(seed=plan.seed, link_faults=corrupts))
        benign = False
        try:
            result = wse(faults=injector).run_single(pressure)
            differs = result.residual.tobytes() != healthy_bytes
            deviation = float(np.abs(result.residual - healthy.residual).max())
            detected = differs and injector.stats.packets_corrupted > 0
            detail = (
                f"{injector.stats.packets_corrupted} packet(s) corrupted; "
                f"residual cross-check deviation {deviation:.3e}"
            )
            if not differs:
                # the flipped bits landed in words the receivers never
                # read (e.g. upwind-unused densities): zero effect
                benign = True
                detail += " (absorbed: flipped words unused downstream)"
        except RuntimeError as exc:
            # a corrupted control word can also break the protocol outright
            detected, detail = True, _first_line(exc)
        report.outcomes.append(
            FaultOutcome(
                scenario="link-corrupt/cross-check",
                fault=f"corrupt link {link_label(corrupts)}",
                injected=injector.stats.packets_corrupted > 0,
                detected=detected,
                recovered=False,
                benign=benign,
                detail=detail,
            )
        )

    if delays and want("link-delay/detect"):
        injector = FaultInjector(FaultPlan(seed=plan.seed, link_faults=delays))
        benign = False
        try:
            result = wse(faults=injector).run_single(pressure)
            slowdown = result.device_cycles - healthy.device_cycles
            detected = injector.stats.packets_delayed > 0 and slowdown > 0
            detail = (
                f"{injector.stats.packets_delayed} packet(s) delayed; "
                f"+{slowdown:g} device cycles vs healthy"
            )
            if not detected and result.residual.tobytes() == healthy_bytes:
                # delays off the critical path are absorbed by overlap
                benign = True
                detail += " (absorbed by fabric slack)"
        except FabricStallError as exc:
            detected, detail = True, _first_line(exc)
        report.outcomes.append(
            FaultOutcome(
                scenario="link-delay/detect",
                fault=f"delay link {link_label(delays)}",
                injected=injector.stats.packets_delayed > 0,
                detected=detected,
                recovered=False,
                benign=benign,
                detail=detail,
            )
        )

    # ---------------------------------------------------------------- #
    # Router stalls: the progress watchdog must fire with a stall report.
    # ---------------------------------------------------------------- #
    if plan.router_stalls and want("router-stall/watchdog"):
        label = ", ".join(str(st.coord) for st in plan.router_stalls)
        injector = FaultInjector(
            FaultPlan(seed=plan.seed, router_stalls=plan.router_stalls)
        )
        try:
            wse(faults=injector).run_single(pressure)
            detected, detail = False, "watchdog never fired"
        except FabricStallError as exc:
            in_flight = len(exc.report.get("in_flight", ()))
            detected = True
            detail = f"{_first_line(exc)} ({in_flight} in-flight sampled)"
        except RuntimeError as exc:
            detected, detail = True, _first_line(exc)
        report.outcomes.append(
            FaultOutcome(
                scenario="router-stall/watchdog",
                fault=f"stalled router {label}",
                injected=injector.stats.hops_stalled > 0,
                detected=detected,
                recovered=False,
                detail=detail,
            )
        )

    # ---------------------------------------------------------------- #
    # Transient rank failures: halo re-exchange with retry must recover
    # and the residual must still match the reference kernel.
    # ---------------------------------------------------------------- #
    if plan.rank_failures and want("rank-failure/re-exchange"):
        label = ", ".join(str(rf.rank) for rf in plan.rank_failures)
        reference = compute_flux_residual(mesh, fluid, pressure, trans)
        injector = FaultInjector(plan.only_ranks())
        try:
            cluster = ClusterFluxComputation(
                mesh, fluid, px=px, py=py, faults=injector
            )
            result = cluster.run([pressure])
            recovered = bool(np.array_equal(result.residual, reference))
            detected = result.retransmissions > 0
            detail = (
                f"{injector.stats.sends_dropped} send(s) dropped, "
                f"{result.retransmissions} retransmission(s) in "
                f"{result.recovery_seconds * 1e6:.1f} us; residual "
                + ("matches reference" if recovered else "DIFFERS")
            )
        except RuntimeError as exc:
            detected, recovered, detail = True, False, _first_line(exc)
        report.outcomes.append(
            FaultOutcome(
                scenario="rank-failure/re-exchange",
                fault=f"transient failure of rank(s) {label}",
                injected=injector.stats.sends_dropped > 0,
                detected=detected,
                recovered=recovered,
                detail=detail,
            )
        )

    # ---------------------------------------------------------------- #
    # Multiprocess worker kill: the same rank failures, but the plan
    # now terminates a *real* worker process (os._exit) — the pool must
    # detect the death and, with respawn on, recover bit-identically.
    # ---------------------------------------------------------------- #
    par_scenarios_wanted = (
        want("par/worker-kill/detect")
        or want("par/worker-kill/respawn")
        or want("par/worker-hang/lease")
    )
    if include_par_drill and plan.rank_failures and par_scenarios_wanted:
        from repro.faults.errors import WorkerCrashError
        from repro.par.flux import ParClusterFluxComputation
        from repro.par.worker import KILL_EXIT_CODE

        label = ", ".join(str(rf.rank) for rf in plan.rank_failures)
        rank_plan = plan.only_ranks()
        # enough applications to reach the latest failure window
        par_apps = max(rf.exchange for rf in rank_plan.rank_failures) + 1
        par_pressures = [
            random_pressure(mesh, seed=plan.seed + i) for i in range(par_apps)
        ]
        serial_ref = ClusterFluxComputation(mesh, fluid, px=px, py=py).run(
            list(par_pressures)
        )

    if (
        include_par_drill and plan.rank_failures
        and want("par/worker-kill/detect")
    ):
        try:
            with ParClusterFluxComputation(
                mesh, fluid, px=px, py=py, workers=px * py,
                plan=rank_plan, respawn=False, record_spans=False,
            ) as par:
                par.run(list(par_pressures))
            detected, injected, detail = False, False, (
                "run completed without any worker death"
            )
        except WorkerCrashError as exc:
            detected = True
            injected = any(code == KILL_EXIT_CODE for _, _, code, _ in exc.crashed)
            # summarize without the OS pid so seeded reports stay
            # byte-identical across runs
            detail = "; ".join(
                f"worker {idx} died (exit {code}, ranks {list(ranks)})"
                for idx, _pid, code, ranks in exc.crashed
            )
        report.outcomes.append(
            FaultOutcome(
                scenario="par/worker-kill/detect",
                fault=f"killed worker process of rank(s) {label}",
                injected=injected,
                detected=detected,
                recovered=False,
                detail=detail,
            )
        )

    if (
        include_par_drill and plan.rank_failures
        and want("par/worker-kill/respawn")
    ):
        try:
            with ParClusterFluxComputation(
                mesh, fluid, px=px, py=py, workers=px * py,
                plan=rank_plan, respawn=True, record_spans=False,
            ) as par:
                result = par.run(list(par_pressures))
            recovered = bool(
                np.array_equal(result.residual, serial_ref.residual)
            )
            injected = result.respawns > 0
            detail = (
                f"{result.respawns} respawn(s); residual "
                + ("bit-identical to serial cluster backend"
                   if recovered else "DIFFERS")
            )
        except RuntimeError as exc:
            injected, recovered, detail = True, False, _first_line(exc)
        report.outcomes.append(
            FaultOutcome(
                scenario="par/worker-kill/respawn",
                fault=f"killed worker process of rank(s) {label}",
                injected=injected,
                detected=injected,
                recovered=recovered,
                detail=detail,
            )
        )

    # ---------------------------------------------------------------- #
    # Hung worker: the planned rank failure now SIGSTOPs its process
    # instead of exiting — only the heartbeat lease can see it.  The
    # supervisor must detect the expired lease, kill/restart the pool,
    # and resume bit-identically from its checkpoint.
    # ---------------------------------------------------------------- #
    if (
        include_par_drill and plan.rank_failures
        and want("par/worker-hang/lease")
    ):
        from repro.resilience import ResiliencePolicy, RunSupervisor

        hang_policy = ResiliencePolicy(
            max_restarts=1, backoff_base=0.0, backoff_jitter=0.0,
            seed=plan.seed, checkpoint_every=1, lease_seconds=0.75,
        )
        sup = RunSupervisor(
            mesh, fluid, policy=hang_policy, backend="par",
            px=px, py=py, workers=px * py, plan=rank_plan,
            failure_mode="hang",
        )
        try:
            res = sup.run(list(par_pressures))
            lease_hits = sum(
                e.get("error") == "WorkerLeaseExpiredError"
                for e in res.timeline if e["event"] == "failure"
            )
            detected = lease_hits > 0
            recovered = detected and bool(
                np.array_equal(res.residual, serial_ref.residual)
            )
            detail = (
                f"{lease_hits} lease expiry(ies), {res.restarts} "
                "restart(s); residual "
                + ("bit-identical to serial cluster backend"
                   if recovered else "DIFFERS")
            )
        except RuntimeError as exc:
            detected, recovered, detail = True, False, _first_line(exc)
        report.outcomes.append(
            FaultOutcome(
                scenario="par/worker-hang/lease",
                fault=f"hung (SIGSTOP) worker process of rank(s) {label}",
                injected=detected,
                detected=detected,
                recovered=recovered,
                detail=detail,
            )
        )

    # ---------------------------------------------------------------- #
    # Checkpoint/restart drill: kill the implicit solver mid-campaign,
    # resume from its last checkpoint, demand a bit-identical trajectory.
    # ---------------------------------------------------------------- #
    if (
        include_checkpoint_drill and steps >= 2
        and want("solver/checkpoint-restart")
    ):
        from repro.solver import CheckpointStore, SinglePhaseFlowSimulator, Well

        def make_sim():
            return SinglePhaseFlowSimulator(
                mesh, fluid, trans=trans,
                wells=[Well(nx // 2, ny // 2, nz // 2, rate=0.5)],
            )

        crash_at = steps // 2
        reference_sim = make_sim()
        reference_sim.run(steps, dt)
        store = CheckpointStore(keep=2)
        victim = make_sim()
        victim.run(crash_at, dt, checkpoint_store=store)
        del victim  # the "crash": the process state is gone
        resumed = make_sim()
        resumed.restore(store.latest())
        resumed.run(steps - crash_at, dt)
        recovered = (
            resumed.pressure.tobytes() == reference_sim.pressure.tobytes()
            and resumed.time == reference_sim.time
            and resumed.steps_completed == reference_sim.steps_completed
        )
        report.outcomes.append(
            FaultOutcome(
                scenario="solver/checkpoint-restart",
                fault=f"simulated crash after step {crash_at}/{steps}",
                injected=True,
                detected=True,
                recovered=recovered,
                detail=(
                    f"resumed from checkpoint at step {crash_at}; "
                    + (
                        "trajectory bit-identical to uninterrupted run"
                        if recovered
                        else "trajectory DIFFERS from uninterrupted run"
                    )
                ),
            )
        )

    # ---------------------------------------------------------------- #
    # Checkpoint corruption: bit-flip the newest on-disk checkpoint; the
    # checksum must reject it and the store must fall back to the
    # previous intact file with the exact state it saved.
    # ---------------------------------------------------------------- #
    if include_checkpoint_drill and want("checkpoint/corruption"):
        import tempfile

        from repro.faults.errors import CheckpointCorruptError
        from repro.solver import Checkpoint, CheckpointStore

        intact = random_pressure(mesh, seed=plan.seed + 31)
        newest = random_pressure(mesh, seed=plan.seed + 32)
        with tempfile.TemporaryDirectory() as tmp:
            disk = CheckpointStore(tmp, keep=2)
            disk.save(Checkpoint(step=1, time=1.0, pressure=intact))
            disk.save(Checkpoint(step=2, time=2.0, pressure=newest))
            target = sorted(Path(tmp).glob("checkpoint_*.npz"))[-1]
            blob = bytearray(target.read_bytes())
            # flip inside the pressure entry's payload (always
            # integrity-covered; zip local-header slack is not)
            blob[blob.index(b"pressure.npy") + 150] ^= 0x40
            target.write_bytes(bytes(blob))
            try:
                Checkpoint.load(target)
                detected, reason = False, "corrupt checkpoint loaded silently"
            except CheckpointCorruptError as exc:
                # category only: the mismatch digests would be
                # content-dependent noise in the seeded report
                detected, reason = True, exc.reason.split(" (")[0]
            survivors = CheckpointStore.open(tmp, keep=2)
            latest = survivors.latest()
            recovered = (
                detected
                and len(survivors.corrupt) == 1
                and latest is not None
                and latest.step == 1
                and np.array_equal(
                    np.asarray(latest.pressure),
                    np.asarray(intact, dtype=np.float64),
                )
            )
        report.outcomes.append(
            FaultOutcome(
                scenario="checkpoint/corruption",
                fault="bit flip in newest on-disk checkpoint",
                injected=True,
                detected=detected,
                recovered=recovered,
                detail=(
                    f"load rejected ({reason}); store "
                    + ("quarantined 1 corrupt file and fell back to the "
                       "intact checkpoint at step 1, state bit-identical"
                       if recovered else "FAILED to fall back intact")
                ),
            )
        )

    # ---------------------------------------------------------------- #
    # Supervisor drills: compound faults against the resilience layer —
    # repeated transients, a crash during recovery itself, and a
    # persistent backend failure that must degrade down the ladder.
    # ---------------------------------------------------------------- #
    if include_supervisor_drills and (
        want("supervisor/transient-repeat")
        or want("supervisor/crash-during-recovery")
    ):
        from repro.faults.errors import CommTimeoutError
        from repro.obs.replay import digest_array
        from repro.resilience import ResiliencePolicy, RunSupervisor

        sup_pressures = [
            random_pressure(mesh, seed=plan.seed + 10 + i) for i in range(3)
        ]
        sup_reference = [
            digest_array(wse().run_single(p).residual) for p in sup_pressures
        ]
        sup_policy = ResiliencePolicy(
            max_restarts=2, backoff_base=0.0, backoff_jitter=0.0,
            seed=plan.seed, checkpoint_every=1,
        )

        def flaky_event_factory(fail_calls):
            calls = {"n": 0}

            def factory(backend, attempt):
                drv = wse()

                def run_single(p):
                    calls["n"] += 1
                    if calls["n"] in fail_calls:
                        raise CommTimeoutError(
                            0, 1, calls["n"], 3,
                            policy={"attempts": 3},
                        )
                    return drv.run_single(p).residual

                return run_single, (lambda: None)

            return factory

        def supervisor_drill(scenario, fault, fail_calls):
            sup = RunSupervisor(
                mesh, fluid, policy=sup_policy, backend="event",
                driver_factory=flaky_event_factory(fail_calls),
            )
            try:
                res = sup.run(list(sup_pressures))
                failures = sum(
                    e["event"] == "failure" for e in res.timeline
                )
                detected = failures == len(fail_calls)
                recovered = detected and all(
                    s["residual_sha256"] == ref
                    for s, ref in zip(res.steps, sup_reference)
                )
                detail = (
                    f"{failures} injected timeout(s), {res.restarts} "
                    f"restart(s), {res.restores} restore(s); "
                    + ("all 3 residual digests bit-identical to the "
                       "uninterrupted run" if recovered
                       else "residual digests DIFFER")
                )
            except RuntimeError as exc:
                detected, recovered, detail = True, False, _first_line(exc)
            report.outcomes.append(
                FaultOutcome(
                    scenario=scenario,
                    fault=fault,
                    injected=True,
                    detected=detected,
                    recovered=recovered,
                    detail=detail,
                )
            )

        if want("supervisor/transient-repeat"):
            # both fault-free attempts at application 1 die: two full
            # detect -> backoff -> restore -> replay-verify cycles
            supervisor_drill(
                "supervisor/transient-repeat",
                "comm timeout on applications 1 of attempts 0 and 1",
                fail_calls={2, 4},
            )
        if want("supervisor/crash-during-recovery"):
            # the second fault lands on the restart's replay-verify of
            # the checkpointed application — recovery itself crashes
            supervisor_drill(
                "supervisor/crash-during-recovery",
                "comm timeout at application 1, again during replay-verify",
                fail_calls={2, 3},
            )

    if include_supervisor_drills and want("supervisor/degrade-ladder"):
        from repro.dataflow.lockstep import LockstepWseSimulation
        from repro.faults.errors import CommTimeoutError
        from repro.gpu.reference import GpuFluxComputation
        from repro.resilience import ResiliencePolicy, RunSupervisor

        ladder_pressures = [
            random_pressure(mesh, seed=plan.seed + 20 + i) for i in range(3)
        ]
        lockstep_ref = LockstepWseSimulation(
            mesh, fluid, dtype=np.float64
        ).run([ladder_pressures[-1]])
        gpu_calls = {"n": 0}

        def ladder_factory(backend, attempt):
            if backend == "gpu":
                drv = GpuFluxComputation(mesh, fluid, dtype=np.float64)

                def run_single(p):
                    gpu_calls["n"] += 1
                    if gpu_calls["n"] >= 2:
                        # persistent failure: every call after the first
                        # committed application dies
                        raise CommTimeoutError(0, 1, 9, 1)
                    return drv.run_single(p).residual

                return run_single, (lambda: None)
            drv = LockstepWseSimulation(mesh, fluid, dtype=np.float64)
            return (lambda p: drv.run([p])), (lambda: None)

        sup = RunSupervisor(
            mesh, fluid, backend="gpu",
            policy=ResiliencePolicy(
                max_restarts=1, backoff_base=0.0, backoff_jitter=0.0,
                seed=plan.seed, checkpoint_every=1,
                ladder=("gpu", "lockstep"),
            ),
            driver_factory=ladder_factory,
        )
        try:
            res = sup.run(list(ladder_pressures))
            verified = any(
                e["event"] == "replay_verify"
                and e["mode"] == "tolerance" and e["ok"]
                for e in res.timeline
            )
            detected = res.backend_chain == ["gpu", "lockstep"]
            recovered = (
                detected and verified
                and bool(np.array_equal(res.residual, lockstep_ref))
            )
            detail = (
                f"chain {' -> '.join(res.backend_chain)} after "
                f"{res.restarts} restart(s); fallback "
                + ("conformance-verified against the gpu checkpoint; "
                   "finish bit-identical to a pure lockstep run"
                   if recovered else "FAILED verification")
            )
        except RuntimeError as exc:
            detected, recovered, detail = True, False, _first_line(exc)
        report.outcomes.append(
            FaultOutcome(
                scenario="supervisor/degrade-ladder",
                fault="persistent gpu-model failure after first application",
                injected=True,
                detected=detected,
                recovered=recovered,
                detail=detail,
            )
        )

    if postmortem_dir is not None and not report.ok:
        bundle = _record_postmortem(report, nx=nx, ny=ny, nz=nz, px=px, py=py)
        report.postmortem_path = str(
            bundle.save(
                Path(postmortem_dir)
                / f"chaos-seed{plan.seed}-postmortem.rpz"
            )
        )
    return report


def _record_postmortem(report: ChaosReport, *, nx, ny, nz, px, py):
    """Record the failure evidence bundle for a failed chaos run.

    The artifact captures the *healthy* reference run (so its digests
    are the ground truth any debugging replay diffs against) and carries
    the offending fault plan plus the failed outcomes under the
    ``postmortem`` meta key — deliberately NOT under ``fault_plan``, so
    a plain ``repro conform`` replay of the bundle runs clean and the
    investigator opts into re-injecting the plan explicitly.
    """
    from repro.conform.runner import record_run

    return record_run(
        "event",
        nx=nx, ny=ny, nz=nz,
        geomodel="plain",
        seed=report.plan.seed,
        applications=1,
        px=px, py=py,
        pressure_seed=report.plan.seed,
        extra_meta={
            "postmortem": {
                "plan": report.plan.to_dict(),
                "failed": [o.as_dict() for o in report.failed],
                "px": px,
                "py": py,
            }
        },
    )
