"""PE scratchpad memory: a bump allocator with capacity accounting.

Every PE owns a small private local memory (48 KB on WSE-2) holding code,
cell data, face data, and communication buffers (Sec. 5.3.1).  "Reducing
the memory consumption on each PE is crucial to fit the largest possible
problem", and the paper hand-crafts buffer reuse "akin to register
allocation optimization".

:class:`Scratchpad` provides named allocations backed by NumPy arrays,
tracks the high-water mark, raises on overflow, and supports *aliasing* —
deliberately overlaying a new logical buffer on an existing allocation,
the reuse mechanism quantified by the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Scratchpad", "Allocation", "PEMemoryError", "WSE2_PE_MEMORY_BYTES"]

#: Private local memory per WSE-2 processing element.
WSE2_PE_MEMORY_BYTES = 48 * 1024


class PEMemoryError(MemoryError):
    """Raised when an allocation exceeds the PE's local memory."""


@dataclass(frozen=True)
class Allocation:
    """One named region of a PE scratchpad."""

    name: str
    offset: int
    nbytes: int
    array: np.ndarray

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.offset + self.nbytes


class Scratchpad:
    """Named bump allocator over a fixed-size private memory.

    Parameters
    ----------
    capacity:
        Usable bytes (default: the full 48 KB of a WSE-2 PE).
    reserved:
        Bytes set aside for code/runtime (reduces usable capacity), the
        "instructions" the paper notes must share PE memory (Sec. 5.3.1).
    """

    def __init__(
        self,
        capacity: int = WSE2_PE_MEMORY_BYTES,
        *,
        reserved: int = 0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= reserved < capacity:
            raise ValueError("reserved must lie in [0, capacity)")
        self.capacity = int(capacity)
        self.reserved = int(reserved)
        self._cursor = self.reserved
        self._allocations: dict[str, Allocation] = {}
        self.high_water = self.reserved

    # ------------------------------------------------------------------ #
    @property
    def used(self) -> int:
        """Bytes currently allocated (including the reserved region)."""
        return self._cursor

    @property
    def free(self) -> int:
        """Bytes still available."""
        return self.capacity - self._cursor

    def alloc_array(self, name: str, shape, dtype=np.float32) -> np.ndarray:
        """Allocate a named zero-initialized array in PE memory.

        Raises
        ------
        PEMemoryError
            When the region does not fit; the message reports the
            shortfall, mirroring an SDK out-of-memory compile error.
        ValueError
            When *name* is already allocated.
        """
        if name in self._allocations:
            raise ValueError(f"allocation {name!r} already exists")
        arr = np.zeros(shape, dtype=dtype)
        nbytes = arr.nbytes
        if self._cursor + nbytes > self.capacity:
            raise PEMemoryError(
                f"PE memory overflow allocating {name!r}: need {nbytes} B, "
                f"have {self.free} B of {self.capacity} B"
            )
        alloc = Allocation(name, self._cursor, nbytes, arr)
        self._cursor += nbytes
        self.high_water = max(self.high_water, self._cursor)
        self._allocations[name] = alloc
        return arr

    def alias(self, name: str, existing: str) -> np.ndarray:
        """Overlay logical buffer *name* on the allocation of *existing*.

        This is the paper's hand-crafted buffer reuse (Sec. 5.3.1): the new
        buffer consumes no additional memory and shares storage with the
        existing one — callers take responsibility for the lifetime
        ("overwriting / reusing data buffers eliminates the need for data
        replication").
        """
        if name in self._allocations:
            raise ValueError(f"allocation {name!r} already exists")
        base = self.get(existing)
        alloc = Allocation(name, base.offset, base.nbytes, base.array)
        self._allocations[name] = alloc
        return base.array

    def free_allocation(self, name: str) -> None:
        """Release a named allocation.

        Only the *most recent distinct region* can actually return bytes
        to the pool (bump allocation); earlier frees merely drop the name.
        Aliases never return bytes.
        """
        alloc = self._allocations.pop(name, None)
        if alloc is None:
            raise KeyError(f"allocation {name!r} not found")
        still_used = any(a.offset == alloc.offset for a in self._allocations.values())
        if not still_used and alloc.end == self._cursor:
            self._cursor = alloc.offset

    def get(self, name: str) -> Allocation:
        """Look up a named allocation."""
        try:
            return self._allocations[name]
        except KeyError:
            raise KeyError(f"allocation {name!r} not found") from None

    def array(self, name: str) -> np.ndarray:
        """The backing array of a named allocation."""
        return self.get(name).array

    def names(self) -> list[str]:
        """All allocation names, in allocation order."""
        return list(self._allocations)

    def overlap_pairs(self) -> list[tuple[str, str]]:
        """Pairs of distinct allocations whose byte ranges overlap.

        Non-aliased allocations never overlap (verified by property
        tests); aliases appear here by construction.
        """
        allocs = list(self._allocations.values())
        out = []
        for i, a in enumerate(allocs):
            for b in allocs[i + 1 :]:
                if a.offset < b.end and b.offset < a.end:
                    out.append((a.name, b.name))
        return out
