"""Shared benchmark fixtures and result reporting.

Every benchmark regenerates one table or figure of the paper: it prints
the reproduced rows next to the published values and writes the same
text to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can be
checked against committed output.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir, request):
    """Callable writing a rendered report for the current benchmark."""

    def _write(text: str) -> None:
        name = request.node.name.replace("/", "_")
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print()  # visible under pytest -s
        print(text)

    return _write
