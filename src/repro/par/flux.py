"""`ParClusterFluxComputation` — the multiprocess twin of the serial
cluster backend.

Drop-in for :class:`~repro.cluster.flux.ClusterFluxComputation.run`:
the same ``px x py`` decomposition, the same canonical halo-link order —
executed by real processes over shared memory.  Each rank runs the
vectorized :class:`~repro.par.kernel.RankKernel` (same IEEE fold order
as the reference kernel, one fused pass per connection instead of a
Python-level cell loop), workers come warm from the process-wide
reservoir (:mod:`repro.par.runtime`), applications pipeline to depth
:data:`PIPELINE_DEPTH` over the arena's parity slots, and — when the
host has the cores for it — each rank's interior computes while halo
receives are still in flight.  Because every rank folds each cell's
connections in the canonical order inside exactly one box and the
global residual is assembled from disjoint owned regions (each written
by exactly one worker, no reduction across workers), the result is
**bit-identical** to the serial backend on any worker count, with or
without overlap.

What the serial backend *models*, this one *measures*: per-rank
compute/exchange nanoseconds, receive-spin wait seconds and worker PIDs
come back over the reply pipes each application, and worker-side spans
merge into the parent's installed :class:`~repro.obs.spans.SpanRecorder`.

Crash recovery: an injected (or organic) worker death raises
:class:`~repro.faults.errors.WorkerCrashError` out of the pool; with
``respawn=True`` the parent terminates the survivors, rewinds the
arena's link sequence headers to the last completed exchange, respawns
the pool with ``start_exchange``/``attempt_offset`` carried forward and
retries the in-flight application — the process-level analogue of the
serial backend's retransmit-with-backoff recovery.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core import constants
from repro.core.fluid import FluidProperties
from repro.core.mesh import CartesianMesh3D
from repro.cluster.comm import CartGrid
from repro.cluster.decomposition import BlockDecomposition, _split
from repro.faults.errors import WorkerCrashError
from repro.faults.plan import FaultPlan
from repro.obs.spans import get_recorder, ingest_spans, span
from repro.par.layout import NUM_PARITIES, HaloLayout
from repro.par.runtime import ProcPool, available_cpus
from repro.par.shm import SharedArena
from repro.par.worker import WorkerSpec

__all__ = ["ParClusterFluxComputation", "ParClusterRunResult"]

#: Applications the parent keeps in flight: it stages application ``k``
#: (pressure write + run command) before collecting ``k - 1``, so
#: workers stream from one application into the next without a
#: parent round-trip stall between them.  Bounded by the number of
#: pressure/link parity slots in the arena.
PIPELINE_DEPTH = min(2, NUM_PARITIES)

_COUNTERS = (
    "messages_sent",
    "messages_received",
    "bytes_sent",
    "bytes_received",
    "sends_dropped",
    "retry_waits",
)


@dataclass
class ParClusterRunResult:
    """Outcome of a batch of applications on the multiprocess rank grid.

    The traffic fields mirror
    :class:`~repro.cluster.flux.ClusterRunResult`; the measured fields
    (``wall_seconds``, ``per_rank``) have no serial counterpart — they
    are real wall-clock observations, not model outputs.
    """

    residual: np.ndarray
    applications: int
    ranks: int
    workers: int
    messages_per_application: int
    halo_bytes_per_application: int
    total_bytes: int
    wall_seconds: float
    respawns: int = 0
    #: Per-rank measurements: rank, worker, pid, compute_seconds,
    #: exchange_seconds, wait_seconds.
    per_rank: list[dict] = field(default_factory=list)

    @property
    def distinct_pids(self) -> int:
        """Distinct worker PIDs observed — the concurrency proof."""
        return len({row["pid"] for row in self.per_rank})

    @property
    def compute_seconds(self) -> float:
        return sum(row["compute_seconds"] for row in self.per_rank)

    @property
    def wait_seconds(self) -> float:
        return sum(row["wait_seconds"] for row in self.per_rank)

    def as_metrics(self) -> dict:
        """Counters as a plain dict for the obs metrics registry."""
        return {
            "applications": self.applications,
            "ranks": self.ranks,
            "workers": self.workers,
            "distinct_pids": self.distinct_pids,
            "messages_per_application": self.messages_per_application,
            "halo_bytes_per_application": self.halo_bytes_per_application,
            "total_bytes": self.total_bytes,
            "wall_seconds": self.wall_seconds,
            "compute_seconds": self.compute_seconds,
            "wait_seconds": self.wait_seconds,
            "respawns": self.respawns,
        }


class ParClusterFluxComputation:
    """Algorithm 1 on a ``px x py`` rank grid, ranks sharded over real
    processes with shared-memory halo exchange.

    Parameters
    ----------
    mesh, fluid:
        Problem definition (global); both must pickle (they do).
    px, py:
        Process grid dimensions (rank grid, as in the serial backend).
    workers:
        Worker *processes*; ranks are split contiguously across them.
        Defaults to ``min(size, os.cpu_count())``.
    plan:
        Optional :class:`~repro.faults.plan.FaultPlan` whose rank
        failures kill the owning worker process for real.
    respawn:
        Recover from worker crashes by respawning the pool and retrying
        the in-flight application (True), or let
        :class:`WorkerCrashError` propagate (False).
    max_respawns:
        Respawn budget; defaults to the plan's worst-case failure
        attempts + 1 (or 1 with no plan).
    timeout_seconds:
        Per-application reply budget before the parent gives up.
    overlap:
        Compute each rank's interior while halo receives are in flight
        (True), or compute the whole owned box after the receives land
        (False).  Default ``None`` decides adaptively: overlap only when
        there are multiple workers *and* multiple usable cores — with a
        single worker there is no inter-process latency to hide, and on
        a single core the spin-vs-compute contention plus the thin
        boundary-slab kernel launches cost more than they save.  The
        residual is bit-identical either way.
    lease_seconds:
        Heartbeat lease for hung-worker detection: when set, a live
        worker whose shared-arena heartbeat counter stalls for this long
        while the parent is waiting on it raises
        :class:`~repro.faults.errors.WorkerLeaseExpiredError` — which
        subclasses :class:`WorkerCrashError`, so ``respawn=True``
        recovers from a SIGSTOP'd worker exactly like a dead one.
    failure_mode:
        How injected rank failures manifest in workers: ``"exit"``
        (real crash) or ``"hang"`` (SIGSTOP — detectable only through
        the heartbeat lease).
    race_trace:
        Record every shared-arena access of this run — parent pressure
        stages, worker scatters/residual writes, every halo
        publish/observe — as happens-before events for the
        :func:`repro.check.race_trace.check_hb` analyzer.  The merged
        trace (parent + shipped worker events) accumulates on
        :attr:`races`.  Meant for fault-free verification runs; off by
        default and zero-cost then.
    """

    def __init__(
        self,
        mesh: CartesianMesh3D,
        fluid: FluidProperties,
        *,
        px: int,
        py: int,
        workers: int | None = None,
        gravity: float = constants.GRAVITY,
        dtype=np.float64,
        plan: FaultPlan | None = None,
        respawn: bool = True,
        max_respawns: int | None = None,
        timeout_seconds: float = 120.0,
        record_spans: bool = True,
        overlap: bool | None = None,
        record=None,
        lease_seconds: float | None = None,
        failure_mode: str = "exit",
        race_trace: bool = False,
    ) -> None:
        self.mesh = mesh
        self.fluid = fluid
        self.gravity = float(gravity)
        self.dtype = np.dtype(dtype)
        self.grid = CartGrid(px, py)
        self.decomp = BlockDecomposition(mesh, px, py)
        size = self.grid.size
        if workers is None:
            workers = min(size, os.cpu_count() or 1)
        if not 1 <= workers <= size:
            raise ValueError(
                f"workers must be in 1..{size} (ranks), got {workers}"
            )
        self.workers = int(workers)
        self.plan = plan
        self.respawn = bool(respawn)
        if max_respawns is None:
            failures = plan.rank_failures if plan is not None else ()
            max_respawns = (
                max((rf.attempts for rf in failures), default=0) + 1
            )
        self.max_respawns = int(max_respawns)
        self.timeout_seconds = float(timeout_seconds)
        self.record_spans = bool(record_spans)
        if failure_mode not in ("exit", "hang"):
            raise ValueError(
                f"failure_mode must be 'exit' or 'hang', got {failure_mode!r}"
            )
        self.failure_mode = failure_mode
        self.lease_seconds = (
            float(lease_seconds) if lease_seconds is not None else None
        )
        if overlap is None:
            overlap = self.workers > 1 and available_cpus() > 1
        self.overlap = bool(overlap)
        self.layout = HaloLayout.from_decomposition(
            self.decomp, self.grid, dtype=self.dtype
        )
        #: rank ranges per worker, contiguous (worker i runs ranks
        #: ``range(*self.rank_split[i])``)
        self.rank_split = _split(size, self.workers)
        self._arena: SharedArena | None = None
        self._pool: ProcPool | None = None
        self._exchanges_done = 0
        self._respawns = 0
        # committed per-rank counter totals (across respawns) and the
        # last cumulative snapshot seen from the current pool generation
        self._acc = [dict.fromkeys(_COUNTERS, 0) for _ in range(size)]
        self._cum = [dict.fromkeys(_COUNTERS, 0) for _ in range(size)]
        self._per_rank = [
            {
                "rank": r,
                "worker": -1,
                "pid": -1,
                "compute_seconds": 0.0,
                "exchange_seconds": 0.0,
                "wait_seconds": 0.0,
            }
            for r in range(size)
        ]
        self._applications = 0
        #: Optional :class:`~repro.obs.replay.ReplayRecorder`.  Recording
        #: needs the arena residual quiescent after every application, so
        #: it disables pipelining (see :meth:`run`); numerics are
        #: unaffected — the fold order never depends on the depth.
        self.record = record
        #: Parent-side happens-before recorder (``race_trace=True``);
        #: worker events ship back in reply payloads and are ingested
        #: here, so after a run this holds the full merged trace.
        self.races = None
        if race_trace:
            from repro.check.race_trace import RaceTraceRecorder

            self.races = RaceTraceRecorder("parent")

    # ------------------------------------------------------------------ #
    def _specs(self, *, attempt_offset: int = 0) -> list[WorkerSpec]:
        specs = []
        for i, (lo, hi) in enumerate(self.rank_split):
            specs.append(
                WorkerSpec(
                    index=i,
                    ranks=tuple(range(lo, hi)),
                    arena_name=self._arena.name,
                    layout=self.layout,
                    mesh=self.mesh,
                    fluid=self.fluid,
                    px=self.grid.px,
                    py=self.grid.py,
                    gravity=self.gravity,
                    dtype=self.dtype.name,
                    plan=self.plan,
                    kill_for_real=self.plan is not None,
                    start_exchange=self._exchanges_done,
                    attempt_offset=attempt_offset,
                    record_spans=self.record_spans,
                    record_races=self.races is not None,
                    overlap=self.overlap,
                    failure_mode=self.failure_mode,
                )
            )
        return specs

    def _liveness(self, worker_index: int) -> int:
        """Sum of a worker's ranks' heartbeat counters (lease probe)."""
        lo, hi = self.rank_split[worker_index]
        return sum(self._arena.heartbeat(r) for r in range(lo, hi))

    def _ensure_pool(self) -> None:
        if self._arena is None:
            self._arena = SharedArena(self.layout, create=True)
            self._arena.reset_seqs(self._exchanges_done)
        if self._pool is None:
            try:
                # workers come warm from the process-wide reservoir;
                # setup ships the specs and runs the per-rank state
                # build in parallel across them
                self._pool = ProcPool(
                    self._specs(),
                    liveness=self._liveness,
                    lease_seconds=self.lease_seconds,
                    attempt=self._respawns,
                )
            except BaseException:
                # nothing usable was set up — release the segment now
                # instead of leaking it until interpreter exit
                self._arena.close()
                self._arena = None
                raise
            self._cum = [
                dict.fromkeys(_COUNTERS, 0) for _ in range(self.grid.size)
            ]

    def _respawn_pool(self, pending: list[int]) -> None:
        """Crash recovery: kill survivors, rewind sequence headers to the
        last completed exchange, restart past the failure window and
        re-issue every application still in flight.  The in-flight
        pressures need no re-staging: workers never write the arena's
        pressure parity slots, so each pending application's field is
        still sitting in slot ``index % 2``."""
        self._pool.terminate()
        self._respawns += 1
        self._arena.reset_seqs(self._exchanges_done)
        self._pool = ProcPool(
            self._specs(attempt_offset=self._respawns),
            liveness=self._liveness,
            lease_seconds=self.lease_seconds,
            attempt=self._respawns,
        )
        self._cum = [
            dict.fromkeys(_COUNTERS, 0) for _ in range(self.grid.size)
        ]
        for _ in pending:
            self._pool.send_run()

    def _absorb(self, payloads: list[dict], index: int = -1) -> None:
        """Fold one application's worker payloads into the accumulators."""
        recorder = get_recorder()
        for payload in payloads:
            if self.races is not None:
                # collecting the reply is the acquire matching the
                # worker's end-of-application release
                self.races.record(
                    "acquire", ("reply", payload["worker"]),
                    value=index, step=index,
                )
                self.races.ingest(payload.get("races", []))
            ranks = payload["ranks"]
            for rank in ranks:
                cum = payload["stats"][rank]
                acc = self._acc[rank]
                prev = self._cum[rank]
                for key in _COUNTERS:
                    acc[key] += cum[key] - prev[key]
                self._cum[rank] = dict(cum)
                row = self._per_rank[rank]
                row["worker"] = payload["worker"]
                row["pid"] = payload["pid"]
                ns = payload["per_rank_ns"][rank]
                row["compute_seconds"] += ns["compute_ns"] / 1e9
                row["exchange_seconds"] += ns["exchange_ns"] / 1e9
                row["wait_seconds"] += payload["waited_seconds"] / len(ranks)
            if recorder is not None and payload["spans"]:
                ingest_spans(
                    recorder, payload["spans"],
                    pid=payload["pid"], worker=payload["worker"],
                )

    def _collect_oldest(self, pending: list[int]) -> None:
        """Absorb the replies of the oldest in-flight application,
        respawning (and re-issuing all of ``pending``) on a crash."""
        index = pending[0]
        with span("par.application", backend="par", ranks=self.grid.size,
                  workers=self.workers, application=index):
            while True:
                try:
                    payloads = self._pool.collect(
                        timeout_seconds=self.timeout_seconds,
                        phase=f"application {index}",
                    )
                except WorkerCrashError:
                    if (
                        not self.respawn
                        or self._respawns >= self.max_respawns
                    ):
                        raise
                    self._respawn_pool(pending)
                    continue
                break
        self._absorb(payloads, index=index)
        self._exchanges_done += 1
        pending.pop(0)

    # ------------------------------------------------------------------ #
    def run(self, pressures) -> ParClusterRunResult:
        """One application per pressure field (bit-identical to the
        serial :meth:`ClusterFluxComputation.run` residual).

        Applications are pipelined to depth :data:`PIPELINE_DEPTH`: the
        pressure for application ``k`` lands in parity slot ``k % 2``
        and its run command is issued before ``k - 1``'s replies are
        collected, so workers flow between applications without waiting
        on the parent.  The batch is fully drained before the residual
        is read back.
        """
        self._ensure_pool()
        applications = 0
        msgs_before = sum(a["messages_sent"] for a in self._acc)
        bytes_before = sum(a["bytes_sent"] for a in self._acc)
        respawns_before = self._respawns
        t_run0 = time.perf_counter_ns()
        # in-flight application indices; each one's pressure lives in
        # arena parity slot ``index % 2`` until its replies are collected
        pending: list[int] = []
        # recording reads arena.residual after every application, which
        # is only safe once the workers are done with it — so the replay
        # path runs at depth 1 (collect before the next stage)
        depth = 1 if self.record is not None else PIPELINE_DEPTH
        for pressure in pressures:
            self.mesh.validate_field(pressure, name="pressure")
            if len(pending) >= depth:
                self._collect_oldest(pending)
            index = self._applications
            if self.races is not None:
                self.races.record(
                    "write", ("pressure", index % NUM_PARITIES),
                    value=index, step=index,
                )
            np.copyto(
                self._arena.pressure(index),
                np.asarray(pressure, dtype=self.dtype),
            )
            if self.races is not None:
                # issuing the run command publishes the staged field:
                # the workers' pickup is the matching acquire
                self.races.record("release", ("app",), value=index, step=index)
            self._pool.send_run()
            pending.append(index)
            self._applications += 1
            applications += 1
            if self.record is not None:
                self._collect_oldest(pending)
                self.record.record_step(pressure, self._arena.residual)
        while pending:
            self._collect_oldest(pending)
        if applications == 0:
            raise ValueError("no pressure fields supplied")
        wall_seconds = (time.perf_counter_ns() - t_run0) / 1e9
        if self.races is not None:
            last = self._applications - 1
            for rank in range(self.grid.size):
                self.races.record(
                    "read", ("residual", rank),
                    value=last, step=last, rank=rank,
                )
        total_msgs = sum(a["messages_sent"] for a in self._acc) - msgs_before
        total_bytes = sum(a["bytes_sent"] for a in self._acc) - bytes_before
        return ParClusterRunResult(
            residual=np.array(self._arena.residual, dtype=self.dtype),
            applications=applications,
            ranks=self.grid.size,
            workers=self.workers,
            messages_per_application=total_msgs // applications,
            halo_bytes_per_application=total_bytes // applications,
            total_bytes=sum(a["bytes_sent"] for a in self._acc),
            wall_seconds=wall_seconds,
            respawns=self._respawns - respawns_before,
            per_rank=[dict(row) for row in self._per_rank],
        )

    def run_single(self, pressure: np.ndarray) -> ParClusterRunResult:
        """Run one application."""
        return self.run([pressure])

    def rank_stats(self) -> list[dict]:
        """Per-rank communication counters measured by the workers
        (committed totals across respawns), one dict per rank — ready to
        fold into one summary via ``MetricsRegistry.merge``."""
        return [dict(acc) for acc in self._acc]

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop the workers and release the shared segment."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None

    def __enter__(self) -> "ParClusterFluxComputation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass
