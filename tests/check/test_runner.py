"""End-to-end verification: programs, the example registry, the CLI."""

import io
import json

import pytest

from repro.check import EXAMPLE_PROGRAMS, check_examples, check_program
from repro.cli import main
from repro.core import CartesianMesh3D, FluidProperties
from repro.dataflow.program import FluxProgram


class TestCheckProgram:
    def test_healthy_program_passes_with_boundary_info_only(self):
        program = FluxProgram(CartesianMesh3D(5, 4, 3), FluidProperties())
        report = check_program(program)
        assert report.ok, report.render()
        assert {f.code for f in report.findings} == {"offchip-exit"}

    def test_remapped_program_passes(self):
        from repro.dataflow.mapping import SpareColumnRemap

        remap = SpareColumnRemap.around_dead_pes((5, 4), [(2, 1)])
        program = FluxProgram(
            CartesianMesh3D(5, 4, 3), FluidProperties(), remap=remap
        )
        report = check_program(program)
        assert report.ok, report.render()

    def test_every_registered_example_passes(self):
        reports = check_examples()
        assert set(reports) == set(EXAMPLE_PROGRAMS)
        for name, report in reports.items():
            assert report.ok, f"{name}:\n{report.render()}"


class TestCliCheck:
    def test_single_program_passes(self):
        out = io.StringIO()
        code = main(["check", "--nx", "5", "--ny", "4", "--nz", "3"], out=out)
        assert code == 0
        assert "CHECK PASSED" in out.getvalue()

    def test_examples_and_lint_gate(self, tmp_path):
        out = io.StringIO()
        json_path = tmp_path / "findings.json"
        code = main(
            ["check", "--examples", "--lint", "src/repro", "--json", str(json_path)],
            out=out,
        )
        assert code == 0
        doc = json.loads(json_path.read_text())
        assert doc["ok"] is True
        subjects = {s["subject"] for s in doc["subjects"]}
        assert any(s.startswith("example ") for s in subjects)
        assert any(s.startswith("determinism lint") for s in subjects)

    def test_lint_failure_sets_exit_code(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        out = io.StringIO()
        code = main(
            ["check", "--lint-only", "--lint", str(bad)], out=out
        )
        assert code == 1
        assert "det-unseeded-rng" in out.getvalue()

    def test_lint_only_without_lint_is_usage_error(self, capsys):
        assert main(["check", "--lint-only"], out=io.StringIO()) == 2
        assert "--lint" in capsys.readouterr().err

    def test_json_findings_carry_coordinates(self, tmp_path):
        json_path = tmp_path / "f.json"
        code = main(
            ["check", "--nx", "4", "--ny", "3", "--nz", "2", "--json", str(json_path)],
            out=io.StringIO(),
        )
        assert code == 0
        doc = json.loads(json_path.read_text())
        findings = doc["subjects"][0]["findings"]
        assert findings, "boundary exits should be reported at INFO"
        for f in findings:
            assert f["severity"] in {"INFO", "WARNING", "ERROR"}
            assert f["coord"] is not None
