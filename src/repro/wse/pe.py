"""Processing element: private memory, DSD datapath, color-bound tasks.

Each PE owns a :class:`~repro.wse.memory.Scratchpad` (its private local
memory), a :class:`~repro.wse.dsd.DsdEngine` (its vector datapath with
instruction accounting), and a set of task handlers bound to colors — the
CSL programming model in which receiving a wavelet of a color activates
the task bound to that color.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.wse.dsd import DsdEngine
from repro.wse.memory import Scratchpad
from repro.wse.packet import KIND_CONTROL, Message

__all__ = ["ProcessingElement"]

#: A data task: ``handler(runtime, pe, message)``.
Handler = Callable[["object", "ProcessingElement", Message], None]


@dataclass(slots=True)
class ProcessingElement:
    """One PE of the fabric.

    Attributes
    ----------
    coord:
        Fabric coordinate ``(x, y)``.
    memory:
        Private scratchpad (48 KB on WSE-2).
    dsd:
        Vector datapath with instruction/traffic/cycle accounting.
    busy_until:
        Cycle time until which the PE's datapath is occupied; the runtime
        serializes task executions behind it (routers and links operate
        independently of the PE, Sec. 5.3.2).
    state:
        Free-form per-program scratch (iteration flags, counters).
    """

    coord: tuple[int, int]
    memory: Scratchpad = field(default_factory=Scratchpad)
    dsd: DsdEngine = field(default_factory=DsdEngine)
    busy_until: float = 0.0
    state: dict = field(default_factory=dict)
    #: Start time / cycle counter of the task currently executing on this
    #: PE (set by the runtime before each handler; read by
    #: ``EventRuntime.pe_send_time``).  Plain attributes rather than
    #: ``state`` entries: they are written on every delivery.
    exec_start: float | None = None
    cycles_at_start: float = 0.0
    messages_received: int = 0
    messages_sent: int = 0
    words_received: int = 0
    words_sent: int = 0
    _handlers: dict[int, Handler] = field(default_factory=dict)
    _control_handlers: dict[int, Handler] = field(default_factory=dict)

    def bind(self, color: int, handler: Handler) -> None:
        """Bind the data task of *color* (one task per color)."""
        if color in self._handlers:
            raise ValueError(f"PE {self.coord}: color {color} already bound")
        self._handlers[color] = handler

    def bind_control(self, color: int, handler: Handler) -> None:
        """Bind the control task of *color* (invoked on control wavelets)."""
        if color in self._control_handlers:
            raise ValueError(
                f"PE {self.coord}: control for color {color} already bound"
            )
        self._control_handlers[color] = handler

    def handler_for(self, message: Message) -> Handler | None:
        """Handler to run for *message* (None when nothing is bound)."""
        if message.kind == KIND_CONTROL:
            return self._control_handlers.get(message.color)
        return self._handlers.get(message.color)

    @property
    def x(self) -> int:
        return self.coord[0]

    @property
    def y(self) -> int:
        return self.coord[1]
