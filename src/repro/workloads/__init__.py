"""Synthetic geomodels and experiment scenarios (workload generators)."""

from repro.workloads.geomodels import (
    channelized_permeability,
    layered_permeability,
    lognormal_permeability,
    make_geomodel,
    uniform_permeability,
)
from repro.workloads.scenarios import (
    FluxScenario,
    InjectionScenario,
    paper_mesh_scaled,
)

__all__ = [
    "uniform_permeability",
    "layered_permeability",
    "lognormal_permeability",
    "channelized_permeability",
    "make_geomodel",
    "FluxScenario",
    "InjectionScenario",
    "paper_mesh_scaled",
]
