"""Unit tests for the lockstep (vectorized) dataflow simulation."""

import numpy as np
import pytest

from repro.core import (
    CartesianMesh3D,
    FluidProperties,
    PressureSequence,
    Transmissibility,
    compute_flux_residual,
    random_pressure,
)
from repro.dataflow import LockstepWseSimulation, WseFluxComputation
from repro.workloads import make_geomodel


class TestNumerics:
    def test_matches_reference(self, fluid):
        mesh = make_geomodel(12, 10, 6, kind="lognormal", seed=2)
        trans = Transmissibility(mesh)
        p = random_pressure(mesh, seed=9)
        sim = LockstepWseSimulation(mesh, fluid, trans, dtype=np.float64)
        r = sim.run_application(p)
        ref = compute_flux_residual(mesh, fluid, p, trans)
        scale = np.abs(ref).max()
        np.testing.assert_allclose(r, ref, atol=1e-12 * scale)

    def test_matches_event_driven(self, fluid):
        """Lockstep and event-driven run the same DSD ops per element."""
        mesh = CartesianMesh3D(5, 4, 3)
        trans = Transmissibility(mesh)
        p = random_pressure(mesh, seed=1)
        lock = LockstepWseSimulation(mesh, fluid, trans, dtype=np.float64)
        event = WseFluxComputation(mesh, fluid, trans, dtype=np.float64)
        r_lock = lock.run_application(p)
        r_event = event.run_single(p).residual
        scale = np.abs(r_lock).max()
        np.testing.assert_allclose(r_event, r_lock, atol=1e-13 * scale)

    def test_run_over_sequence(self, fluid):
        mesh = CartesianMesh3D(4, 4, 3)
        seq = PressureSequence(mesh, num_applications=3, seed=0)
        sim = LockstepWseSimulation(mesh, fluid, dtype=np.float64)
        r = sim.run(seq)
        ref = compute_flux_residual(mesh, fluid, seq.field(2))
        scale = np.abs(ref).max()
        np.testing.assert_allclose(r, ref, atol=1e-12 * scale)
        assert sim.report().applications == 3

    def test_float32(self, fluid):
        mesh = CartesianMesh3D(6, 5, 4)
        p = random_pressure(mesh, seed=3)
        sim = LockstepWseSimulation(mesh, fluid, dtype=np.float32)
        r = sim.run_application(p)
        ref = compute_flux_residual(mesh, fluid, p)
        scale = np.abs(ref).max()
        np.testing.assert_allclose(r, ref, atol=5e-4 * scale)

    def test_empty_run_rejected(self, fluid):
        sim = LockstepWseSimulation(CartesianMesh3D(2, 2, 2), fluid)
        with pytest.raises(ValueError):
            sim.run([])


class TestAccounting:
    def test_instruction_totals_match_event_driven(self, fluid):
        mesh = CartesianMesh3D(4, 3, 3)
        trans = Transmissibility(mesh)
        p = random_pressure(mesh, seed=1)
        lock = LockstepWseSimulation(mesh, fluid, trans, dtype=np.float64)
        lock.run_application(p)
        event = WseFluxComputation(mesh, fluid, trans, dtype=np.float64)
        ev = event.run_single(p)
        lk = lock.report()
        for op in ("FMUL", "FSUB", "FADD", "FMA", "FNEG", "FMOV"):
            assert lk.instruction_counts.get(op) == ev.instruction_counts.get(
                op
            ), op
        assert lk.flops == ev.flops

    def test_fabric_hops_cardinal_one_diagonal_two(self, fluid):
        mesh = CartesianMesh3D(3, 3, 2)
        sim = LockstepWseSimulation(mesh, fluid, dtype=np.float32)
        sim.run_application(random_pressure(mesh, seed=0))
        rep = sim.report()
        nz, words = 2, 2
        card = (2 * 3 + 3 * 2) * 2 * words * nz  # directed pairs, 1 hop
        diag = (2 * 2 * 2) * 2 * words * nz * 2  # directed pairs, 2 hops
        assert rep.fabric_word_hops == card + diag

    def test_comm_only_mode(self, fluid):
        mesh = CartesianMesh3D(4, 4, 3)
        p = random_pressure(mesh, seed=0)
        sim = LockstepWseSimulation(
            mesh, fluid, dtype=np.float32, compute_fluxes=False
        )
        r = sim.run_application(p)
        np.testing.assert_array_equal(r, 0.0)
        rep = sim.report()
        assert rep.flops == 0
        assert rep.fabric_words_received > 0

    def test_flops_scale_with_applications(self, fluid):
        mesh = CartesianMesh3D(3, 3, 3)
        sim = LockstepWseSimulation(mesh, fluid, dtype=np.float64)
        p = random_pressure(mesh, seed=0)
        sim.run_application(p)
        one = sim.report().flops
        sim.run_application(p)
        assert sim.report().flops == 2 * one

    def test_scales_to_larger_meshes(self, fluid):
        """Lockstep handles meshes far beyond event-sim tractability."""
        mesh = CartesianMesh3D(40, 30, 10)
        sim = LockstepWseSimulation(mesh, fluid, dtype=np.float32)
        p = random_pressure(mesh, seed=0, dtype=np.float32)
        r = sim.run_application(p)
        assert r.shape == mesh.shape_zyx
        assert np.all(np.isfinite(r))
