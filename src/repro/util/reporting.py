"""Plain-text table rendering shared by the benchmark harness.

Every benchmark in ``benchmarks/`` regenerates one table or figure of the
paper and prints it through :class:`Table` so the output rows can be
compared side-by-side with the published numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["Table", "format_seconds", "format_si"]

_SI_PREFIXES = [
    (1e15, "P"),
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
]


def format_si(value: float, unit: str = "", digits: int = 2) -> str:
    """Format *value* with an SI prefix, e.g. ``311.85 TFLOP/s``."""
    if value == 0:
        return f"0 {unit}".strip()
    if not math.isfinite(value):
        return f"{value} {unit}".strip()
    mag = abs(value)
    for scale, prefix in _SI_PREFIXES:
        if mag >= scale:
            return f"{value / scale:.{digits}f} {prefix}{unit}".strip()
    scale, prefix = _SI_PREFIXES[-1]
    return f"{value / scale:.{digits}f} {prefix}{unit}".strip()


def format_seconds(value: float, digits: int = 4) -> str:
    """Format a duration in seconds with fixed precision."""
    return f"{value:.{digits}f}"


@dataclass
class Table:
    """Minimal monospace table with a title, headers, and footnotes.

    Examples
    --------
    >>> t = Table("Table 1", ["Arch/lang", "Avg. [s]"])
    >>> t.add_row(["Dataflow/CSL", "0.0823"])
    >>> print(t.render())  # doctest: +ELLIPSIS
    Table 1
    ...
    """

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, cells: list) -> None:
        """Append a row; cells are stringified."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([str(c) for c in cells])

    def add_note(self, note: str) -> None:
        """Append a footnote rendered below the table."""
        self.notes.append(note)

    def render(self) -> str:
        """Render the table to a monospace string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_row(cells: list[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, fmt_row(self.headers), sep]
        lines.extend(fmt_row(row) for row in self.rows)
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
