"""Spare-column remapping: mapping algebra and fabric bit-identity."""

import numpy as np
import pytest

from repro.core import CartesianMesh3D, FluidProperties, random_pressure
from repro.dataflow import SpareColumnRemap, WseFluxComputation
from repro.faults import DeadPE, FaultInjector, FaultPlan, FaultPlanError


class TestMappingAlgebra:
    def test_identity(self):
        remap = SpareColumnRemap.identity(3, 2)
        assert remap.physical_width == 3
        assert remap.bypassed_columns == frozenset()
        for x in range(3):
            assert remap.physical((x, 1)) == (x, 1)
            assert remap.logical((x, 1)) == (x, 1)

    def test_around_dead_pes_skips_their_columns(self):
        remap = SpareColumnRemap.around_dead_pes((4, 4), [(1, 2)])
        assert remap.physical_width == 5
        assert remap.column_map == (0, 2, 3, 4)
        assert remap.bypassed_columns == frozenset({1})
        assert remap.physical((1, 0)) == (2, 0)
        assert remap.logical((2, 0)) == (1, 0)
        assert remap.logical((1, 0)) is None  # bypassed column hosts nothing

    def test_multiple_dead_columns_need_enough_spares(self):
        remap = SpareColumnRemap.around_dead_pes(
            (4, 4), [(0, 0), (2, 3)], spare_columns=2
        )
        assert remap.column_map == (1, 3, 4, 5)
        with pytest.raises(FaultPlanError, match="spare"):
            SpareColumnRemap.around_dead_pes((4, 4), [(0, 0), (2, 3)])

    def test_two_dead_pes_in_one_column_cost_one_spare(self):
        remap = SpareColumnRemap.around_dead_pes((4, 4), [(1, 0), (1, 3)])
        assert remap.bypassed_columns == frozenset({1})

    def test_column_map_must_be_strictly_increasing(self):
        with pytest.raises(ValueError, match="increasing"):
            SpareColumnRemap(2, 2, physical_width=3, column_map=(2, 1))

    def test_column_map_length_must_match(self):
        with pytest.raises(ValueError, match="entries"):
            SpareColumnRemap(3, 2, physical_width=4, column_map=(0, 1))


class TestFabricBitIdentity:
    def test_remapped_fabric_matches_healthy_bit_for_bit(self):
        """The ISSUE acceptance check: a 4x4 mesh with a dead PE, remapped
        around a spare column, reproduces the healthy residual exactly
        (same timestamps, same summation order, same bits)."""
        mesh = CartesianMesh3D(4, 4, 3)
        fluid = FluidProperties()
        pressure = random_pressure(mesh, seed=3)
        healthy = WseFluxComputation(mesh, fluid, dtype=np.float64)
        expected = healthy.run_single(pressure)

        dead = (1, 2)
        injector = FaultInjector(FaultPlan(dead_pes=(DeadPE(*dead),)))
        remap = SpareColumnRemap.around_dead_pes((4, 4), [dead])
        wse = WseFluxComputation(
            mesh, fluid, dtype=np.float64, remap=remap, faults=injector
        )
        result = wse.run_single(pressure)

        assert result.residual.tobytes() == expected.residual.tobytes()
        assert result.stats == expected.stats
        assert result.device_cycles == expected.device_cycles
        # the dead PE is bypassed entirely: the injector never fires
        assert injector.stats.fabric_events == 0

    def test_without_remap_the_dead_pe_is_detected(self):
        mesh = CartesianMesh3D(4, 4, 3)
        injector = FaultInjector(FaultPlan(dead_pes=(DeadPE(1, 2),)))
        wse = WseFluxComputation(
            mesh, FluidProperties(), dtype=np.float64, faults=injector
        )
        with pytest.raises(RuntimeError, match="expected"):
            wse.run_single(random_pressure(mesh, seed=3))
