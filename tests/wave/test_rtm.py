"""Tests for the RTM workflow (paper Sec. 8 intermediate results)."""

import numpy as np
import pytest

from repro.core import CartesianMesh3D
from repro.wave import TTIMedium
from repro.wave.reference import WavePropagator, ricker_wavelet
from repro.wave.rtm import SnapshotStore, model_shot, rtm_image


@pytest.fixture(scope="module")
def setup():
    """2D x-z section with a velocity anomaly at depth."""
    nx, nz = 48, 32
    mesh = CartesianMesh3D(nx, 1, nz, dx=10.0, dy=10.0, dz=10.0)
    medium = TTIMedium(velocity=2000.0, epsilon=0.0, theta=0.0)
    v0 = np.full(mesh.shape_zyx, 2000.0)
    v_true = v0.copy()
    scatterer = (12, 24)  # (z, x)
    v_true[11:13, 0, 22:26] = 2600.0
    dt = 0.7 * TTIMedium(velocity=2600.0).max_stable_dt(10.0, 10.0, 10.0)
    wavelet = ricker_wavelet(220, dt, peak_frequency=25.0)
    src, rz = (24, 0, 28), 28
    observed = model_shot(
        mesh, medium, v_true, source=src, receiver_z=rz, wavelet=wavelet, dt=dt
    )
    return mesh, medium, v0, observed, src, rz, wavelet, dt, scatterer


class TestSnapshotStore:
    def test_full_storage(self):
        store = SnapshotStore(decimation=1)
        for i in range(5):
            store.offer(i, np.full((2, 2), float(i)))
        assert store.count == 5
        assert store.nearest(3)[0, 0] == 3.0

    def test_decimated_storage(self):
        store = SnapshotStore(decimation=4)
        for i in range(10):
            store.offer(i, np.full(3, float(i)))
        assert store.count == 3  # steps 0, 4, 8
        assert store.nearest(5)[0] == 4.0
        assert store.nearest(7)[0] == 8.0

    def test_bytes_accounting(self):
        store = SnapshotStore()
        store.offer(0, np.zeros(10))
        store.offer(1, np.zeros(10))
        assert store.bytes_stored == 160

    def test_empty_store(self):
        with pytest.raises(KeyError):
            SnapshotStore().nearest(0)

    def test_rejects_bad_decimation(self):
        with pytest.raises(ValueError):
            SnapshotStore(decimation=0)


class TestHeterogeneousPropagation:
    def test_velocity_field_changes_solution(self, setup):
        mesh, medium, v0, *_ = setup
        dt = 0.5 * medium.max_stable_dt(10.0, 10.0, 10.0)
        wavelet = ricker_wavelet(30, dt, peak_frequency=25.0)
        a = WavePropagator(mesh, medium, dt, source=(24, 0, 16))
        b = WavePropagator(
            mesh, medium, dt, source=(24, 0, 16),
            velocity_field=np.full(mesh.shape_zyx, 1500.0),
        )
        a.run(wavelet)
        b.run(wavelet)
        assert np.abs(a.u_curr - b.u_curr).max() > 0

    def test_cfl_uses_maximum_velocity(self, setup):
        mesh, medium, v0, *_ = setup
        fast = v0.copy()
        fast[0] = 5000.0
        dt_ok_for_background = 0.9 * medium.max_stable_dt(10.0, 10.0, 10.0)
        with pytest.raises(ValueError, match="CFL"):
            WavePropagator(mesh, medium, dt_ok_for_background, velocity_field=fast)

    def test_rejects_nonpositive_velocity(self, setup):
        mesh, medium, v0, *_ = setup
        bad = v0.copy()
        bad[0, 0, 0] = 0.0
        with pytest.raises(ValueError, match="positive"):
            WavePropagator(mesh, medium, 1e-4, velocity_field=bad)


class TestRtmImaging:
    def test_scatterer_localized(self, setup):
        mesh, medium, v0, observed, src, rz, wavelet, dt, scatterer = setup
        result = rtm_image(
            mesh, medium, v0, observed,
            source=src, receiver_z=rz, wavelet=wavelet, dt=dt,
        )
        img = np.abs(result.image[:, 0, :])
        img[rz - 3 :, :] = 0.0  # mute source/receiver region
        peak_z, peak_x = np.unravel_index(np.argmax(img), img.shape)
        sz, sx = scatterer
        assert abs(int(peak_z) - sz) <= 2
        assert abs(int(peak_x) - sx) <= 2

    def test_no_anomaly_no_image(self, setup):
        """Observed == background modelling -> zero reflections."""
        mesh, medium, v0, _, src, rz, wavelet, dt, _ = setup
        observed = model_shot(
            mesh, medium, v0, source=src, receiver_z=rz, wavelet=wavelet, dt=dt
        )
        result = rtm_image(
            mesh, medium, v0, observed,
            source=src, receiver_z=rz, wavelet=wavelet, dt=dt,
        )
        np.testing.assert_allclose(result.image, 0.0, atol=1e-25)

    def test_decimation_saves_memory_keeps_image(self, setup):
        mesh, medium, v0, observed, src, rz, wavelet, dt, scatterer = setup
        full = rtm_image(
            mesh, medium, v0, observed,
            source=src, receiver_z=rz, wavelet=wavelet, dt=dt, decimation=1,
        )
        lean = rtm_image(
            mesh, medium, v0, observed,
            source=src, receiver_z=rz, wavelet=wavelet, dt=dt, decimation=4,
        )
        assert lean.snapshot_bytes < 0.3 * full.snapshot_bytes
        assert lean.memory_saving > 0.7
        # the decimated image still localizes the scatterer
        img = np.abs(lean.image[:, 0, :])
        img[rz - 3 :, :] = 0.0
        peak_z, peak_x = np.unravel_index(np.argmax(img), img.shape)
        sz, sx = scatterer
        assert abs(int(peak_z) - sz) <= 3
        assert abs(int(peak_x) - sx) <= 3

    def test_accounting_fields(self, setup):
        mesh, medium, v0, observed, src, rz, wavelet, dt, _ = setup
        result = rtm_image(
            mesh, medium, v0, observed,
            source=src, receiver_z=rz, wavelet=wavelet, dt=dt, decimation=2,
        )
        assert result.steps == len(wavelet)
        assert result.snapshots == (len(wavelet) + 1) // 2
        assert result.full_history_bytes == len(wavelet) * result.image.nbytes

    def test_shape_validation(self, setup):
        mesh, medium, v0, _, src, rz, wavelet, dt, _ = setup
        with pytest.raises(ValueError, match="observed"):
            rtm_image(
                mesh, medium, v0, np.zeros((3, mesh.nx)),
                source=src, receiver_z=rz, wavelet=wavelet, dt=dt,
            )
