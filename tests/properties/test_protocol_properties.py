"""Property-based tests of the dataflow protocol (hypothesis).

Random fabric shapes and seeds: the full message-level protocol must
always deliver exactly once, take at most two hops, and reproduce the
reference residual.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CartesianMesh3D,
    FluidProperties,
    Transmissibility,
    compute_flux_residual,
)
from repro.dataflow import WseFluxComputation

FLUID = FluidProperties()


@settings(max_examples=12, deadline=None)
@given(
    nx=st.integers(min_value=1, max_value=5),
    ny=st.integers(min_value=1, max_value=5),
    nz=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_protocol_correct_on_any_fabric(nx, ny, nz, seed):
    rng = np.random.default_rng(seed)
    kappa = np.exp(rng.normal(size=(nz, ny, nx))) * 1e-13
    mesh = CartesianMesh3D(nx, ny, nz, permeability=kappa)
    trans = Transmissibility(mesh)
    p = 1e7 + 1e6 * rng.standard_normal(mesh.shape_zyx)
    wse = WseFluxComputation(mesh, FLUID, trans, dtype=np.float64)
    result = wse.run_single(p)

    # exactly-once delivery is asserted inside run(); re-check counts
    for pe in wse.program.fabric.pes():
        assert pe.state["received"] == pe.state["expected"]

    # never more than two hops on any message (Sec. 5.2.2)
    assert result.stats.max_hops_seen <= 2

    ref = compute_flux_residual(mesh, FLUID, p, trans)
    scale = max(np.abs(ref).max(), 1e-30)
    np.testing.assert_allclose(result.residual, ref, atol=1e-11 * scale)


@settings(max_examples=8, deadline=None)
@given(
    nx=st.integers(min_value=2, max_value=4),
    ny=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_router_routes_self_restore(nx, ny, seed):
    """After a full application every router routes exactly as initially.

    Interior routers flip twice per cardinal color (own command + the
    upstream neighbour's); seed-edge routers flip once, but their two
    positions are identical by construction — so the *routing semantics*
    always self-restore, which is what lets the next application reuse
    the configuration (Fig. 6b's alternation is self-resetting).
    """
    from repro.wse.geometry import Port

    mesh = CartesianMesh3D(nx, ny, 2)
    wse = WseFluxComputation(mesh, FLUID, dtype=np.float32)
    program = wse.program

    def routing_table():
        return {
            (coord, color, port): program.fabric.router(*coord).routes(color, port)
            for coord in [(x, y) for x in range(nx) for y in range(ny)]
            for color in range(8)
            for port in Port
        }

    initial = routing_table()
    rng = np.random.default_rng(seed)
    p = 1e7 + 1e5 * rng.standard_normal(mesh.shape_zyx)
    wse.run_single(np.ascontiguousarray(p))
    assert routing_table() == initial


@settings(max_examples=10, deadline=None)
@given(
    w=st.integers(min_value=2, max_value=6),
    h=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_random_spanning_tree_broadcast_exactly_once(w, h, seed):
    """Any spanning-tree routing delivers a root broadcast exactly once.

    Exercises the runtime's multicast generality beyond the flux
    kernel's fixed patterns: build a random spanning tree of the fabric
    graph, route one color along it (parent -> children + RAMP), inject
    at the root, and verify single delivery everywhere."""
    import networkx as nx

    from repro.wse.fabric import Fabric
    from repro.wse.geometry import Port
    from repro.wse.runtime import EventRuntime

    fabric = Fabric(w, h)
    graph = nx.grid_2d_graph(w, h)
    rng = np.random.default_rng(seed)
    for u, v in graph.edges:
        graph.edges[u, v]["weight"] = rng.random()
    tree = nx.minimum_spanning_tree(graph)
    root = (0, 0)
    parent = {root: None}
    for u, v in nx.bfs_edges(tree, root):
        parent[v] = u

    def port_between(a, b):
        dx, dy = b[0] - a[0], b[1] - a[1]
        return {(1, 0): Port.EAST, (-1, 0): Port.WEST, (0, 1): Port.SOUTH, (0, -1): Port.NORTH}[(dx, dy)]

    def positions_for(coord):
        children = [c for c, p in parent.items() if p == coord]
        outs = tuple(port_between(coord, c) for c in children)
        if coord == root:
            return [{Port.RAMP: outs}]
        # the parent's train arrives on the port facing the parent;
        # deliver locally and forward to the children
        in_port = port_between(coord, parent[coord])
        return [{in_port: (Port.RAMP,) + outs}]

    fabric.configure_color(0, positions_for)
    received: dict[tuple, int] = {}
    fabric.bind_all(
        0, lambda rt, pe, msg: received.__setitem__(pe.coord, received.get(pe.coord, 0) + 1)
    )
    rt = EventRuntime(fabric)
    rt.inject(root, 0, np.arange(4, dtype=np.float32))
    rt.run()
    # root injected, everyone else received exactly once
    expected = {(x, y) for x in range(w) for y in range(h)} - {root}
    assert set(received) == expected
    assert all(count == 1 for count in received.values())


@settings(max_examples=10, deadline=None)
@given(
    nx=st.integers(min_value=1, max_value=4),
    ny=st.integers(min_value=1, max_value=4),
)
def test_fabric_traffic_formula(nx, ny):
    """Data word-hops follow the closed-form pair counts exactly."""
    nz = 2
    mesh = CartesianMesh3D(nx, ny, nz)
    wse = WseFluxComputation(mesh, FLUID, dtype=np.float32)
    result = wse.run_single(mesh.full(1.3e7))
    words = 2 * nz
    card_pairs = (nx - 1) * ny * 2 + nx * (ny - 1) * 2
    diag_second_hops = (max(nx - 1, 0)) * (max(ny - 1, 0)) * 4
    diag_first_hops = ((nx - 1) * ny + nx * (ny - 1)) * 2
    data_hops = words * (card_pairs + diag_first_hops + diag_second_hops)
    # each control wavelet advances its origin router once (no hop) and,
    # when the link exists, the destination router once (one 1-word hop)
    ctrl_hops = result.stats.control_advances - 4 * nx * ny
    assert result.fabric_word_hops == data_hops + ctrl_hops
