"""Per-PE router: five links, per-color routing rules, switch positions.

"Each PE ... is connected to a router.  The router manages five full
duplex links" (Sec. 4).  Routing is configured per color: for every input
port, a set of output ports receives a copy of incoming wavelets (local
multicast).  A color may define several *switch positions* — alternative
routing configurations — and a control wavelet advances the position as it
traverses the router, which is how the cardinal exchange alternates a PE
between *Sending* and *Receiving* roles (Fig. 6a: "two switch positions
are defined for each PE for sending and receiving accordingly").

Route lookups are the single hottest query of the event simulator (one
per message per router traversal), so the router maintains a flattened
``key -> outputs`` table of the *current* switch positions, keyed by the
packed int ``(color << PORT_SHIFT) | in_port`` (ports fit in 3 bits).
Each color's positions are also pre-flattened once at configure time, so
:meth:`Router.advance` only pops the outgoing position's few keys and
bulk-inserts the incoming one — no per-advance rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.wse.geometry import Port

__all__ = ["Router", "ColorConfig", "RoutePosition", "PORT_SHIFT"]

#: One routing table: input port -> tuple of output ports.
RoutePosition = dict[Port, tuple[Port, ...]]

#: Bits reserved for the port in packed ``(color << PORT_SHIFT) | port``
#: route-table keys (5 ports need 3 bits).
PORT_SHIFT = 3

#: Flattened form of one switch position: packed key -> output ports.
_FlatPosition = dict[int, tuple[Port, ...]]


@dataclass(slots=True)
class ColorConfig:
    """Routing state of one color at one router."""

    positions: list[RoutePosition]
    position: int = 0
    #: Switch position installed at configure time.  ``position`` mutates
    #: as control wavelets advance the switch; the IR capture
    #: (:func:`repro.ir.builder.build_ir`) reads ``initial`` so a program
    #: serialized after a run still round-trips its static definition.
    initial: int = -1

    def __post_init__(self) -> None:
        if not self.positions:
            raise ValueError("a color needs at least one switch position")
        if not 0 <= self.position < len(self.positions):
            raise ValueError("initial position out of range")
        if self.initial < 0:
            self.initial = self.position
        for pos in self.positions:
            for in_port, outs in pos.items():
                if in_port in outs:
                    raise ValueError(
                        f"routing loop: {in_port!r} forwards to itself"
                    )

    def routes(self, in_port: Port) -> tuple[Port, ...]:
        """Output ports for a wavelet entering via *in_port* (may be empty)."""
        return self.positions[self.position].get(in_port, ())

    def advance(self) -> None:
        """Cycle to the next switch position (control-wavelet semantics)."""
        self.position = (self.position + 1) % len(self.positions)


def _flatten(color: int, positions: list[RoutePosition]) -> list[_FlatPosition]:
    base = color << PORT_SHIFT
    return [
        {base | in_port: tuple(outs) for in_port, outs in pos.items()}
        for pos in positions
    ]


@dataclass(slots=True)
class Router:
    """The router of one PE.

    Attributes
    ----------
    coord:
        Fabric coordinate of the owning PE.
    configs:
        Per-color routing configurations.
    """

    coord: tuple[int, int]
    configs: dict[int, ColorConfig] = field(default_factory=dict)
    #: Flattened ``(color << PORT_SHIFT) | in_port -> outputs`` table of
    #: the *current* switch position of every configured color.
    #: Maintained by :meth:`configure` and :meth:`advance`; read directly
    #: by the event runtime's arrival hot path.
    table: dict[int, tuple[Port, ...]] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Per-color pre-flattened switch positions, parallel to
    #: ``configs[color].positions``.
    _flat: dict[int, list[_FlatPosition]] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Per-color control-advance counts since construction, feeding the
    #: observability report's per-channel switch accounting (the runtime
    #: only keeps the fabric-wide total in ``RuntimeStats``).
    advance_counts: dict[int, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    def configure(
        self,
        color: int,
        positions: list[RoutePosition],
        *,
        initial: int = 0,
    ) -> None:
        """Install the switch positions of *color* on this router."""
        if color in self.configs:
            raise ValueError(
                f"router {self.coord}: color {color} already configured"
            )
        cfg = ColorConfig(list(positions), initial)
        self.configs[color] = cfg
        flat = self._flat[color] = _flatten(color, cfg.positions)
        self.table.update(flat[cfg.position])

    def _refresh(self, color: int, cfg: ColorConfig) -> None:
        """Re-flatten *color* from scratch (positions may have been edited
        in place) and reinstall its current position."""
        table = self.table
        base = color << PORT_SHIFT
        for port in Port:
            table.pop(base | port, None)
        flat = self._flat[color] = _flatten(color, cfg.positions)
        table.update(flat[cfg.position])

    def refresh(self, color: int | None = None) -> None:
        """Re-flatten the routes of *color* (all colors when None).

        The flattened table snapshots each color's switch positions; code
        that mutates a :class:`ColorConfig`'s positions in place (fault
        injection, tests) must call this to make the edit visible to
        routing.  :meth:`configure` and :meth:`advance` maintain the
        table automatically.
        """
        if color is None:
            for c, cfg in self.configs.items():
                self._refresh(c, cfg)
        else:
            cfg = self.configs.get(color)
            if cfg is None:
                raise ValueError(
                    f"router {self.coord}: cannot refresh color {color}: "
                    f"not configured here (configured colors: "
                    f"{sorted(self.configs) or 'none'})"
                )
            self._refresh(color, cfg)

    # ------------------------------------------------------------------ #
    # Introspection (static verifier / tooling; not hot-path)
    # ------------------------------------------------------------------ #
    def configured_colors(self) -> tuple[int, ...]:
        """Colors with routing installed on this router, ascending."""
        return tuple(sorted(self.configs))

    def positions_of(self, color: int) -> list[RoutePosition]:
        """Copies of every switch position of *color* (all of them, not
        just the current one) — the static verifier's view of the full
        rotating schedule.  Empty when the color is unconfigured."""
        cfg = self.configs.get(color)
        if cfg is None:
            return []
        return [dict(pos) for pos in cfg.positions]

    def routes(self, color: int, in_port: Port) -> tuple[Port, ...]:
        """Output ports for a wavelet of *color* entering via *in_port*.

        An unconfigured color drops traffic (empty route), matching
        hardware behaviour for colors with no routing entry.
        """
        return self.table.get((color << PORT_SHIFT) | in_port, ())

    def advance(self, color: int) -> None:
        """Advance the switch position of *color* (no-op when single-position)."""
        cfg = self.configs.get(color)
        if cfg is None:
            return
        counts = self.advance_counts
        counts[color] = counts.get(color, 0) + 1
        flat = self._flat[color]
        table = self.table
        pos = cfg.position
        for key in flat[pos]:
            table.pop(key, None)
        pos += 1
        if pos == len(flat):
            pos = 0
        cfg.position = pos
        table.update(flat[pos])

    def position(self, color: int) -> int:
        """Current switch position of *color*."""
        cfg = self.configs.get(color)
        if cfg is None:
            raise KeyError(f"router {self.coord}: color {color} not configured")
        return cfg.position
