"""Unit tests for the simulated communicator and rank topology."""

import numpy as np
import pytest

from repro.cluster.comm import CartGrid, SimComm


class TestSimComm:
    def test_send_recv_roundtrip(self):
        comm = SimComm(2)
        data = np.arange(5.0)
        comm.isend(0, 1, tag=3, array=data)
        out = comm.recv(1, source=0, tag=3)
        np.testing.assert_array_equal(out, data)
        assert comm.pending == 0

    def test_traffic_accounting(self):
        comm = SimComm(2)
        comm.isend(0, 1, 0, np.zeros(10, dtype=np.float64))
        comm.recv(1, 0, 0)
        assert comm.stats[0].messages_sent == 1
        assert comm.stats[0].bytes_sent == 80
        assert comm.stats[1].messages_received == 1
        assert comm.stats[1].bytes_received == 80
        assert comm.total_bytes() == 80
        assert comm.total_messages() == 1

    def test_recv_without_send_is_deadlock(self):
        comm = SimComm(2)
        with pytest.raises(RuntimeError, match="deadlock"):
            comm.recv(1, source=0, tag=0)

    def test_double_send_same_key_rejected(self):
        comm = SimComm(2)
        comm.isend(0, 1, 0, np.zeros(1))
        with pytest.raises(RuntimeError, match="unmatched"):
            comm.isend(0, 1, 0, np.zeros(1))

    def test_distinct_tags_coexist(self):
        comm = SimComm(2)
        comm.isend(0, 1, 0, np.array([1.0]))
        comm.isend(0, 1, 1, np.array([2.0]))
        assert comm.recv(1, 0, 1)[0] == 2.0
        assert comm.recv(1, 0, 0)[0] == 1.0

    def test_rank_bounds(self):
        comm = SimComm(2)
        with pytest.raises(ValueError):
            comm.isend(0, 2, 0, np.zeros(1))
        with pytest.raises(ValueError):
            comm.isend(-1, 0, 0, np.zeros(1))

    def test_rejects_empty_communicator(self):
        with pytest.raises(ValueError):
            SimComm(0)

    def test_send_copies_on_contiguity(self):
        comm = SimComm(2)
        src = np.arange(6.0).reshape(2, 3)[:, ::2]  # non-contiguous view
        comm.isend(0, 1, 0, src)
        out = comm.recv(1, 0, 0)
        np.testing.assert_array_equal(out, src)
        assert out.flags["C_CONTIGUOUS"]


class TestCartGrid:
    def test_rank_coord_roundtrip(self):
        grid = CartGrid(3, 2)
        for rank in range(grid.size):
            cx, cy = grid.coords_of(rank)
            assert grid.rank_of(cx, cy) == rank

    def test_neighbours(self):
        grid = CartGrid(3, 3)
        centre = grid.rank_of(1, 1)
        assert grid.neighbour(centre, 1, 0) == grid.rank_of(2, 1)
        assert grid.neighbour(centre, -1, -1) == grid.rank_of(0, 0)

    def test_edges_return_none(self):
        grid = CartGrid(2, 2)
        assert grid.neighbour(grid.rank_of(0, 0), -1, 0) is None
        assert grid.neighbour(grid.rank_of(1, 1), 1, 1) is None

    def test_diagonal_is_direct(self):
        """One lookup, one message: MPI corners need no intermediary."""
        grid = CartGrid(4, 4)
        assert grid.neighbour(grid.rank_of(1, 1), 1, 1) == grid.rank_of(2, 2)

    def test_bounds_checks(self):
        grid = CartGrid(2, 2)
        with pytest.raises(ValueError):
            grid.rank_of(2, 0)
        with pytest.raises(ValueError):
            grid.coords_of(4)
        with pytest.raises(ValueError):
            CartGrid(0, 2)
