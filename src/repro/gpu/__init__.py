"""Reference GPU implementations on a simulated A100-class device.

RAJA-like and CUDA-like kernel front-ends (paper Sec. 6) over a device
model with host/device memory, tiled 3D threadblock launches, and an
occupancy model matching the paper's Nsight readings.
"""

from repro.gpu.cuda import CudaLaunchRecord, cuda_kernel, dim3
from repro.gpu.device import A100_40GB, DeviceSpec, OccupancyModel
from repro.gpu.launch import PAPER_TILE, Tile, TiledLaunch
from repro.gpu.memory import DeviceMemoryManager, TransferLog
from repro.gpu.raja import PAPER_POLICY, KernelPolicy, raja_kernel
from repro.gpu.reference import GpuFluxComputation, GpuRunResult

__all__ = [
    "GpuFluxComputation",
    "GpuRunResult",
    "DeviceSpec",
    "A100_40GB",
    "OccupancyModel",
    "DeviceMemoryManager",
    "TransferLog",
    "TiledLaunch",
    "Tile",
    "PAPER_TILE",
    "KernelPolicy",
    "PAPER_POLICY",
    "raja_kernel",
    "cuda_kernel",
    "CudaLaunchRecord",
    "dim3",
]
