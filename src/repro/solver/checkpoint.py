"""Checkpoint/restart of the implicit time-stepping loop.

Long-running implicit simulations (the multi-day CS-2 campaigns the
related stencil papers describe) survive crashes by checkpointing the
converged state after each accepted step and resuming from the last one.
For backward Euler the converged pressure field *is* the whole state:
restoring ``(step, time, pressure)`` and re-running produces the exact
same trajectory, because each step depends only on the previous
pressure.  ``numpy.savez`` round-trips float64 arrays bit-exactly, so a
resumed run matches an uninterrupted one bit-for-bit (the checkpoint
tests assert this).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = ["Checkpoint", "CheckpointStore"]


@dataclass(frozen=True)
class Checkpoint:
    """The full restartable state after one accepted time step."""

    step: int
    time: float
    pressure: np.ndarray
    mass_in_place: float = 0.0

    def save(self, path) -> None:
        """Write the checkpoint as an ``.npz`` archive."""
        np.savez(
            path,
            step=np.int64(self.step),
            time=np.float64(self.time),
            pressure=np.asarray(self.pressure, dtype=np.float64),
            mass_in_place=np.float64(self.mass_in_place),
        )

    @classmethod
    def load(cls, path) -> "Checkpoint":
        """Read a checkpoint written by :meth:`save`."""
        with np.load(path) as data:
            return cls(
                step=int(data["step"]),
                time=float(data["time"]),
                pressure=np.array(data["pressure"], dtype=np.float64),
                mass_in_place=float(data["mass_in_place"]),
            )


class CheckpointStore:
    """A rolling store of the most recent checkpoints.

    Keeps the last ``keep`` checkpoints in memory and, when ``directory``
    is given, mirrored on disk as ``checkpoint_NNNNNN.npz`` (older files
    are pruned as the window rolls).
    """

    def __init__(self, directory=None, *, keep: int = 2) -> None:
        if keep < 1:
            raise ValueError("checkpoint store needs keep >= 1")
        self.keep = keep
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._checkpoints: list[Checkpoint] = []

    def _path(self, step: int) -> Path:
        return self.directory / f"checkpoint_{step:06d}.npz"

    def save(self, checkpoint: Checkpoint) -> None:
        """Record *checkpoint*, evicting beyond the keep window."""
        self._checkpoints.append(checkpoint)
        if self.directory is not None:
            checkpoint.save(self._path(checkpoint.step))
        while len(self._checkpoints) > self.keep:
            evicted = self._checkpoints.pop(0)
            if self.directory is not None:
                self._path(evicted.step).unlink(missing_ok=True)

    def latest(self) -> Checkpoint | None:
        """Most recent checkpoint, or None when empty."""
        return self._checkpoints[-1] if self._checkpoints else None

    def __len__(self) -> int:
        return len(self._checkpoints)

    @classmethod
    def open(cls, directory, *, keep: int = 2) -> "CheckpointStore":
        """Reload a store from the checkpoints present in *directory*.

        This is the restart path after a crash: the surviving ``.npz``
        files (oldest first, at most ``keep``) populate the new store,
        and :meth:`latest` is the state to resume from.
        """
        store = cls(directory, keep=keep)
        paths = sorted(Path(directory).glob("checkpoint_*.npz"))
        for path in paths[-keep:]:
            store._checkpoints.append(Checkpoint.load(path))
        return store
