"""Warm-pool lifecycle tests: spawn once, reuse across runs, problems
and crash recoveries, never leak a worker or a wedged process."""

import numpy as np
import pytest

from repro.core import FluidProperties, PressureSequence
from repro.cluster.flux import ClusterFluxComputation
from repro.faults.plan import FaultPlan, RankFailure
from repro.par import ParClusterFluxComputation
from repro.par.runtime import warm_pool, shutdown_warm_pool


@pytest.fixture(scope="module")
def problem():
    from repro.workloads import make_geomodel

    mesh = make_geomodel(14, 12, 3, kind="lognormal", seed=5)
    fluid = FluidProperties()
    seq = PressureSequence(mesh, num_applications=3, seed=5)
    return mesh, fluid, seq


@pytest.fixture()
def fresh_reservoir():
    """Start each test from an empty reservoir, and leave none behind.

    ``total_spawned`` is a process-lifetime counter (the reservoir
    object is module-global), so tests assert spawn *deltas* against
    the count captured here.
    """
    shutdown_warm_pool()
    reservoir = warm_pool()
    reservoir._base_spawned = reservoir.total_spawned
    yield reservoir
    shutdown_warm_pool()


def serial_residual(mesh, fluid, seq):
    return ClusterFluxComputation(mesh, fluid, px=2, py=2).run(iter(seq))


class TestWarmReuse:
    def test_back_to_back_runs_keep_pids(self, problem, fresh_reservoir):
        mesh, fluid, seq = problem
        ref = serial_residual(mesh, fluid, seq)
        with ParClusterFluxComputation(
            mesh, fluid, px=2, py=2, workers=4
        ) as par:
            first = par.run(iter(seq))
            second = par.run(iter(seq))
        assert np.array_equal(second.residual, ref.residual)
        pids_first = {row["pid"] for row in first.per_rank}
        pids_second = {row["pid"] for row in second.per_rank}
        assert pids_first == pids_second
        assert len(pids_first) == 4

    def test_sequential_instances_reuse_processes(
        self, problem, fresh_reservoir
    ):
        mesh, fluid, seq = problem
        ref = serial_residual(mesh, fluid, seq)
        with ParClusterFluxComputation(
            mesh, fluid, px=2, py=2, workers=4
        ) as par:
            first = par.run(iter(seq))
        spawned_after_first = fresh_reservoir.total_spawned
        assert (
            spawned_after_first - fresh_reservoir._base_spawned == 4
        )
        assert fresh_reservoir.idle_count == 4  # released warm
        with ParClusterFluxComputation(
            mesh, fluid, px=2, py=2, workers=4
        ) as par:
            second = par.run(iter(seq))
        # same OS processes served a brand-new problem...
        assert {row["pid"] for row in first.per_rank} == {
            row["pid"] for row in second.per_rank
        }
        # ...and nothing new was spawned for it
        assert fresh_reservoir.total_spawned == spawned_after_first
        assert np.array_equal(second.residual, ref.residual)

    def test_second_problem_stays_bit_identical(
        self, problem, fresh_reservoir
    ):
        """A reused worker must rebuild per-problem state completely."""
        from repro.workloads import make_geomodel

        mesh, fluid, seq = problem
        with ParClusterFluxComputation(
            mesh, fluid, px=2, py=2, workers=4
        ) as par:
            par.run(iter(seq))
        other_mesh = make_geomodel(11, 13, 2, kind="channelized", seed=9)
        other_seq = PressureSequence(other_mesh, num_applications=2, seed=9)
        ref = ClusterFluxComputation(other_mesh, fluid, px=2, py=2).run(
            iter(other_seq)
        )
        with ParClusterFluxComputation(
            other_mesh, fluid, px=2, py=2, workers=4
        ) as par:
            res = par.run(iter(other_seq))
        assert res.residual.tobytes() == ref.residual.tobytes()

    def test_partial_lease_spawns_only_missing(
        self, problem, fresh_reservoir
    ):
        mesh, fluid, seq = problem
        base = fresh_reservoir._base_spawned
        with ParClusterFluxComputation(
            mesh, fluid, px=2, py=2, workers=2
        ) as par:
            par.run_single(seq.field(0))
        assert fresh_reservoir.total_spawned - base == 2
        with ParClusterFluxComputation(
            mesh, fluid, px=2, py=2, workers=4
        ) as par:
            par.run_single(seq.field(0))
        # two came warm, two were spawned to fill the lease
        assert fresh_reservoir.total_spawned - base == 4
        assert fresh_reservoir.idle_count == 4


class TestWarmCrashRecovery:
    def test_respawn_from_warm_pool_is_bit_identical(
        self, problem, fresh_reservoir
    ):
        """A crash mid-problem respawns and replays correctly even when
        the original workers were leased from the warm reservoir."""
        mesh, fluid, seq = problem
        ref = serial_residual(mesh, fluid, seq)
        # prime the reservoir with a clean problem first
        with ParClusterFluxComputation(
            mesh, fluid, px=2, py=2, workers=4
        ) as par:
            par.run(iter(seq))
        assert fresh_reservoir.idle_count == 4
        plan = FaultPlan(
            seed=3,
            rank_failures=(RankFailure(rank=1, exchange=1, attempts=1),),
        )
        with ParClusterFluxComputation(
            mesh, fluid, px=2, py=2, workers=4, plan=plan, respawn=True
        ) as par:
            res = par.run(iter(seq))
        assert res.respawns == 1
        assert np.array_equal(res.residual, ref.residual)
        # crashed-generation workers were killed, not released: only the
        # respawned generation went back to the reservoir
        assert fresh_reservoir.idle_count == 4

    def test_terminated_workers_never_reenter_reservoir(
        self, problem, fresh_reservoir
    ):
        mesh, fluid, seq = problem
        par = ParClusterFluxComputation(mesh, fluid, px=2, py=2, workers=4)
        par.run_single(seq.field(0))
        pool = par._pool
        pool.terminate()
        par._pool = None
        par.close()
        assert fresh_reservoir.idle_count == 0
        assert all(not h.proc.is_alive() for h in pool.handles)
