"""Synthetic geomodels: permeability/porosity field generators.

The paper runs on "highly detailed geomodels" that are proprietary; these
generators produce seeded synthetic fields exercising the same code paths
— heterogeneous transmissibilities, layered contrasts, channelized
high-permeability streaks — at any mesh size (DESIGN.md substitution
table).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.core import constants
from repro.core.mesh import CartesianMesh3D

__all__ = [
    "uniform_permeability",
    "layered_permeability",
    "lognormal_permeability",
    "channelized_permeability",
    "make_geomodel",
]


def uniform_permeability(
    shape_zyx: tuple[int, int, int],
    value: float = constants.DEFAULT_PERMEABILITY,
) -> np.ndarray:
    """Homogeneous field (the paper's kernel benchmark setting)."""
    if value <= 0:
        raise ValueError("permeability must be positive")
    return np.full(shape_zyx, float(value))


def layered_permeability(
    shape_zyx: tuple[int, int, int],
    *,
    seed: int = 0,
    mean: float = constants.DEFAULT_PERMEABILITY,
    contrast: float = 100.0,
) -> np.ndarray:
    """Horizontally-layered field: one lognormal draw per Z layer.

    ``contrast`` sets the ratio between the most and least permeable
    layers (geometrically).
    """
    if contrast < 1.0:
        raise ValueError("contrast must be >= 1")
    nz = shape_zyx[0]
    rng = np.random.default_rng(seed)
    sigma = np.log(contrast) / 4.0  # +-2 sigma spans the contrast
    layers = mean * np.exp(sigma * rng.standard_normal(nz))
    return np.broadcast_to(layers[:, None, None], shape_zyx).copy()


def lognormal_permeability(
    shape_zyx: tuple[int, int, int],
    *,
    seed: int = 0,
    mean: float = constants.DEFAULT_PERMEABILITY,
    log_std: float = 1.0,
    correlation_length: float = 3.0,
) -> np.ndarray:
    """Spatially-correlated lognormal field (Gaussian-filtered noise).

    ``correlation_length`` is in cells; ``log_std`` is the standard
    deviation of ``ln(kappa)`` after renormalization.
    """
    if log_std < 0:
        raise ValueError("log_std must be non-negative")
    rng = np.random.default_rng(seed)
    noise = rng.standard_normal(shape_zyx)
    smooth = ndimage.gaussian_filter(noise, sigma=correlation_length, mode="nearest")
    std = smooth.std()
    if std > 0:
        smooth = smooth / std * log_std
    return mean * np.exp(smooth - 0.5 * log_std**2)


def channelized_permeability(
    shape_zyx: tuple[int, int, int],
    *,
    seed: int = 0,
    background: float = 10.0 * constants.MILLIDARCY,
    channel: float = 1000.0 * constants.MILLIDARCY,
    num_channels: int = 2,
    width: int = 2,
) -> np.ndarray:
    """Fluvial-style channels: sinuous high-perm streaks along X.

    Each channel follows a random-walk centreline in Y, constant per Z
    bundle, embedded in a low-permeability background — a standard hard
    case for flow simulators (strong transmissibility contrasts).
    """
    if channel <= background:
        raise ValueError("channel permeability must exceed background")
    nz, ny, nx = shape_zyx
    rng = np.random.default_rng(seed)
    field = np.full(shape_zyx, float(background))
    for _ in range(num_channels):
        y = rng.integers(0, ny)
        z_lo = int(rng.integers(0, max(1, nz - 1)))
        z_hi = int(min(nz, z_lo + max(1, nz // 2)))
        for x in range(nx):
            y = int(np.clip(y + rng.integers(-1, 2), 0, ny - 1))
            y_lo = max(0, y - width // 2)
            y_hi = min(ny, y + (width + 1) // 2)
            field[z_lo:z_hi, y_lo:y_hi, x] = channel
    return field


def make_geomodel(
    nx: int,
    ny: int,
    nz: int,
    *,
    kind: str = "lognormal",
    seed: int = 0,
    dx: float = 10.0,
    dy: float = 10.0,
    dz: float = 2.0,
    dz_layers=None,
    **kwargs,
) -> CartesianMesh3D:
    """Build a mesh carrying a synthetic permeability field.

    Parameters
    ----------
    kind:
        One of ``"uniform"``, ``"layered"``, ``"lognormal"``,
        ``"channelized"``.
    dz_layers:
        Optional per-layer thicknesses (length ``nz``); overrides the
        uniform ``dz`` exactly as on :class:`CartesianMesh3D`.
    kwargs:
        Forwarded to the field generator.
    """
    shape = (nz, ny, nx)
    generators = {
        "uniform": uniform_permeability,
        "layered": layered_permeability,
        "lognormal": lognormal_permeability,
        "channelized": channelized_permeability,
    }
    try:
        gen = generators[kind]
    except KeyError:
        raise ValueError(
            f"unknown geomodel kind {kind!r}; choose from {sorted(generators)}"
        ) from None
    if kind == "uniform":
        kappa = gen(shape, **kwargs)
    else:
        kappa = gen(shape, seed=seed, **kwargs)
    return CartesianMesh3D(
        nx=nx, ny=ny, nz=nz, dx=dx, dy=dy, dz=dz,
        dz_layers=dz_layers, permeability=kappa,
    )
