"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv) -> tuple[int, str]:
    buf = io.StringIO()
    code = main(list(argv), out=buf)
    return code, buf.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_validate_defaults(self):
        args = build_parser().parse_args(["validate"])
        assert (args.nx, args.ny, args.nz) == (6, 5, 4)
        assert args.geomodel == "lognormal"


class TestTables:
    def test_reproduces_all_artifacts(self):
        code, out = run_cli("tables")
        assert code == 0
        assert "Table 1" in out
        assert "0.0823" in out
        assert "Table 2" in out
        assert "Table 3" in out
        assert "Table 4" in out
        assert "140 FLOPs/cell" in out
        assert "Fig. 8" in out
        assert "GFLOP/W" in out


class TestValidate:
    def test_passes_on_default_mesh(self):
        code, out = run_cli("validate")
        assert code == 0
        assert "VALIDATION PASSED" in out
        for impl in ("gpu/raja", "gpu/cuda", "wse/event", "wse/lockstep"):
            assert impl in out

    def test_channelized_workload(self):
        code, out = run_cli(
            "validate", "--geomodel", "channelized", "--nx", "5",
            "--ny", "5", "--nz", "2", "--seed", "3",
        )
        assert code == 0
        assert "VALIDATION PASSED" in out


class TestScaling:
    def test_prints_all_rows(self):
        code, out = run_cli("scaling")
        assert code == 0
        assert "200x200x246" in out
        assert "750x950x246" in out
        assert "x" in out  # speedup column

    def test_applications_flag(self):
        code, out = run_cli("scaling", "--applications", "10")
        assert code == 0
        assert "10 applications" in out


class TestListing:
    def test_emits_program(self):
        code, out = run_cli("listing", "--nx", "3", "--ny", "3", "--nz", "4")
        assert code == 0
        assert "@get_color" in out
        assert "flux_face" in out
        assert "mesh 3 x 3 x 4" in out


class TestInject:
    def test_short_run_conserves_mass(self):
        code, out = run_cli("inject", "--steps", "2")
        assert code == 0
        assert "mass balance error" in out
