"""Table 1 — wall-clock comparison of the three implementations.

Paper: 1000 applications of Algorithm 1 on a 750 x 994 x 246 mesh.

    Arch/lang      Avg. [s]   S.D.
    Dataflow/CSL   0.0823     0.0000014
    GPU/RAJA       16.8378    0.0194403
    GPU/CUDA       14.6573    0.0111278   (204x speedup CSL vs RAJA)

We regenerate the table from the calibrated analytic models (projected
device seconds for the full mesh) and benchmark the *functional* Python
implementations on a geometrically-similar scaled mesh so the harness
measures real executions of the same kernels.
"""

import numpy as np
import pytest

from repro.core import FluidProperties, PressureSequence, Transmissibility
from repro.core.constants import PAPER_ITERATIONS, PAPER_MESH
from repro.dataflow import LockstepWseSimulation
from repro.gpu import GpuFluxComputation
from repro.perf import (
    A100_CUDA_TIME_MODEL,
    A100_RAJA_TIME_MODEL,
    CS2_TIME_MODEL,
    PAPER_TABLE1,
    speedup,
)
from repro.util.reporting import Table
from repro.workloads import make_geomodel

SCALED = (47, 62, 15)  # paper mesh / 16 per axis
FLUID = FluidProperties()


@pytest.fixture(scope="module")
def workload():
    mesh = make_geomodel(*SCALED, kind="uniform")
    trans = Transmissibility(mesh, dtype=np.float32)
    seq = PressureSequence(mesh, num_applications=1, seed=0, dtype=np.float32)
    return mesh, trans, seq.field(0)


def test_reproduce_table1(report, benchmark):
    """Model-projected Table 1 next to the published numbers."""
    nx, ny, nz = PAPER_MESH
    rows = benchmark(
        lambda: {
            "Dataflow/CSL": CS2_TIME_MODEL.seconds(nx, ny, nz),
            "GPU/RAJA": A100_RAJA_TIME_MODEL.seconds(nx, ny, nz),
            "GPU/CUDA": A100_CUDA_TIME_MODEL.seconds(nx, ny, nz),
        }
    )
    table = Table(
        "Table 1 — time for 1000 applications, 750x994x246 mesh",
        ["Arch/lang", "Model [s]", "Paper avg. [s]", "Model/Paper"],
    )
    for name, model_s in rows.items():
        paper_s = PAPER_TABLE1[name][0]
        table.add_row(
            [name, f"{model_s:.4f}", f"{paper_s:.4f}", f"{model_s / paper_s:.3f}"]
        )
    model_speedup = speedup(rows["GPU/RAJA"], rows["Dataflow/CSL"])
    paper_speedup = speedup(
        PAPER_TABLE1["GPU/RAJA"][0], PAPER_TABLE1["Dataflow/CSL"][0]
    )
    table.add_note(
        f"speedup Dataflow vs GPU/RAJA: model {model_speedup:.1f}x, "
        f"paper {paper_speedup:.1f}x"
    )
    report(table.render())

    assert rows["Dataflow/CSL"] == pytest.approx(0.0823, rel=5e-3)
    assert rows["GPU/CUDA"] < rows["GPU/RAJA"]
    assert 180 < model_speedup < 230  # two orders of magnitude (Abstract)


@pytest.mark.parametrize("variant", ["raja", "cuda"])
def test_gpu_kernel_functional(benchmark, workload, variant):
    """Time one functional application of the simulated GPU kernel."""
    mesh, trans, pressure = workload
    gpu = GpuFluxComputation(mesh, FLUID, trans, variant=variant, dtype=np.float32)
    benchmark(lambda: gpu.run_single(pressure))


def test_dataflow_lockstep_functional(benchmark, workload):
    """Time one functional application of the dataflow (lockstep) kernel."""
    mesh, trans, pressure = workload
    sim = LockstepWseSimulation(mesh, FLUID, trans, dtype=np.float32)
    benchmark(lambda: sim.run_application(pressure))
