"""Unit tests for pressure sequence generators."""

import numpy as np
import pytest

from repro.core import (
    CartesianMesh3D,
    FluidProperties,
    PressureSequence,
    hydrostatic_pressure,
    random_pressure,
)
from repro.core.constants import GRAVITY


class TestHydrostatic:
    def test_gradient(self, small_mesh, fluid):
        # z is elevation: pressure decreases upward
        p = hydrostatic_pressure(small_mesh, fluid)
        dp_dz = (p[1, 0, 0] - p[0, 0, 0]) / small_mesh.dz
        assert dp_dz == pytest.approx(-fluid.reference_density * GRAVITY)

    def test_respects_origin(self, fluid):
        m = CartesianMesh3D(2, 2, 2, dz=2.0, origin=(0, 0, 500.0))
        p = hydrostatic_pressure(m, fluid, pressure_at_origin=3e7)
        # first cell centre is 1 m above origin regardless of origin z
        assert p[0, 0, 0] == pytest.approx(
            3e7 - fluid.reference_density * GRAVITY * 1.0
        )

    def test_uniform_in_xy(self, small_mesh, fluid):
        p = hydrostatic_pressure(small_mesh, fluid)
        assert np.all(p[0] == p[0, 0, 0])


class TestRandomPressure:
    def test_deterministic(self, small_mesh):
        np.testing.assert_array_equal(
            random_pressure(small_mesh, seed=9), random_pressure(small_mesh, seed=9)
        )

    def test_seed_sensitivity(self, small_mesh):
        a = random_pressure(small_mesh, seed=1)
        b = random_pressure(small_mesh, seed=2)
        assert np.abs(a - b).max() > 0

    def test_base_and_amplitude(self, small_mesh):
        p = random_pressure(small_mesh, seed=0, base=5e7, amplitude=1.0)
        assert abs(p.mean() - 5e7) < 1.0

    def test_dtype(self, small_mesh):
        assert random_pressure(small_mesh, dtype=np.float32).dtype == np.float32


class TestPressureSequence:
    def test_length_and_iteration(self, small_mesh):
        seq = PressureSequence(small_mesh, num_applications=5, seed=1)
        assert len(seq) == 5
        fields = list(seq)
        assert len(fields) == 5
        for f in fields:
            assert f.shape == small_mesh.shape_zyx

    def test_reproducible_across_instances(self, small_mesh):
        a = PressureSequence(small_mesh, num_applications=4, seed=3)
        b = PressureSequence(small_mesh, num_applications=4, seed=3)
        for i in range(4):
            np.testing.assert_array_equal(a.field(i), b.field(i))

    def test_random_access_matches_iteration(self, small_mesh):
        seq = PressureSequence(small_mesh, num_applications=3, seed=8)
        iterated = list(seq)
        for i, f in enumerate(iterated):
            np.testing.assert_array_equal(f, seq.field(i))

    def test_applications_differ(self, small_mesh):
        seq = PressureSequence(small_mesh, num_applications=2, seed=0)
        assert np.abs(seq.field(0) - seq.field(1)).max() > 0

    def test_out_of_range(self, small_mesh):
        seq = PressureSequence(small_mesh, num_applications=2)
        with pytest.raises(IndexError):
            seq.field(2)
        with pytest.raises(IndexError):
            seq.field(-1)

    def test_rejects_zero_applications(self, small_mesh):
        with pytest.raises(ValueError):
            PressureSequence(small_mesh, num_applications=0)

    def test_fields_finite_and_positive(self, small_mesh):
        seq = PressureSequence(small_mesh, num_applications=3, seed=4)
        for f in seq:
            assert np.all(np.isfinite(f))
            assert np.all(f > 0)
