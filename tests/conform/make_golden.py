"""Regenerate the golden replay-artifact registry.

Run from the repo root::

    PYTHONPATH=src python tests/conform/make_golden.py

The artifacts are deterministic byte-for-byte (stored ZIP, epoch
timestamps, canonical JSON), so re-running this script on any machine
must produce identical files; ``git diff`` after a regeneration is the
cheapest possible conformance check.  Keep the meshes tiny — these
files are committed.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.conform import record_run
from repro.faults import FaultPlan
from repro.util.jsonio import write_stable_json

GOLDEN = Path(__file__).resolve().parent / "golden"


def main() -> int:
    GOLDEN.mkdir(parents=True, exist_ok=True)
    entries = []

    # 1. The flagship: a cluster recording that every backend must
    #    reproduce.  cluster/par replay bit-exactly (same host fold
    #    order); event/lockstep/gpu replay within the ulp budget.
    art = record_run(
        "cluster", nx=4, ny=4, nz=3, geomodel="lognormal", seed=0,
        applications=3, px=2, py=2,
    )
    art.save(GOLDEN / "small-lognormal.rpz")
    entries.append(
        {
            "name": "small-lognormal",
            "file": "small-lognormal.rpz",
            "backends": ["event", "lockstep", "gpu", "cluster", "par"],
        }
    )

    # 2. A forced-order mesh (single interior column along Y): the
    #    event fabric's arrival order is forced, so lockstep must
    #    match it bit-for-bit, not just within tolerance.
    art = record_run(
        "event", nx=2, ny=1, nz=5, geomodel="layered", seed=1,
        applications=2,
    )
    art.save(GOLDEN / "forced-order.rpz")
    entries.append(
        {
            "name": "forced-order",
            "file": "forced-order.rpz",
            "backends": ["event", "lockstep"],
            "tolerance_overrides": {"lockstep": "bit-exact"},
        }
    )

    # 3. A faulted scenario: transient rank failures during recording.
    #    Recovery must reproduce the fault-free bits, so the replay
    #    (which re-injects the recorded plan) stays bit-exact.
    plan = FaultPlan.seeded(7, fabric_shape=(4, 4), ranks=4).only_ranks()
    art = record_run(
        "cluster", nx=4, ny=4, nz=3, geomodel="channelized", seed=7,
        applications=2, px=2, py=2, plan=plan,
    )
    art.save(GOLDEN / "faulted-recovery.rpz")
    entries.append(
        {
            "name": "faulted-recovery",
            "file": "faulted-recovery.rpz",
            "backends": ["cluster", "par"],
        }
    )

    write_stable_json(GOLDEN / "registry.json", {"artifacts": entries})
    for entry in entries:
        print(f"wrote {GOLDEN / entry['file']}")
    print(f"wrote {GOLDEN / 'registry.json'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
