"""Streaming trace aggregation: bounded ring + O(1)-per-event statistics.

``EventRuntime(trace=True)`` used to append every delivery to an
unbounded Python list, which dominated memory at benchmark-scale event
counts (ROADMAP: "trace compression for large runs").  The
:class:`TraceSink` replaces that list with

* a **bounded ring** of the most recent deliveries (``capacity``
  records; ``None`` keeps everything for tiny debugging fabrics) — the
  per-delivery timeline of ``examples/communication_trace.py``;
* **streaming aggregates** updated in O(1) per event: per-color message
  and word counters, per-color hop histograms, per-direction end-to-end
  latency histograms (log2 buckets of cycles), and a per-link traffic
  map over the fabric (words per directed link, plus accumulated
  contention wait) that renders as a per-PE heatmap.

The sink's two hot entry points — :meth:`delivery` and the inlined
per-hop link accounting (the runtime updates the internal ``_links``
map directly) — are written as a single dict lookup plus in-place list
increments so ``trace=True`` stays within the benchmark gate's
tracing-overhead budget; all public views are read-time projections.

Link keys use the event runtime's packed encoding
``((x << 16) | y) << 3 | out_port`` (see :func:`pack_link` /
:func:`unpack_link`), so the runtime can reuse the key it already
computed for the link-busy map.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, NamedTuple

import numpy as np

from repro.wse.geometry import Port

__all__ = [
    "DeliveryRecord",
    "TraceSink",
    "pack_link",
    "unpack_link",
    "latency_bucket_bounds",
    "DIRECTION_LABELS",
]

#: Number of log2 latency buckets: bucket ``i`` counts latencies whose
#: integer cycle count has bit length ``i`` (i.e. in ``[2^(i-1), 2^i)``;
#: bucket 0 is sub-cycle).  The last bucket absorbs everything larger.
LATENCY_BUCKETS = 24

#: Compass label of a delivery by the sign of its source -> target
#: displacement (x grows east, y grows south, the fabric convention).
DIRECTION_LABELS = {
    (0, -1): "N", (1, -1): "NE", (1, 0): "E", (1, 1): "SE",
    (0, 1): "S", (-1, 1): "SW", (-1, 0): "W", (-1, -1): "NW",
    (0, 0): "local",
}


def pack_link(x: int, y: int, port: int) -> int:
    """Pack a directed link (PE coordinate + out port) into one int."""
    return (((x << 16) | y) << 3) | port


def unpack_link(key: int) -> tuple[int, int, Port]:
    """Invert :func:`pack_link` -> ``(x, y, out_port)``."""
    port = Port(key & 0b111)
    xy = key >> 3
    return xy >> 16, xy & 0xFFFF, port


def latency_bucket_bounds() -> list[tuple[float, float]]:
    """Half-open cycle ranges ``[lo, hi)`` of each latency bucket."""
    bounds = [(0.0, 1.0)]
    for i in range(1, LATENCY_BUCKETS):
        bounds.append((float(2 ** (i - 1)), float(2**i)))
    lo, _ = bounds[-1]
    bounds[-1] = (lo, float("inf"))
    return bounds


class DeliveryRecord(NamedTuple):
    """One delivered message in the ring timeline.

    A named tuple so consumers address fields by name
    (``rec.time``/``rec.coord``/``rec.message``) instead of silently
    depending on positional layout, while old ``for t, coord, msg in
    ...`` unpacking keeps working.
    """

    time: float
    coord: tuple[int, int]
    message: object

    @property
    def color(self) -> int:
        return self.message.color

    @property
    def hops(self) -> int:
        return self.message.hops


class TraceSink:
    """Bounded delivery ring plus streaming per-event aggregates.

    Parameters
    ----------
    capacity:
        Ring size in delivery records.  ``None`` keeps every delivery
        (only sensible for tiny fabrics / protocol debugging); the
        aggregates are unaffected by the choice.
    """

    def __init__(self, capacity: int | None = 1024) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive (or None)")
        self.capacity = capacity
        #: Plain ``(time, coord, msg)`` tuples — cheaper to append than a
        #: NamedTuple; :meth:`timeline` wraps them in DeliveryRecord.
        self.ring: deque[tuple] = deque(maxlen=capacity)
        self._ring_append = self.ring.append
        #: The single hot-path aggregate: ``(color, hops, sign dx,
        #: sign dy, latency bucket) -> [messages, words]``.  One dict
        #: lookup per delivery; every public view (per-color counters,
        #: hop histograms, direction latency) is a projection of this at
        #: read time.  Sign 2 marks a source-less (unknown) direction.
        self._agg: dict[tuple, list] = {}
        #: packed link key -> [words transmitted, contention wait cycles].
        #: The runtime updates this directly on its per-hop path (one
        #: dict lookup per hop); :attr:`link_words` / :attr:`link_wait`
        #: are read-time projections.
        self._links: dict[int, list] = {}

    # ------------------------------------------------------------------ #
    # Hot path
    # ------------------------------------------------------------------ #
    def delivery(self, time: float, coord: tuple[int, int], msg) -> None:
        """Record one delivered message (O(1) time and memory)."""
        self._ring_append((time, coord, msg))
        source = msg.source
        if source is None:
            sdx = sdy = 2
        else:
            dx = coord[0] - source[0]
            dy = coord[1] - source[1]
            sdx = (dx > 0) - (dx < 0)
            sdy = (dy > 0) - (dy < 0)
        bucket = int(time - msg.born).bit_length()
        if bucket >= LATENCY_BUCKETS:
            bucket = LATENCY_BUCKETS - 1
        key = (msg.color, msg.hops, sdx, sdy, bucket)
        agg = self._agg.get(key)
        if agg is None:
            agg = self._agg[key] = [0, 0]
        agg[0] += 1
        agg[1] += msg.num_words

    # The per-hop side has no method: the runtime updates ``_links``
    # directly with the packed key it already holds (one dict lookup
    # per hop keeps traced runs inside the overhead budget).

    # ------------------------------------------------------------------ #
    # Lifecycle / aggregation
    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        """Drop the ring and reset every aggregate."""
        self.ring.clear()
        self._agg.clear()
        self._links.clear()

    def merge(self, other: "TraceSink") -> "TraceSink":
        """Accumulate *other*'s aggregates (and ring tail) into this sink."""
        for key, (msgs, words) in other._agg.items():
            mine = self._agg.get(key)
            if mine is None:
                mine = self._agg[key] = [0, 0]
            mine[0] += msgs
            mine[1] += words
        for key, (words, wait) in other._links.items():
            mine_l = self._links.get(key)
            if mine_l is None:
                mine_l = self._links[key] = [0, 0.0]
            mine_l[0] += words
            mine_l[1] += wait
        self.ring.extend(other.ring)
        return self

    # ------------------------------------------------------------------ #
    # Derived views (projections of the composite-key aggregate)
    # ------------------------------------------------------------------ #
    @property
    def deliveries(self) -> int:
        """Deliveries observed since the last clear (ring may hold fewer)."""
        return sum(agg[0] for agg in self._agg.values())

    @property
    def color_messages(self) -> dict[int, int]:
        """color -> delivered message count."""
        out: dict[int, int] = {}
        for (color, *_), (msgs, _) in self._agg.items():
            out[color] = out.get(color, 0) + msgs
        return out

    @property
    def color_words(self) -> dict[int, int]:
        """color -> delivered words."""
        out: dict[int, int] = {}
        for (color, *_), (_, words) in self._agg.items():
            out[color] = out.get(color, 0) + words
        return out

    @property
    def color_hops(self) -> dict[int, dict[int, int]]:
        """color -> {hops: count} histogram at delivery."""
        out: dict[int, dict[int, int]] = {}
        for (color, hops, *_), (msgs, _) in self._agg.items():
            hist = out.setdefault(color, {})
            hist[hops] = hist.get(hops, 0) + msgs
        return out

    @property
    def direction_latency(self) -> dict[str, list[int]]:
        """direction label -> log2 latency histogram (injection->delivery)."""
        out: dict[str, list[int]] = {}
        for (_, _, sdx, sdy, bucket), (msgs, _) in self._agg.items():
            label = DIRECTION_LABELS.get((sdx, sdy), "unknown")
            hist = out.get(label)
            if hist is None:
                hist = out[label] = [0] * LATENCY_BUCKETS
            hist[bucket] += msgs
        return out
    @property
    def total_words(self) -> int:
        """Words delivered (sum over colors)."""
        return sum(agg[1] for agg in self._agg.values())

    @property
    def link_words(self) -> dict[int, int]:
        """packed link key -> words transmitted over that directed link."""
        return {key: agg[0] for key, agg in self._links.items()}

    @property
    def link_wait(self) -> dict[int, float]:
        """packed link key -> accumulated contention wait (cycles)."""
        return {key: agg[1] for key, agg in self._links.items() if agg[1] > 0.0}

    @property
    def link_word_hops(self) -> int:
        """Total link traffic in word-hops; matches
        ``RuntimeStats.fabric_word_hops`` for the same run."""
        return sum(agg[0] for agg in self._links.values())

    def hop_histogram(self) -> dict[int, int]:
        """Hop histogram over all colors."""
        out: dict[int, int] = {}
        for (_, hops, *_), (msgs, _) in self._agg.items():
            out[hops] = out.get(hops, 0) + msgs
        return out

    def heatmap(self, width: int, height: int) -> np.ndarray:
        """Per-link traffic as a ``(4, height, width)`` word-count array.

        Axis 0 is the out-port (NORTH, EAST, SOUTH, WEST) of the sending
        PE; sum over axis 0 for a per-PE outbound-traffic heatmap.
        """
        grid = np.zeros((4, height, width), dtype=np.int64)
        for key, (words, _) in self._links.items():
            x, y, port = unpack_link(key)
            if port < 4 and x < width and y < height:
                grid[port, y, x] += words
        return grid

    def pe_heatmap(self, width: int, height: int) -> np.ndarray:
        """Outbound words per PE: ``(height, width)``."""
        return self.heatmap(width, height).sum(axis=0)

    def timeline(self) -> Iterator[DeliveryRecord]:
        """The retained delivery records, oldest first."""
        return map(DeliveryRecord._make, self.ring)

    def as_dict(self) -> dict:
        """JSON-able snapshot of every aggregate (ring excluded)."""
        messages = self.color_messages
        words = self.color_words
        hops = self.color_hops
        return {
            "capacity": self.capacity,
            "deliveries": self.deliveries,
            "retained": len(self.ring),
            "total_words": self.total_words,
            "link_word_hops": self.link_word_hops,
            "per_color": {
                str(color): {
                    "messages": messages[color],
                    "words": words[color],
                    "hops": {
                        str(h): n for h, n in sorted(hops[color].items())
                    },
                }
                for color in sorted(messages)
            },
            "direction_latency_log2": {
                label: list(hist)
                for label, hist in sorted(self.direction_latency.items())
            },
            "links": {
                f"{x},{y}:{port.name}": {
                    "words": words,
                    "wait_cycles": round(wait, 3),
                }
                for key, (words, wait) in sorted(self._links.items())
                for x, y, port in (unpack_link(key),)
            },
        }
