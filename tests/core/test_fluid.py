"""Unit tests for the fluid property model (paper Eqs. 4-5)."""

import numpy as np
import pytest

from repro.core import FluidProperties, constants, upwind_mobility


class TestFluidProperties:
    def test_density_at_reference(self, fluid):
        assert fluid.density(fluid.reference_pressure) == pytest.approx(
            fluid.reference_density
        )

    def test_density_exponential_form(self, fluid):
        p = fluid.reference_pressure + 5e6
        expected = fluid.reference_density * np.exp(
            fluid.compressibility * (p - fluid.reference_pressure)
        )
        assert fluid.density(p) == pytest.approx(expected, rel=1e-14)

    def test_density_array(self, fluid):
        p = np.array([1e7, 2e7, 3e7])
        rho = fluid.density(p)
        assert rho.shape == (3,)
        assert np.all(np.diff(rho) > 0)  # monotone increasing in p

    def test_density_out_parameter_in_place(self, fluid):
        p = np.array([1e7, 2e7])
        out = np.empty(2)
        result = fluid.density(p, out=out)
        assert result is out
        np.testing.assert_allclose(out, fluid.density(p))

    def test_density_derivative_matches_finite_difference(self, fluid):
        p = 1.3e7
        eps = 1.0
        fd = (fluid.density(p + eps) - fluid.density(p - eps)) / (2 * eps)
        assert fluid.density_derivative(p) == pytest.approx(fd, rel=1e-6)

    def test_incompressible_limit(self):
        f = FluidProperties(compressibility=0.0)
        assert f.density(1e5) == f.reference_density
        assert f.density(9e7) == f.reference_density

    def test_mobility(self, fluid):
        rho = 700.0
        assert fluid.mobility(rho) == pytest.approx(rho / fluid.viscosity)

    def test_rejects_nonpositive_viscosity(self):
        with pytest.raises(ValueError, match="viscosity"):
            FluidProperties(viscosity=0.0)

    def test_rejects_negative_compressibility(self):
        with pytest.raises(ValueError, match="compressibility"):
            FluidProperties(compressibility=-1e-9)

    def test_rejects_nonpositive_reference_density(self):
        with pytest.raises(ValueError, match="reference_density"):
            FluidProperties(reference_density=-1.0)

    def test_frozen(self, fluid):
        with pytest.raises(AttributeError):
            fluid.viscosity = 1.0

    def test_defaults_match_constants(self):
        f = FluidProperties()
        assert f.viscosity == constants.DEFAULT_VISCOSITY
        assert f.compressibility == constants.DEFAULT_COMPRESSIBILITY


class TestUpwindMobility:
    """Eq. 4: rho_K when dPhi > 0, rho_L otherwise."""

    def test_positive_potential_picks_local(self):
        lam = upwind_mobility(1.0, 700.0, 800.0, viscosity=2.0)
        assert lam == pytest.approx(350.0)

    def test_negative_potential_picks_neighbour(self):
        lam = upwind_mobility(-1.0, 700.0, 800.0, viscosity=2.0)
        assert lam == pytest.approx(400.0)

    def test_zero_potential_picks_neighbour_branch(self):
        # Eq. 4's 'otherwise' covers dPhi == 0 (flux is zero regardless).
        lam = upwind_mobility(0.0, 700.0, 800.0, viscosity=2.0)
        assert lam == pytest.approx(400.0)

    def test_vectorized(self):
        dphi = np.array([2.0, -3.0, 0.0])
        lam = upwind_mobility(dphi, 10.0, 20.0, viscosity=1.0)
        np.testing.assert_allclose(lam, [10.0, 20.0, 20.0])

    def test_array_densities(self):
        dphi = np.array([1.0, -1.0])
        rho_k = np.array([1.0, 2.0])
        rho_l = np.array([3.0, 4.0])
        lam = upwind_mobility(dphi, rho_k, rho_l, viscosity=1.0)
        np.testing.assert_allclose(lam, [1.0, 4.0])
