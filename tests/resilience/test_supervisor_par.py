"""Supervised recovery of the real multiprocess SPMD backend.

Two fault modes, both against live worker processes: a worker that
*dies* (``os._exit``) and a worker that *hangs* (``SIGSTOP``) — the
latter is invisible to exit-code reaping and only the heartbeat lease
can catch it.  In both cases the supervisor must restart from its
checkpoint and finish bit-identical to the serial cluster backend.
"""

import numpy as np
import pytest

from repro.cluster.flux import ClusterFluxComputation
from repro.core import CartesianMesh3D, FluidProperties, random_pressure
from repro.faults.errors import WorkerCrashError, WorkerLeaseExpiredError
from repro.faults.plan import FaultPlan, RankFailure
from repro.par.flux import ParClusterFluxComputation
from repro.par.runtime import shutdown_warm_pool
from repro.resilience import ResiliencePolicy, RunSupervisor

MESH = CartesianMesh3D(6, 6, 3)
FLUID = FluidProperties()
PRESSURES = [random_pressure(MESH, seed=30 + i) for i in range(3)]
PLAN = FaultPlan(
    seed=5, rank_failures=(RankFailure(rank=1, exchange=1, attempts=1),)
)


@pytest.fixture(autouse=True, scope="module")
def _drain_warm_pool():
    yield
    shutdown_warm_pool()


def serial_reference():
    drv = ClusterFluxComputation(MESH, FLUID, px=2, py=2)
    return [
        np.array(drv.run_single(p).residual, copy=True) for p in PRESSURES
    ]


class TestCrashRecovery:
    def test_worker_death_resumes_bit_identically(self):
        reference = serial_reference()
        policy = ResiliencePolicy(
            backoff_base=0.0, backoff_jitter=0.0, checkpoint_every=1
        )
        sup = RunSupervisor(
            MESH, FLUID, policy=policy, backend="par",
            px=2, py=2, workers=2, plan=PLAN,
        )
        res = sup.run(PRESSURES)
        assert res.restarts == 1
        assert res.backend_chain == ["par"]
        failure = next(
            e for e in res.timeline if e["event"] == "failure"
        )
        assert failure["error"] == "WorkerCrashError"
        assert res.residual.tobytes() == reference[-1].tobytes()


class TestHungWorker:
    def test_lease_expiry_detects_a_sigstopped_worker(self):
        """Without respawn the driver itself must surface the hang as a
        WorkerLeaseExpiredError (a WorkerCrashError subclass), naming
        the hung worker."""
        with pytest.raises(WorkerLeaseExpiredError) as info:
            with ParClusterFluxComputation(
                MESH, FLUID, px=2, py=2, workers=2, plan=PLAN,
                respawn=False, failure_mode="hang", lease_seconds=0.5,
                record_spans=False,
            ) as par:
                for p in PRESSURES:
                    par.run_single(p)
        exc = info.value
        assert isinstance(exc, WorkerCrashError)
        assert "heartbeat lease" in str(exc)
        assert "hung, not dead" in str(exc)
        assert exc.lease_seconds == 0.5

    def test_supervisor_recovers_the_hang_bit_identically(self):
        reference = serial_reference()
        policy = ResiliencePolicy(
            backoff_base=0.0, backoff_jitter=0.0, checkpoint_every=1,
            lease_seconds=0.5,
        )
        sup = RunSupervisor(
            MESH, FLUID, policy=policy, backend="par",
            px=2, py=2, workers=2, plan=PLAN, failure_mode="hang",
        )
        res = sup.run(PRESSURES)
        assert res.restarts >= 1
        lease_failures = [
            e for e in res.timeline
            if e["event"] == "failure"
            and e["error"] == "WorkerLeaseExpiredError"
        ]
        assert lease_failures, "the hang must be detected via the lease"
        assert res.residual.tobytes() == reference[-1].tobytes()
