"""Scaling harnesses: measured efficiency next to the modelled curve.

The cluster layer already *predicts* scaling through the alpha-beta
:class:`~repro.cluster.perf.ClusterPerfModel`; this module *measures*
it.  Each grid point keeps the per-rank block constant (``base_nx x
base_ny x nz`` cells) and grows the global mesh with the rank grid, the
standard weak-scaling protocol, then times real applications through
:class:`~repro.par.flux.ParClusterFluxComputation` and reports

    efficiency(p) = T(1x1) / T(px x py)

side by side with the model's prediction for the same decompositions.
Every timed point is optionally verified bit-identical against the
serial :class:`~repro.cluster.flux.ClusterFluxComputation` on the same
global mesh, so a scaling number can never come from a wrong answer.

On an oversubscribed host (fewer cores than workers) measured
efficiency degrades below the model — that gap is the point: it is the
difference between executing and modelling.

:func:`worker_sweep` is the strong-scaling companion: one fixed global
mesh, the worker count swept (1, 2, 4, ...), every point timed against
the serial cluster backend on the same fields — the curve that decides
whether the process pool actually *wins* on this host.  Points where
the host cannot physically parallelize (fewer usable cores than
workers, :func:`~repro.par.runtime.available_cpus`) are still measured
and recorded honestly; gating on them is the caller's (CI's) decision.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.cluster.flux import ClusterFluxComputation
from repro.cluster.perf import ClusterPerfModel
from repro.core.state import PressureSequence
from repro.workloads.geomodels import make_geomodel
from repro.workloads.scenarios import FluxScenario
from repro.par.flux import ParClusterFluxComputation
from repro.par.runtime import available_cpus

__all__ = [
    "ScalePoint",
    "SweepPoint",
    "parse_grids",
    "parse_mesh",
    "parse_workers",
    "weak_scaling",
    "worker_sweep",
    "render_scaling",
    "render_sweep",
]


@dataclass
class ScalePoint:
    """One measured (and modelled) weak-scaling grid point."""

    px: int
    py: int
    ranks: int
    workers: int
    nx: int
    ny: int
    nz: int
    applications: int
    #: Measured seconds per application through the process pool.
    measured_seconds: float
    #: Modelled per-application seconds (ClusterPerfModel).
    modelled_seconds: float
    #: T(1x1)/T(p), measured wall clock (1.0 at the base point).
    measured_efficiency: float
    #: Model-predicted weak-scaling efficiency for the same grids.
    modelled_efficiency: float
    distinct_pids: int
    messages_per_application: int
    halo_bytes_per_application: int
    #: Residual matched the serial cluster backend exactly (None when
    #: verification was skipped).
    bit_identical: bool | None = None

    def as_dict(self) -> dict:
        """Plain-dict form for JSON reports (``repro par-scale --out``)."""
        return asdict(self)


@dataclass
class SweepPoint:
    """One measured strong-scaling (worker-sweep) point."""

    workers: int
    ranks: int
    px: int
    py: int
    nx: int
    ny: int
    nz: int
    applications: int
    #: Whether the runtime chose the interior/boundary overlap split.
    overlap: bool
    #: Serial cluster-backend seconds per application (the reference).
    serial_seconds: float
    #: Multiprocess seconds per application at this worker count.
    par_seconds: float
    #: serial / par wall clock (> 1 means the process pool wins).
    speedup: float
    #: speedup / workers.
    efficiency: float
    distinct_pids: int
    #: Residual matched the serial cluster backend exactly (None when
    #: verification was skipped).
    bit_identical: bool | None = None

    def as_dict(self) -> dict:
        return asdict(self)


def parse_grids(spec: str) -> list[tuple[int, int]]:
    """Parse ``"1x1,2x2,3x2"`` into ``[(1, 1), (2, 2), (3, 2)]``."""
    grids = []
    for part in spec.split(","):
        part = part.strip().lower()
        if not part:
            continue
        try:
            px_s, py_s = part.split("x")
            grids.append((int(px_s), int(py_s)))
        except ValueError as exc:
            raise ValueError(
                f"bad grid {part!r} in {spec!r}: expected PXxPY like '2x2'"
            ) from exc
    if not grids:
        raise ValueError(f"no grids in {spec!r}")
    return grids


def parse_mesh(spec: str) -> tuple[int, int, int]:
    """Parse ``"64x64x8"`` into ``(64, 64, 8)``."""
    parts = spec.strip().lower().split("x")
    try:
        nx, ny, nz = (int(p) for p in parts)
    except ValueError as exc:
        raise ValueError(
            f"bad mesh {spec!r}: expected NXxNYxNZ like '64x64x8'"
        ) from exc
    if min(nx, ny, nz) < 1:
        raise ValueError(f"bad mesh {spec!r}: dimensions must be >= 1")
    return nx, ny, nz


def parse_workers(spec: str) -> list[int]:
    """Parse ``"1,2,4"`` into ``[1, 2, 4]`` (a single count is fine)."""
    counts = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            count = int(part)
        except ValueError as exc:
            raise ValueError(
                f"bad worker count {part!r} in {spec!r}: expected an "
                f"integer or a comma list like '1,2,4'"
            ) from exc
        if count < 1:
            raise ValueError(f"worker counts must be >= 1, got {count}")
        counts.append(count)
    if not counts:
        raise ValueError(f"no worker counts in {spec!r}")
    return counts


def weak_scaling(
    grids,
    *,
    base_nx: int = 16,
    base_ny: int = 16,
    nz: int = 4,
    applications: int = 2,
    workers: int | None = None,
    seed: int = 0,
    dtype=np.float64,
    verify: bool = True,
    perf_model: ClusterPerfModel | None = None,
) -> list[ScalePoint]:
    """Measure weak scaling over *grids* (``(px, py)`` pairs).

    The per-rank block is fixed at ``base_nx x base_ny x nz`` cells; the
    grid point ``(px, py)`` therefore runs a ``base_nx*px x base_ny*py x
    nz`` global mesh over ``px*py`` ranks.  ``workers`` bounds the
    process count per point (default: one worker per rank, capped at
    the host's cores).  Includes one untimed warm-up application per
    point (first-touch page faults and import costs land there).
    """
    grids = [(int(px), int(py)) for px, py in grids]
    model = perf_model if perf_model is not None else ClusterPerfModel()
    points: list[ScalePoint] = []
    base_measured: float | None = None
    base_modelled: float | None = None
    for px, py in grids:
        nx, ny = base_nx * px, base_ny * py
        mesh = make_geomodel(nx, ny, nz, kind="lognormal", seed=seed)
        seq = PressureSequence(
            mesh, num_applications=applications + 1, seed=seed, dtype=dtype
        )
        fluid = FluxScenario(nx=nx, ny=ny, nz=nz).fluid
        point_workers = workers if workers is not None else px * py
        point_workers = min(point_workers, px * py)
        with ParClusterFluxComputation(
            mesh, fluid, px=px, py=py, workers=point_workers, dtype=dtype
        ) as par:
            par.run_single(seq.field(0))  # warm-up, untimed
            t0 = time.perf_counter_ns()
            result = par.run(seq.field(i + 1) for i in range(applications))
            elapsed = (time.perf_counter_ns() - t0) / 1e9
        measured = elapsed / applications
        modelled = model.application_seconds(par.decomp)
        if base_measured is None:
            base_measured = measured
            base_modelled = modelled
        bit_identical: bool | None = None
        if verify:
            serial = ClusterFluxComputation(
                mesh, fluid, px=px, py=py, dtype=dtype
            )
            reference = serial.run(
                seq.field(i + 1) for i in range(applications)
            )
            bit_identical = bool(
                np.array_equal(result.residual, reference.residual)
            )
        points.append(
            ScalePoint(
                px=px,
                py=py,
                ranks=px * py,
                workers=point_workers,
                nx=nx,
                ny=ny,
                nz=nz,
                applications=applications,
                measured_seconds=measured,
                modelled_seconds=modelled,
                measured_efficiency=base_measured / measured,
                modelled_efficiency=base_modelled / modelled,
                distinct_pids=result.distinct_pids,
                messages_per_application=result.messages_per_application,
                halo_bytes_per_application=result.halo_bytes_per_application,
                bit_identical=bit_identical,
            )
        )
    return points


def worker_sweep(
    workers_list,
    *,
    nx: int = 64,
    ny: int = 64,
    nz: int = 8,
    px: int = 2,
    py: int = 2,
    applications: int = 4,
    seed: int = 0,
    dtype=np.float64,
    verify: bool = True,
    repeats: int = 3,
) -> list[SweepPoint]:
    """Strong-scaling sweep: one global mesh, varying worker counts.

    The serial cluster backend is timed once (best of ``repeats``) as
    the common reference; each worker count then runs the identical
    applications through :class:`ParClusterFluxComputation` (one
    untimed warm-up run per point, best of ``repeats`` timed runs).
    Worker counts above ``px * py`` ranks are invalid and raise.
    """
    workers_list = [int(w) for w in workers_list]
    mesh = make_geomodel(nx, ny, nz, kind="lognormal", seed=seed)
    fluid = FluxScenario(nx=nx, ny=ny, nz=nz).fluid
    seq = PressureSequence(
        mesh, num_applications=applications, seed=seed, dtype=dtype
    )
    fields = [seq.field(i) for i in range(applications)]

    serial = ClusterFluxComputation(mesh, fluid, px=px, py=py, dtype=dtype)
    reference = serial.run(iter(fields))  # warm-up
    best_serial = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter_ns()
        reference = serial.run(iter(fields))
        best_serial = min(
            best_serial, (time.perf_counter_ns() - t0) / 1e9
        )

    points: list[SweepPoint] = []
    for workers in workers_list:
        with ParClusterFluxComputation(
            mesh, fluid, px=px, py=py, workers=workers, dtype=dtype
        ) as par:
            par.run(iter(fields))  # warm-up (pool lease + first touch)
            best_par = float("inf")
            result = None
            for _ in range(repeats):
                t0 = time.perf_counter_ns()
                result = par.run(iter(fields))
                best_par = min(
                    best_par, (time.perf_counter_ns() - t0) / 1e9
                )
            overlap = par.overlap
        bit_identical: bool | None = None
        if verify:
            bit_identical = bool(
                np.array_equal(result.residual, reference.residual)
            )
        speedup = best_serial / best_par
        points.append(
            SweepPoint(
                workers=workers,
                ranks=px * py,
                px=px,
                py=py,
                nx=nx,
                ny=ny,
                nz=nz,
                applications=applications,
                overlap=overlap,
                serial_seconds=best_serial / applications,
                par_seconds=best_par / applications,
                speedup=speedup,
                efficiency=speedup / workers,
                distinct_pids=result.distinct_pids,
                bit_identical=bit_identical,
            )
        )
    return points


def render_scaling(points: list[ScalePoint]) -> str:
    """Fixed-width table of measured vs modelled weak-scaling numbers."""
    header = (
        f"{'grid':>6} {'ranks':>5} {'wrk':>4} {'mesh':>12} "
        f"{'t/app [ms]':>11} {'eff':>6} {'model eff':>9} "
        f"{'pids':>5} {'identical':>9}"
    )
    lines = [header, "-" * len(header)]
    for pt in points:
        ident = "-" if pt.bit_identical is None else (
            "yes" if pt.bit_identical else "NO"
        )
        grid = f"{pt.px}x{pt.py}"
        mesh = f"{pt.nx}x{pt.ny}x{pt.nz}"
        lines.append(
            f"{grid:>6} {pt.ranks:>5} {pt.workers:>4} {mesh:>12} "
            f"{pt.measured_seconds * 1e3:>11.2f} "
            f"{pt.measured_efficiency:>6.2f} {pt.modelled_efficiency:>9.2f} "
            f"{pt.distinct_pids:>5} {ident:>9}"
        )
    return "\n".join(lines)


def render_sweep(points: list[SweepPoint]) -> str:
    """Fixed-width table of measured strong-scaling (sweep) numbers."""
    header = (
        f"{'wrk':>4} {'ranks':>5} {'mesh':>12} {'overlap':>7} "
        f"{'serial [ms]':>11} {'par [ms]':>9} {'speedup':>7} "
        f"{'eff':>6} {'pids':>5} {'identical':>9}"
    )
    lines = [header, "-" * len(header)]
    for pt in points:
        ident = "-" if pt.bit_identical is None else (
            "yes" if pt.bit_identical else "NO"
        )
        mesh = f"{pt.nx}x{pt.ny}x{pt.nz}"
        lines.append(
            f"{pt.workers:>4} {pt.ranks:>5} {mesh:>12} "
            f"{'on' if pt.overlap else 'off':>7} "
            f"{pt.serial_seconds * 1e3:>11.2f} "
            f"{pt.par_seconds * 1e3:>9.2f} {pt.speedup:>7.2f} "
            f"{pt.efficiency:>6.2f} {pt.distinct_pids:>5} {ident:>9}"
        )
    return "\n".join(lines)
