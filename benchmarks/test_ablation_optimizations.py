"""Ablations of the Sec.-5.3 optimizations.

The paper highlights three optimizations without isolating their impact;
these benches quantify each on the simulator:

* **buffer reuse** (Sec. 5.3.1) — PE memory footprint and the largest
  Nz that fits a 48 KB PE, with and without the hand-crafted reuse;
* **vectorization** (Sec. 5.3.3) — modelled datapath cycles with the
  DSD/SIMD path vs a scalar loop;
* **diagonal communication** (Sec. 5.2.2) — extra fabric traffic and
  cycles paid for the 4 two-hop diagonal flows (they are optional for
  the TPFA scheme itself, Sec. 3);
* **mapping choice** (Fig. 3) — cell-based vs face-based resource needs.
"""

import numpy as np
import pytest

from repro.core import CartesianMesh3D, FluidProperties, Transmissibility, random_pressure
from repro.core.constants import PAPER_MESH
from repro.dataflow import (
    WseFluxComputation,
    compare_mappings,
    layout_words_per_cell,
    max_nz_for_memory,
)
from repro.util.reporting import Table
from repro.wse.memory import WSE2_PE_MEMORY_BYTES

FLUID = FluidProperties()


def test_ablation_buffer_reuse(report, benchmark):
    """Memory footprint with/without the Sec.-5.3.1 reuse."""
    mesh = CartesianMesh3D(4, 4, 24)
    lean = WseFluxComputation(mesh, FLUID, dtype=np.float32, reuse_buffers=True)
    fat = WseFluxComputation(mesh, FLUID, dtype=np.float32, reuse_buffers=False)
    p = random_pressure(mesh, seed=0)
    benchmark(lambda: lean.run_single(p))
    fat.run_single(p)

    max_lean = max_nz_for_memory(WSE2_PE_MEMORY_BYTES, reuse_buffers=True)
    max_fat = max_nz_for_memory(WSE2_PE_MEMORY_BYTES, reuse_buffers=False)
    table = Table(
        "Ablation — buffer reuse (Sec. 5.3.1)",
        ["Quantity", "with reuse", "without reuse"],
    )
    table.add_row(
        [
            "words per cell of Z column",
            layout_words_per_cell(reuse_buffers=True),
            layout_words_per_cell(reuse_buffers=False),
        ]
    )
    table.add_row(
        ["PE memory high water [B] (nz=24)", lean.memory_high_water(), fat.memory_high_water()]
    )
    table.add_row(["max Nz on a 48 KB PE", max_lean, max_fat])
    table.add_note("paper ran Nz = 246; both layouts fit, reuse fits 1.8x deeper columns")
    report(table.render())

    assert max_lean > 1.5 * max_fat
    assert max_lean >= 246 and max_fat >= 246


def test_ablation_vectorization(report, benchmark):
    """Modelled datapath cycles: DSD/SIMD vs scalar loop (Sec. 5.3.3)."""
    mesh = CartesianMesh3D(4, 4, 12)
    trans = Transmissibility(mesh, dtype=np.float32)
    p = random_pressure(mesh, seed=1)
    vec = WseFluxComputation(mesh, FLUID, trans, dtype=np.float32, vectorized=True)
    sca = WseFluxComputation(mesh, FLUID, trans, dtype=np.float32, vectorized=False)
    r_vec = benchmark(lambda: vec.run_single(p))
    r_sca = sca.run_single(p)

    table = Table(
        "Ablation — DSD vectorization (Sec. 5.3.3)",
        ["Variant", "Compute cycles", "Device cycles"],
    )
    table.add_row(["vectorized", f"{r_vec.compute_cycles:.0f}", f"{r_vec.device_cycles:.0f}"])
    table.add_row(["scalar", f"{r_sca.compute_cycles:.0f}", f"{r_sca.device_cycles:.0f}"])
    speed = r_sca.device_cycles / r_vec.device_cycles
    table.add_note(f"end-to-end modelled speedup from vectorization: {speed:.2f}x")
    report(table.render())

    np.testing.assert_array_equal(r_vec.residual, r_sca.residual)
    assert speed > 1.5


def test_ablation_diagonal_traffic(report, benchmark):
    """Cost of the diagonal exchange: 10- vs 6-neighbour traffic.

    Diagonal transmissibilities are zeroed so the physics matches the
    classical 7-point TPFA, while the communication pattern still runs —
    isolating the pure traffic/compute cost of the diagonal flows.
    """
    mesh = CartesianMesh3D(5, 5, 10)
    p = random_pressure(mesh, seed=2)
    with_diag = WseFluxComputation(mesh, FLUID, dtype=np.float32)
    r_with = benchmark(lambda: with_diag.run_single(p))

    nz = mesh.nz
    words = 2 * nz
    card_hops = ((mesh.nx - 1) * mesh.ny + mesh.nx * (mesh.ny - 1)) * 2 * words
    diag_hops = r_with.fabric_word_hops - card_hops  # data + ctrl beyond cardinal
    table = Table(
        "Ablation — diagonal exchange cost (Sec. 5.2.2)",
        ["Quantity", "Value"],
    )
    table.add_row(["total fabric word-hops", r_with.fabric_word_hops])
    table.add_row(["cardinal data word-hops", card_hops])
    table.add_row(["diagonal + control word-hops", diag_hops])
    table.add_row(
        ["diagonal share of traffic", f"{100 * diag_hops / r_with.fabric_word_hops:.1f} %"]
    )
    table.add_row(["max hops on any message", r_with.stats.max_hops_seen])
    table.add_note(
        "the 4 diagonal flows roughly double fabric traffic (each train "
        "crosses two links) — the price of preparing higher-order stencils"
    )
    report(table.render())

    assert diag_hops > 0.8 * card_hops  # two-hop flows dominate the delta
    assert r_with.stats.max_hops_seen == 2


def test_ablation_async_overlap(report, benchmark):
    """Cost of losing the Sec.-5.3.2 overlap of transfers and compute.

    With overlap, each neighbour's partial flux executes while the
    remaining trains are still in flight; without, all eight partials
    queue after the final arrival, exposing their full latency.
    """
    mesh = CartesianMesh3D(5, 5, 16)
    trans = Transmissibility(mesh, dtype=np.float32)
    p = random_pressure(mesh, seed=5)
    lap = WseFluxComputation(mesh, FLUID, trans, dtype=np.float32)
    nolap = WseFluxComputation(
        mesh, FLUID, trans, dtype=np.float32,
        overlap_compute=False, reuse_buffers=False,
    )
    r_lap = benchmark(lambda: lap.run_single(p))
    r_nolap = nolap.run_single(p)

    table = Table(
        "Ablation — asynchronous overlap (Sec. 5.3.2)",
        ["Variant", "Device cycles", "Compute cycles"],
    )
    table.add_row(
        ["overlapped (paper)", f"{r_lap.device_cycles:.0f}", f"{r_lap.compute_cycles:.0f}"]
    )
    table.add_row(
        ["deferred (no overlap)", f"{r_nolap.device_cycles:.0f}", f"{r_nolap.compute_cycles:.0f}"]
    )
    gain = r_nolap.device_cycles / r_lap.device_cycles
    table.add_note(
        f"overlap hides {100 * (1 - 1 / gain):.0f}% of the exposed time "
        f"({gain:.2f}x end-to-end on this fabric)"
    )
    report(table.render())

    scale = np.abs(r_lap.residual).max()
    np.testing.assert_allclose(r_nolap.residual, r_lap.residual, atol=1e-5 * scale)
    assert gain > 1.2


def test_ablation_mapping_choice(report, benchmark):
    """Cell- vs face-based mapping resource comparison (Fig. 3)."""
    mesh = CartesianMesh3D(100, 100, 50)
    cmp = benchmark(lambda: compare_mappings(mesh))
    table = Table(
        "Ablation — mapping technique (Fig. 3)",
        ["Quantity", "cell-based", "face-based"],
    )
    table.add_row(["PEs for a 100x100 X-Y plane", cmp.cell_num_pes, cmp.face_num_pes])
    table.add_row(
        ["total fabric words / application", f"{cmp.cell_total_words:,}", f"{cmp.face_total_words:,}"]
    )
    cw, ch = cmp.cell_max_mesh_on_fabric
    fw, fh = cmp.face_max_mesh_on_fabric
    table.add_row(["max X-Y mesh on the CS-2 fabric", f"{cw} x {ch}", f"{fw} x {fh}"])
    table.add_note(
        f"face-based needs {cmp.pe_overhead_factor:.1f}x the PEs and "
        f"{cmp.traffic_overhead_factor:.1f}x the traffic — why the paper "
        "picks cell-based"
    )
    report(table.render())

    assert cmp.pe_overhead_factor > 3.5
    assert cmp.traffic_overhead_factor > 1.0
