"""Simulated GPU device specification and occupancy model.

The paper's reference platform is *Cypress*: four NVIDIA A100-40GB GPUs
(one used), CUDA 11.2 (Sec. 7.1).  :class:`DeviceSpec` carries the
hardware parameters the cost and roofline models need;
:class:`OccupancyModel` reproduces the occupancy math Nsight reported for
the reference kernel (Sec. 7.2: 30.79 of 32 theoretical warps per SM,
48.11% of 50% theoretical occupancy).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "OccupancyModel", "A100_40GB"]


@dataclass(frozen=True)
class DeviceSpec:
    """Hardware parameters of a simulated GPU.

    All bandwidths in bytes/s, rates in FLOP/s, memory in bytes.
    """

    name: str
    num_sms: int
    clock_hz: float
    peak_flops_sp: float
    hbm_bandwidth: float
    l2_bandwidth: float
    device_memory_bytes: int
    pcie_bandwidth: float
    max_threads_per_block: int
    max_threads_per_sm: int
    warp_size: int
    registers_per_sm: int
    tdp_watts: float

    @property
    def max_warps_per_sm(self) -> int:
        """Hardware warp slots per SM."""
        return self.max_threads_per_sm // self.warp_size


#: NVIDIA A100-SXM4-40GB (the paper's reference GPU).
A100_40GB = DeviceSpec(
    name="NVIDIA A100-40GB",
    num_sms=108,
    clock_hz=1.41e9,
    peak_flops_sp=19.5e12,
    hbm_bandwidth=1555e9,
    l2_bandwidth=3.75e12,  # calibrated: paper Fig. 8 kernel AI/achieved point
    device_memory_bytes=40 * 1024**3,
    pcie_bandwidth=25e9,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    warp_size=32,
    registers_per_sm=65536,
    tdp_watts=250.0,
)


@dataclass(frozen=True)
class OccupancyModel:
    """Static occupancy of a kernel launch on a :class:`DeviceSpec`.

    Parameters
    ----------
    device:
        Target device.
    threads_per_block:
        Launch block size (1024 in the paper, Sec. 6).
    registers_per_thread:
        Register pressure of the kernel; the flux kernel's working set
        (cell state, 10 neighbour states, transmissibilities) sits at 64
        registers/thread, which is what limits the A100 launch to 50%
        theoretical occupancy.
    achieved_fraction:
        Ratio of achieved to theoretical occupancy observed at runtime
        (paper: 48.11 / 50).
    """

    device: DeviceSpec
    threads_per_block: int = 1024
    registers_per_thread: int = 64
    achieved_fraction: float = 48.11 / 50.0

    def __post_init__(self) -> None:
        if self.threads_per_block > self.device.max_threads_per_block:
            raise ValueError(
                f"block of {self.threads_per_block} threads exceeds device "
                f"limit {self.device.max_threads_per_block}"
            )
        if self.threads_per_block % self.device.warp_size:
            raise ValueError("block size must be a multiple of the warp size")

    @property
    def blocks_per_sm(self) -> int:
        """Resident blocks per SM under thread and register limits."""
        by_threads = self.device.max_threads_per_sm // self.threads_per_block
        regs_per_block = self.registers_per_thread * self.threads_per_block
        by_registers = self.device.registers_per_sm // regs_per_block
        return max(0, min(by_threads, by_registers))

    @property
    def theoretical_warps_per_sm(self) -> int:
        """Warp slots occupied at the register/thread limit."""
        return (
            self.blocks_per_sm
            * self.threads_per_block
            // self.device.warp_size
        )

    @property
    def theoretical_occupancy(self) -> float:
        """Theoretical occupancy (0.50 for the paper's launch)."""
        return self.theoretical_warps_per_sm / self.device.max_warps_per_sm

    @property
    def achieved_warps_per_sm(self) -> float:
        """Average active warps per SM (30.79 in the paper)."""
        return self.theoretical_warps_per_sm * self.achieved_fraction

    @property
    def achieved_occupancy(self) -> float:
        """Achieved occupancy (0.4811 in the paper)."""
        return self.theoretical_occupancy * self.achieved_fraction
