"""The chaos harness and the ``repro chaos`` CLI end to end."""

import io
import json

import pytest

from repro.cli import main
from repro.faults import ChaosReport, FaultOutcome, FaultPlan, run_chaos


class TestOutcomeSemantics:
    def test_status_ladder(self):
        base = dict(scenario="s", fault="f", injected=True)
        assert FaultOutcome(**base, detected=False, recovered=True).status == "RECOVERED"
        assert FaultOutcome(**base, detected=True, recovered=False).status == "DETECTED"
        assert (
            FaultOutcome(**base, detected=False, recovered=False, benign=True).status
            == "BENIGN"
        )
        assert FaultOutcome(**base, detected=False, recovered=False).status == "MISSED"
        missed = FaultOutcome(
            scenario="s", fault="f", injected=False, detected=True, recovered=True
        )
        assert missed.status == "NOT INJECTED"
        assert not missed.ok

    def test_empty_report_is_not_ok(self):
        report = ChaosReport(seed=0, fabric_shape=(4, 4), ranks=4, plan=FaultPlan())
        assert not report.ok


class TestRunChaos:
    def test_seeded_plan_fully_detected_or_recovered(self):
        """The ISSUE acceptance scenario: seeded plan on a 4x4 fabric with
        a dead PE, a lossy link and a transient rank failure."""
        report = run_chaos(seed=7)
        assert report.ok, report.render()
        scenarios = {o.scenario: o for o in report.outcomes}
        assert scenarios["dead-pe/detect"].detected
        assert scenarios["dead-pe/remap"].recovered
        assert "bit-identical" in scenarios["dead-pe/remap"].detail
        assert scenarios["link-drop/detect"].detected
        assert scenarios["rank-failure/re-exchange"].recovered
        assert scenarios["par/worker-kill/detect"].detected
        assert scenarios["par/worker-kill/respawn"].recovered
        assert "bit-identical" in scenarios["par/worker-kill/respawn"].detail
        assert scenarios["solver/checkpoint-restart"].recovered

    def test_report_is_deterministic(self):
        a = run_chaos(seed=11, include_checkpoint_drill=False)
        b = run_chaos(seed=11, include_checkpoint_drill=False)
        assert a.as_dict() == b.as_dict()

    def test_router_stall_plan_trips_watchdog(self):
        plan = FaultPlan.seeded(
            3, fabric_shape=(4, 4),
            dead_pes=0, lossy_links=0, rank_failures=0,
            router_stalls=1, stall_cycles=1e6,
        )
        report = run_chaos(
            plan, include_corruption=False, include_checkpoint_drill=False,
            include_supervisor_drills=False,
        )
        assert report.ok
        (outcome,) = report.outcomes
        assert outcome.scenario == "router-stall/watchdog"
        assert "stalled" in outcome.detail

    def test_render_names_every_scenario(self):
        report = run_chaos(seed=7, include_checkpoint_drill=False)
        text = report.render()
        for outcome in report.outcomes:
            assert outcome.scenario in text
        assert "CHAOS PASSED" in text


class TestChaosCli:
    def test_chaos_exit_zero_and_json_report(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "chaos.json"
        code = main(["chaos", "--seed", "7", "--out", str(path)], out=out)
        assert code == 0
        assert "CHAOS PASSED" in out.getvalue()
        doc = json.loads(path.read_text())
        assert doc["ok"] is True
        assert len(doc["outcomes"]) == 13
        assert doc["plan"]["seed"] == 7

    def test_chaos_accepts_a_plan_file(self, tmp_path):
        plan = FaultPlan.seeded(5, fabric_shape=(4, 4), ranks=4)
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(plan.to_dict()))
        out = io.StringIO()
        code = main(["chaos", "--plan", str(plan_path)], out=out)
        assert code == 0
        assert "seed 5" in out.getvalue()

    def test_list_names_every_scenario(self):
        from repro.faults.chaos import SCENARIOS

        out = io.StringIO()
        code = main(["chaos", "--list"], out=out)
        assert code == 0
        text = out.getvalue()
        for name, blurb in SCENARIOS.items():
            assert name in text
            assert blurb in text

    def test_only_filters_to_the_named_scenarios(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "chaos.json"
        code = main([
            "chaos", "--seed", "7", "--postmortem", "none",
            "--only", "solver/checkpoint-restart,checkpoint/corruption",
            "--out", str(path),
        ], out=out)
        assert code == 0
        doc = json.loads(path.read_text())
        assert sorted(o["scenario"] for o in doc["outcomes"]) == [
            "checkpoint/corruption", "solver/checkpoint-restart",
        ]

    def test_unknown_only_name_is_a_usage_error(self, capsys):
        out = io.StringIO()
        code = main(["chaos", "--only", "no-such-drill"], out=out)
        assert code == 2
        err = capsys.readouterr().err
        assert "no-such-drill" in err
        assert "dead-pe/detect" in err  # names the valid set

    def test_empty_plan_file_is_a_usage_error(self, tmp_path, capsys):
        """An empty plan exercises nothing; exiting 0 on it would report
        a hollow green run.  It must be rejected as a usage error."""
        plan_path = tmp_path / "empty.json"
        plan_path.write_text(json.dumps(FaultPlan().to_dict()))
        out = io.StringIO()
        code = main(["chaos", "--plan", str(plan_path)], out=out)
        assert code == 2
        assert "injects no faults" in capsys.readouterr().err
