"""Unit tests for the shared-memory layout and arena."""

import pickle

import numpy as np
import pytest

from repro.core import CartesianMesh3D
from repro.cluster.comm import CartGrid
from repro.cluster.decomposition import BlockDecomposition
from repro.cluster.flux import halo_links
from repro.par.layout import SEQ_BYTES, HaloLayout
from repro.par.shm import SharedArena


def make_layout(nx=8, ny=8, nz=3, px=2, py=2, dtype=np.float64):
    mesh = CartesianMesh3D(nx, ny, nz)
    decomp = BlockDecomposition(mesh, px, py)
    grid = CartGrid(px, py)
    return HaloLayout.from_decomposition(decomp, grid, dtype=dtype), decomp, grid


class TestHaloLayout:
    def test_fields_disjoint_and_aligned(self):
        layout, _, _ = make_layout()
        field_bytes = 3 * 8 * 8 * 8
        assert layout.pressure_offset == 0
        assert layout.residual_offset >= field_bytes
        assert layout.residual_offset % 8 == 0
        for slot in layout.slots:
            assert slot.seq_offset % 8 == 0
            assert slot.payload_offset % 8 == 0
            assert slot.payload_offset >= slot.seq_offset + SEQ_BYTES

    def test_slots_do_not_overlap(self):
        layout, _, _ = make_layout(px=3, py=2, nx=9)
        regions = [(layout.pressure_offset, layout.residual_offset)]
        prev_end = layout.residual_offset + 3 * 8 * 9 * 8
        for slot in layout.slots:
            assert slot.seq_offset >= prev_end
            prev_end = slot.payload_offset + slot.payload_bytes
        assert layout.total_bytes >= prev_end

    def test_one_slot_per_halo_link(self):
        layout, decomp, grid = make_layout(px=3, py=2, nx=9)
        links = halo_links(decomp, grid)
        assert [slot.link for slot in layout.slots] == links
        for link in links:
            slot = layout.slot(link.source, link.dest, link.tag)
            assert slot.link == link
        with pytest.raises(KeyError):
            layout.slot(0, 0, 99)

    def test_payload_bytes_match_strip(self):
        layout, decomp, _ = make_layout()
        nz = decomp.mesh.nz
        for slot in layout.slots:
            assert slot.payload_bytes == slot.link.cells(nz) * 8

    def test_picklable(self):
        layout, _, _ = make_layout()
        layout.slot(0, 1, 0)  # populate the key cache
        clone = pickle.loads(pickle.dumps(layout))
        assert clone.total_bytes == layout.total_bytes
        assert clone.slot(0, 1, 0).payload_offset == layout.slot(0, 1, 0).payload_offset


class TestSharedArena:
    def test_views_roundtrip(self):
        layout, _, _ = make_layout()
        arena = SharedArena(layout, create=True)
        try:
            arena.pressure[:] = 7.5
            key = layout.slots[0].key
            arena.payload(key)[:] = 1.25
            assert arena.seq(key) == 0
            arena.set_seq(key, 3)
            # a second attachment sees the same bytes
            other = SharedArena(layout, name=arena.name, create=False)
            try:
                assert float(other.pressure[0, 0, 0]) == 7.5
                assert float(other.payload(key).ravel()[0]) == 1.25
                assert other.seq(key) == 3
            finally:
                other.close()
        finally:
            arena.close()

    def test_reset_seqs(self):
        layout, _, _ = make_layout()
        arena = SharedArena(layout, create=True)
        try:
            for slot in layout.slots:
                arena.set_seq(slot.key, 5)
            arena.reset_seqs(2)
            assert all(arena.seq(slot.key) == 2 for slot in layout.slots)
        finally:
            arena.close()

    def test_owner_unlinks(self):
        layout, _, _ = make_layout()
        arena = SharedArena(layout, create=True)
        name = arena.name
        arena.close()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name, create=False)
