"""TraceSink: ring semantics, streaming aggregates, merge, heatmaps.

The heavyweight checks run one application of Algorithm 1 on a real 3x3
fabric and recount every aggregate brute-force from the retained
timeline — the streaming O(1) projections must match an exhaustive
recount exactly, and both must match the runtime's own counters.
"""

import json

import numpy as np
import pytest

from repro.core import CartesianMesh3D, FluidProperties, random_pressure
from repro.dataflow import WseFluxComputation
from repro.obs.trace import (
    DIRECTION_LABELS,
    LATENCY_BUCKETS,
    DeliveryRecord,
    TraceSink,
    latency_bucket_bounds,
    pack_link,
    unpack_link,
)
from repro.wse.geometry import Port


class FakeMsg:
    """Minimal message exposing the fields TraceSink.delivery reads."""

    def __init__(self, color=0, hops=1, source=(0, 0), born=0.0,
                 num_words=4, kind="data"):
        self.color = color
        self.hops = hops
        self.source = source
        self.born = born
        self.num_words = num_words
        self.kind = kind


def traced_run(capacity):
    """One 3x3 application with tracing; returns (sink, stats)."""
    mesh = CartesianMesh3D(3, 3, 4)
    wse = WseFluxComputation(
        mesh, FluidProperties(), dtype=np.float32,
        trace=True, trace_capacity=capacity,
    )
    result = wse.run_single(random_pressure(mesh, seed=0))
    return wse.trace_sink, result.stats


class TestRing:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceSink(capacity=0)
        with pytest.raises(ValueError):
            TraceSink(capacity=-3)
        assert TraceSink(capacity=None).ring.maxlen is None

    def test_wraparound_bounds_ring_not_aggregates(self):
        sink = TraceSink(capacity=8)
        for i in range(50):
            sink.delivery(float(i), (i % 3, 0), FakeMsg(color=i % 2))
        assert len(sink.ring) == 8
        assert sink.deliveries == 50  # aggregates saw every event
        # the ring retains exactly the most recent 8, oldest first
        times = [rec.time for rec in sink.timeline()]
        assert times == [float(i) for i in range(42, 50)]

    def test_timeline_yields_named_records(self):
        sink = TraceSink()
        msg = FakeMsg(color=3, hops=2)
        sink.delivery(5.0, (1, 2), msg)
        (rec,) = list(sink.timeline())
        assert isinstance(rec, DeliveryRecord)
        assert rec.time == 5.0
        assert rec.coord == (1, 2)
        assert rec.message is msg
        assert rec.color == 3 and rec.hops == 2
        # positional unpacking (the old trace_log contract) still works
        t, coord, m = rec
        assert (t, coord, m) == (5.0, (1, 2), msg)

    def test_clear_resets_everything(self):
        sink = TraceSink()
        sink.delivery(1.0, (0, 0), FakeMsg())
        sink._links[pack_link(0, 0, Port.EAST)] = [7, 1.5]
        sink.clear()
        assert sink.deliveries == 0
        assert len(sink.ring) == 0
        assert sink.link_words == {}


class TestLinkKeys:
    def test_pack_unpack_roundtrip(self):
        for x, y, port in [(0, 0, Port.NORTH), (5, 7, Port.WEST),
                           (757, 996, Port.RAMP)]:
            assert unpack_link(pack_link(x, y, port)) == (x, y, port)

    def test_latency_bucket_bounds(self):
        bounds = latency_bucket_bounds()
        assert len(bounds) == LATENCY_BUCKETS
        assert bounds[0] == (0.0, 1.0)
        assert bounds[1] == (1.0, 2.0)
        assert bounds[-1][1] == float("inf")
        # contiguous: each bucket starts where the previous ended
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo


class TestFabricRunBruteForce:
    """Streaming projections vs an exhaustive recount of the full ring."""

    @pytest.fixture(scope="class")
    def run(self):
        # capacity=None retains every delivery, so the ring IS the
        # ground truth the projections must reproduce
        return traced_run(None)

    def test_deliveries_match_runtime(self, run):
        sink, stats = run
        assert sink.deliveries == len(sink.ring)
        assert sink.deliveries == stats.messages_delivered

    def test_color_counters_match_recount(self, run):
        sink, _ = run
        messages, words, hops = {}, {}, {}
        for rec in sink.timeline():
            msg = rec.message
            messages[msg.color] = messages.get(msg.color, 0) + 1
            words[msg.color] = words.get(msg.color, 0) + msg.num_words
            hist = hops.setdefault(msg.color, {})
            hist[msg.hops] = hist.get(msg.hops, 0) + 1
        assert sink.color_messages == messages
        assert sink.color_words == words
        assert sink.color_hops == hops
        assert sink.total_words == sum(words.values())

    def test_hop_histogram_matches_recount(self, run):
        sink, _ = run
        expect = {}
        for rec in sink.timeline():
            expect[rec.hops] = expect.get(rec.hops, 0) + 1
        assert sink.hop_histogram() == expect

    def test_direction_latency_matches_recount(self, run):
        sink, _ = run
        expect = {}
        for rec in sink.timeline():
            msg = rec.message
            if msg.source is None:
                label = "unknown"
            else:
                dx = rec.coord[0] - msg.source[0]
                dy = rec.coord[1] - msg.source[1]
                sign = ((dx > 0) - (dx < 0), (dy > 0) - (dy < 0))
                label = DIRECTION_LABELS[sign]
            bucket = min(int(rec.time - msg.born).bit_length(),
                         LATENCY_BUCKETS - 1)
            expect.setdefault(label, [0] * LATENCY_BUCKETS)[bucket] += 1
        assert sink.direction_latency == expect

    def test_link_totals_match_runtime_word_hops(self, run):
        sink, stats = run
        assert sink.link_word_hops == stats.fabric_word_hops
        assert sum(sink.link_words.values()) == stats.fabric_word_hops
        # the heatmap is a projection of the same per-link map
        grid = sink.heatmap(3, 3)
        assert grid.shape == (4, 3, 3)
        assert int(grid.sum()) == sum(
            words for key, (words, _) in sink._links.items()
            if unpack_link(key)[2] < 4
        )
        assert np.array_equal(sink.pe_heatmap(3, 3), grid.sum(axis=0))

    def test_small_ring_same_aggregates(self, run):
        """A tiny ring drops timeline records but not a single count."""
        full, _ = run
        small, stats = traced_run(16)
        assert len(small.ring) == 16
        assert small.deliveries == stats.messages_delivered
        assert small.color_messages == full.color_messages
        assert small.color_words == full.color_words
        assert small.color_hops == full.color_hops
        assert small.direction_latency == full.direction_latency
        assert small.link_words == full.link_words

    def test_as_dict_is_json_able_and_consistent(self, run):
        sink, stats = run
        doc = json.loads(json.dumps(sink.as_dict()))
        assert doc["deliveries"] == stats.messages_delivered
        assert doc["link_word_hops"] == stats.fabric_word_hops
        per_color = doc["per_color"]
        assert sum(c["messages"] for c in per_color.values()) == doc["deliveries"]


class TestMerge:
    def test_merge_sums_aggregates_and_extends_ring(self):
        a, b = TraceSink(capacity=64), TraceSink(capacity=64)
        for i in range(5):
            a.delivery(float(i), (1, 0), FakeMsg(color=0, hops=1, num_words=3))
        for i in range(7):
            b.delivery(float(i), (0, 1), FakeMsg(color=1, hops=2, num_words=2))
        b.delivery(9.0, (1, 0), FakeMsg(color=0, hops=1, num_words=3))
        a._links[pack_link(0, 0, Port.EAST)] = [10, 0.0]
        b._links[pack_link(0, 0, Port.EAST)] = [4, 2.5]
        b._links[pack_link(1, 1, Port.SOUTH)] = [6, 0.0]

        out = a.merge(b)
        assert out is a
        assert a.deliveries == 13
        assert a.color_messages == {0: 6, 1: 7}
        assert a.color_words == {0: 18, 1: 14}
        assert a.color_hops == {0: {1: 6}, 1: {2: 7}}
        assert a.link_words == {
            pack_link(0, 0, Port.EAST): 14,
            pack_link(1, 1, Port.SOUTH): 6,
        }
        assert a.link_wait == {pack_link(0, 0, Port.EAST): 2.5}
        assert len(a.ring) == 13
        # b is untouched
        assert b.deliveries == 8

    def test_merge_of_real_runs_matches_combined_counters(self):
        a, stats_a = traced_run(None)
        b, stats_b = traced_run(None)
        a.merge(b)
        assert a.deliveries == (
            stats_a.messages_delivered + stats_b.messages_delivered
        )
        assert a.link_word_hops == (
            stats_a.fabric_word_hops + stats_b.fabric_word_hops
        )
