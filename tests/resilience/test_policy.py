"""ResiliencePolicy: validation, JSON round-trip, seeded backoff."""

import json
import random

import pytest

from repro.resilience import DEFAULT_LADDER, ResiliencePolicy


class TestValidation:
    def test_defaults_are_valid(self):
        policy = ResiliencePolicy()
        assert policy.max_restarts == 3
        assert policy.ladder == DEFAULT_LADDER

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            (dict(max_restarts=-1), "max_restarts"),
            (dict(backoff_base=-0.1), "backoff_base"),
            (dict(backoff_multiplier=0.5), "backoff_multiplier"),
            (dict(backoff_jitter=1.5), "backoff_jitter"),
            (dict(checkpoint_every=0), "checkpoint_every"),
            (dict(keep_checkpoints=0), "keep_checkpoints"),
            (dict(lease_seconds=0.0), "lease_seconds"),
            (dict(ladder=("par", "par")), "repeats"),
        ],
    )
    def test_bad_values_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ResiliencePolicy(**kwargs)

    def test_ladder_coerced_to_tuple(self):
        policy = ResiliencePolicy(ladder=["gpu", "lockstep"])
        assert policy.ladder == ("gpu", "lockstep")


class TestRoundTrip:
    def test_dict_round_trip(self):
        policy = ResiliencePolicy(
            max_restarts=5, backoff_base=0.01, backoff_jitter=0.25,
            seed=42, checkpoint_every=2, ladder=("par", "cluster"),
            lease_seconds=1.5, verify_degraded=False,
        )
        assert ResiliencePolicy.from_dict(policy.to_dict()) == policy

    def test_json_file_round_trip(self, tmp_path):
        policy = ResiliencePolicy(max_restarts=1, lease_seconds=0.5)
        path = tmp_path / "policy.json"
        path.write_text(json.dumps(policy.to_dict()))
        assert ResiliencePolicy.load(path) == policy

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown policy key"):
            ResiliencePolicy.from_dict({"max_restarts": 1, "retries": 9})

    def test_describe_mentions_the_ladder(self):
        text = ResiliencePolicy(lease_seconds=2.0).describe()
        assert "par -> cluster -> gpu -> lockstep" in text
        assert "lease 2s" in text


class TestBackoff:
    def test_exponential_growth_with_cap(self):
        policy = ResiliencePolicy(
            backoff_base=0.01, backoff_multiplier=2.0,
            backoff_jitter=0.0, backoff_cap=0.05,
        )
        rng = random.Random(0)
        delays = [policy.backoff_delay(k, rng) for k in range(5)]
        assert delays[:3] == [0.01, 0.02, 0.04]
        assert delays[3] == delays[4] == 0.05  # saturates at the cap

    def test_jitter_is_seeded_and_bounded(self):
        policy = ResiliencePolicy(
            backoff_base=0.1, backoff_jitter=0.5, backoff_cap=1.0
        )
        a = [policy.backoff_delay(0, random.Random(7)) for _ in range(3)]
        assert a[0] == a[1] == a[2]  # same seed, same decision
        assert 0.05 <= a[0] <= 0.1  # within [delay*(1-jitter), delay]

    def test_zero_jitter_still_consumes_a_draw(self):
        """Decision sequences stay aligned across policy variants."""
        policy = ResiliencePolicy(backoff_jitter=0.0)
        rng = random.Random(3)
        policy.backoff_delay(0, rng)
        assert rng.random() != random.Random(3).random()


class TestLadder:
    def test_walks_the_default_ladder(self):
        policy = ResiliencePolicy()
        assert policy.next_backend("par") == "cluster"
        assert policy.next_backend("cluster") == "gpu"
        assert policy.next_backend("gpu") == "lockstep"
        assert policy.next_backend("lockstep") is None

    def test_backend_off_ladder_has_nowhere_to_fall(self):
        assert ResiliencePolicy(ladder=()).next_backend("event") is None
