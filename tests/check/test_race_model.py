"""Bounded model checker: clean protocol verifies, mutations are caught."""

import pytest

from repro.check import (
    MUTATIONS,
    ModelConfig,
    check_model,
    model_findings,
    replay_witness,
)
from repro.check.race import EXPECTED_VIOLATIONS
from repro.check.race_model import render_witness
from repro.check.findings import Severity


class TestCleanProtocol:
    @pytest.mark.parametrize(
        "workers,exchanges", [(2, 3), (2, 6), (3, 2), (3, 4)]
    )
    def test_no_violation_at_bound(self, workers, exchanges):
        result = check_model(ModelConfig(workers=workers, exchanges=exchanges))
        assert result.ok, result.violation
        assert result.states > 0
        assert model_findings(result) == []

    def test_exploration_is_deterministic(self):
        config = ModelConfig(workers=2, exchanges=3)
        a, b = check_model(config), check_model(config)
        assert a.states == b.states

    def test_state_count_grows_with_workers(self):
        two = check_model(ModelConfig(workers=2, exchanges=2))
        three = check_model(ModelConfig(workers=3, exchanges=2))
        assert three.states > two.states

    def test_state_budget_enforced(self):
        with pytest.raises(RuntimeError, match="exceeded"):
            check_model(ModelConfig(workers=3, exchanges=4, max_states=10))


class TestConfigValidation:
    def test_rejects_worker_counts_outside_model(self):
        with pytest.raises(ValueError, match="2 or 3"):
            ModelConfig(workers=4)

    def test_rejects_unknown_mutation(self):
        with pytest.raises(ValueError, match="unknown mutation"):
            ModelConfig(mutation="drop-everything")

    def test_chain_links_are_bidirectional_and_sorted(self):
        links = ModelConfig(workers=3).links
        assert links == ((0, 1, 0), (1, 0, 0), (1, 2, 0), (2, 1, 0))


class TestMutations:
    @pytest.mark.parametrize("mutation", MUTATIONS)
    def test_each_mutation_is_exactly_one_error(self, mutation):
        result = check_model(ModelConfig(workers=2, exchanges=3, mutation=mutation))
        findings = model_findings(result)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.severity == Severity.ERROR
        assert finding.code == EXPECTED_VIOLATIONS[mutation]
        assert "witness" in finding.detail

    @pytest.mark.parametrize("mutation", MUTATIONS)
    def test_witness_replays_to_the_same_violation(self, mutation):
        config = ModelConfig(workers=2, exchanges=3, mutation=mutation)
        violation = check_model(config).violation
        assert violation is not None and violation.schedule
        replayed = replay_witness(config, violation.schedule)
        assert replayed is not None
        assert replayed.signature() == violation.signature()

    def test_witness_localizes_link_and_parity(self):
        config = ModelConfig(workers=2, exchanges=3, mutation="header-first")
        violation = check_model(config).violation
        assert violation.code == "race-torn-read"
        assert violation.link in config.links
        assert violation.parity in (0, 1)
        assert violation.worker in (0, 1)
        assert 0 <= violation.exchange < config.exchanges

    def test_replay_rejects_a_forged_schedule(self):
        config = ModelConfig(workers=2, exchanges=3, mutation="header-first")
        violation = check_model(config).violation
        forged = ((violation.schedule[0][0], "w9:k9:bogus[9->9]"),)
        with pytest.raises(RuntimeError, match="diverged"):
            replay_witness(config, forged)

    def test_render_witness_is_one_trace_line(self):
        config = ModelConfig(workers=2, exchanges=3, mutation="wrong-parity")
        violation = check_model(config).violation
        text = render_witness(violation.schedule)
        assert " ; " in text
        assert text.count(";") == len(violation.schedule) - 1
