"""Per-PE memory layout for the flux program, with buffer-reuse planning.

Each PE stores (Sec. 5.1): "its current residual, pressure, and gravity
coefficients, as well as 10 transmissibilities for the fluxes between the
cell and its neighbors", plus "space to receive the pressure and gravity
coefficients from all eight neighboring cells".

The layout comes in two flavours, the knob of the Sec.-5.3.1 ablation:

* ``reuse_buffers=True`` (the paper's hand-crafted optimization) — one
  shared ``(p, rho)`` receive buffer serves all eight neighbours (each
  arrival is consumed by its partial flux computation before the next is
  drained from the router queue), the send train is a zero-copy view over
  the adjacent ``p``/``rho`` allocations, and four scratch columns are
  shared by all ten face computations.
* ``reuse_buffers=False`` — a dedicated receive buffer per neighbour and
  a dedicated send staging buffer, the naive layout whose footprint caps
  the maximum ``Nz`` much earlier.

:func:`max_nz_for_memory` inverts the layout size to answer the paper's
"largest possible problem" question for a given PE memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.stencil import XY_CONNECTIONS, Connection
from repro.dataflow.flux_pe import FluxScratch
from repro.wse.memory import PEMemoryError, Scratchpad

__all__ = ["PEColumnLayout", "layout_words_per_cell", "max_nz_for_memory"]


def layout_words_per_cell(*, reuse_buffers: bool) -> int:
    """Scratchpad words required per cell of the Z column.

    Shared layout: p + rho + z + residual (4) + 10 transmissibilities.
    With reuse: one 2-column receive window + 4 scratch -> 20 words/cell.
    Without: 8 x 2 receive buffers + 2 send staging + 4 scratch -> 36.
    """
    base = 4 + 10
    if reuse_buffers:
        return base + 2 + 4
    return base + 16 + 2 + 4


def max_nz_for_memory(
    capacity_bytes: int,
    *,
    reserved_bytes: int = 2048,
    word_bytes: int = 4,
    reuse_buffers: bool = True,
) -> int:
    """Largest Z column fitting a PE memory under the given layout."""
    usable = capacity_bytes - reserved_bytes
    if usable <= 0:
        return 0
    return usable // (word_bytes * layout_words_per_cell(reuse_buffers=reuse_buffers))


@dataclass
class PEColumnLayout:
    """All named allocations of one PE running the flux program.

    Attributes
    ----------
    pressure, density, elevation, residual:
        The PE's own cell-column state (length ``nz``).
    trans:
        Transmissibility column per connection (10 entries).
    scratch:
        The four shared flux scratch columns.
    """

    nz: int
    reuse_buffers: bool
    pressure: np.ndarray
    density: np.ndarray
    elevation: np.ndarray
    residual: np.ndarray
    trans: dict[Connection, np.ndarray]
    scratch: FluxScratch
    _recv: dict[Connection, np.ndarray]
    _send: np.ndarray
    #: Pre-flattened views of the receive windows / send train — the
    #: runtime hands whole trains around as 1D payloads, and creating
    #: the reshape view per message is measurable on the hot path.
    _recv_flat: dict[Connection, np.ndarray]
    _send_flat: np.ndarray

    @classmethod
    def build(
        cls,
        memory: Scratchpad,
        nz: int,
        *,
        dtype=np.float32,
        reuse_buffers: bool = True,
    ) -> "PEColumnLayout":
        """Allocate the full layout in *memory*.

        Raises
        ------
        PEMemoryError
            When ``nz`` is too large for the PE memory under this layout.
        """
        try:
            # p and rho adjacent: the outgoing (p, rho) train is a view
            pr = memory.alloc_array("p_rho", (2, nz), dtype)
            pressure, density = pr[0], pr[1]
            elevation = memory.alloc_array("z", nz, dtype)
            residual = memory.alloc_array("residual", nz, dtype)
            trans = {
                conn: memory.alloc_array(f"trans_{conn.name}", nz, dtype)
                for conn in Connection
            }
            scratch = FluxScratch.allocate(memory, nz, dtype)
            recv: dict[Connection, np.ndarray] = {}
            if reuse_buffers:
                shared = memory.alloc_array("recv_shared", (2, nz), dtype)
                for conn in XY_CONNECTIONS:
                    recv[conn] = shared
                send = pr  # zero-copy send view (p, rho) adjacent
            else:
                for conn in XY_CONNECTIONS:
                    recv[conn] = memory.alloc_array(
                        f"recv_{conn.name}", (2, nz), dtype
                    )
                send = memory.alloc_array("send_staging", (2, nz), dtype)
        except PEMemoryError as err:
            raise PEMemoryError(
                f"nz={nz} does not fit this PE memory with "
                f"reuse_buffers={reuse_buffers}: {err}"
            ) from err
        return cls(
            nz=nz,
            reuse_buffers=reuse_buffers,
            pressure=pressure,
            density=density,
            elevation=elevation,
            residual=residual,
            trans=trans,
            scratch=scratch,
            _recv=recv,
            _send=send,
            _recv_flat={conn: buf.reshape(-1) for conn, buf in recv.items()},
            _send_flat=send.reshape(-1),
        )

    # ------------------------------------------------------------------ #
    def recv_buffer(self, conn: Connection) -> np.ndarray:
        """(2, nz) receive window for the neighbour along *conn*."""
        return self._recv[conn]

    def recv_flat(self, conn: Connection) -> np.ndarray:
        """Flattened (2*nz,) view of the same receive window."""
        return self._recv_flat[conn]

    def send_train(self, engine=None) -> np.ndarray:
        """The outgoing ``(p, rho)`` train of this PE.

        With buffer reuse the train is the live ``(p, rho)`` storage
        itself (no copy); otherwise the state is staged into the send
        buffer (two local moves, costed via the engine when given).
        """
        if self.reuse_buffers:
            return self._send
        if engine is not None:
            engine.fmovs(self._send[0], self.pressure)
            engine.fmovs(self._send[1], self.density)
        else:
            self._send[0] = self.pressure
            self._send[1] = self.density
        return self._send

    def send_train_flat(self, engine=None) -> np.ndarray:
        """:meth:`send_train` as the flattened (2*nz,) payload view."""
        self.send_train(engine)
        return self._send_flat
