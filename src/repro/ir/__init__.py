"""repro.ir — the thin-waist fabric-program IR and its lowerings.

One declarative :class:`FabricProgramIR` describes colors, routes/switch
schedules, per-PE memory layouts, injector/receiver sets, and fold-order
contracts; every backend is *lowered* from it and ``repro check``
verifies it directly, so the verifier and the runtimes share one source
of truth.  See :mod:`repro.ir.schema` for the document layout.
"""

from repro.ir.builder import build_ir, derive_ir, ir_from_fabric
from repro.ir.fused import FusedFluxComputation, FusedReport, FusedRunResult
from repro.ir.lower import (
    lower_to_cluster,
    lower_to_event,
    lower_to_fused,
    lower_to_gpu,
    lower_to_lockstep,
)
from repro.ir.schedule import arrival_schedule
from repro.ir.schema import (
    IR_SCHEMA_VERSION,
    KIND_FABRIC,
    KIND_PROGRAM,
    FabricProgramIR,
)

__all__ = [
    "FabricProgramIR",
    "IR_SCHEMA_VERSION",
    "KIND_PROGRAM",
    "KIND_FABRIC",
    "build_ir",
    "derive_ir",
    "ir_from_fabric",
    "arrival_schedule",
    "FusedFluxComputation",
    "FusedReport",
    "FusedRunResult",
    "lower_to_event",
    "lower_to_lockstep",
    "lower_to_fused",
    "lower_to_gpu",
    "lower_to_cluster",
]
