"""`repro supervise`: the CLI front end of the resilience supervisor."""

import io
import json

import pytest

from repro.cli import main


class TestSupervise:
    def test_clean_run_exits_zero(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "run.json"
        code = main([
            "supervise", "--applications", "2", "--postmortem", "none",
            "--out", str(path),
        ], out=out)
        assert code == 0
        text = out.getvalue()
        assert "SUPERVISION CLEAN" in text
        assert "2 application(s) committed on chain event" in text
        doc = json.loads(path.read_text())
        assert doc["backend_chain"] == ["event"]
        assert doc["restarts"] == 0
        assert len(doc["steps"]) == 2

    def test_injected_stall_is_recovered(self):
        out = io.StringIO()
        code = main([
            "supervise", "--inject", "--applications", "2",
            "--postmortem", "none",
        ], out=out)
        assert code == 0
        text = out.getvalue()
        assert "FabricStallError" in text
        assert "restored to application" in text
        assert "SUPERVISION RECOVERED" in text

    def test_policy_file_drives_the_run(self, tmp_path):
        policy_path = tmp_path / "policy.json"
        policy_path.write_text(json.dumps({
            "max_restarts": 1, "backoff_base": 0.0,
            "backoff_jitter": 0.0, "ladder": ["gpu", "lockstep"],
        }))
        out = io.StringIO()
        code = main([
            "supervise", "--backend", "gpu", "--applications", "1",
            "--policy", str(policy_path), "--postmortem", "none",
        ], out=out)
        assert code == 0
        assert "ladder gpu -> lockstep" in out.getvalue()

    def test_bad_policy_file_is_a_usage_error(self, tmp_path, capsys):
        policy_path = tmp_path / "policy.json"
        policy_path.write_text(json.dumps({"bogus_knob": 1}))
        out = io.StringIO()
        code = main([
            "supervise", "--policy", str(policy_path),
        ], out=out)
        assert code == 2
        assert "bad --policy" in capsys.readouterr().err

    def test_zero_applications_is_a_usage_error(self, capsys):
        out = io.StringIO()
        code = main(["supervise", "--applications", "0"], out=out)
        assert code == 2
        assert "--applications" in capsys.readouterr().err

    def test_checkpoints_mirrored_to_disk(self, tmp_path):
        ckdir = tmp_path / "ck"
        out = io.StringIO()
        code = main([
            "supervise", "--applications", "2", "--postmortem", "none",
            "--checkpoint-dir", str(ckdir),
        ], out=out)
        assert code == 0
        assert sorted(p.name for p in ckdir.glob("*.npz")) == [
            "checkpoint_000001.npz", "checkpoint_000002.npz",
        ]
