"""Color-conflict and dead-route analysis over router configurations.

Four families of findings, all computed statically from the switch
positions (no event execution):

* **color conflicts** — within one switch position, two different input
  ports forwarding the same color to the same output port.  The two
  wavelet streams interleave nondeterministically on the shared link,
  which breaks the train framing the flux protocol relies on; on
  hardware the result is garbled columns, not an error.
* **dead routes** — a fed channel whose destination router consumes the
  color in *no* switch position: traffic is silently dropped (the
  hardware behaviour for an unconfigured color).  Boundary exits
  (routes leaving the fabric) are reported separately at INFO severity
  because the paper's broadcast protocol legitimately lets edge
  transmissions fall off the fabric.
* **unreachable receivers** — PEs the program *expects* to receive a
  color (program-graph knowledge) that no fed channel can deliver to.
* **stale switch schedules** — routers with more than one distinct
  switch position that neither inject the color themselves nor can be
  reached by any fed channel: no control wavelet can ever advance the
  schedule, so the router is frozen in its initial position (the
  "switch command that never fires" hazard of Sec. 5.2.1).

:func:`check_cross_program_conflicts` covers the multi-program case:
two programs mapped onto overlapping fabric regions claiming the same
color on the same directed link.
"""

from __future__ import annotations

from repro.check.findings import Finding, Severity
from repro.check.graph import Channel, ChannelGraph, build_channel_graph
from repro.wse.fabric import Fabric
from repro.wse.geometry import Port

__all__ = [
    "check_color_conflicts",
    "check_routes",
    "check_switch_schedules",
    "claimed_links",
    "check_cross_program_conflicts",
]


def _fmt(coord: tuple[int, int], port: Port) -> str:
    return f"({coord[0]},{coord[1]})->{port.name}"


def check_color_conflicts(
    fabric: Fabric, color: int, *, color_name: str | None = None
) -> list[Finding]:
    """Two input ports merging onto one output link in one position."""
    findings: list[Finding] = []
    for coord in sorted(fabric.router_map):
        router = fabric.router_map[coord]
        cfg = router.configs.get(color)
        if cfg is None:
            continue
        for pos_i, pos in enumerate(cfg.positions):
            claimed: dict[Port, list[Port]] = {}
            for in_port, outs in sorted(pos.items()):
                for out in outs:
                    if out is Port.RAMP:
                        # many-to-one delivery at the RAMP is a legitimate
                        # gather; only fabric links carry framed trains
                        continue
                    claimed.setdefault(Port(out), []).append(Port(in_port))
            for out, sources in sorted(claimed.items()):
                if len(sources) < 2:
                    continue
                srcs = ", ".join(p.name for p in sources)
                findings.append(
                    Finding(
                        code="color-conflict",
                        severity=Severity.ERROR,
                        message=(
                            f"switch position {pos_i} merges {len(sources)} "
                            f"input streams ({srcs}) onto one output: "
                            "wavelet trains interleave nondeterministically"
                        ),
                        coord=coord,
                        color=color,
                        color_name=color_name,
                        port=out.name,
                        detail=(
                            f"position {pos_i}: "
                            + "; ".join(f"{p.name}->{out.name}" for p in sources)
                        ),
                    )
                )
    return findings


def check_routes(
    fabric: Fabric,
    color: int,
    *,
    color_name: str | None = None,
    expected_receivers: frozenset[tuple[int, int]] | None = None,
    graph: ChannelGraph | None = None,
) -> list[Finding]:
    """Dead routes, boundary exits, and unreachable expected receivers."""
    if graph is None:
        graph = build_channel_graph(fabric, color)
    findings: list[Finding] = []

    for channel in sorted(graph.dead_ends):
        coord, port = channel
        dest = (coord[0] + port.offset[0], coord[1] + port.offset[1])
        findings.append(
            Finding(
                code="dead-route",
                severity=Severity.ERROR,
                message=(
                    f"traffic reaching PE {dest} via this link is consumed "
                    "in no switch position: wavelets dropped silently"
                ),
                coord=coord,
                color=color,
                color_name=color_name,
                port=port.name,
                detail=f"fed channel {_fmt(coord, port)} terminates at no ramp",
            )
        )

    if graph.offchip:
        # boundary exits are by-design in the broadcast protocol; one
        # aggregated INFO per color keeps them visible without noise
        sample = sorted(graph.offchip)[0]
        findings.append(
            Finding(
                code="offchip-exit",
                severity=Severity.INFO,
                message=(
                    f"{len(graph.offchip)} fed link(s) leave the fabric "
                    "(boundary broadcast exits)"
                ),
                coord=sample[0],
                color=color,
                color_name=color_name,
                port=sample[1].name,
                detail="e.g. " + _fmt(*sample),
            )
        )

    if expected_receivers:
        missing = sorted(expected_receivers - graph.delivers)
        for coord in missing:
            findings.append(
                Finding(
                    code="unreachable-pe",
                    severity=Severity.ERROR,
                    message=(
                        "program expects this PE to receive the color but "
                        "no fed route delivers it to the RAMP"
                    ),
                    coord=coord,
                    color=color,
                    color_name=color_name,
                    detail=(
                        f"{len(graph.delivers)} PE(s) reachable, "
                        f"{len(missing)} expected receiver(s) unreachable"
                    ),
                )
            )
    return findings


def check_switch_schedules(
    fabric: Fabric,
    color: int,
    *,
    color_name: str | None = None,
    graph: ChannelGraph | None = None,
) -> list[Finding]:
    """Multi-position routers whose schedule can never advance.

    A router's switch position advances when a control wavelet of the
    color *arrives* (via a link or its own RAMP).  A router holding two
    or more distinct positions that is neither an injector nor reachable
    by any fed channel is frozen in its initial position forever — the
    alternating Sending/Receiving protocol of Sec. 5.2.1 silently
    degenerates to whatever the initial position routes.
    """
    if graph is None:
        graph = build_channel_graph(fabric, color)
    arrivals = graph.arrivals()
    findings: list[Finding] = []
    for coord in sorted(fabric.router_map):
        router = fabric.router_map[coord]
        cfg = router.configs.get(color)
        if cfg is None or len(cfg.positions) < 2:
            continue
        distinct = {
            tuple(sorted((p, tuple(outs)) for p, outs in pos.items()))
            for pos in cfg.positions
        }
        if len(distinct) < 2:
            # e.g. the seed-edge PE's two identical Sending positions:
            # flips are deliberate no-ops (cardinal protocol)
            continue
        if coord in graph.injectors or coord in arrivals:
            continue
        findings.append(
            Finding(
                code="switch-stale",
                severity=Severity.ERROR,
                message=(
                    f"{len(cfg.positions)} switch positions but no control "
                    "wavelet can ever reach this router: schedule frozen in "
                    f"initial position {cfg.position}"
                ),
                coord=coord,
                color=color,
                color_name=color_name,
                detail=(
                    "router is not an injector and no fed channel of this "
                    "color arrives here"
                ),
            )
        )
    return findings


# ------------------------------------------------------------------ #
# Cross-program link claims
# ------------------------------------------------------------------ #
def claimed_links(fabric: Fabric, color: int) -> set[Channel]:
    """Directed links some switch position of *color* transmits on."""
    graph = build_channel_graph(fabric, color)
    return set(graph.edges)


def check_cross_program_conflicts(
    programs: list[tuple[str, Fabric, int]],
    *,
    color_names: dict[int, str] | None = None,
) -> list[Finding]:
    """Two co-resident programs claiming one color on one link.

    ``programs`` is a list of ``(name, fabric, color)`` claims mapped
    onto the same physical fabric region (all coordinates in one frame).
    Any directed link claimed for the same color by more than one
    program is an ERROR: the hardware cannot tell the programs' wavelets
    apart, so each would consume the other's traffic.
    """
    owners: dict[tuple[Channel, int], list[str]] = {}
    for name, fabric, color in programs:
        for channel in claimed_links(fabric, color):
            owners.setdefault((channel, color), []).append(name)
    findings: list[Finding] = []
    names = color_names or {}
    for (channel, color), claimants in sorted(owners.items()):
        if len(claimants) < 2:
            continue
        coord, port = channel
        findings.append(
            Finding(
                code="color-conflict",
                severity=Severity.ERROR,
                message=(
                    f"programs {', '.join(sorted(claimants))} all claim this "
                    "color on one directed link"
                ),
                coord=coord,
                color=color,
                color_name=names.get(color),
                port=port.name,
                detail=f"link {_fmt(coord, port)}",
            )
        )
    return findings
