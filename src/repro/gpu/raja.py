"""RAJA-like kernel front-end (paper Sec. 6, Fig. 7).

Reproduces the structure of the reference implementation: a nested
kernel *policy* describing the loop tiling and per-dimension thread
policies, and a ``kernel`` entry point executing a body over the tiled
iteration space.  The policy mirrors Fig. 7: tile the (z, y, x) loop nest
to ``16 x 8 x 8`` blocks of 1024 threads with ``cuda_thread_{z,y,x}_loop``
inner policies.

The body receives one :class:`~repro.gpu.launch.Tile` per threadblock and
is vectorized across the block's lanes, which keeps the Python simulation
tractable while preserving the launch structure (grid iteration order,
clamped tile extents, shared device memory).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.gpu.launch import PAPER_TILE, Tile, TiledLaunch

__all__ = ["KernelPolicy", "PAPER_POLICY", "raja_kernel"]


@dataclass(frozen=True)
class KernelPolicy:
    """A RAJA::KernelPolicy analogue.

    Attributes
    ----------
    tile_xyz:
        Tile sizes along (X, Y, Z); X is innermost (16 in the paper).
    thread_policies:
        Names of the per-dimension execution policies, outermost first,
        mirroring Fig. 7's ``cuda_thread_z_loop`` etc.  Informational:
        the simulated execution is always the tiled vectorized loop.
    block_size:
        Threads per block implied by the tiling.
    """

    tile_xyz: tuple[int, int, int] = PAPER_TILE
    thread_policies: tuple[str, str, str] = (
        "cuda_thread_z_loop",
        "cuda_thread_y_loop",
        "cuda_thread_x_loop",
    )

    @property
    def block_size(self) -> int:
        tx, ty, tz = self.tile_xyz
        return tx * ty * tz

    def validate(self) -> None:
        """Enforce the GPU's 1024-thread block limit (Sec. 6)."""
        if self.block_size > 1024:
            raise ValueError(
                f"policy block size {self.block_size} exceeds the 1024 "
                "threads-per-block limit"
            )


#: The exact policy of paper Fig. 7.
PAPER_POLICY = KernelPolicy()


@dataclass
class LaunchRecord:
    """Bookkeeping of one simulated kernel launch."""

    num_blocks: int
    threads_per_block: int
    cells_covered: int
    tiles_executed: int = 0


def raja_kernel(
    shape_zyx: tuple[int, int, int],
    body: Callable[[Tile], None],
    *,
    policy: KernelPolicy = PAPER_POLICY,
) -> LaunchRecord:
    """Execute *body* over the tiled iteration space (RAJA::kernel).

    Parameters
    ----------
    shape_zyx:
        The nested loop bounds (the whole data mesh, Sec. 6).
    body:
        The C++-lambda analogue, invoked once per threadblock with its
        clamped tile.
    policy:
        Kernel policy controlling the tiling.
    """
    policy.validate()
    launch = TiledLaunch(shape_zyx, policy.tile_xyz, clamp=True)
    record = LaunchRecord(
        num_blocks=launch.num_blocks,
        threads_per_block=launch.threads_per_block,
        cells_covered=shape_zyx[0] * shape_zyx[1] * shape_zyx[2],
    )
    for tile in launch.tiles():
        body(tile)
        record.tiles_executed += 1
    return record
