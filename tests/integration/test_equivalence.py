"""Three-way equivalence: event runtime vs lockstep vs NumPy reference.

The event-driven simulator executes the full message-level protocol; the
lockstep simulator runs the same DSD instruction sequence phase by phase
over whole-fabric arrays; the NumPy reference assembles Eqs. 3-5
directly.  All three must agree:

* **bit-identical** residuals between the two fabric simulators whenever
  the per-element accumulation order is forced (every PE has at most one
  X-Y neighbour, so "vertical fluxes, then arrivals" admits exactly one
  order);
* tight floating-point agreement on general meshes, where the event
  simulator's arrival order differs from the lockstep phase order only
  in the low bits of the final additions (documented summation-order
  difference — the operations themselves are identical);
* **identical instruction counts** (every opcode, FLOPs, fabric loads)
  between the fabric simulators: both execute the same DSD program.

The event simulator's raw ``fabric_word_hops`` exceeds the lockstep
count by a deterministic protocol overhead — control wavelets (one word
per hop) and the route overshoot past the receiving PE to the fabric
boundary where the train is dropped — so the hop comparison asserts the
decomposition rather than raw equality.
"""

import numpy as np
import pytest

from repro.core import (
    CartesianMesh3D,
    FluidProperties,
    Transmissibility,
    compute_flux_residual,
    random_pressure,
)
from repro.dataflow import LockstepWseSimulation, WseFluxComputation

DTYPES = (np.float32, np.float64)

#: Meshes on which every PE has at most one X-Y neighbour, forcing a
#: unique per-element accumulation order -> bit-identical residuals.
FORCED_ORDER_DIMS = ((1, 1, 6), (2, 1, 5), (1, 2, 5))

GENERAL_DIMS = (5, 4, 3)


def _pair(dims, dtype, seed=11):
    mesh = CartesianMesh3D(*dims)
    fluid = FluidProperties()
    trans = Transmissibility(mesh, dtype=dtype)
    pressure = random_pressure(mesh, seed=seed)
    event = WseFluxComputation(mesh, fluid, trans, dtype=dtype)
    lockstep = LockstepWseSimulation(mesh, fluid, trans, dtype=dtype)
    return mesh, fluid, trans, pressure, event, lockstep


class TestBitIdenticalWhereOrderIsForced:
    @pytest.mark.parametrize("dtype", DTYPES, ids=lambda d: d.__name__)
    @pytest.mark.parametrize("dims", FORCED_ORDER_DIMS)
    def test_event_equals_lockstep_bitwise(self, dims, dtype):
        _, _, _, pressure, event, lockstep = _pair(dims, dtype)
        r_event = event.run_single(pressure).residual
        r_lock = lockstep.run_application(pressure)
        assert r_event.dtype == r_lock.dtype == np.dtype(dtype)
        assert (r_event == r_lock).all()

    @pytest.mark.parametrize("dtype", DTYPES, ids=lambda d: d.__name__)
    def test_event_rerun_is_deterministic(self, dtype):
        """Reusing the driver (one EventRuntime, reset() between
        applications) reproduces the exact same bits and counters."""
        _, _, _, pressure, event, _ = _pair(GENERAL_DIMS, dtype)
        first = event.run_single(pressure)
        second = event.run_single(pressure)
        assert (first.residual == second.residual).all()
        assert first.stats.messages_delivered == second.stats.messages_delivered
        assert first.stats.control_advances == second.stats.control_advances
        assert first.fabric_word_hops == second.fabric_word_hops
        assert first.stats.max_hops_seen == second.stats.max_hops_seen


class TestGeneralMeshAgreement:
    @pytest.mark.parametrize("dtype", DTYPES, ids=lambda d: d.__name__)
    def test_three_way_residuals(self, dtype):
        mesh, fluid, trans, pressure, event, lockstep = _pair(
            GENERAL_DIMS, dtype
        )
        r_event = event.run_single(pressure).residual
        r_lock = lockstep.run_application(pressure)
        reference = compute_flux_residual(mesh, fluid, pressure, trans)
        scale = np.abs(reference).max()
        # event vs lockstep: identical operations, order differs only in
        # the final residual additions -> a few ulps
        tol = 1e-6 if dtype is np.float32 else 1e-14
        np.testing.assert_allclose(r_event, r_lock, atol=tol * scale)
        # both vs the float64 reference assembly
        ref_tol = 5e-4 if dtype is np.float32 else 1e-12
        np.testing.assert_allclose(r_event, reference, atol=ref_tol * scale)
        np.testing.assert_allclose(r_lock, reference, atol=ref_tol * scale)

    @pytest.mark.parametrize("dtype", DTYPES, ids=lambda d: d.__name__)
    def test_instruction_counts_identical(self, dtype):
        """Both simulators execute the same DSD program: every opcode
        count, the FLOP total, and the fabric-load words must match."""
        _, _, _, pressure, event, lockstep = _pair(GENERAL_DIMS, dtype)
        res = event.run_single(pressure)
        lockstep.run_application(pressure)
        report = lockstep.report()
        assert res.instruction_counts == report.instruction_counts
        assert res.flops == report.flops
        words_per_element = max(1, np.dtype(dtype).itemsize // 4)
        event_fabric_words = (
            res.instruction_counts["FMOV"] * words_per_element
        )
        assert event_fabric_words == report.fabric_words_received

    @pytest.mark.parametrize("dtype", DTYPES, ids=lambda d: d.__name__)
    def test_fabric_word_hops_decomposition(self, dtype):
        """Event word-hops = lockstep (minimal-route data) + protocol
        overhead (control wavelets + overshoot to the drop boundary).

        The overhead is pure protocol: it carries no payload words, so
        it is *identical* across dtypes while the data traffic scales
        with the words-per-element of the dtype."""
        _, _, _, pressure, event, lockstep = _pair(GENERAL_DIMS, dtype)
        res = event.run_single(pressure)
        lockstep.run_application(pressure)
        report = lockstep.report()
        assert res.fabric_word_hops > report.fabric_word_hops
        # cross-dtype invariant: the f64/f32 hop difference is exactly
        # one extra copy of the f32 *data* traffic (control is constant)
        if dtype is np.float64:
            _, _, _, p32, event32, lock32 = _pair(GENERAL_DIMS, np.float32)
            res32 = event32.run_single(p32)
            lock32.run_application(p32)
            rep32 = lock32.report()
            # lockstep counts data only: doubling words/element doubles it
            assert rep32.fabric_word_hops * 2 == report.fabric_word_hops
            # event hops = data * words_per_element + constant overhead,
            # so the f64 - f32 difference is exactly the 1-word/el data
            # traffic, and the leftover overhead matches across dtypes
            data_hops = res.fabric_word_hops - res32.fabric_word_hops
            overhead = res32.fabric_word_hops - data_hops
            assert overhead > 0
            assert res.fabric_word_hops == 2 * data_hops + overhead
