"""Shared fixtures: small meshes, fluids, and seeded workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CartesianMesh3D,
    FluidProperties,
    Transmissibility,
    random_pressure,
)


@pytest.fixture
def fluid() -> FluidProperties:
    """Default CO2-like fluid."""
    return FluidProperties()


@pytest.fixture
def small_mesh() -> CartesianMesh3D:
    """Homogeneous 6x5x4 mesh — large enough for every stencil case."""
    return CartesianMesh3D(nx=6, ny=5, nz=4)


@pytest.fixture
def hetero_mesh() -> CartesianMesh3D:
    """Heterogeneous 7x6x5 mesh with lognormal permeability."""
    rng = np.random.default_rng(42)
    nx, ny, nz = 7, 6, 5
    kappa = np.exp(rng.normal(size=(nz, ny, nx))) * 1e-13
    phi = 0.1 + 0.2 * rng.random((nz, ny, nx))
    return CartesianMesh3D(
        nx=nx, ny=ny, nz=nz, dx=12.0, dy=8.0, dz=3.0,
        permeability=kappa, porosity=phi,
    )


@pytest.fixture
def small_trans(small_mesh) -> Transmissibility:
    return Transmissibility(small_mesh)


@pytest.fixture
def hetero_trans(hetero_mesh) -> Transmissibility:
    return Transmissibility(hetero_mesh)


@pytest.fixture
def small_pressure(small_mesh) -> np.ndarray:
    return random_pressure(small_mesh, seed=7)


@pytest.fixture
def hetero_pressure(hetero_mesh) -> np.ndarray:
    return random_pressure(hetero_mesh, seed=11)
