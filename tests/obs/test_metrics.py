"""Metrics registry: collect / merge / to_json and the adapters."""

import json

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    merge_metrics,
    runtime_stats_metrics,
    trace_sink_metrics,
)
from repro.obs.trace import TraceSink
from repro.wse.runtime import RuntimeStats


class TestMergeMetrics:
    def test_additive_counters_sum(self):
        out = merge_metrics({"events": 10, "words": 2.5}, {"events": 5, "words": 0.5})
        assert out == {"events": 15, "words": 3.0}

    def test_max_named_keys_take_maximum(self):
        into = {"max_hops_seen": 3, "rss_peak": 100, "hops": 3}
        merge_metrics(into, {"max_hops_seen": 7, "rss_peak": 80, "hops": 7})
        assert into["max_hops_seen"] == 7  # extremum
        assert into["rss_peak"] == 100  # extremum
        assert into["hops"] == 10  # plain counter sums

    def test_nested_dicts_recurse(self):
        into = {"fabric": {"word_hops": 100, "max_queue": 4}}
        merge_metrics(into, {"fabric": {"word_hops": 50, "max_queue": 9}})
        assert into == {"fabric": {"word_hops": 150, "max_queue": 9}}

    def test_missing_keys_adopted(self):
        into = {}
        merge_metrics(into, {"a": 1, "nested": {"b": 2}})
        assert into == {"a": 1, "nested": {"b": 2}}

    def test_non_numeric_keeps_first(self):
        into = {"model": "cs2", "ok": True}
        merge_metrics(into, {"model": "a100", "ok": False})
        assert into["model"] == "cs2"
        assert into["ok"] is True  # bools are not summed into 1


class TestRegistry:
    def test_collect_snapshots_every_source(self):
        reg = MetricsRegistry()
        reg.register("runtime", lambda: {"events": 3})
        reg.register("solver", lambda: {"iterations": 7})
        assert reg.sources == ("runtime", "solver")
        assert reg.collect() == {
            "runtime": {"events": 3},
            "solver": {"iterations": 7},
        }

    def test_duplicate_name_rejected_unless_replace(self):
        reg = MetricsRegistry()
        reg.register("x", lambda: {})
        with pytest.raises(ValueError, match="already registered"):
            reg.register("x", lambda: {})
        reg.register("x", lambda: {"v": 1}, replace=True)
        assert reg.collect() == {"x": {"v": 1}}

    def test_unregister_is_idempotent(self):
        reg = MetricsRegistry()
        reg.register("x", lambda: {})
        reg.unregister("x")
        reg.unregister("x")  # absent: no error
        assert reg.sources == ()

    def test_merge_folds_per_application_snapshots(self):
        reg = MetricsRegistry()
        counters = {"events": 0, "max_hops_seen": 0}
        reg.register("runtime", lambda: dict(counters))
        counters.update(events=10, max_hops_seen=2)
        first = reg.collect()
        counters.update(events=4, max_hops_seen=5)
        second = reg.collect()
        merged = reg.merge(first, second)
        assert merged["runtime"] == {"events": 14, "max_hops_seen": 5}

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.register("a", lambda: {"n": 1})
        assert json.loads(reg.to_json()) == {"a": {"n": 1}}

    def test_to_json_handles_numpy_scalars(self):
        np = pytest.importorskip("numpy")
        reg = MetricsRegistry()
        reg.register("a", lambda: {"n": np.int64(5), "x": np.float32(0.5)})
        doc = json.loads(reg.to_json())
        assert doc["a"]["n"] == 5
        assert doc["a"]["x"] == 0.5


class TestAdapters:
    def test_runtime_stats_adapter_includes_derived_bytes(self):
        stats = RuntimeStats(messages_delivered=3, fabric_word_hops=10)
        out = runtime_stats_metrics(stats)
        assert out["messages_delivered"] == 3
        assert out["fabric_bytes_moved"] == stats.fabric_bytes_moved

    def test_adapter_merge_agrees_with_runtime_stats_merge(self):
        """The registry's merge convention must reproduce
        RuntimeStats.merge for the runtime's own counters."""
        a = RuntimeStats(events_processed=10, fabric_word_hops=100,
                         max_hops_seen=2)
        b = RuntimeStats(events_processed=5, fabric_word_hops=50,
                         max_hops_seen=7)
        via_registry = merge_metrics(
            runtime_stats_metrics(a), runtime_stats_metrics(b)
        )
        a.merge(b)
        expect = runtime_stats_metrics(a)
        # fabric_bytes_moved is derived (word_hops * 4) so it also sums
        assert via_registry == expect

    def test_trace_sink_adapter_is_as_dict(self):
        sink = TraceSink()
        assert trace_sink_metrics(sink) == sink.as_dict()
