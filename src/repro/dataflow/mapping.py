"""Problem-to-fabric mappings (paper Fig. 3, Sec. 5.1).

Two mapping techniques are considered by the paper: **cell-based** (each
cell column maps to a PE; chosen) and **face-based** (faces map to PEs;
considered and rejected).  The cell-based mapping assigns cell
``(x, y, z)`` to PE ``(x, y)`` with the whole Z column resident in that
PE's local memory, maximizing parallelism in the X-Y plane.

:class:`FaceBasedMapping` is provided for the ablation analysis: it
staggers cells and faces on a twice-refined fabric, which needs ~4x the
PEs for the same mesh and moves cell data for *every* flux (each face PE
needs both adjacent cell states), quantifying why the paper picks the
cell-based approach.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mesh import CartesianMesh3D

__all__ = [
    "CellBasedMapping",
    "FaceBasedMapping",
    "BlockedCellMapping",
    "SpareColumnRemap",
    "MappingComparison",
    "compare_mappings",
]


@dataclass(frozen=True)
class CellBasedMapping:
    """Cell ``(x, y, z) -> PE (x, y)``; Z column in PE memory (Sec. 5.1)."""

    mesh: CartesianMesh3D

    @property
    def fabric_shape(self) -> tuple[int, int]:
        """Required fabric dimensions ``(width, height)``."""
        return (self.mesh.nx, self.mesh.ny)

    @property
    def num_pes(self) -> int:
        """PEs used by the mapping."""
        return self.mesh.nx * self.mesh.ny

    def pe_for_cell(self, x: int, y: int, z: int) -> tuple[int, int]:
        """Owning PE of a cell (validates coordinates)."""
        self.mesh.cell_index(x, y, z)
        return (x, y)

    def cells_per_pe(self) -> int:
        """Cells resident in each PE's memory: the whole Z column."""
        return self.mesh.nz

    def words_received_per_pe_per_iteration(self) -> int:
        """Fabric words an interior PE receives per application.

        Eight X-Y neighbours each contribute a ``(p, rho)`` column pair:
        ``8 * 2 * Nz`` words (Sec. 5.2; Fig. 5).
        """
        return 8 * 2 * self.mesh.nz

    def total_words_per_iteration(self) -> int:
        """Aggregate fabric words received per application (interior
        approximation: every cell PE drains all eight halos)."""
        return self.num_pes * self.words_received_per_pe_per_iteration()


@dataclass(frozen=True)
class FaceBasedMapping:
    """Faces on a staggered, twice-refined fabric (Fig. 3 alternative).

    Cell ``(x, y)`` columns sit at fabric ``(2x, 2y)``; X-face columns at
    ``(2x+1, 2y)``; Y-face columns at ``(2x, 2y+1)``; diagonal-face
    columns at ``(2x+1, 2y+1)``.  Face PEs compute the flux for their
    face, which requires receiving *both* adjacent cell states every
    iteration, and cell PEs then receive all flux contributions back.
    """

    mesh: CartesianMesh3D

    @property
    def fabric_shape(self) -> tuple[int, int]:
        """Required fabric dimensions (staggered grid)."""
        return (2 * self.mesh.nx - 1, 2 * self.mesh.ny - 1)

    @property
    def num_pes(self) -> int:
        w, h = self.fabric_shape
        return w * h

    def pe_for_cell(self, x: int, y: int, z: int) -> tuple[int, int]:
        """Owning PE of a cell column."""
        self.mesh.cell_index(x, y, z)
        return (2 * x, 2 * y)

    def pe_for_x_face(self, x: int, y: int) -> tuple[int, int]:
        """PE owning the face column between cells (x, y) and (x+1, y)."""
        if not (0 <= x < self.mesh.nx - 1 and 0 <= y < self.mesh.ny):
            raise IndexError(f"no X face at ({x}, {y})")
        return (2 * x + 1, 2 * y)

    def pe_for_y_face(self, x: int, y: int) -> tuple[int, int]:
        """PE owning the face column between cells (x, y) and (x, y+1)."""
        if not (0 <= x < self.mesh.nx and 0 <= y < self.mesh.ny - 1):
            raise IndexError(f"no Y face at ({x}, {y})")
        return (2 * x, 2 * y + 1)

    def cells_per_pe(self) -> int:
        """Cells resident in a cell PE's memory."""
        return self.mesh.nz

    def words_received_per_pe_per_iteration(self) -> int:
        """Fabric words an interior *face* PE receives per application:
        the two adjacent cell state columns of ``(p, rho)``."""
        return 2 * 2 * self.mesh.nz

    def total_words_per_iteration(self) -> int:
        """Aggregate fabric words received per application.

        Every face PE ingests both adjacent cell columns (there are
        roughly four face PEs per cell: X, Y, and two diagonal families),
        and every cell PE then receives its eight X-Y flux columns back —
        strictly more aggregate traffic than the cell-based mapping,
        which is one reason the paper picks cell-based.
        """
        nz = self.mesh.nz
        n_cells_xy = self.mesh.nx * self.mesh.ny
        face_pes = 4 * n_cells_xy  # interior approximation
        face_in = face_pes * 2 * 2 * nz
        cell_in = n_cells_xy * 8 * nz
        return face_in + cell_in


@dataclass(frozen=True)
class BlockedCellMapping:
    """Cell-based mapping with a *block* of columns per PE.

    The usable fabric caps the cell-based mapping at 750 x 994 columns
    (Sec. 7.1); meshes with a larger X-Y plane need several columns per
    PE.  Blocking trades the flat weak scaling for classic
    surface-to-volume behaviour: per-PE compute grows with the block
    area while fabric traffic grows only with its perimeter — the same
    economics as the MPI decomposition (:mod:`repro.cluster`), whose
    halo-exchange implementation is the functional equivalent of this
    mapping and validates it numerically.

    Parameters
    ----------
    mesh:
        The (large) mesh to place.
    fabric_shape:
        Available fabric PEs ``(width, height)``.
    """

    mesh: CartesianMesh3D
    fabric_shape: tuple[int, int] = (750, 994)

    def __post_init__(self) -> None:
        fw, fh = self.fabric_shape
        if fw < 1 or fh < 1:
            raise ValueError("fabric dimensions must be positive")

    @property
    def block_xy(self) -> tuple[int, int]:
        """Columns per PE along X and Y (ceil division)."""
        fw, fh = self.fabric_shape
        return (
            -(-self.mesh.nx // fw),
            -(-self.mesh.ny // fh),
        )

    @property
    def columns_per_pe(self) -> int:
        """Z columns resident in one PE (interior block)."""
        bx, by = self.block_xy
        return bx * by

    @property
    def cells_per_pe(self) -> int:
        """Cells in one PE's memory."""
        return self.columns_per_pe * self.mesh.nz

    def words_per_pe(self, *, reuse_buffers: bool = True) -> int:
        """Scratchpad words an interior PE needs.

        Owned columns carry the full per-cell layout; the halo ring of
        ``2 (bx + by) + 4`` columns needs only the received ``(p, rho)``
        pair per cell.
        """
        from repro.dataflow.halos import layout_words_per_cell

        bx, by = self.block_xy
        nz = self.mesh.nz
        own = layout_words_per_cell(reuse_buffers=reuse_buffers)
        halo_cols = 2 * (bx + by) + 4
        return self.cells_per_pe * own + halo_cols * nz * 2

    def fits_memory(
        self,
        capacity_bytes: int = 48 * 1024,
        *,
        reserved_bytes: int = 2048,
        word_bytes: int = 4,
        reuse_buffers: bool = True,
    ) -> bool:
        """Whether the blocked layout fits one PE's scratchpad."""
        need = self.words_per_pe(reuse_buffers=reuse_buffers) * word_bytes
        return need <= capacity_bytes - reserved_bytes

    def fabric_words_per_pe_per_application(self) -> int:
        """Words an interior PE receives per application.

        Only the halo ring crosses the fabric: ``2 (bx + by)`` side
        columns plus the four corner columns, each a ``(p, rho)`` pair
        of length nz.
        """
        bx, by = self.block_xy
        return (2 * (bx + by) + 4) * 2 * self.mesh.nz

    def surface_to_volume(self) -> float:
        """Received halo cells per owned cell (the efficiency driver)."""
        bx, by = self.block_xy
        return (2 * (bx + by) + 4) / (bx * by)


@dataclass(frozen=True)
class SpareColumnRemap:
    """Logical mesh columns remapped onto a wider fabric around dead PEs.

    This mirrors CS-2 yield handling: wafers ship with spare PE columns,
    and a column containing a manufacturing defect is fused out — its
    east/west links pass traffic straight through at no extra hop cost,
    and the logical program occupies the remaining columns in order.
    ``column_map[lx]`` is the physical fabric column hosting logical
    column ``lx``; physical columns absent from the map are *bypassed*
    (see ``Fabric(bypass_columns=...)``).

    Because a bypassed column is latency-transparent, the remapped
    program produces the same event timestamps, the same event order,
    and therefore **bit-identical** residuals as a healthy
    ``logical_width``-wide fabric.
    """

    logical_width: int
    height: int
    physical_width: int
    column_map: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.column_map) != self.logical_width:
            raise ValueError(
                f"column_map has {len(self.column_map)} entries for "
                f"{self.logical_width} logical columns"
            )
        last = -1
        for col in self.column_map:
            if not 0 <= col < self.physical_width:
                raise ValueError(
                    f"physical column {col} outside fabric width "
                    f"{self.physical_width}"
                )
            if col <= last:
                raise ValueError("column_map must be strictly increasing")
            last = col
        # logical index of each physical column (None = bypassed)
        object.__setattr__(
            self,
            "_logical_of",
            {col: lx for lx, col in enumerate(self.column_map)},
        )

    @property
    def bypassed_columns(self) -> frozenset[int]:
        """Physical columns fused out of the logical mesh."""
        return frozenset(range(self.physical_width)) - set(self.column_map)

    @property
    def fabric_shape(self) -> tuple[int, int]:
        """Physical fabric dimensions hosting the remapped program."""
        return (self.physical_width, self.height)

    def physical(self, coord: tuple[int, int]) -> tuple[int, int]:
        """Physical PE coordinate of a logical coordinate."""
        lx, ly = coord
        return (self.column_map[lx], ly)

    def logical(self, coord: tuple[int, int]) -> tuple[int, int] | None:
        """Logical coordinate of a physical PE, None when bypassed/unused."""
        px, py = coord
        if not 0 <= py < self.height:
            return None
        lx = self._logical_of.get(px)
        if lx is None:
            return None
        return (lx, py)

    @classmethod
    def identity(cls, width: int, height: int) -> "SpareColumnRemap":
        """The trivial remap (no spares, no bypass)."""
        return cls(width, height, width, tuple(range(width)))

    @classmethod
    def around_dead_pes(
        cls,
        logical_shape: tuple[int, int],
        dead_pes,
        *,
        spare_columns: int = 1,
    ) -> "SpareColumnRemap":
        """Remap a ``logical_shape`` program around dead PEs using spares.

        The physical fabric is ``spare_columns`` wider than the logical
        mesh; every column containing a dead PE is fused out and the
        logical columns shift right past it.  Raises when the dead PEs
        hit more distinct columns than there are spares.
        """
        from repro.faults.errors import FaultPlanError

        width, height = logical_shape
        dead_cols = sorted(
            {x for x, y in dead_pes if 0 <= x < width + spare_columns}
        )
        if len(dead_cols) > spare_columns:
            raise FaultPlanError(
                f"{len(dead_cols)} defective columns but only "
                f"{spare_columns} spare(s)"
            )
        physical_width = width + spare_columns
        bad = set(dead_cols)
        column_map = []
        col = 0
        while len(column_map) < width:
            if col >= physical_width:
                raise FaultPlanError(
                    "ran out of physical columns while remapping "
                    f"(defective: {dead_cols})"
                )
            if col not in bad:
                column_map.append(col)
            col += 1
        return cls(width, height, physical_width, tuple(column_map))


@dataclass(frozen=True)
class MappingComparison:
    """Head-to-head numbers motivating the cell-based choice."""

    cell_num_pes: int
    face_num_pes: int
    cell_total_words: int
    face_total_words: int
    cell_max_mesh_on_fabric: tuple[int, int]
    face_max_mesh_on_fabric: tuple[int, int]

    @property
    def pe_overhead_factor(self) -> float:
        """How many times more PEs the face-based mapping consumes."""
        return self.face_num_pes / self.cell_num_pes

    @property
    def traffic_overhead_factor(self) -> float:
        """Aggregate fabric traffic ratio, face-based over cell-based."""
        return self.face_total_words / self.cell_total_words


def compare_mappings(
    mesh: CartesianMesh3D,
    fabric_shape: tuple[int, int] = (750, 994),
) -> MappingComparison:
    """Quantify cell- vs face-based mapping for *mesh* (ablation input)."""
    cell = CellBasedMapping(mesh)
    face = FaceBasedMapping(mesh)
    fw, fh = fabric_shape
    return MappingComparison(
        cell_num_pes=cell.num_pes,
        face_num_pes=face.num_pes,
        cell_total_words=cell.total_words_per_iteration(),
        face_total_words=face.total_words_per_iteration(),
        cell_max_mesh_on_fabric=(fw, fh),
        face_max_mesh_on_fabric=((fw + 1) // 2, (fh + 1) // 2),
    )
