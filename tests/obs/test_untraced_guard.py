"""Guard: ``trace=False`` must add zero per-event work or allocations.

The runtime's hot paths (_transmit/_deliver) carry a trace branch; when
tracing is off that branch must be a single predictable bool test — no
sink object, no record tuples, no aggregate updates.  The poison test
proves the branch is never entered: any attribute access or call on the
planted objects raises.
"""

import numpy as np
import pytest

from repro.wse.fabric import Fabric
from repro.wse.geometry import Port
from repro.wse.perf import WsePerfModel
from repro.wse.runtime import EventRuntime

COLOR = 0


class _Poison:
    """Raises on any use — planted where a traced runtime caches sink
    internals, so a single touched trace instruction fails the test."""

    def __getattr__(self, name):
        raise AssertionError(f"untraced hot path touched trace state ({name})")

    def __call__(self, *args, **kwargs):
        raise AssertionError("untraced hot path appended a trace record")


def make_untraced_runtime():
    fabric = Fabric(3, 3)
    rt = EventRuntime(fabric, WsePerfModel())  # trace defaults to False
    fabric.configure_color(
        COLOR,
        lambda c: [
            {
                Port.RAMP: (Port.EAST,),
                Port.WEST: (Port.SOUTH,),
                Port.NORTH: (Port.RAMP,),
            }
        ],
    )
    return fabric, rt


class TestUntracedDefaults:
    def test_no_sink_is_created(self):
        _, rt = make_untraced_runtime()
        assert rt.trace_sink is None
        assert rt._trace is False
        assert rt.trace_log == []
        # the cached hot-path bindings only exist on traced runtimes
        assert not hasattr(rt, "_sink_agg")
        assert not hasattr(rt, "_sink_links")
        assert not hasattr(rt, "_sink_ring_append")

    def test_hot_path_never_touches_trace_state(self):
        fabric, rt = make_untraced_runtime()
        # plant poison where the traced fast path would look
        rt._sink_ring_append = _Poison()
        rt._sink_agg = _Poison()
        rt._sink_links = _Poison()
        delivered = []
        fabric.bind_all(COLOR, lambda r, pe, m: delivered.append(pe.coord))
        for _ in range(5):
            rt.inject((0, 0), COLOR, np.zeros(4, dtype=np.float32))
        rt.run()  # any per-event trace work would raise AssertionError
        assert delivered == [(1, 1)] * 5
        assert rt.stats.messages_delivered == 5
        assert rt.stats.fabric_word_hops > 0  # counters still accrue

    def test_injected_sink_implies_tracing(self):
        from repro.obs.trace import TraceSink

        fabric = Fabric(2, 1)
        sink = TraceSink(capacity=8)
        rt = EventRuntime(fabric, WsePerfModel(), trace_sink=sink)
        assert rt._trace is True
        assert rt.trace_sink is sink
        fabric.configure_color(
            COLOR, lambda c: [{Port.RAMP: (Port.EAST,), Port.WEST: (Port.RAMP,)}]
        )
        rt.inject((0, 0), COLOR, np.zeros(1, dtype=np.float32))
        rt.run()
        assert sink.deliveries == 1
        # a caller-owned sink survives reset (the runtime doesn't own it)
        rt.reset()
        assert sink.deliveries == 1

    def test_owned_sink_cleared_on_reset(self):
        fabric = Fabric(2, 1)
        rt = EventRuntime(fabric, WsePerfModel(), trace=True)
        fabric.configure_color(
            COLOR, lambda c: [{Port.RAMP: (Port.EAST,), Port.WEST: (Port.RAMP,)}]
        )
        rt.inject((0, 0), COLOR, np.zeros(1, dtype=np.float32))
        rt.run()
        assert rt.trace_sink.deliveries == 1
        rt.reset()
        assert rt.trace_sink.deliveries == 0
        assert rt.trace_log == []
