"""Span-based phase timers with Chrome trace-event export.

Backends and solvers wrap their phases in ``with span("name"):`` blocks.
When no recorder is installed (the default) :func:`span` returns a
shared no-op context manager — one global read and one call per span,
negligible at phase granularity — so instrumentation can stay in the
code permanently.  When a :class:`SpanRecorder` is installed (the
``repro trace`` CLI does this), every span records its wall-clock
duration and optional key/value arguments, and the recorder exports the
timeline as Chrome trace-event JSON that loads directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.

Simulated-fabric events from a :class:`~repro.obs.trace.TraceSink` ring
can be merged into the same document on a second "process" track whose
timestamps are simulation cycles, putting host phases and device
protocol traffic side by side.
"""

from __future__ import annotations

import threading
import time
from typing import Any

__all__ = [
    "Span",
    "SpanRecorder",
    "span",
    "get_recorder",
    "set_recorder",
    "chrome_trace_document",
    "write_chrome_trace",
    "spans_to_payload",
    "ingest_spans",
]


class Span:
    """One recorded phase: name, category, wall-clock interval, args.

    ``pid`` is the Perfetto process track the span renders on: None
    (local spans) maps to track 1, while spans ingested from par worker
    processes carry the worker's real OS pid so the merged timeline
    shows one process row per worker.
    """

    __slots__ = ("name", "cat", "start_ns", "duration_ns", "tid", "args", "pid")

    def __init__(self, name: str, cat: str, start_ns: int, tid: int) -> None:
        self.name = name
        self.cat = cat
        self.start_ns = start_ns
        self.duration_ns = 0
        self.tid = tid
        self.pid: int | None = None
        self.args: dict[str, Any] = {}

    @property
    def duration_seconds(self) -> float:
        return self.duration_ns / 1e9


class _SpanContext:
    """Context manager recording one span into a recorder."""

    __slots__ = ("_recorder", "_span")

    def __init__(self, recorder: "SpanRecorder", span: Span) -> None:
        self._recorder = recorder
        self._span = span

    def set(self, **args: Any) -> "_SpanContext":
        """Attach key/value arguments (shown in the Perfetto detail pane)."""
        self._span.args.update(args)
        return self

    def __enter__(self) -> "_SpanContext":
        return self

    def __exit__(self, *exc) -> None:
        sp = self._span
        sp.duration_ns = self._recorder._clock() - sp.start_ns
        self._recorder.spans.append(sp)


class _NullSpan:
    """Shared no-op span used when recording is disabled."""

    __slots__ = ()

    def set(self, **args: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class SpanRecorder:
    """Collects :class:`Span` records; exports Chrome trace-event JSON."""

    def __init__(self, clock=time.perf_counter_ns) -> None:
        self._clock = clock
        self._epoch_ns = clock()
        self.spans: list[Span] = []

    # ------------------------------------------------------------------ #
    def span(self, name: str, cat: str = "phase", **args: Any) -> _SpanContext:
        """Open a span; closes (and records) when the ``with`` block exits."""
        sp = Span(name, cat, self._clock(), threading.get_ident())
        if args:
            sp.args.update(args)
        return _SpanContext(self, sp)

    def clear(self) -> None:
        self.spans.clear()

    # ------------------------------------------------------------------ #
    def summary(self) -> dict[str, dict[str, float]]:
        """Per-span-name totals: count, total/mean seconds."""
        out: dict[str, dict[str, float]] = {}
        for sp in self.spans:
            row = out.setdefault(
                sp.name, {"count": 0, "total_seconds": 0.0}
            )
            row["count"] += 1
            row["total_seconds"] += sp.duration_seconds
        for row in out.values():
            row["mean_seconds"] = row["total_seconds"] / row["count"]
            row["total_seconds"] = round(row["total_seconds"], 9)
            row["mean_seconds"] = round(row["mean_seconds"], 9)
        return out

    def trace_events(self) -> list[dict]:
        """Chrome trace-event dicts (``ph: "X"`` complete events, µs)."""
        epoch = self._epoch_ns
        events = []
        for sp in self.spans:
            event = {
                "name": sp.name,
                "cat": sp.cat,
                "ph": "X",
                "ts": (sp.start_ns - epoch) / 1e3,
                "dur": sp.duration_ns / 1e3,
                "pid": 1 if sp.pid is None else sp.pid,
                "tid": sp.tid % 100000,
            }
            if sp.args:
                event["args"] = sp.args
            events.append(event)
        return events


def spans_to_payload(recorder: SpanRecorder) -> list[dict]:
    """Recorded spans as plain picklable dicts for cross-process merge.

    The multiprocess SPMD runtime (:mod:`repro.par`) records spans in
    each worker and ships them to the parent over a pipe; ``start_ns``
    values come from ``time.perf_counter_ns`` whose Linux clock
    (CLOCK_MONOTONIC) is system-wide, so worker timelines align with the
    parent's recorder epoch without translation.
    """
    return [
        {
            "name": sp.name,
            "cat": sp.cat,
            "start_ns": sp.start_ns,
            "duration_ns": sp.duration_ns,
            "tid": sp.tid,
            "args": dict(sp.args),
        }
        for sp in recorder.spans
    ]


def ingest_spans(
    recorder: SpanRecorder, payload: list[dict], *,
    pid: int | None = None, **extra_args: Any
) -> int:
    """Merge a :func:`spans_to_payload` list into *recorder*.

    ``pid`` puts the ingested spans on their own Perfetto process track
    (the par runtime passes the worker's OS pid); ``extra_args`` (e.g.
    ``worker=...``, ``rank=...``) are stamped onto every ingested span's
    args so merged timelines stay attributable.  Returns the number of
    spans ingested.
    """
    for rec in payload:
        sp = Span(rec["name"], rec.get("cat", "phase"), rec["start_ns"],
                  rec.get("tid", 0))
        sp.duration_ns = rec.get("duration_ns", 0)
        sp.pid = pid
        sp.args.update(rec.get("args", ()))
        if pid is not None:
            sp.args["pid"] = pid
        if extra_args:
            sp.args.update(extra_args)
        recorder.spans.append(sp)
    return len(payload)


def chrome_trace_document(
    recorder: SpanRecorder | None = None,
    sink=None,
    *,
    color_names: dict[int, str] | None = None,
) -> dict:
    """Assemble one Perfetto-loadable document.

    Host-side spans (wall-clock µs) go on pid 1; the delivery timeline
    retained in *sink*'s ring goes on pid 2 with simulation **cycles**
    as the time unit, one thread row per fabric row so spatial structure
    is visible.  *color_names* maps routing colors to channel names for
    readable event titles.
    """
    events: list[dict] = []
    if recorder is not None:
        events.extend(recorder.trace_events())
    if sink is not None:
        names = color_names or {}
        for rec in sink.timeline():
            msg = rec.message
            label = names.get(msg.color, f"color{msg.color}")
            events.append(
                {
                    "name": f"{label} -> PE{rec.coord}",
                    "cat": "fabric",
                    "ph": "i",
                    "s": "t",
                    "ts": rec.time,
                    "pid": 2,
                    "tid": rec.coord[1],
                    "args": {
                        "color": msg.color,
                        "kind": msg.kind,
                        "source": str(msg.source),
                        "hops": msg.hops,
                        "words": msg.num_words,
                    },
                }
            )
    metadata = [
        {"name": "process_name", "ph": "M", "pid": 1,
         "args": {"name": "host (wall clock)"}},
        {"name": "process_name", "ph": "M", "pid": 2,
         "args": {"name": "fabric (simulated cycles as us)"}},
    ]
    if recorder is not None:
        worker_pids = sorted(
            {sp.pid for sp in recorder.spans if sp.pid is not None}
        )
        for wpid in worker_pids:
            metadata.append(
                {"name": "process_name", "ph": "M", "pid": wpid,
                 "args": {"name": f"par worker (pid {wpid})"}}
            )
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


# --------------------------------------------------------------------- #
# Module-level recorder: the instrumentation entry point
# --------------------------------------------------------------------- #
_RECORDER: SpanRecorder | None = None


def get_recorder() -> SpanRecorder | None:
    """The currently installed recorder (None when disabled)."""
    return _RECORDER


def set_recorder(recorder: SpanRecorder | None) -> SpanRecorder | None:
    """Install (or, with None, remove) the process-wide recorder.

    Returns the previous recorder so callers can restore it.
    """
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder
    return previous


def span(name: str, cat: str = "phase", **args: Any):
    """Open a phase span on the installed recorder (no-op when disabled).

    Usage::

        with span("newton.iteration", solver="bicgstab") as sp:
            ...
            sp.set(iterations=lin.iterations)
    """
    rec = _RECORDER
    if rec is None:
        return _NULL_SPAN
    return rec.span(name, cat, **args)


def write_chrome_trace(path, recorder=None, sink=None, *, color_names=None) -> None:
    """Serialize :func:`chrome_trace_document` to *path* as byte-stable
    JSON (sorted keys, fixed formatting — see :mod:`repro.util.jsonio`)."""
    from repro.util.jsonio import write_stable_json

    doc = chrome_trace_document(recorder, sink, color_names=color_names)
    write_stable_json(path, doc, indent=None)
