"""RunSupervisor: bounded-loss restart, degradation, give-up artifacts.

The acceptance bar from the resilience design: a supervised run that
takes a recoverable fault mid-campaign must finish with residuals
**bit-identical** to an uninterrupted run (restore + replay-verify), a
backend that keeps failing must degrade down the policy ladder under a
cross-backend conformance check, and an unrecoverable run must leave a
post-mortem replay bundle plus a decision timeline.
"""

import json

import numpy as np
import pytest

from repro.core import CartesianMesh3D, FluidProperties, random_pressure
from repro.faults.errors import CommTimeoutError
from repro.obs.replay import ReplayArtifact, digest_array
from repro.resilience import (
    ResiliencePolicy,
    RunSupervisor,
    SupervisorGiveUp,
)

MESH = CartesianMesh3D(4, 4, 3)
FLUID = FluidProperties()
PRESSURES = [random_pressure(MESH, seed=20 + i) for i in range(3)]

FAST = ResiliencePolicy(
    backoff_base=0.0, backoff_jitter=0.0, checkpoint_every=1
)


def flaky_factory(supervisor, fail_calls, error=None):
    """Wrap the real drivers; raise on the numbered run_single calls."""
    calls = {"n": 0}

    def factory(backend, attempt):
        run, finish = supervisor._default_factory(backend, attempt)

        def run_single(p):
            calls["n"] += 1
            if calls["n"] in fail_calls:
                raise error if error is not None else CommTimeoutError(
                    0, 1, calls["n"], 3
                )
            return run(p)

        return run_single, finish

    return factory


def uninterrupted(backend="event"):
    sup = RunSupervisor(MESH, FLUID, policy=FAST, backend=backend)
    run, finish = sup._default_factory(backend, attempt=1)  # no plan
    try:
        return [np.array(run(p), copy=True) for p in PRESSURES]
    finally:
        finish()


class TestRecovery:
    def test_transient_failure_resumes_bit_identically(self):
        reference = uninterrupted()
        sup = RunSupervisor(MESH, FLUID, policy=FAST, backend="event")
        sup._factory = flaky_factory(sup, fail_calls={2})
        res = sup.run(PRESSURES)
        assert res.restarts == 1
        assert res.restores == 1
        assert res.backend_chain == ["event"]
        for step, ref in zip(res.steps, reference):
            assert step["residual_sha256"] == digest_array(ref)
        assert res.residual.tobytes() == reference[-1].tobytes()
        events = [e["event"] for e in res.timeline]
        assert events[:2] == ["start", "checkpoint"]
        assert "failure" in events and "restore" in events
        assert events[-1] == "complete"

    def test_replay_verify_runs_after_every_restore(self):
        sup = RunSupervisor(MESH, FLUID, policy=FAST, backend="event")
        sup._factory = flaky_factory(sup, fail_calls={2})
        res = sup.run(PRESSURES)
        verifies = [
            e for e in res.timeline if e["event"] == "replay_verify"
        ]
        assert verifies and all(e["ok"] for e in verifies)
        assert all(e["mode"] == "bit" for e in verifies)

    def test_failure_during_recovery_is_still_recovered(self):
        """The second fault lands on the replay-verify itself."""
        reference = uninterrupted()
        sup = RunSupervisor(MESH, FLUID, policy=FAST, backend="event")
        sup._factory = flaky_factory(sup, fail_calls={2, 3})
        res = sup.run(PRESSURES)
        assert res.restarts == 2
        assert res.residual.tobytes() == reference[-1].tobytes()

    def test_failure_before_any_checkpoint_restarts_from_scratch(self):
        reference = uninterrupted()
        sup = RunSupervisor(MESH, FLUID, policy=FAST, backend="event")
        sup._factory = flaky_factory(sup, fail_calls={1})
        res = sup.run(PRESSURES)
        restore = next(e for e in res.timeline if e["event"] == "restore")
        assert restore["to_step"] == 0
        assert res.residual.tobytes() == reference[-1].tobytes()

    def test_unrecoverable_errors_propagate_untouched(self):
        sup = RunSupervisor(MESH, FLUID, policy=FAST, backend="event")
        sup._factory = flaky_factory(
            sup, fail_calls={1}, error=ValueError("solver bug")
        )
        with pytest.raises(ValueError, match="solver bug"):
            sup.run(PRESSURES)

    def test_backoff_delays_follow_the_seeded_policy(self):
        policy = ResiliencePolicy(
            backoff_base=0.0, backoff_jitter=0.5, seed=9
        )
        sup = RunSupervisor(MESH, FLUID, policy=policy, backend="event")
        sup._factory = flaky_factory(sup, fail_calls={2, 4})
        delays = [
            e["delay_seconds"] for e in sup.run(PRESSURES).timeline
            if e["event"] == "backoff"
        ]
        sup2 = RunSupervisor(MESH, FLUID, policy=policy, backend="event")
        sup2._factory = flaky_factory(sup2, fail_calls={2, 4})
        delays2 = [
            e["delay_seconds"] for e in sup2.run(PRESSURES).timeline
            if e["event"] == "backoff"
        ]
        assert delays == delays2  # same seed, same recovery decisions


class TestDiskCheckpoints:
    def test_corrupt_newest_checkpoint_falls_back_intact(self, tmp_path):
        """Restore re-opens the store from disk; a bit-flipped newest
        checkpoint is checksum-rejected and the previous intact one is
        used — at the price of replaying one more application."""
        reference = uninterrupted()
        ckdir = tmp_path / "ck"
        sup = RunSupervisor(
            MESH, FLUID, policy=FAST, backend="event",
            checkpoint_dir=ckdir,
        )
        calls = {"n": 0}
        real_factory = sup._default_factory

        def factory(backend, attempt):
            run, finish = real_factory(backend, attempt)

            def run_single(p):
                calls["n"] += 1
                if calls["n"] == 3:  # step 2 of attempt 0: two ckpts exist
                    newest = sorted(ckdir.glob("checkpoint_*.npz"))[-1]
                    blob = bytearray(newest.read_bytes())
                    blob[blob.index(b"pressure.npy") + 150] ^= 0x40
                    newest.write_bytes(bytes(blob))
                    raise CommTimeoutError(0, 1, 5, 3)
                return run(p)

            return run_single, finish

        sup._factory = factory
        res = sup.run(PRESSURES)
        restore = next(e for e in res.timeline if e["event"] == "restore")
        assert restore["source"] == "disk"
        assert restore["to_step"] == 1  # fell back past the corrupt file
        assert restore["corrupt_skipped"] == ["checkpoint_000002.npz"]
        assert res.residual.tobytes() == reference[-1].tobytes()


class TestDegradation:
    def test_gpu_exhaustion_degrades_to_lockstep_conformant(self):
        from repro.dataflow.lockstep import LockstepWseSimulation

        lockstep_ref = LockstepWseSimulation(
            MESH, FLUID, dtype=np.float64
        ).run([PRESSURES[-1]])
        policy = ResiliencePolicy(
            max_restarts=1, backoff_base=0.0, backoff_jitter=0.0,
            checkpoint_every=1, ladder=("gpu", "lockstep"),
        )
        sup = RunSupervisor(MESH, FLUID, policy=policy, backend="gpu")
        calls = {"n": 0}
        real_factory = sup._default_factory

        def factory(backend, attempt):
            run, finish = real_factory(backend, attempt)
            if backend != "gpu":
                return run, finish

            def run_single(p):
                calls["n"] += 1
                if calls["n"] >= 2:  # persistent gpu failure
                    raise CommTimeoutError(0, 1, 9, 1)
                return run(p)

            return run_single, finish

        sup._factory = factory
        res = sup.run(PRESSURES)
        assert res.backend_chain == ["gpu", "lockstep"]
        assert res.degraded and res.degradations == 1
        assert [s["backend"] for s in res.steps] == [
            "gpu", "lockstep", "lockstep"
        ]
        verify = next(
            e for e in res.timeline
            if e["event"] == "replay_verify" and e["mode"] == "tolerance"
        )
        assert verify["ok"]
        assert verify["reference_backend"] == "gpu"
        assert res.residual.tobytes() == lockstep_ref.tobytes()


class TestGiveUp:
    def test_exhausted_run_emits_postmortem_artifacts(self, tmp_path):
        policy = ResiliencePolicy(
            max_restarts=1, backoff_base=0.0, backoff_jitter=0.0,
            checkpoint_every=1, ladder=(),
        )
        sup = RunSupervisor(
            MESH, FLUID, policy=policy, backend="event",
            postmortem_dir=tmp_path,
        )
        sup._factory = flaky_factory(sup, fail_calls={2, 3, 4, 5, 6})
        with pytest.raises(SupervisorGiveUp) as info:
            sup.run(PRESSURES)
        exc = info.value
        assert exc.timeline[-1]["event"] == "give_up"
        bundle = tmp_path / "supervisor-postmortem.rpz"
        timeline = tmp_path / "supervisor-timeline.json"
        assert str(bundle) == exc.postmortem_bundle and bundle.exists()
        assert str(timeline) == exc.postmortem_timeline and timeline.exists()
        artifact = ReplayArtifact.load(bundle)
        supmeta = artifact.meta["supervisor"]
        assert supmeta["failure"] == "CommTimeoutError"
        assert supmeta["committed_steps"] == 1  # only step 0 survived
        doc = json.loads(timeline.read_text())
        assert doc["timeline"][-1]["event"] == "give_up"

    def test_failed_replay_verification_gives_up(self):
        """A restore that cannot reproduce the checkpoint is a broken
        provenance chain, not a retryable fault."""
        sup = RunSupervisor(MESH, FLUID, policy=FAST, backend="event")
        calls = {"n": 0}
        real_factory = sup._default_factory

        def factory(backend, attempt):
            run, finish = real_factory(backend, attempt)

            def run_single(p):
                calls["n"] += 1
                if calls["n"] == 2:
                    raise CommTimeoutError(0, 1, 2, 3)
                out = np.array(run(p), copy=True)
                if calls["n"] > 2:
                    out[0, 0, 0] += 1.0  # rebuilt driver is subtly wrong
                return out

            return run_single, finish

        sup._factory = factory
        with pytest.raises(SupervisorGiveUp, match="replay verification"):
            sup.run(PRESSURES)

    def test_failure_context_lands_in_the_timeline(self):
        policy = ResiliencePolicy(
            max_restarts=0, backoff_base=0.0, ladder=()
        )
        sup = RunSupervisor(
            MESH, FLUID, policy=policy, backend="event"
        )
        sup._factory = flaky_factory(
            sup, fail_calls={1},
            error=CommTimeoutError(
                0, 3, 7, 4, elapsed_seconds=0.5,
                policy={"attempts": 4},
            ),
        )
        with pytest.raises(SupervisorGiveUp) as info:
            sup.run(PRESSURES)
        failure = next(
            e for e in info.value.timeline if e["event"] == "failure"
        )
        assert failure["error"] == "CommTimeoutError"
        assert failure["context"]["attempts"] == 4
        assert failure["context"]["elapsed_seconds"] == 0.5
