"""The paper's contribution: TPFA flux computation on the dataflow fabric.

Maps the 3D mesh cell-based onto the 2D PE grid (Z columns in PE memory),
exchanges neighbour columns through the two-step cardinal switch protocol
and the two-hop diagonal flows, and computes fluxes in DSD instructions
as data arrives.  Runs on :mod:`repro.wse` event-driven (small fabrics,
full protocol) or lockstep-vectorized (large fabrics, same numerics).
"""

from repro.dataflow.cardinal import (
    CARDINAL_CHANNELS,
    CardinalChannel,
    is_step1_sender,
    switch_positions_for,
)
from repro.dataflow.diagonal import DIAGONAL_CHANNELS, DiagonalChannel, static_position
from repro.dataflow.codegen import generate_listing
from repro.dataflow.export import ProgramExport, export_program
from repro.dataflow.collectives import FabricCollectives
from repro.dataflow.driver import WseFluxComputation, WseRunResult
from repro.dataflow.flux_pe import (
    FluxScratch,
    compute_face_flux_column,
    evaluate_density_column,
)
from repro.dataflow.halos import (
    PEColumnLayout,
    layout_words_per_cell,
    max_nz_for_memory,
)
from repro.dataflow.instrcount import (
    CellInstructionTable,
    interior_cell_table,
    measure_flux_instruction_mix,
)
from repro.dataflow.lockstep import LockstepReport, LockstepWseSimulation
from repro.dataflow.matfree import WseMatrixFreeJacobian
from repro.dataflow.mapping import (
    BlockedCellMapping,
    CellBasedMapping,
    FaceBasedMapping,
    MappingComparison,
    SpareColumnRemap,
    compare_mappings,
)
from repro.dataflow.program import FluxProgram, padded_trans_fields

__all__ = [
    "WseFluxComputation",
    "WseRunResult",
    "FluxProgram",
    "ProgramExport",
    "export_program",
    "padded_trans_fields",
    "LockstepWseSimulation",
    "LockstepReport",
    "WseMatrixFreeJacobian",
    "FabricCollectives",
    "generate_listing",
    "CellBasedMapping",
    "FaceBasedMapping",
    "BlockedCellMapping",
    "SpareColumnRemap",
    "MappingComparison",
    "compare_mappings",
    "CardinalChannel",
    "CARDINAL_CHANNELS",
    "is_step1_sender",
    "switch_positions_for",
    "DiagonalChannel",
    "DIAGONAL_CHANNELS",
    "static_position",
    "FluxScratch",
    "compute_face_flux_column",
    "evaluate_density_column",
    "PEColumnLayout",
    "layout_words_per_cell",
    "max_nz_for_memory",
    "CellInstructionTable",
    "interior_cell_table",
    "measure_flux_instruction_mix",
]
