"""Newton's method for the backward-Euler step of Eq. 2.

Each nonlinear iteration builds the matrix-free Jacobian at the current
iterate, solves ``J dp = -R`` with preconditioned BiCGSTAB, and applies a
damped update with a simple backtracking line search on the residual
norm.  This closes the loop the paper leaves as future work: an implicit
single-phase flow step running entirely on flux-kernel sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.spans import span
from repro.solver.errors import SolverDivergence
from repro.solver.krylov import bicgstab, jacobi_preconditioner
from repro.solver.operators import FlowResidual, MatrixFreeJacobian

__all__ = ["NewtonResult", "newton_solve"]


@dataclass
class NewtonResult:
    """Outcome of one implicit time step."""

    pressure: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    residual_history: list[float] = field(default_factory=list)
    linear_iterations: int = 0


def newton_solve(
    residual: FlowResidual,
    pressure_old: np.ndarray,
    *,
    rtol: float = 1e-6,
    atol: float = 1e-8,
    max_iterations: int = 20,
    linear_rtol: float = 1e-8,
    max_line_search: int = 8,
) -> NewtonResult:
    """Solve one backward-Euler step for ``p^{n+1}``.

    Parameters
    ----------
    residual:
        The implicit residual operator (holds dt, sources, trans).
    pressure_old:
        Converged pressure of the previous time level ``p^n`` (also the
        initial Newton iterate).
    rtol / atol:
        Convergence on the infinity norm of the residual relative to the
        initial residual norm (rtol) or absolutely (atol).
    linear_rtol:
        BiCGSTAB relative tolerance per Newton iteration.
    max_line_search:
        Halvings attempted before accepting the step anyway.
    """
    mesh = residual.mesh
    p = np.array(pressure_old, dtype=np.float64, copy=True)
    mesh.validate_field(p, name="pressure_old")
    mass_old = residual.mass_density(pressure_old)

    r = residual(p, mass_old)
    r0_norm = float(np.abs(r).max())
    history = [r0_norm]
    target = max(rtol * r0_norm, atol)
    linear_total = 0

    if not np.isfinite(r0_norm):
        raise SolverDivergence(
            "newton",
            f"initial residual is {r0_norm} (bad state or dt)",
            history=history,
        )
    if r0_norm <= target:
        return NewtonResult(p, True, 0, r0_norm, history, 0)

    for it in range(1, max_iterations + 1):
        with span("newton.iteration", cat="solver", iteration=it) as sp:
            jac = MatrixFreeJacobian(residual, p)
            psolve = jacobi_preconditioner(jac.diagonal())
            try:
                lin = bicgstab(
                    jac.matvec,
                    -r.ravel(),
                    rtol=linear_rtol,
                    max_iterations=10 * jac.n,
                    psolve=psolve,
                )
            except SolverDivergence as exc:
                raise SolverDivergence(
                    "newton",
                    f"linear solve failed at iteration {it}: {exc}",
                    iterations=it - 1,
                    history=history,
                ) from exc
            linear_total += lin.iterations
            dp = lin.x.reshape(mesh.shape_zyx)

            # backtracking line search on the residual norm
            with span("newton.line_search", cat="solver"):
                step = 1.0
                best_norm = None
                for _ in range(max_line_search):
                    p_try = p + step * dp
                    r_try = residual(p_try, mass_old)
                    norm_try = float(np.abs(r_try).max())
                    if norm_try < history[-1]:
                        best_norm = norm_try
                        break
                    step *= 0.5
                if best_norm is None:
                    p_try = p + step * dp
                    r_try = residual(p_try, mass_old)
                    best_norm = float(np.abs(r_try).max())

            p, r = p_try, r_try
            history.append(best_norm)
            if not np.isfinite(best_norm):
                raise SolverDivergence(
                    "newton",
                    f"residual norm became {best_norm} at iteration {it}",
                    iterations=it,
                    history=history,
                )
            sp.set(
                linear_iterations=lin.iterations,
                residual_norm=best_norm,
                step=step,
            )
        if best_norm <= target:
            return NewtonResult(p, True, it, best_norm, history, linear_total)

    return NewtonResult(p, False, max_iterations, history[-1], history, linear_total)
