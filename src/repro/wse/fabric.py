"""The 2D fabric: a grid of PEs and their routers.

"The WSE ... comes with a 2D-mesh interconnection fabric that connects
processing elements (PEs) where computations take place" (Sec. 4).  The
fabric object wires one :class:`Router` to every
:class:`ProcessingElement` and offers bulk configuration helpers used by
the dataflow program builder.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.wse.dsd import DsdEngine
from repro.wse.geometry import in_bounds
from repro.wse.memory import Scratchpad, WSE2_PE_MEMORY_BYTES
from repro.wse.pe import ProcessingElement
from repro.wse.router import RoutePosition, Router

__all__ = ["Fabric", "WSE2_MAX_FABRIC"]

#: Largest usable fabric on CS-2 with SDK 0.6.0 (Sec. 7.1): a thin layer
#: of boundary PEs is reserved by the SDK.
WSE2_MAX_FABRIC = (750, 994)


class Fabric:
    """A ``width x height`` grid of PEs with routers.

    Parameters
    ----------
    width, height:
        Fabric dimensions in PEs.
    pe_memory_bytes:
        Scratchpad capacity per PE.
    pe_memory_reserved:
        Bytes reserved for code on each PE.
    vectorized:
        Whether PE datapaths use the SIMD/DSD fast path (Sec. 5.3.3);
        affects cycle accounting only.
    bypass_columns:
        Physical columns taken out of service (CS-2 yield handling:
        defective columns are fused out and east/west traffic passes
        straight through them with no extra hop cost).  The runtime's
        link-destination table walks past these columns transparently;
        their PEs/routers exist but never see traffic.
    """

    def __init__(
        self,
        width: int,
        height: int,
        *,
        pe_memory_bytes: int = WSE2_PE_MEMORY_BYTES,
        pe_memory_reserved: int = 0,
        vectorized: bool = True,
        bypass_columns=(),
    ) -> None:
        if width < 1 or height < 1:
            raise ValueError("fabric dimensions must be positive")
        max_w, max_h = WSE2_MAX_FABRIC
        if width > max_w or height > max_h:
            raise ValueError(
                f"fabric {width}x{height} exceeds the usable WSE-2 fabric "
                f"{max_w}x{max_h}"
            )
        self.bypass_columns = frozenset(bypass_columns)
        for col in self.bypass_columns:
            if not 0 <= col < width:
                raise ValueError(
                    f"bypass column {col} outside fabric width {width}"
                )
        if len(self.bypass_columns) >= width:
            raise ValueError("cannot bypass every fabric column")
        self.width = width
        self.height = height
        self._pes: dict[tuple[int, int], ProcessingElement] = {}
        self._routers: dict[tuple[int, int], Router] = {}
        for y in range(height):
            for x in range(width):
                coord = (x, y)
                self._pes[coord] = ProcessingElement(
                    coord=coord,
                    memory=Scratchpad(
                        pe_memory_bytes, reserved=pe_memory_reserved
                    ),
                    dsd=DsdEngine(vectorized=vectorized),
                )
                self._routers[coord] = Router(coord=coord)

    # ------------------------------------------------------------------ #
    @property
    def num_pes(self) -> int:
        """Total PEs on the fabric."""
        return self.width * self.height

    @property
    def pe_map(self) -> dict[tuple[int, int], ProcessingElement]:
        """Coordinate-keyed PE table (hot-path access for the runtime;
        treat as read-only)."""
        return self._pes

    @property
    def router_map(self) -> dict[tuple[int, int], Router]:
        """Coordinate-keyed router table (hot-path access for the
        runtime; treat as read-only)."""
        return self._routers

    def pe(self, x: int, y: int) -> ProcessingElement:
        """PE at coordinate ``(x, y)``."""
        try:
            return self._pes[(x, y)]
        except KeyError:
            raise IndexError(
                f"PE ({x}, {y}) outside fabric {self.width}x{self.height}"
            ) from None

    def router(self, x: int, y: int) -> Router:
        """Router at coordinate ``(x, y)``."""
        try:
            return self._routers[(x, y)]
        except KeyError:
            raise IndexError(
                f"router ({x}, {y}) outside fabric {self.width}x{self.height}"
            ) from None

    def contains(self, coord: tuple[int, int]) -> bool:
        """True when *coord* is on the fabric."""
        return in_bounds(coord, self.width, self.height)

    def pes(self) -> Iterator[ProcessingElement]:
        """Iterate all PEs in row-major order."""
        for y in range(self.height):
            for x in range(self.width):
                yield self._pes[(x, y)]

    def configured_colors(self) -> set[int]:
        """Union of colors with routing installed on any router."""
        colors: set[int] = set()
        for router in self._routers.values():
            colors.update(router.configs)
        return colors

    # ------------------------------------------------------------------ #
    def configure_color(
        self,
        color: int,
        positions_for: Callable[[tuple[int, int]], list[RoutePosition] | None],
        *,
        initial_for: Callable[[tuple[int, int]], int] | None = None,
    ) -> None:
        """Install routing for *color* on every router.

        Parameters
        ----------
        positions_for:
            Callback mapping a coordinate to that router's switch
            positions (return None to leave the router unconfigured).
        initial_for:
            Optional callback choosing the initial switch position per
            router (default 0).
        """
        for coord, router in self._routers.items():
            positions = positions_for(coord)
            if positions is None:
                continue
            initial = initial_for(coord) if initial_for is not None else 0
            router.configure(color, positions, initial=initial)

    def bind_all(self, color: int, handler, *, control: bool = False) -> None:
        """Bind the same task *handler* to *color* on every PE."""
        for pe in self.pes():
            if control:
                pe.bind_control(color, handler)
            else:
                pe.bind(color, handler)

    # ------------------------------------------------------------------ #
    # Aggregate accounting
    # ------------------------------------------------------------------ #
    def total_counts(self) -> dict[str, int]:
        """Sum of DSD instruction counts over all PEs."""
        totals: dict[str, int] = {}
        for pe in self.pes():
            for op, n in pe.dsd.counts.items():
                totals[op] = totals.get(op, 0) + n
        return totals

    def total_flops(self) -> int:
        """Total floating point operations executed on the fabric."""
        return sum(pe.dsd.flops for pe in self.pes())

    def max_memory_high_water(self) -> int:
        """Largest scratchpad high-water mark across PEs (bytes)."""
        return max(pe.memory.high_water for pe in self.pes())

    def reset_counters(self) -> None:
        """Zero all PE instruction counters and busy times."""
        for pe in self.pes():
            pe.dsd.reset()
            pe.busy_until = 0.0
            pe.messages_received = pe.messages_sent = 0
            pe.words_received = pe.words_sent = 0
