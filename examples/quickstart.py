#!/usr/bin/env python
"""Quickstart: the TPFA flux kernel three ways, cross-validated.

Builds a small heterogeneous reservoir mesh, runs one application of the
paper's Algorithm 1 on

1. the vectorized NumPy reference,
2. the simulated-GPU RAJA kernel (paper Sec. 6), and
3. the dataflow implementation on the simulated wafer-scale engine
   (paper Sec. 5, full message-level protocol),

and checks that all three agree — the validation of paper Sec. 7.1.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    FluidProperties,
    Transmissibility,
    compute_flux_residual,
    random_pressure,
)
from repro.dataflow import WseFluxComputation
from repro.gpu import GpuFluxComputation
from repro.workloads import make_geomodel


def main() -> None:
    # a 10 x 8 x 6 mesh with spatially-correlated lognormal permeability
    mesh = make_geomodel(10, 8, 6, kind="lognormal", seed=42)
    fluid = FluidProperties()  # supercritical-CO2-like defaults
    trans = Transmissibility(mesh)
    pressure = random_pressure(mesh, seed=7)

    print(f"mesh: {mesh.shape_xyz[0]}x{mesh.shape_xyz[1]}x{mesh.shape_xyz[2]} "
          f"({mesh.num_cells} cells), "
          f"permeability {mesh.permeability.min():.2e}..{mesh.permeability.max():.2e} m^2")

    # 1. reference (ground truth)
    reference = compute_flux_residual(mesh, fluid, pressure, trans)
    print(f"reference residual:  |r|_max = {np.abs(reference).max():.6e}, "
          f"sum(r) = {reference.sum():.3e}  (global mass balance)")

    # 2. simulated GPU (RAJA-style tiled kernel)
    gpu = GpuFluxComputation(mesh, fluid, trans, variant="raja", dtype=np.float64)
    gpu_result = gpu.run_single(pressure)
    err_gpu = np.abs(gpu_result.residual - reference).max() / np.abs(reference).max()
    print(f"GPU/RAJA kernel:     rel. error vs reference = {err_gpu:.2e} "
          f"({gpu_result.tiles_executed} threadblocks, "
          f"occupancy {gpu_result.occupancy.achieved_occupancy:.1%})")

    # 3. dataflow on the simulated WSE (cardinal switch + diagonal 2-hop)
    wse = WseFluxComputation(mesh, fluid, trans, dtype=np.float64)
    wse_result = wse.run_single(pressure)
    err_wse = np.abs(wse_result.residual - reference).max() / np.abs(reference).max()
    print(f"Dataflow/WSE kernel: rel. error vs reference = {err_wse:.2e} "
          f"({wse_result.stats.messages_delivered} messages, "
          f"max {wse_result.stats.max_hops_seen} hops, "
          f"{wse_result.flops} FLOPs)")

    ops = {k: v for k, v in sorted(wse_result.instruction_counts.items())
           if not k.startswith("AUX") and k != "FMOV_LOCAL"}
    print(f"WSE instruction mix: {ops}")

    assert err_gpu < 1e-12 and err_wse < 1e-12
    print("all implementations agree — reproduction of paper Sec. 7.1 validation")


if __name__ == "__main__":
    main()
