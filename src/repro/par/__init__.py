"""`repro.par` — a real multiprocess SPMD runtime for the cluster backend.

The simulated communicator of :mod:`repro.cluster` runs every rank's
loop serially in one process, so its overlap and weak-scaling numbers
are *modelled*.  This package supplies the missing execution substrate:
ranks of a :class:`~repro.cluster.decomposition.BlockDecomposition` are
sharded across ``multiprocessing`` workers that exchange halos through
``multiprocessing.shared_memory`` buffers with per-link sequence
numbers, following the same deadlock-free all-send-then-all-receive
phase schedule — so compute/wait/exchange splits and parallel
efficiency are *measured* wall-clock quantities.

Pieces:

* :mod:`repro.par.layout` — the deterministic shared-memory map: one
  global pressure/residual field pair plus one fixed slot (8-byte
  sequence header + payload) per directed halo link;
* :mod:`repro.par.shm` — :class:`SharedArena`, the owning/attaching
  wrapper around one ``SharedMemory`` segment with numpy views;
* :mod:`repro.par.comm` — :class:`ProcComm`, the
  :class:`~repro.cluster.comm.HaloComm` implementation over arena
  slots (spin-with-yield receives, per-rank :class:`RankStats`,
  :class:`~repro.faults.injector.FaultInjector` hooks);
* :mod:`repro.par.worker` — the SPMD worker process body;
* :mod:`repro.par.runtime` — :class:`ProcPool`: spawn, command pipes,
  crash detection (:class:`~repro.faults.errors.WorkerCrashError`),
  respawn;
* :mod:`repro.par.flux` — :class:`ParClusterFluxComputation`, the
  drop-in multiprocess twin of
  :class:`~repro.cluster.flux.ClusterFluxComputation` (bit-identical
  residuals, measured per-rank spans merged in the parent);
* :mod:`repro.par.scale` — the ``repro par-scale`` weak-scaling
  harness: measured efficiency curves next to the modelled
  :class:`~repro.cluster.perf.ClusterPerfModel` predictions.

See DESIGN.md §12.
"""

from repro.par.comm import ProcComm
from repro.par.flux import ParClusterFluxComputation, ParClusterRunResult
from repro.par.layout import HaloLayout, LinkSlot
from repro.par.runtime import ProcPool
from repro.par.scale import ScalePoint, render_scaling, weak_scaling
from repro.par.shm import SharedArena

__all__ = [
    "HaloLayout",
    "LinkSlot",
    "SharedArena",
    "ProcComm",
    "ProcPool",
    "ParClusterFluxComputation",
    "ParClusterRunResult",
    "ScalePoint",
    "weak_scaling",
    "render_scaling",
]
