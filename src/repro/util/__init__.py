"""Shared utilities: validated array helpers and table reporting."""

from repro.util.arrays import (
    as_float_array,
    check_positive,
    check_shape,
    ensure_3d,
)
from repro.util.reporting import Table, format_seconds, format_si

__all__ = [
    "as_float_array",
    "check_positive",
    "check_shape",
    "ensure_3d",
    "Table",
    "format_seconds",
    "format_si",
]
