"""Unit tests for FaultPlan: validation, JSON round-trip, seeding."""

import pytest

from repro.faults import (
    DeadPE,
    FaultPlan,
    FaultPlanError,
    LinkFault,
    RankFailure,
    RouterStall,
)
from repro.wse.geometry import OFFSET, Port


class TestValidation:
    def test_unknown_link_mode_rejected(self):
        with pytest.raises(FaultPlanError, match="mode"):
            LinkFault(0, 0, Port.EAST, mode="melt")

    def test_probability_bounds(self):
        with pytest.raises(FaultPlanError, match="probability"):
            LinkFault(0, 0, Port.EAST, probability=0.0)
        with pytest.raises(FaultPlanError, match="probability"):
            LinkFault(0, 0, Port.EAST, probability=1.5)

    def test_delay_needs_cycles(self):
        with pytest.raises(FaultPlanError, match="delay_cycles"):
            LinkFault(0, 0, Port.EAST, mode="delay")
        LinkFault(0, 0, Port.EAST, mode="delay", delay_cycles=10.0)

    def test_link_port_must_be_cardinal(self):
        with pytest.raises(FaultPlanError, match="cardinal"):
            LinkFault(0, 0, Port.RAMP)

    def test_router_stall_needs_positive_cycles(self):
        with pytest.raises(FaultPlanError, match="stall_cycles"):
            RouterStall(0, 0, stall_cycles=0.0)

    def test_rank_failure_bounds(self):
        with pytest.raises(FaultPlanError, match="rank"):
            RankFailure(rank=-1)
        with pytest.raises(FaultPlanError, match="attempts"):
            RankFailure(rank=0, attempts=0)


class TestRoundTrip:
    def make_plan(self):
        return FaultPlan(
            seed=13,
            dead_pes=(DeadPE(1, 2),),
            link_faults=(
                LinkFault(0, 1, Port.NORTH, mode="drop"),
                LinkFault(2, 2, Port.WEST, mode="corrupt", probability=0.5),
                LinkFault(1, 1, Port.EAST, mode="delay", delay_cycles=25.0),
            ),
            router_stalls=(RouterStall(3, 0, stall_cycles=1e6),),
            rank_failures=(RankFailure(rank=2, exchange=1, attempts=2),),
        )

    def test_to_from_dict_round_trips(self):
        plan = self.make_plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_describe_covers_every_fault(self):
        plan = self.make_plan()
        lines = plan.describe()
        assert len(lines) == 6
        assert any("dead PE" in line for line in lines)
        assert any("corrupt" in line for line in lines)
        assert any("stalled router" in line for line in lines)
        assert any("rank 2" in line for line in lines)

    def test_only_fabric_and_only_ranks_partition(self):
        plan = self.make_plan()
        assert plan.only_fabric().rank_failures == ()
        assert plan.only_fabric().fabric_faults == 5
        assert plan.only_ranks().fabric_faults == 0
        assert plan.only_ranks().rank_failures == plan.rank_failures

    def test_empty_flag(self):
        assert FaultPlan().empty
        assert not self.make_plan().empty


class TestSeeded:
    def test_same_seed_same_plan(self):
        kwargs = dict(fabric_shape=(4, 4), ranks=4)
        assert FaultPlan.seeded(7, **kwargs) == FaultPlan.seeded(7, **kwargs)

    def test_counts_honoured(self):
        plan = FaultPlan.seeded(
            5, fabric_shape=(5, 4), ranks=6,
            dead_pes=2, lossy_links=3, rank_failures=2, router_stalls=1,
        )
        assert len(plan.dead_pes) == 2
        assert len(plan.link_faults) == 3
        assert len(plan.router_stalls) == 1
        assert len(plan.rank_failures) == 2

    def test_links_stay_on_fabric_and_clear_of_dead_pes(self):
        for seed in range(20):
            plan = FaultPlan.seeded(seed, fabric_shape=(4, 3), lossy_links=2)
            dead = {d.coord for d in plan.dead_pes}
            for lf in plan.link_faults:
                dx, dy = OFFSET[lf.port]
                other = (lf.x + dx, lf.y + dy)
                assert 0 <= other[0] < 4 and 0 <= other[1] < 3
                assert lf.coord not in dead and other not in dead

    def test_no_rank_failures_without_ranks(self):
        assert FaultPlan.seeded(1, fabric_shape=(4, 4)).rank_failures == ()

    def test_tiny_fabric_rejected(self):
        with pytest.raises(FaultPlanError, match="2x1"):
            FaultPlan.seeded(0, fabric_shape=(1, 1))
