"""Discrete-event runtime for the fabric.

Wavelet trains move router-to-router as timestamped events; links have
finite bandwidth with serialization and occupancy (two trains contending
for one link queue behind each other); PEs execute color-bound tasks on
the cycles accounted by their DSD engines.  Control wavelets advance
router switch positions as they propagate (Fig. 6b semantics).

The runtime is deliberately faithful at the *message/protocol* level —
exactly-once delivery, multicast fan-out, dynamic routing under switch
changes — while transporting whole trains per event for tractability.
Correctness tests run real flux computations through it on small fabrics
and compare against the NumPy reference bit-for-bit (modulo summation
order).

Hot-path design
---------------
The heap holds *typed events*: plain tuples ``(time, seq, kind, ...)``
with an integer event kind, dispatched from :meth:`EventRuntime.run`
without allocating a closure per hop.  Arrival events carry
``(coord, in_port, message)`` inline; generic callbacks (used for
per-application kick-off, not per hop) ride on the ``_EV_CALL`` kind.
Fabric/router/perf lookups are cached on the runtime at construction, a
message forwarded through a single-output route is passed on without a
:meth:`~repro.wse.packet.Message.fork` (the copy is only needed on true
multicast fan-out), and route queries hit the router's flattened current
table directly.  :meth:`EventRuntime.reset` clears all per-run state so
one runtime (and its link-busy map) can be reused across applications.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, fields
from typing import Callable

from repro.faults.errors import EventBudgetError, FabricStallError
from repro.wse.fabric import Fabric
from repro.wse.geometry import OFFSET, OPPOSITE, Port
from repro.wse.packet import KIND_CONTROL, KIND_DATA, Message
from repro.wse.perf import WSE2, WsePerfModel
from repro.wse.router import PORT_SHIFT

__all__ = ["EventRuntime", "RuntimeStats"]

#: Event kinds stored in heap entries.  ``_EV_CALL`` events carry
#: ``(fn, args)``; ``_EV_ARRIVE`` events carry ``(coord, in_port, msg)``.
_EV_CALL = 0
_EV_ARRIVE = 1

#: Counters merged by taking the maximum rather than the sum.
_MERGE_BY_MAX = frozenset({"max_hops_seen"})


@dataclass(slots=True)
class RuntimeStats:
    """Aggregate traffic/progress counters of one runtime."""

    events_processed: int = 0
    messages_injected: int = 0
    messages_delivered: int = 0
    messages_dropped_offchip: int = 0
    messages_dropped_faulted: int = 0
    control_advances: int = 0
    fabric_word_hops: int = 0
    max_hops_seen: int = 0
    runs_truncated: int = 0

    @property
    def fabric_bytes_moved(self) -> int:
        """Total link traffic: every word counted once per hop."""
        return self.fabric_word_hops * 4

    def merge(self, other: "RuntimeStats") -> "RuntimeStats":
        """Accumulate *other* into this instance (returned for chaining).

        Every dataclass field participates automatically — additive
        counters sum, extremum counters (``max_hops_seen``) take the
        maximum — so a counter added later cannot silently fall out of
        aggregated totals.
        """
        for f in fields(self):
            mine, theirs = getattr(self, f.name), getattr(other, f.name)
            if f.name in _MERGE_BY_MAX:
                setattr(self, f.name, max(mine, theirs))
            else:
                setattr(self, f.name, mine + theirs)
        return self


class EventRuntime:
    """Event-driven simulator over a :class:`Fabric`.

    Parameters
    ----------
    fabric:
        The PE/router grid to simulate.
    perf:
        Cost model converting words and instruction elements to cycles.
    trace:
        When True, deliveries and link hops stream into a bounded
        :class:`~repro.obs.trace.TraceSink` (O(1) memory per event):
        per-color histograms, latency distributions and the link-traffic
        heatmap aggregate on the fly, and the last ``trace_capacity``
        deliveries stay inspectable via :attr:`trace_log`.
    trace_capacity:
        Ring size of the internally-created sink (``None`` keeps every
        delivery — debugging-scale fabrics only).
    trace_sink:
        Use this sink instead of creating one (implies ``trace=True``).
        Externally-owned sinks survive :meth:`reset`, so one sink can
        aggregate a whole multi-application run.
    faults:
        A :class:`~repro.faults.injector.FaultInjector` to consult on
        every injection, hop and delivery.  ``None`` (the default)
        compiles the fault hooks down to a single false boolean check —
        the same zero-cost-when-disabled pattern as the trace guard.
    watchdog_cycles:
        Progress watchdog threshold: if the gap between an event's
        timestamp and the last delivery exceeds this many cycles,
        :meth:`run` raises :class:`~repro.faults.errors.FabricStallError`
        with an obs-layer diagnostic report.  ``None`` disables the
        watchdog (and keeps the tight event loop).
    """

    def __init__(
        self,
        fabric: Fabric,
        perf: WsePerfModel = WSE2,
        *,
        trace: bool = False,
        trace_capacity: int | None = 1024,
        trace_sink=None,
        faults=None,
        watchdog_cycles: float | None = None,
    ) -> None:
        self.fabric = fabric
        self.perf = perf
        self.now: float = 0.0
        self.stats = RuntimeStats()
        if trace_sink is not None:
            self.trace_sink = trace_sink
            self._owns_sink = False
        elif trace:
            from repro.obs.trace import TraceSink

            self.trace_sink = TraceSink(capacity=trace_capacity)
            self._owns_sink = True
        else:
            self.trace_sink = None
            self._owns_sink = False
        self._trace = self.trace_sink is not None
        if self._trace:
            from repro.obs.trace import LATENCY_BUCKETS

            global _LATENCY_BUCKETS
            _LATENCY_BUCKETS = LATENCY_BUCKETS
            # cached sink internals: the per-delivery and per-hop trace
            # branches are inlined against these (see TraceSink.delivery
            # for the reference implementation of the aggregation)
            self._sink_ring_append = self.trace_sink._ring_append
            self._sink_agg = self.trace_sink._agg
            self._sink_links = self.trace_sink._links
        self.faults = faults
        #: single-boolean fault guard: True only when an injector with
        #: fabric-side faults is attached (mirrors the trace guard)
        self._fault_check = faults is not None and faults.fabric_active
        self._fault_dead = faults.dead if self._fault_check else frozenset()
        self.watchdog_cycles = watchdog_cycles
        self._heap: list[tuple] = []
        self._seq = 0
        #: busy-until time of each directed link, keyed by the packed int
        #: ``(x << 16 | y) << 3 | out_port``
        self._link_busy: dict[int, float] = {}
        # hot-path caches: resolved once, read on every event
        self._pes = fabric.pe_map
        self._routers = fabric.router_map
        self._width = fabric.width
        self._height = fabric.height
        self._hop_latency = perf.hop_latency_cycles
        self._link_rate = perf.link_words_per_cycle
        self._injection_overhead = perf.injection_overhead_cycles
        #: coord -> port-indexed tuple of link destinations (None when the
        #: link leaves the fabric): replaces per-hop coordinate arithmetic
        #: and bounds checks with one lookup.  Bypassed columns (spare-
        #: column remap of dead PEs, CS-2 yield style) are walked past
        #: transparently on east/west links: one logical hop still costs
        #: one link transfer, so event timestamps — and summation order —
        #: match the healthy fabric bit-for-bit.
        width, height = self._width, self._height
        bypass = getattr(fabric, "bypass_columns", frozenset())
        self._dests: dict[tuple[int, int], tuple] = {}
        for (x, y) in self._pes:
            row = []
            for dx, dy in OFFSET:
                nx, ny = x + dx, y + dy
                if dx and bypass:
                    while 0 <= nx < width and nx in bypass:
                        nx += dx
                row.append(
                    (nx, ny) if 0 <= nx < width and 0 <= ny < height else None
                )
            self._dests[(x, y)] = tuple(row)
        #: coord -> bound ``table.get`` of that router's flattened route
        #: table.  Routers mutate their table dict in place (never rebind
        #: it), so the bound method stays valid across switch advances.
        self._route_gets = {
            coord: router.table.get for coord, router in self._routers.items()
        }

    # ------------------------------------------------------------------ #
    # Scheduling primitives
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, fn: Callable, *args) -> None:
        """Run ``fn(*args)`` at ``now + delay`` (FIFO-stable at equal times)."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(
            self._heap, (self.now + delay, self._seq, _EV_CALL, fn, args)
        )
        self._seq += 1

    @property
    def trace_log(self) -> list:
        """The retained delivery timeline as ``(time, coord, message)``
        records (named-tuple :class:`~repro.obs.trace.DeliveryRecord`
        entries; empty when tracing is off).

        Backwards-compatible view of what used to be an unbounded list:
        only the sink ring's last ``capacity`` deliveries are retained.
        """
        if self.trace_sink is None:
            return []
        return list(self.trace_sink.ring)

    def reset(self) -> None:
        """Discard all per-run state, keeping the fabric/perf configuration.

        Clears the event heap, simulation clock, link occupancy, counters
        and (internally-owned) trace sink so the runtime can be reused
        for the next application without rebuilding (PE/router
        configuration is owned by the fabric and survives untouched; an
        externally-provided sink keeps aggregating across resets).
        """
        self._heap.clear()
        self._seq = 0
        self.now = 0.0
        self._link_busy.clear()
        self.stats = RuntimeStats()
        if self._owns_sink:
            self.trace_sink.clear()

    def run(
        self,
        *,
        max_events: int | None = None,
        watchdog_cycles: float | None = None,
    ) -> float:
        """Drain the event queue; return the final simulation time.

        Raises
        ------
        EventBudgetError
            When ``max_events`` is hit with events still pending.  The
            truncation is also recorded in
            :attr:`RuntimeStats.runs_truncated` — a budgeted run can no
            longer silently masquerade as a completed one.
        FabricStallError
            When the watchdog (``watchdog_cycles`` here, or the
            constructor default) sees the gap between the next event's
            timestamp and the last delivery exceed the threshold.  The
            error carries a diagnostic report of in-flight messages and
            last-active links; the offending event is pushed back so the
            heap stays inspectable post-mortem.
        """
        if watchdog_cycles is None:
            watchdog_cycles = self.watchdog_cycles
        heap = self._heap
        pop = heapq.heappop
        arrive = self._arrive
        processed = 0
        try:
            if max_events is None and watchdog_cycles is None:
                # common path: no budget check, and the _arrive body is
                # inlined to drop one Python call per fabric event
                routers = self._routers
                route_gets = self._route_gets
                deliver = self._deliver
                transmit = self._transmit
                stats = self.stats
                while heap:
                    event = pop(heap)
                    self.now = event[0]
                    processed += 1
                    if event[2] == _EV_ARRIVE:
                        coord = event[3]
                        msg = event[5]
                        outputs = route_gets[coord](
                            (msg.color << PORT_SHIFT) | event[4]
                        )
                        if outputs:
                            if len(outputs) == 1:
                                out = outputs[0]
                                if out is Port.RAMP:
                                    deliver(coord, msg)
                                else:
                                    transmit(coord, out, msg)
                            else:
                                for out in outputs:
                                    if out is Port.RAMP:
                                        deliver(coord, msg.fork())
                                    else:
                                        transmit(coord, out, msg.fork())
                        if msg.kind == KIND_CONTROL:
                            routers[coord].advance(msg.color)
                            stats.control_advances += 1
                    else:
                        event[3](*event[4])
            else:
                stats = self.stats
                delivered = stats.messages_delivered
                last_progress = self.now
                while heap:
                    if max_events is not None and processed >= max_events:
                        stats.runs_truncated += 1
                        raise EventBudgetError(
                            processed=processed,
                            pending=len(heap),
                            now=self.now,
                        )
                    event = pop(heap)
                    if watchdog_cycles is not None:
                        if stats.messages_delivered != delivered:
                            delivered = stats.messages_delivered
                            last_progress = self.now
                        idle = event[0] - last_progress
                        if idle > watchdog_cycles:
                            heapq.heappush(heap, event)
                            from repro.obs.report import stall_report

                            raise FabricStallError(
                                now=self.now,
                                idle_cycles=idle,
                                watchdog_cycles=watchdog_cycles,
                                report=stall_report(self),
                            )
                    self.now = event[0]
                    processed += 1
                    if event[2] == _EV_ARRIVE:
                        arrive(event[3], event[4], event[5])
                    else:
                        event[3](*event[4])
        finally:
            self.stats.events_processed += processed
        return self.now

    @property
    def idle(self) -> bool:
        """True when no events are pending."""
        return not self._heap

    # ------------------------------------------------------------------ #
    # Injection and routing
    # ------------------------------------------------------------------ #
    def inject(
        self,
        coord: tuple[int, int],
        color: int,
        payload=None,
        *,
        kind: str = KIND_DATA,
        at: float | None = None,
        meta: dict | None = None,
    ) -> Message:
        """A PE sends a message: it enters its own router via the RAMP.

        ``at`` overrides the entry time (defaults to ``now`` plus the
        injection overhead); handlers use this to model sends issued after
        their compute finishes.
        """
        pe = self._pes.get(coord)
        if pe is None:
            pe = self.fabric.pe(*coord)  # raises with coordinate context
        msg = Message(color=color, payload=payload, kind=kind, source=coord)
        if meta:
            msg.meta.update(meta)
        if self._fault_check and coord in self._fault_dead:
            # a dead PE never gets to run its send
            self.faults.stats.injections_suppressed += 1
            return msg
        pe.messages_sent += 1
        pe.words_sent += msg.num_words
        entry = (at if at is not None else self.now) + self._injection_overhead
        # entry time arithmetic mirrors schedule(delay) exactly
        # (now + (entry - now)) so event timestamps — and therefore event
        # order and summation order — stay bit-identical
        delay = entry - self.now
        if delay < 0.0:
            delay = 0.0
        self.stats.messages_injected += 1
        msg.born = self.now + delay
        heapq.heappush(
            self._heap,
            (self.now + delay, self._seq, _EV_ARRIVE, coord, Port.RAMP, msg),
        )
        self._seq += 1
        return msg

    def _arrive(self, coord: tuple[int, int], in_port: Port, msg: Message) -> None:
        """A message reaches the router at *coord* through *in_port*."""
        router = self._routers[coord]
        outputs = router.table.get((msg.color << PORT_SHIFT) | in_port)
        if outputs:
            if len(outputs) == 1:
                # single-output route: forward the message itself —
                # exactly one consumer ever sees it, so no copy is needed
                out = outputs[0]
                if out is Port.RAMP:
                    self._deliver(coord, msg)
                else:
                    self._transmit(coord, out, msg)
            else:
                for out in outputs:
                    if out is Port.RAMP:
                        self._deliver(coord, msg.fork())
                    else:
                        self._transmit(coord, out, msg.fork())
        if msg.kind == KIND_CONTROL:
            # the command advances this router's switch position after
            # being forwarded along the current configuration (Fig. 6b)
            router.advance(msg.color)
            self.stats.control_advances += 1

    def _transmit(
        self, coord: tuple[int, int], out_port: Port, msg: Message
    ) -> None:
        """Send a train over the directed link (coord, out_port)."""
        dest = self._dests[coord][out_port]
        if dest is None:
            self.stats.messages_dropped_offchip += 1
            return
        # directed-link key packed as an int (x, y, port) — cheaper to
        # hash than a nested tuple at per-hop rates
        key = (((coord[0] << 16) | coord[1]) << 3) | out_port
        link_busy = self._link_busy
        start = link_busy.get(key, 0.0)
        if start < self.now:
            start = self.now
        if self._fault_check:
            fate = self.faults.on_hop(coord, out_port, msg)
            if fate < 0.0:
                # dropped at the sender's egress: the packet never
                # occupies the link
                self.stats.messages_dropped_faulted += 1
                return
            start += fate
        words = msg.num_words
        finish = start + self._hop_latency + words / self._link_rate
        link_busy[key] = finish
        stats = self.stats
        stats.fabric_word_hops += words
        if self._trace:
            # streaming link accounting: one dict lookup per hop keeps
            # traced runs within the benchmark's overhead gate
            agg = self._sink_links.get(key)
            if agg is None:
                agg = self._sink_links[key] = [0, 0.0]
            agg[0] += words
            wait = start - self.now
            if wait > 0.0:
                agg[1] += wait
        hops = msg.hops + 1
        msg.hops = hops
        if hops > stats.max_hops_seen:
            stats.max_hops_seen = hops
        # same bit-exactness note as inject(): reproduce now + (finish - now)
        heapq.heappush(
            self._heap,
            (
                self.now + (finish - self.now),
                self._seq,
                _EV_ARRIVE,
                dest,
                OPPOSITE[out_port],
                msg,
            ),
        )
        self._seq += 1

    def _deliver(self, coord: tuple[int, int], msg: Message) -> None:
        """Hand a message to the PE at *coord* and run its bound task."""
        if self._fault_check and coord in self._fault_dead:
            # a dead PE's RAMP eats the wavelet silently
            self.faults.stats.deliveries_suppressed += 1
            return
        pe = self._pes[coord]
        pe.messages_received += 1
        pe.words_received += msg.num_words
        self.stats.messages_delivered += 1
        if self._trace:
            # inlined TraceSink.delivery (call overhead matters here)
            now = self.now
            self._sink_ring_append((now, coord, msg))
            source = msg.source
            if source is None:
                sdx = sdy = 2
            else:
                dx = coord[0] - source[0]
                dy = coord[1] - source[1]
                sdx = (dx > 0) - (dx < 0)
                sdy = (dy > 0) - (dy < 0)
            bucket = int(now - msg.born).bit_length()
            if bucket >= _LATENCY_BUCKETS:
                bucket = _LATENCY_BUCKETS - 1
            key = (msg.color, msg.hops, sdx, sdy, bucket)
            agg = self._sink_agg.get(key)
            if agg is None:
                agg = self._sink_agg[key] = [0, 0]
            agg[0] += 1
            agg[1] += msg.num_words
        # inlined pe.handler_for(msg): one delivery per fabric message
        if msg.kind == KIND_CONTROL:
            handler = pe._control_handlers.get(msg.color)
        else:
            handler = pe._handlers.get(msg.color)
        if handler is None:
            return
        start = pe.busy_until
        if start < self.now:
            start = self.now
        cycles_before = pe.dsd.cycles
        pe.exec_start = start
        pe.cycles_at_start = cycles_before
        handler(self, pe, msg)
        pe.busy_until = start + (pe.dsd.cycles - cycles_before)

    def pe_send_time(self, pe) -> float:
        """Time at which a send issued by the currently-running task of
        *pe* enters the fabric: after the compute executed so far."""
        start = pe.exec_start
        if start is None:  # no task context: sends enter immediately
            return self.now
        return start + (pe.dsd.cycles - pe.cycles_at_start)

    # ------------------------------------------------------------------ #
    def elapsed_seconds(self) -> float:
        """Wall-clock equivalent of the current simulation time."""
        return self.perf.seconds(self.now)
